//! # ruu — facade crate for the RUU reproduction
//!
//! Re-exports the whole workspace behind one dependency. See the individual
//! crates for detail:
//!
//! * [`isa`] — the CRAY-1-like scalar ISA;
//! * [`exec`] — the golden architectural interpreter;
//! * [`workloads`] — Lawrence Livermore loops 1–14 and synthetic programs;
//! * [`sim`] — the timing-simulation substrate;
//! * [`predict`] — the branch-prediction subsystem: predictor zoo, BTB,
//!   and the trace-driven CBP evaluation harness;
//! * [`issue`] — the issue mechanisms (simple, Tomasulo, tag unit, RS pool,
//!   RSTU, RUU), unified behind the [`issue::IssueSimulator`] trait;
//! * [`precise`] — precise-interrupt machinery and the speculation
//!   extension;
//! * [`engine`] — the parallel batch-simulation engine for
//!   (mechanism, config, workload) job grids;
//! * [`analysis`] — static CFG/dataflow lints and the dataflow-limit
//!   lower bound on cycles.

pub use ruu_analysis as analysis;
pub use ruu_engine as engine;
pub use ruu_exec as exec;
pub use ruu_isa as isa;
pub use ruu_issue as issue;
pub use ruu_precise as precise;
pub use ruu_predict as predict;
pub use ruu_sim_core as sim;
pub use ruu_workloads as workloads;
