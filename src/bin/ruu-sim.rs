//! `ruu-sim` — command-line driver for the issue-mechanism simulators.
//!
//! ```text
//! ruu-sim <mechanism> [workload] [--entries N] [--paths N] [--loadregs N]
//! ruu-sim sweep --mechanism <name> --entries A:B[:STEP]|N,N,...
//!               [--jobs N] [--json] [--paths N] [--loadregs N] [--buses N]
//! ruu-sim trace --mechanism <name> --loop <LLL1..LLL14|file.s> --out FILE
//!               [--entries N]
//! ruu-sim lint [--all-loops | LLL1..LLL14 | file.s] [--deny-warnings]
//! ruu-sim analyze [--all-loops | LLL1..LLL14 | file.s] [--mechanism <name>]
//!                 [--entries N]
//!
//! mechanisms: simple | tomasulo | tagunit | rspool | rstu |
//!             ruu | ruu-bypass | ruu-nobypass | ruu-limited |
//!             reorder | reorder-bypass | history | future | spec
//! workload:   LLL1..LLL14 | all | file.s   (default: all)
//! ```
//!
//! The `sweep` subcommand runs a window-size grid over the full Livermore
//! suite on the parallel `ruu-engine` (`--jobs 0` = one worker per
//! hardware thread), printing paper-style speedup/issue-rate rows or,
//! with `--json`, the engine's full [`ruu::engine::SweepReport`].
//!
//! The `trace` subcommand runs one workload with a
//! [`ruu::sim::ChromeTraceObserver`] attached and writes Chrome
//! `trace_event` JSON (open in `chrome://tracing` or Perfetto). A
//! [`ruu::sim::CycleAccountant`] rides along; the command fails (nonzero
//! exit) if the run violates `cycles == issue + Σ stalls`.
//!
//! The `lint` subcommand runs the `ruu::analysis` static lints (CFG
//! shape, uninitialized reads, dead writes, memory footprint) over the
//! selected workloads, honouring each workload's inline waivers. Errors
//! always exit nonzero; `--deny-warnings` makes warnings (and stale
//! waivers) fatal too.
//!
//! The `analyze` subcommand prints the per-loop **dataflow-limit lower
//! bound** (latency-weighted RAW critical path of the golden trace) next
//! to the cycles a chosen mechanism actually achieves, and fails if any
//! run beats the bound — that would be a simulator bug.

use std::process::ExitCode;

use ruu::analysis::{apply_waivers, dataflow_bound, lint, LintOptions, Severity};
use ruu::engine::{Job, SweepEngine};
use ruu::exec::{ArchState, Memory};
use ruu::isa::text;
use ruu::issue::{Bypass, IssueSimulator, Mechanism, PreciseScheme, Predictor, SpecRuu, TwoBit};
use ruu::sim::{ChromeTraceObserver, CycleAccountant, MachineConfig, Tee};
use ruu::workloads::{livermore, Workload};

struct Options {
    mechanism: String,
    workload: String,
    entries: usize,
    paths: u32,
    loadregs: usize,
}

/// Maps a CLI mechanism name (sized by `entries`) to a [`Mechanism`].
/// `None` for the speculative machine, which is not a `Mechanism` variant.
fn mechanism_by_name(name: &str, entries: usize) -> Result<Option<Mechanism>, String> {
    // The simulator constructors assert on degenerate sizes; reject them
    // here so the CLI exits with a message instead of panicking.
    if entries == 0 {
        return Err("--entries must be at least 1".to_string());
    }
    let e = entries;
    let m = match name {
        "simple" => Some(Mechanism::Simple),
        "tomasulo" => Some(Mechanism::Tomasulo {
            rs_per_fu: e.max(1) / 4 + 1,
        }),
        "tagunit" => Some(Mechanism::TagUnitDistributed {
            rs_per_fu: e.max(1) / 4 + 1,
            tags: e,
        }),
        "rspool" => Some(Mechanism::RsPool { rs: e, tags: e }),
        "rstu" => Some(Mechanism::Rstu { entries: e }),
        "ruu" | "ruu-bypass" => Some(Mechanism::Ruu {
            entries: e,
            bypass: Bypass::Full,
        }),
        "ruu-nobypass" => Some(Mechanism::Ruu {
            entries: e,
            bypass: Bypass::None,
        }),
        "ruu-limited" => Some(Mechanism::Ruu {
            entries: e,
            bypass: Bypass::LimitedA,
        }),
        "reorder" => Some(Mechanism::InOrderPrecise {
            scheme: PreciseScheme::ReorderBuffer,
            entries: e,
        }),
        "reorder-bypass" => Some(Mechanism::InOrderPrecise {
            scheme: PreciseScheme::ReorderBufferBypass,
            entries: e,
        }),
        "history" => Some(Mechanism::InOrderPrecise {
            scheme: PreciseScheme::HistoryBuffer,
            entries: e,
        }),
        "future" => Some(Mechanism::InOrderPrecise {
            scheme: PreciseScheme::FutureFile,
            entries: e,
        }),
        "spec" => None,
        other => return Err(format!("unknown mechanism {other}\n{}", usage())),
    };
    Ok(m)
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mechanism = args.next().ok_or_else(usage)?;
    let mut opts = Options {
        mechanism,
        workload: "all".into(),
        entries: 15,
        paths: 1,
        loadregs: 6,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--entries" => {
                opts.entries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--entries needs a number")?;
            }
            "--paths" => {
                opts.paths = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--paths needs a number")?;
            }
            "--loadregs" => {
                opts.loadregs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--loadregs needs a number")?;
            }
            w if !w.starts_with('-') => opts.workload = w.to_string(),
            other => return Err(format!("unknown option {other}\n{}", usage())),
        }
    }
    Ok(opts)
}

fn usage() -> String {
    "usage: ruu-sim <simple|tomasulo|tagunit|rspool|rstu|ruu|ruu-bypass|ruu-nobypass|\n     ruu-limited|reorder|reorder-bypass|history|future|spec> [LLL1..LLL14|all|file.s]\n     [--entries N] [--paths N] [--loadregs N]\n   or: ruu-sim sweep --mechanism <name> --entries A:B[:STEP]|N,N,...\n     [--jobs N] [--json] [--paths N] [--loadregs N] [--buses N]\n   or: ruu-sim trace --mechanism <name> --loop <LLL1..LLL14|file.s> --out FILE\n     [--entries N]\n   or: ruu-sim lint [--all-loops|LLL1..LLL14|file.s] [--deny-warnings]\n   or: ruu-sim analyze [--all-loops|LLL1..LLL14|file.s] [--mechanism <name>] [--entries N]"
        .to_string()
}

fn workloads(sel: &str) -> Result<Vec<Workload>, String> {
    if sel.eq_ignore_ascii_case("all") {
        Ok(livermore::all())
    } else if std::path::Path::new(sel)
        .extension()
        .is_some_and(|e| e == "s")
    {
        // An assembly file in the `ruu::isa::text` syntax; runs against a
        // zeroed memory with no result checks.
        let src = std::fs::read_to_string(sel).map_err(|e| format!("{sel}: {e}"))?;
        let program = text::parse(&src).map_err(|e| format!("{sel}: {e}"))?;
        Ok(vec![Workload {
            name: "custom",
            description: "user assembly file",
            program,
            memory: Memory::new(1 << 16),
            checks: Vec::new(),
            inst_limit: 100_000_000,
            lint_waivers: Vec::new(),
        }])
    } else {
        livermore::by_name(sel)
            .map(|w| vec![w])
            .ok_or_else(|| format!("unknown workload {sel}"))
    }
}

/// Parses a window-size grid: `A:B` (inclusive range), `A:B:STEP`, or a
/// comma-separated list `N,N,...`.
fn parse_entries_spec(spec: &str) -> Result<Vec<usize>, String> {
    let bad = |s: &str| format!("bad --entries spec {s:?} (want A:B, A:B:STEP, or N,N,...)");
    if spec.contains(':') {
        let parts: Vec<&str> = spec.split(':').collect();
        let (lo, hi, step) = match parts.as_slice() {
            [a, b] => (a, b, "1"),
            [a, b, s] => (a, b, *s),
            _ => return Err(bad(spec)),
        };
        let lo: usize = lo.parse().map_err(|_| bad(spec))?;
        let hi: usize = hi.parse().map_err(|_| bad(spec))?;
        let step: usize = step.parse().map_err(|_| bad(spec))?;
        if lo == 0 || hi < lo || step == 0 {
            return Err(bad(spec));
        }
        Ok((lo..=hi).step_by(step).collect())
    } else {
        let list: Vec<usize> = spec
            .split(',')
            .map(|p| p.trim().parse().map_err(|_| bad(spec)))
            .collect::<Result<_, _>>()?;
        if list.is_empty() || list.contains(&0) {
            return Err(bad(spec));
        }
        Ok(list)
    }
}

fn run_sweep(mut args: std::env::Args) -> Result<(), String> {
    let mut mechanism: Option<String> = None;
    let mut entries_spec: Option<String> = None;
    let mut jobs: usize = 0;
    let mut json = false;
    let mut paths: u32 = 1;
    let mut loadregs: usize = 6;
    let mut buses: u32 = 1;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--mechanism" => mechanism = Some(args.next().ok_or("--mechanism needs a name")?),
            "--entries" => entries_spec = Some(args.next().ok_or("--entries needs a spec")?),
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--jobs needs a number")?;
            }
            "--json" => json = true,
            "--paths" => {
                paths = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--paths needs a number")?;
            }
            "--loadregs" => {
                loadregs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--loadregs needs a number")?;
            }
            "--buses" => {
                buses = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--buses needs a number")?;
            }
            other => return Err(format!("unknown option {other}\n{}", usage())),
        }
    }
    let name = mechanism.ok_or_else(|| format!("sweep needs --mechanism\n{}", usage()))?;
    let spec = entries_spec.ok_or_else(|| format!("sweep needs --entries\n{}", usage()))?;
    let entries = parse_entries_spec(&spec)?;
    let cfg = MachineConfig::paper()
        .with_dispatch_paths(paths)
        .with_load_registers(loadregs)
        .with_result_buses(buses);

    let grid: Vec<Job> = entries
        .iter()
        .map(|&e| {
            mechanism_by_name(&name, e)?
                .map(|m| Job::new(m, cfg.clone()))
                .ok_or_else(|| "the speculative machine has no sweep support yet".to_string())
        })
        .collect::<Result<_, _>>()?;

    let engine = SweepEngine::livermore().with_workers(jobs);
    let report = engine.run_grid(&grid).map_err(|e| e.to_string())?;

    if json {
        println!("{}", report.to_json());
        return Ok(());
    }
    println!(
        "| {:>7} | {:>10} | {:>12} | {:>7} | {:>6} |",
        "entries", "cycles", "instructions", "speedup", "IPC"
    );
    for j in &report.jobs {
        println!(
            "| {:>7} | {:>10} | {:>12} | {:>7.3} | {:>6.3} |",
            j.entries.map_or_else(|| "-".to_string(), |e| e.to_string()),
            j.cycles,
            j.instructions,
            j.speedup,
            j.issue_rate,
        );
    }
    let s = &report.stats;
    println!(
        "engine: {} jobs ({} units) on {} workers in {:.1?} ({:.1} jobs/s, {:.1} units/s)",
        s.jobs, s.units, s.workers, s.wall, s.jobs_per_sec, s.units_per_sec
    );
    Ok(())
}

/// Runs one workload under one mechanism with a Chrome-trace observer and
/// a cycle accountant attached, writing the trace JSON to `--out`.
fn run_trace(mut args: std::env::Args) -> Result<(), String> {
    let mut mechanism: Option<String> = None;
    let mut sel: Option<String> = None;
    let mut out: Option<String> = None;
    let mut entries: usize = 15;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--mechanism" => mechanism = Some(args.next().ok_or("--mechanism needs a name")?),
            "--loop" => sel = Some(args.next().ok_or("--loop needs a workload name")?),
            "--out" => out = Some(args.next().ok_or("--out needs a file path")?),
            "--entries" => {
                entries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--entries needs a number")?;
            }
            other => return Err(format!("unknown option {other}\n{}", usage())),
        }
    }
    let name = mechanism.ok_or_else(|| format!("trace needs --mechanism\n{}", usage()))?;
    let sel = sel.ok_or_else(|| format!("trace needs --loop\n{}", usage()))?;
    let path = out.ok_or_else(|| format!("trace needs --out\n{}", usage()))?;
    let suite = workloads(&sel)?;
    let [w] = suite.as_slice() else {
        return Err("trace wants exactly one workload (e.g. --loop LLL3)".to_string());
    };

    let cfg = MachineConfig::paper();
    let sim: Box<dyn IssueSimulator> = match mechanism_by_name(&name, entries)? {
        Some(m) => m.build(&cfg),
        None => Box::new(SpecRuu::new(cfg.clone(), entries, Bypass::Full)),
    };

    let mut trace = ChromeTraceObserver::default();
    let mut acct = CycleAccountant::default();
    let mut tee = Tee::new(&mut trace, &mut acct);
    let r = sim
        .run_observed(
            ArchState::new(),
            w.memory.clone(),
            &w.program,
            w.inst_limit,
            &mut tee,
        )
        .map_err(|e| format!("{}: {e}", w.name))?;
    w.verify(&r.memory)
        .map_err(|e| format!("{}: {e}", w.name))?;

    std::fs::write(&path, trace.to_json()).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "trace: {name} on {}: {} instructions in {} cycles -> {path}",
        w.name, r.instructions, r.cycles
    );
    acct.verify(r.cycles).map_err(|v| v.to_string())?;
    println!(
        "accounting ok: {} issue + {} stall cycles = {} cycles",
        acct.issue_cycles(),
        acct.total_stalls(),
        r.cycles
    );
    Ok(())
}

/// Workload selection shared by `lint` and `analyze`: `--all-loops` or a
/// positional workload name / `.s` file (default: all loops).
fn select_workloads(
    args: &mut std::env::Args,
    flag: &mut impl FnMut(&str) -> Result<bool, String>,
) -> Result<Vec<Workload>, String> {
    let mut sel: Option<String> = None;
    for arg in args.by_ref() {
        match arg.as_str() {
            "--all-loops" => sel = Some("all".to_string()),
            other => {
                if !flag(other)? {
                    if other.starts_with('-') {
                        return Err(format!("unknown option {other}\n{}", usage()));
                    }
                    sel = Some(other.to_string());
                }
            }
        }
    }
    workloads(sel.as_deref().unwrap_or("all"))
}

/// Statically lints the selected workloads, honouring inline waivers.
/// Errors are always fatal; `--deny-warnings` makes warnings fatal too.
fn run_lint(mut args: std::env::Args) -> Result<(), String> {
    let mut deny_warnings = false;
    let suite = select_workloads(&mut args, &mut |arg| {
        Ok(if arg == "--deny-warnings" {
            deny_warnings = true;
            true
        } else {
            false
        })
    })?;

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut waived = 0usize;
    for w in &suite {
        let opts = LintOptions::for_memory(w.memory.len() as u64);
        let findings = lint(&w.program, &opts);
        let total = findings.len();
        let (rest, stale) = apply_waivers(findings, &w.lint_waivers);
        waived += total - rest.len();
        for f in &rest {
            println!("{}: {f}", w.name);
            match f.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
            }
        }
        for i in stale {
            let wv = &w.lint_waivers[i];
            println!(
                "{}: warning[stale-waiver]: waiver for {} at pc {:?} matched no finding ({})",
                w.name, wv.kind, wv.pc, wv.reason
            );
            warnings += 1;
        }
    }
    println!(
        "lint: {} workload(s), {errors} error(s), {warnings} warning(s), {waived} waived",
        suite.len()
    );
    if errors > 0 || (deny_warnings && warnings > 0) {
        return Err(if deny_warnings {
            "lint failed (--deny-warnings)".to_string()
        } else {
            "lint failed".to_string()
        });
    }
    Ok(())
}

/// Prints the per-workload dataflow-limit bound next to the cycles one
/// mechanism achieves; fails if any run beats the bound.
fn run_analyze(mut args: std::env::Args) -> Result<(), String> {
    let mut name = "ruu".to_string();
    let mut entries: usize = 15;
    let mut pending: Option<&str> = None;
    let suite = select_workloads(&mut args, &mut |arg| {
        match pending.take() {
            Some("--mechanism") => {
                name = arg.to_string();
                return Ok(true);
            }
            Some("--entries") => {
                entries = arg.parse().map_err(|_| "--entries needs a number")?;
                return Ok(true);
            }
            _ => {}
        }
        Ok(match arg {
            "--mechanism" => {
                pending = Some("--mechanism");
                true
            }
            "--entries" => {
                pending = Some("--entries");
                true
            }
            _ => false,
        })
    })?;
    let cfg = MachineConfig::paper();
    let mechanism = mechanism_by_name(&name, entries)?
        .ok_or_else(|| "analyze does not support the speculative machine".to_string())?;

    println!(
        "| {:<8} | {:>12} | {:>10} | {:>10} | {:>10} | {:>10} |",
        "loop", "instructions", "crit path", "bound", "cycles", "% of limit"
    );
    let mut violations = 0usize;
    for w in &suite {
        let trace = w.golden_trace().map_err(|e| format!("{}: {e}", w.name))?;
        let b = dataflow_bound(&trace, &cfg);
        let sim = mechanism.build(&cfg);
        let r = sim
            .run(&w.program, w.memory.clone(), w.inst_limit)
            .map_err(|e| format!("{}: {e}", w.name))?;
        w.verify(&r.memory)
            .map_err(|e| format!("{}: {e}", w.name))?;
        if r.cycles < b.bound {
            violations += 1;
        }
        println!(
            "| {:<8} | {:>12} | {:>10} | {:>10} | {:>10} | {:>9.1}% |",
            w.name,
            b.instructions,
            b.critical_path,
            b.bound,
            r.cycles,
            100.0 * b.efficiency(r.cycles).unwrap_or(0.0),
        );
    }
    if violations > 0 {
        return Err(format!(
            "{violations} run(s) beat the dataflow bound — simulator bug (cycles >= dataflow_bound must hold)"
        ));
    }
    println!(
        "ok: cycles >= dataflow_bound for {} ({} workload(s))",
        name,
        suite.len()
    );
    Ok(())
}

fn run() -> Result<(), String> {
    if std::env::args().nth(1).as_deref() == Some("sweep") {
        let mut args = std::env::args();
        args.next(); // program name
        args.next(); // "sweep"
        return run_sweep(args);
    }
    if std::env::args().nth(1).as_deref() == Some("trace") {
        let mut args = std::env::args();
        args.next(); // program name
        args.next(); // "trace"
        return run_trace(args);
    }
    if std::env::args().nth(1).as_deref() == Some("lint") {
        let mut args = std::env::args();
        args.next(); // program name
        args.next(); // "lint"
        return run_lint(args);
    }
    if std::env::args().nth(1).as_deref() == Some("analyze") {
        let mut args = std::env::args();
        args.next(); // program name
        args.next(); // "analyze"
        return run_analyze(args);
    }
    let opts = parse_args()?;
    let cfg = MachineConfig::paper()
        .with_dispatch_paths(opts.paths)
        .with_load_registers(opts.loadregs);
    let suite = workloads(&opts.workload)?;

    let e = opts.entries;
    let mechanism = mechanism_by_name(&opts.mechanism, e)?;

    println!(
        "| {:<8} | {:>12} | {:>10} | {:>6} |",
        "loop", "instructions", "cycles", "IPC"
    );
    let mut total_i = 0u64;
    let mut total_c = 0u64;
    for w in &suite {
        let (insts, cycles) = match &mechanism {
            Some(m) => {
                let sim = m.build(&cfg);
                let r = sim
                    .run(&w.program, w.memory.clone(), w.inst_limit)
                    .map_err(|e| format!("{}: {e}", w.name))?;
                w.verify(&r.memory)
                    .map_err(|e| format!("{}: {e}", w.name))?;
                (r.instructions, r.cycles)
            }
            None => {
                let mut pred: Box<dyn Predictor> = Box::new(TwoBit::default());
                let r = SpecRuu::new(cfg.clone(), e, Bypass::Full)
                    .run(&w.program, w.memory.clone(), w.inst_limit, pred.as_mut())
                    .map_err(|e| format!("{}: {e}", w.name))?;
                w.verify(&r.run.memory)
                    .map_err(|e| format!("{}: {e}", w.name))?;
                (r.run.instructions, r.run.cycles)
            }
        };
        total_i += insts;
        total_c += cycles;
        println!(
            "| {:<8} | {insts:>12} | {cycles:>10} | {:>6.3} |",
            w.name,
            insts as f64 / cycles as f64
        );
    }
    println!(
        "| {:<8} | {total_i:>12} | {total_c:>10} | {:>6.3} |",
        "total",
        total_i as f64 / total_c as f64
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
