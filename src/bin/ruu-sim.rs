//! `ruu-sim` — command-line driver for the issue-mechanism simulators.
//!
//! ```text
//! ruu-sim <mechanism> [workload] [--entries N] [--paths N] [--loadregs N]
//!
//! mechanisms: simple | tomasulo | tagunit | rspool | rstu |
//!             ruu | ruu-nobypass | ruu-limited | spec
//! workload:   LLL1..LLL14 | all          (default: all)
//! ```

use std::process::ExitCode;

use ruu::exec::Memory;
use ruu::isa::text;
use ruu::issue::{Bypass, Mechanism, Predictor, SpecRuu, TwoBit};
use ruu::sim::MachineConfig;
use ruu::workloads::{livermore, Workload};

struct Options {
    mechanism: String,
    workload: String,
    entries: usize,
    paths: u32,
    loadregs: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mechanism = args.next().ok_or_else(usage)?;
    let mut opts = Options {
        mechanism,
        workload: "all".into(),
        entries: 15,
        paths: 1,
        loadregs: 6,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--entries" => {
                opts.entries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--entries needs a number")?;
            }
            "--paths" => {
                opts.paths = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--paths needs a number")?;
            }
            "--loadregs" => {
                opts.loadregs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--loadregs needs a number")?;
            }
            w if !w.starts_with('-') => opts.workload = w.to_string(),
            other => return Err(format!("unknown option {other}\n{}", usage())),
        }
    }
    Ok(opts)
}

fn usage() -> String {
    "usage: ruu-sim <simple|tomasulo|tagunit|rspool|rstu|ruu|ruu-nobypass|ruu-limited|\n     reorder|reorder-bypass|history|future|spec> [LLL1..LLL14|all|file.s]\n     [--entries N] [--paths N] [--loadregs N]"
        .to_string()
}

fn workloads(sel: &str) -> Result<Vec<Workload>, String> {
    if sel.eq_ignore_ascii_case("all") {
        Ok(livermore::all())
    } else if std::path::Path::new(sel)
        .extension()
        .is_some_and(|e| e == "s")
    {
        // An assembly file in the `ruu::isa::text` syntax; runs against a
        // zeroed memory with no result checks.
        let src = std::fs::read_to_string(sel).map_err(|e| format!("{sel}: {e}"))?;
        let program = text::parse(&src).map_err(|e| format!("{sel}: {e}"))?;
        Ok(vec![Workload {
            name: "custom",
            description: "user assembly file",
            program,
            memory: Memory::new(1 << 16),
            checks: Vec::new(),
            inst_limit: 100_000_000,
        }])
    } else {
        livermore::by_name(sel)
            .map(|w| vec![w])
            .ok_or_else(|| format!("unknown workload {sel}"))
    }
}

fn run() -> Result<(), String> {
    let opts = parse_args()?;
    let cfg = MachineConfig::paper()
        .with_dispatch_paths(opts.paths)
        .with_load_registers(opts.loadregs);
    let suite = workloads(&opts.workload)?;

    let e = opts.entries;
    let mechanism = match opts.mechanism.as_str() {
        "simple" => Some(Mechanism::Simple),
        "tomasulo" => Some(Mechanism::Tomasulo { rs_per_fu: e.max(1) / 4 + 1 }),
        "tagunit" => Some(Mechanism::TagUnitDistributed {
            rs_per_fu: e.max(1) / 4 + 1,
            tags: e,
        }),
        "rspool" => Some(Mechanism::RsPool { rs: e, tags: e }),
        "rstu" => Some(Mechanism::Rstu { entries: e }),
        "ruu" => Some(Mechanism::Ruu {
            entries: e,
            bypass: Bypass::Full,
        }),
        "ruu-nobypass" => Some(Mechanism::Ruu {
            entries: e,
            bypass: Bypass::None,
        }),
        "ruu-limited" => Some(Mechanism::Ruu {
            entries: e,
            bypass: Bypass::LimitedA,
        }),
        "reorder" => Some(Mechanism::InOrderPrecise {
            scheme: ruu::issue::PreciseScheme::ReorderBuffer,
            entries: e,
        }),
        "reorder-bypass" => Some(Mechanism::InOrderPrecise {
            scheme: ruu::issue::PreciseScheme::ReorderBufferBypass,
            entries: e,
        }),
        "history" => Some(Mechanism::InOrderPrecise {
            scheme: ruu::issue::PreciseScheme::HistoryBuffer,
            entries: e,
        }),
        "future" => Some(Mechanism::InOrderPrecise {
            scheme: ruu::issue::PreciseScheme::FutureFile,
            entries: e,
        }),
        "spec" => None,
        other => return Err(format!("unknown mechanism {other}\n{}", usage())),
    };

    println!(
        "| {:<8} | {:>12} | {:>10} | {:>6} |",
        "loop", "instructions", "cycles", "IPC"
    );
    let mut total_i = 0u64;
    let mut total_c = 0u64;
    for w in &suite {
        let (insts, cycles) = match &mechanism {
            Some(m) => {
                let r = m
                    .run(&cfg, &w.program, w.memory.clone(), w.inst_limit)
                    .map_err(|e| format!("{}: {e}", w.name))?;
                w.verify(&r.memory).map_err(|e| format!("{}: {e}", w.name))?;
                (r.instructions, r.cycles)
            }
            None => {
                let mut pred: Box<dyn Predictor> = Box::new(TwoBit::default());
                let r = SpecRuu::new(cfg.clone(), e, Bypass::Full)
                    .run(&w.program, w.memory.clone(), w.inst_limit, pred.as_mut())
                    .map_err(|e| format!("{}: {e}", w.name))?;
                w.verify(&r.run.memory)
                    .map_err(|e| format!("{}: {e}", w.name))?;
                (r.run.instructions, r.run.cycles)
            }
        };
        total_i += insts;
        total_c += cycles;
        println!(
            "| {:<8} | {insts:>12} | {cycles:>10} | {:>6.3} |",
            w.name,
            insts as f64 / cycles as f64
        );
    }
    println!(
        "| {:<8} | {total_i:>12} | {total_c:>10} | {:>6.3} |",
        "total",
        total_i as f64 / total_c as f64
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
