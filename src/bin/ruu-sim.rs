//! `ruu-sim` — command-line driver for the issue-mechanism simulators.
//!
//! ```text
//! ruu-sim <mechanism> [workload] [--entries N] [--paths N] [--loadregs N]
//!               [--predictor NAME[:SIZE]]
//! ruu-sim sweep --mechanism <name> --entries A:B[:STEP]|N,N,...
//!               [--jobs N] [--json] [--paths N] [--loadregs N] [--buses N]
//!               [--predictor NAME[:SIZE]] [--dcache GEOM]
//! ruu-sim cachesim [--mechanism <name>] [--entries N] [--dcache GEOM]
//!               [--loop <LLL1..LLL14|file.s> | --all-loops]
//! ruu-sim cbp [--predictor NAME[:SIZE]]... [--loop <LLL1..LLL14|file.s> |
//!               --all-loops] [--json] [--top N]
//! ruu-sim trace --mechanism <name> --loop <LLL1..LLL14|file.s> --out FILE
//!               [--entries N]
//! ruu-sim lint [--all-loops | LLL1..LLL14 | file.s] [--deny-warnings]
//!              [--branch-sites]
//! ruu-sim analyze [--all-loops | LLL1..LLL14 | file.s] [--mechanism <name>]
//!                 [--entries N]
//!
//! mechanisms: simple | tomasulo | tagunit | rspool | rstu |
//!             ruu | ruu-bypass | ruu-nobypass | ruu-limited |
//!             reorder | reorder-bypass | history | future | spec(-ruu)
//! workload:   LLL1..LLL14 | all | file.s   (default: all)
//! predictors: always-taken | btfn | twobit[:N] | bimodal[:N] | gshare[:N] |
//!             local[:N] | tage[:N]
//! ```
//!
//! The `sweep` subcommand runs a window-size grid over the full Livermore
//! suite on the parallel `ruu-engine` (`--jobs 0` = one worker per
//! hardware thread), printing paper-style speedup/issue-rate rows or,
//! with `--json`, the engine's full [`ruu::engine::SweepReport`].
//! `--dcache GEOM` swaps the perfect data memory for a finite cache
//! (`SETSxWAYSxLINE[:MISS[:HIT[:MSHRS]]]`, e.g. `64x4x4:20`); each row
//! then carries the aggregate cache statistics.
//!
//! The `cachesim` subcommand runs one mechanism per loop under both the
//! perfect memory and a finite `--dcache` geometry, reporting the cycle
//! cost of the real memory path next to hit rate and load MPKI — the
//! quickest way to see what §2.2's perfect-memory idealization hides.
//!
//! The `cbp` subcommand is the trace-driven predictor championship: it
//! replays each workload's golden branch stream (from `ruu::exec`)
//! through the selected predictors — the whole `ruu::predict` zoo by
//! default — alongside a 64-set/4-way BTB, and reports per-predictor
//! accuracy, MPKI, and BTB hit rate (per-site worst offenders for a
//! single `--loop`). No timing simulator runs; this measures the
//! predictors themselves.
//!
//! The `trace` subcommand runs one workload with a
//! [`ruu::sim::ChromeTraceObserver`] attached and writes Chrome
//! `trace_event` JSON (open in `chrome://tracing` or Perfetto). A
//! [`ruu::sim::CycleAccountant`] rides along; the command fails (nonzero
//! exit) if the run violates `cycles == issue + Σ stalls`.
//!
//! The `lint` subcommand runs the `ruu::analysis` static lints (CFG
//! shape, uninitialized reads, dead writes, memory footprint) over the
//! selected workloads, honouring each workload's inline waivers. Errors
//! always exit nonzero; `--deny-warnings` makes warnings (and stale
//! waivers) fatal too.
//!
//! The `analyze` subcommand prints the per-loop **dataflow-limit lower
//! bound** (latency-weighted RAW critical path of the golden trace) next
//! to the cycles a chosen mechanism actually achieves, and fails if any
//! run beats the bound — that would be a simulator bug.

use std::process::ExitCode;

use ruu::analysis::{apply_waivers, branch_sites, dataflow_bound, lint, LintOptions, Severity};
use ruu::engine::json::JsonWriter;
use ruu::engine::{Job, SweepEngine};
use ruu::exec::{ArchState, Memory};
use ruu::isa::text;
use ruu::issue::{Bypass, Mechanism, PreciseScheme, PredictorConfig};
use ruu::predict::cbp::{evaluate_with_btb, BranchStream, BtbStats, CbpResult};
use ruu::predict::Btb;
use ruu::sim::{ChromeTraceObserver, CycleAccountant, DCacheConfig, MachineConfig, Tee};
use ruu::workloads::{livermore, Workload};

struct Options {
    mechanism: String,
    workload: String,
    entries: usize,
    paths: u32,
    loadregs: usize,
    predictor: PredictorConfig,
}

/// Maps a CLI mechanism name (sized by `entries`; the speculative machine
/// additionally takes `predictor`) to a [`Mechanism`].
fn mechanism_by_name(
    name: &str,
    entries: usize,
    predictor: PredictorConfig,
) -> Result<Mechanism, String> {
    // The simulator constructors assert on degenerate sizes; reject them
    // here so the CLI exits with a message instead of panicking.
    if entries == 0 {
        return Err("--entries must be at least 1".to_string());
    }
    let e = entries;
    let m = match name {
        "simple" => Mechanism::Simple,
        "tomasulo" => Mechanism::Tomasulo {
            rs_per_fu: e.max(1) / 4 + 1,
        },
        "tagunit" => Mechanism::TagUnitDistributed {
            rs_per_fu: e.max(1) / 4 + 1,
            tags: e,
        },
        "rspool" => Mechanism::RsPool { rs: e, tags: e },
        "rstu" => Mechanism::Rstu { entries: e },
        "ruu" | "ruu-bypass" => Mechanism::Ruu {
            entries: e,
            bypass: Bypass::Full,
        },
        "ruu-nobypass" => Mechanism::Ruu {
            entries: e,
            bypass: Bypass::None,
        },
        "ruu-limited" => Mechanism::Ruu {
            entries: e,
            bypass: Bypass::LimitedA,
        },
        "reorder" => Mechanism::InOrderPrecise {
            scheme: PreciseScheme::ReorderBuffer,
            entries: e,
        },
        "reorder-bypass" => Mechanism::InOrderPrecise {
            scheme: PreciseScheme::ReorderBufferBypass,
            entries: e,
        },
        "history" => Mechanism::InOrderPrecise {
            scheme: PreciseScheme::HistoryBuffer,
            entries: e,
        },
        "future" => Mechanism::InOrderPrecise {
            scheme: PreciseScheme::FutureFile,
            entries: e,
        },
        "spec" | "spec-ruu" => Mechanism::SpecRuu {
            entries: e,
            bypass: Bypass::Full,
            predictor,
        },
        other => return Err(format!("unknown mechanism {other}\n{}", usage())),
    };
    Ok(m)
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mechanism = args.next().ok_or_else(usage)?;
    let mut opts = Options {
        mechanism,
        workload: "all".into(),
        entries: 15,
        paths: 1,
        loadregs: 6,
        predictor: PredictorConfig::default(),
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--entries" => {
                opts.entries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--entries needs a number")?;
            }
            "--predictor" => {
                let spec = args.next().ok_or("--predictor needs NAME[:SIZE]")?;
                opts.predictor = PredictorConfig::parse(&spec).map_err(|e| e.to_string())?;
            }
            "--paths" => {
                opts.paths = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--paths needs a number")?;
            }
            "--loadregs" => {
                opts.loadregs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--loadregs needs a number")?;
            }
            w if !w.starts_with('-') => opts.workload = w.to_string(),
            other => return Err(format!("unknown option {other}\n{}", usage())),
        }
    }
    Ok(opts)
}

fn usage() -> String {
    "usage: ruu-sim <simple|tomasulo|tagunit|rspool|rstu|ruu|ruu-bypass|ruu-nobypass|\n     ruu-limited|reorder|reorder-bypass|history|future|spec|spec-ruu>\n     [LLL1..LLL14|all|file.s] [--entries N] [--paths N] [--loadregs N]\n     [--predictor NAME[:SIZE]]\n   or: ruu-sim sweep --mechanism <name> --entries A:B[:STEP]|N,N,...\n     [--jobs N] [--json] [--paths N] [--loadregs N] [--buses N]\n     [--predictor NAME[:SIZE]] [--dcache GEOM]\n   or: ruu-sim cachesim [--mechanism <name>] [--entries N] [--dcache GEOM]\n     [--all-loops|LLL1..LLL14|file.s]\n   or: ruu-sim cbp [--predictor NAME[:SIZE]]... [--loop LLL1..LLL14|file.s | --all-loops]\n     [--json] [--top N]\n   or: ruu-sim trace --mechanism <name> --loop <LLL1..LLL14|file.s> --out FILE\n     [--entries N]\n   or: ruu-sim lint [--all-loops|LLL1..LLL14|file.s] [--deny-warnings] [--branch-sites]\n   or: ruu-sim analyze [--all-loops|LLL1..LLL14|file.s] [--mechanism <name>] [--entries N]\n\npredictors: always-taken | btfn | twobit[:N] | bimodal[:N] | gshare[:N] |\n            local[:N] | tage[:N]   (cbp default: the whole zoo)\ndcache:     perfect | SETSxWAYSxLINE[:MISS[:HIT[:MSHRS]]]  (e.g. 64x4x4:20)"
        .to_string()
}

fn workloads(sel: &str) -> Result<Vec<Workload>, String> {
    if sel.eq_ignore_ascii_case("all") {
        Ok(livermore::all())
    } else if std::path::Path::new(sel)
        .extension()
        .is_some_and(|e| e == "s")
    {
        // An assembly file in the `ruu::isa::text` syntax; runs against a
        // zeroed memory with no result checks.
        let src = std::fs::read_to_string(sel).map_err(|e| format!("{sel}: {e}"))?;
        let program = text::parse(&src).map_err(|e| format!("{sel}: {e}"))?;
        Ok(vec![Workload {
            name: "custom",
            description: "user assembly file",
            program,
            memory: Memory::new(1 << 16),
            checks: Vec::new(),
            inst_limit: 100_000_000,
            lint_waivers: Vec::new(),
        }])
    } else {
        livermore::by_name(sel)
            .map(|w| vec![w])
            .ok_or_else(|| format!("unknown workload {sel}"))
    }
}

/// Parses a window-size grid: `A:B` (inclusive range), `A:B:STEP`, or a
/// comma-separated list `N,N,...`.
fn parse_entries_spec(spec: &str) -> Result<Vec<usize>, String> {
    let bad = |s: &str| format!("bad --entries spec {s:?} (want A:B, A:B:STEP, or N,N,...)");
    if spec.contains(':') {
        let parts: Vec<&str> = spec.split(':').collect();
        let (lo, hi, step) = match parts.as_slice() {
            [a, b] => (a, b, "1"),
            [a, b, s] => (a, b, *s),
            _ => return Err(bad(spec)),
        };
        let lo: usize = lo.parse().map_err(|_| bad(spec))?;
        let hi: usize = hi.parse().map_err(|_| bad(spec))?;
        let step: usize = step.parse().map_err(|_| bad(spec))?;
        if lo == 0 || hi < lo || step == 0 {
            return Err(bad(spec));
        }
        Ok((lo..=hi).step_by(step).collect())
    } else {
        let list: Vec<usize> = spec
            .split(',')
            .map(|p| p.trim().parse().map_err(|_| bad(spec)))
            .collect::<Result<_, _>>()?;
        if list.is_empty() || list.contains(&0) {
            return Err(bad(spec));
        }
        Ok(list)
    }
}

fn run_sweep(mut args: std::env::Args) -> Result<(), String> {
    let mut mechanism: Option<String> = None;
    let mut entries_spec: Option<String> = None;
    let mut jobs: usize = 0;
    let mut json = false;
    let mut paths: u32 = 1;
    let mut loadregs: usize = 6;
    let mut buses: u32 = 1;
    let mut predictor = PredictorConfig::default();
    let mut dcache = DCacheConfig::Perfect;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--mechanism" => mechanism = Some(args.next().ok_or("--mechanism needs a name")?),
            "--entries" => entries_spec = Some(args.next().ok_or("--entries needs a spec")?),
            "--predictor" => {
                let spec = args.next().ok_or("--predictor needs NAME[:SIZE]")?;
                predictor = PredictorConfig::parse(&spec).map_err(|e| e.to_string())?;
            }
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--jobs needs a number")?;
            }
            "--json" => json = true,
            "--paths" => {
                paths = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--paths needs a number")?;
            }
            "--loadregs" => {
                loadregs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--loadregs needs a number")?;
            }
            "--buses" => {
                buses = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--buses needs a number")?;
            }
            "--dcache" => {
                let spec = args.next().ok_or("--dcache needs a geometry")?;
                dcache = DCacheConfig::parse(&spec).map_err(|e| e.to_string())?;
            }
            other => return Err(format!("unknown option {other}\n{}", usage())),
        }
    }
    let name = mechanism.ok_or_else(|| format!("sweep needs --mechanism\n{}", usage()))?;
    let spec = entries_spec.ok_or_else(|| format!("sweep needs --entries\n{}", usage()))?;
    let entries = parse_entries_spec(&spec)?;
    let cfg = MachineConfig::paper()
        .with_dispatch_paths(paths)
        .with_load_registers(loadregs)
        .with_result_buses(buses)
        .with_dcache(dcache);

    let grid: Vec<Job> = entries
        .iter()
        .map(|&e| {
            Ok(Job::new(
                mechanism_by_name(&name, e, predictor)?,
                cfg.clone(),
            ))
        })
        .collect::<Result<_, String>>()?;

    let engine = SweepEngine::livermore().with_workers(jobs);
    let report = engine.run_grid(&grid).map_err(|e| e.to_string())?;

    if json {
        println!("{}", report.to_json());
        return Ok(());
    }
    println!(
        "| {:>7} | {:>10} | {:>12} | {:>7} | {:>6} |",
        "entries", "cycles", "instructions", "speedup", "IPC"
    );
    for j in &report.jobs {
        println!(
            "| {:>7} | {:>10} | {:>12} | {:>7.3} | {:>6.3} |",
            j.entries.map_or_else(|| "-".to_string(), |e| e.to_string()),
            j.cycles,
            j.instructions,
            j.speedup,
            j.issue_rate,
        );
        if let Some(b) = &j.branch {
            println!(
                "          branch: {} predicted, {} mispredicted ({:.3} MPKI), {} repair cycles",
                b.predicts,
                b.mispredicts,
                b.mpki(j.instructions),
                b.flush_cycles
            );
        }
        if let Some(c) = &j.cache {
            println!(
                "          cache: {} accesses, {} misses ({:.1}% hit, {:.3} MPKI)",
                c.accesses,
                c.misses,
                100.0 * c.hit_rate(),
                c.mpki(j.instructions)
            );
        }
    }
    let s = &report.stats;
    println!(
        "engine: {} jobs ({} units) on {} workers in {:.1?} ({:.1} jobs/s, {:.1} units/s)",
        s.jobs, s.units, s.workers, s.wall, s.jobs_per_sec, s.units_per_sec
    );
    Ok(())
}

/// Runs one workload under one mechanism with a Chrome-trace observer and
/// a cycle accountant attached, writing the trace JSON to `--out`.
fn run_trace(mut args: std::env::Args) -> Result<(), String> {
    let mut mechanism: Option<String> = None;
    let mut sel: Option<String> = None;
    let mut out: Option<String> = None;
    let mut entries: usize = 15;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--mechanism" => mechanism = Some(args.next().ok_or("--mechanism needs a name")?),
            "--loop" => sel = Some(args.next().ok_or("--loop needs a workload name")?),
            "--out" => out = Some(args.next().ok_or("--out needs a file path")?),
            "--entries" => {
                entries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--entries needs a number")?;
            }
            other => return Err(format!("unknown option {other}\n{}", usage())),
        }
    }
    let name = mechanism.ok_or_else(|| format!("trace needs --mechanism\n{}", usage()))?;
    let sel = sel.ok_or_else(|| format!("trace needs --loop\n{}", usage()))?;
    let path = out.ok_or_else(|| format!("trace needs --out\n{}", usage()))?;
    let suite = workloads(&sel)?;
    let [w] = suite.as_slice() else {
        return Err("trace wants exactly one workload (e.g. --loop LLL3)".to_string());
    };

    let cfg = MachineConfig::paper();
    let sim = mechanism_by_name(&name, entries, PredictorConfig::default())?.build(&cfg);

    let mut trace = ChromeTraceObserver::default();
    let mut acct = CycleAccountant::default();
    let mut tee = Tee::new(&mut trace, &mut acct);
    let r = sim
        .run_observed(
            ArchState::new(),
            w.memory.clone(),
            &w.program,
            w.inst_limit,
            &mut tee,
        )
        .map_err(|e| format!("{}: {e}", w.name))?;
    w.verify(&r.memory)
        .map_err(|e| format!("{}: {e}", w.name))?;

    std::fs::write(&path, trace.to_json()).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "trace: {name} on {}: {} instructions in {} cycles -> {path}",
        w.name, r.instructions, r.cycles
    );
    acct.verify(r.cycles).map_err(|v| v.to_string())?;
    println!(
        "accounting ok: {} issue + {} stall cycles = {} cycles",
        acct.issue_cycles(),
        acct.total_stalls(),
        r.cycles
    );
    Ok(())
}

/// Per-loop cache behaviour of one mechanism under one finite `--dcache`
/// geometry, next to the perfect-memory cycles the paper's §2.2
/// idealization would report for the same machine.
fn run_cachesim(mut args: std::env::Args) -> Result<(), String> {
    let mut name = "ruu".to_string();
    let mut entries: usize = 15;
    let mut spec = "64x2x4:20".to_string();
    let mut pending: Option<&str> = None;
    let suite = select_workloads(&mut args, &mut |arg| {
        match pending.take() {
            Some("--mechanism") => {
                name = arg.to_string();
                return Ok(true);
            }
            Some("--entries") => {
                entries = arg.parse().map_err(|_| "--entries needs a number")?;
                return Ok(true);
            }
            Some("--dcache") => {
                spec = arg.to_string();
                return Ok(true);
            }
            _ => {}
        }
        Ok(match arg {
            "--mechanism" => {
                pending = Some("--mechanism");
                true
            }
            "--entries" => {
                pending = Some("--entries");
                true
            }
            "--dcache" => {
                pending = Some("--dcache");
                true
            }
            _ => false,
        })
    })?;
    let dcache = DCacheConfig::parse(&spec).map_err(|e| e.to_string())?;
    if dcache.is_perfect() {
        return Err(
            "cachesim wants a finite --dcache geometry (SETSxWAYSxLINE[:MISS[:HIT[:MSHRS]]])"
                .to_string(),
        );
    }
    let mechanism = mechanism_by_name(&name, entries, PredictorConfig::default())?;
    let perfect_cfg = MachineConfig::paper();
    let cached_cfg = perfect_cfg.clone().with_dcache(dcache);

    println!("cachesim: {name} under {dcache}");
    println!(
        "| {:<8} | {:>10} | {:>10} | {:>8} | {:>9} | {:>8} | {:>7} |",
        "loop", "perfect", "cached", "slowdown", "accesses", "hit rate", "MPKI"
    );
    let mut totals = (0u64, 0u64, 0u64, 0u64, 0u64);
    for w in &suite {
        let run = |cfg: &MachineConfig| {
            mechanism
                .run(cfg, &w.program, w.memory.clone(), w.inst_limit)
                .map_err(|e| format!("{}: {e}", w.name))
        };
        let base = run(&perfect_cfg)?;
        let r = run(&cached_cfg)?;
        w.verify(&r.memory)
            .map_err(|e| format!("{}: {e}", w.name))?;
        let s = &r.stats;
        totals.0 += base.cycles;
        totals.1 += r.cycles;
        totals.2 += s.dcache_accesses;
        totals.3 += s.dcache_misses;
        totals.4 += r.instructions;
        println!(
            "| {:<8} | {:>10} | {:>10} | {:>7.3}x | {:>9} | {:>7.1}% | {:>7.3} |",
            w.name,
            base.cycles,
            r.cycles,
            r.cycles as f64 / base.cycles as f64,
            s.dcache_accesses,
            100.0 * (s.dcache_hits as f64 / s.dcache_accesses.max(1) as f64),
            1000.0 * s.dcache_misses as f64 / r.instructions as f64,
        );
    }
    let (bc, cc, acc, miss, insts) = totals;
    println!(
        "| {:<8} | {bc:>10} | {cc:>10} | {:>7.3}x | {acc:>9} | {:>7.1}% | {:>7.3} |",
        "total",
        cc as f64 / bc as f64,
        100.0 * ((acc - miss) as f64 / acc.max(1) as f64),
        1000.0 * miss as f64 / insts.max(1) as f64,
    );
    Ok(())
}

/// CBP-style trace-driven predictor evaluation: replays the golden
/// `ruu::exec` branch stream of each selected workload through each
/// selected predictor (plus a 64-set/4-way BTB), reporting accuracy,
/// MPKI, BTB hit rate, and — for a single workload — the worst sites.
fn run_cbp(mut args: std::env::Args) -> Result<(), String> {
    let mut predictors: Vec<PredictorConfig> = Vec::new();
    let mut sel: Option<String> = None;
    let mut json = false;
    let mut top: usize = 3;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--predictor" => {
                let spec = args.next().ok_or("--predictor needs NAME[:SIZE]")?;
                predictors.push(PredictorConfig::parse(&spec).map_err(|e| e.to_string())?);
            }
            "--loop" => sel = Some(args.next().ok_or("--loop needs a workload name")?),
            "--all-loops" => sel = Some("all".to_string()),
            "--json" => json = true,
            "--top" => {
                top = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--top needs a number")?;
            }
            other => return Err(format!("unknown option {other}\n{}", usage())),
        }
    }
    if predictors.is_empty() {
        predictors = PredictorConfig::zoo();
    }
    let suite = workloads(sel.as_deref().unwrap_or("all"))?;

    // Extract each workload's branch stream once; every predictor
    // replays the same events.
    let mut streams = Vec::new();
    for w in &suite {
        let trace = w.golden_trace().map_err(|e| format!("{}: {e}", w.name))?;
        streams.push((w.name, BranchStream::from_trace(&trace)));
    }

    // Per predictor: fresh state per workload (CBP convention — traces
    // are independent), totals absorbed across the suite.
    let mut rows: Vec<(PredictorConfig, CbpResult, Vec<CbpResult>)> = Vec::new();
    for cfg in &predictors {
        let mut total: Option<CbpResult> = None;
        let mut per_loop = Vec::new();
        for (_, stream) in &streams {
            let mut p = cfg.build();
            let mut btb = Btb::new(64, 4);
            let r = evaluate_with_btb(stream, p.as_mut(), &mut btb);
            match &mut total {
                Some(t) => t.absorb(&r),
                None => total = Some(r.clone()),
            }
            per_loop.push(r);
        }
        let total = total.ok_or("cbp needs at least one workload")?;
        rows.push((*cfg, total, per_loop));
    }

    if json {
        let mut jw = JsonWriter::new();
        jw.begin_object();
        jw.key("workloads").begin_array();
        for (name, _) in &streams {
            jw.string(name);
        }
        jw.end_array();
        jw.key("predictors").begin_array();
        for (cfg, total, per_loop) in &rows {
            jw.begin_object();
            jw.key("predictor").string(&cfg.to_string());
            jw.key("instructions").u64(total.instructions);
            jw.key("cond_branches").u64(total.cond_branches);
            jw.key("mispredicts").u64(total.mispredicts);
            jw.key("accuracy").f64(total.accuracy());
            jw.key("mpki").f64(total.mpki());
            if let Some(b) = &total.btb {
                jw.key("btb_hit_rate").f64(b.hit_rate());
            }
            jw.key("per_loop").begin_array();
            for ((name, _), r) in streams.iter().zip(per_loop) {
                jw.begin_object();
                jw.key("loop").string(name);
                jw.key("cond_branches").u64(r.cond_branches);
                jw.key("mispredicts").u64(r.mispredicts);
                jw.key("accuracy").f64(r.accuracy());
                jw.key("mpki").f64(r.mpki());
                jw.end_object();
            }
            jw.end_array();
            jw.end_object();
        }
        jw.end_array();
        jw.end_object();
        println!("{}", jw.finish());
        return Ok(());
    }

    println!(
        "| {:<14} | {:>8} | {:>8} | {:>8} | {:>7} | {:>7} |",
        "predictor", "cond br", "miss", "accuracy", "MPKI", "BTB hit"
    );
    for (cfg, total, _) in &rows {
        println!(
            "| {:<14} | {:>8} | {:>8} | {:>7.2}% | {:>7.3} | {:>6.1}% |",
            cfg.to_string(),
            total.cond_branches,
            total.mispredicts,
            100.0 * total.accuracy(),
            total.mpki(),
            100.0 * total.btb.as_ref().map_or(1.0, BtbStats::hit_rate),
        );
    }
    if streams.len() == 1 && top > 0 {
        for (cfg, total, _) in &rows {
            let worst = total.top_offenders(top);
            if worst.iter().all(|s| s.mispredicted == 0) {
                continue;
            }
            println!("worst sites for {cfg}:");
            for s in worst {
                println!(
                    "  pc {:>4}: {} executed, {} taken, {} mispredicted",
                    s.pc, s.executed, s.taken, s.mispredicted
                );
            }
        }
    }
    println!(
        "cbp: {} predictor(s) x {} workload(s), {} instructions replayed",
        rows.len(),
        streams.len(),
        rows.first().map_or(0, |(_, t, _)| t.instructions),
    );
    Ok(())
}

/// Workload selection shared by `lint` and `analyze`: `--all-loops` or a
/// positional workload name / `.s` file (default: all loops).
fn select_workloads(
    args: &mut std::env::Args,
    flag: &mut impl FnMut(&str) -> Result<bool, String>,
) -> Result<Vec<Workload>, String> {
    let mut sel: Option<String> = None;
    for arg in args.by_ref() {
        match arg.as_str() {
            "--all-loops" => sel = Some("all".to_string()),
            other => {
                if !flag(other)? {
                    if other.starts_with('-') {
                        return Err(format!("unknown option {other}\n{}", usage()));
                    }
                    sel = Some(other.to_string());
                }
            }
        }
    }
    workloads(sel.as_deref().unwrap_or("all"))
}

/// Statically lints the selected workloads, honouring inline waivers.
/// Errors are always fatal; `--deny-warnings` makes warnings fatal too.
fn run_lint(mut args: std::env::Args) -> Result<(), String> {
    let mut deny_warnings = false;
    let mut branch_view = false;
    let suite = select_workloads(&mut args, &mut |arg| {
        Ok(match arg {
            "--deny-warnings" => {
                deny_warnings = true;
                true
            }
            "--branch-sites" => {
                branch_view = true;
                true
            }
            _ => false,
        })
    })?;

    if branch_view {
        // Static branch-site census: the upper bound on the per-site
        // tables the dynamic `cbp` replay can produce.
        println!(
            "| {:<8} | {:>5} | {:>4} | {:>6} | {:>8} | {:>11} |",
            "loop", "sites", "cond", "uncond", "backward", "unreachable"
        );
        let mut total = 0usize;
        for w in &suite {
            let c = branch_sites(&w.program);
            total += c.sites.len();
            println!(
                "| {:<8} | {:>5} | {:>4} | {:>6} | {:>8} | {:>11} |",
                w.name,
                c.sites.len(),
                c.conditional(),
                c.unconditional(),
                c.backward(),
                c.unreachable(),
            );
        }
        println!(
            "branch-sites: {} workload(s), {total} site(s) total",
            suite.len()
        );
        return Ok(());
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut waived = 0usize;
    for w in &suite {
        let opts = LintOptions::for_memory(w.memory.len() as u64);
        let findings = lint(&w.program, &opts);
        let total = findings.len();
        let (rest, stale) = apply_waivers(findings, &w.lint_waivers);
        waived += total - rest.len();
        for f in &rest {
            println!("{}: {f}", w.name);
            match f.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
            }
        }
        for i in stale {
            let wv = &w.lint_waivers[i];
            println!(
                "{}: warning[stale-waiver]: waiver for {} at pc {:?} matched no finding ({})",
                w.name, wv.kind, wv.pc, wv.reason
            );
            warnings += 1;
        }
    }
    println!(
        "lint: {} workload(s), {errors} error(s), {warnings} warning(s), {waived} waived",
        suite.len()
    );
    if errors > 0 || (deny_warnings && warnings > 0) {
        return Err(if deny_warnings {
            "lint failed (--deny-warnings)".to_string()
        } else {
            "lint failed".to_string()
        });
    }
    Ok(())
}

/// Prints the per-workload dataflow-limit bound next to the cycles one
/// mechanism achieves; fails if any run beats the bound.
fn run_analyze(mut args: std::env::Args) -> Result<(), String> {
    let mut name = "ruu".to_string();
    let mut entries: usize = 15;
    let mut pending: Option<&str> = None;
    let suite = select_workloads(&mut args, &mut |arg| {
        match pending.take() {
            Some("--mechanism") => {
                name = arg.to_string();
                return Ok(true);
            }
            Some("--entries") => {
                entries = arg.parse().map_err(|_| "--entries needs a number")?;
                return Ok(true);
            }
            _ => {}
        }
        Ok(match arg {
            "--mechanism" => {
                pending = Some("--mechanism");
                true
            }
            "--entries" => {
                pending = Some("--entries");
                true
            }
            _ => false,
        })
    })?;
    let cfg = MachineConfig::paper();
    let mechanism = mechanism_by_name(&name, entries, PredictorConfig::default())?;

    println!(
        "| {:<8} | {:>12} | {:>10} | {:>10} | {:>10} | {:>10} |",
        "loop", "instructions", "crit path", "bound", "cycles", "% of limit"
    );
    let mut violations = 0usize;
    for w in &suite {
        let trace = w.golden_trace().map_err(|e| format!("{}: {e}", w.name))?;
        let b = dataflow_bound(&trace, &cfg);
        let sim = mechanism.build(&cfg);
        let r = sim
            .run(&w.program, w.memory.clone(), w.inst_limit)
            .map_err(|e| format!("{}: {e}", w.name))?;
        w.verify(&r.memory)
            .map_err(|e| format!("{}: {e}", w.name))?;
        if r.cycles < b.bound {
            violations += 1;
        }
        println!(
            "| {:<8} | {:>12} | {:>10} | {:>10} | {:>10} | {:>9.1}% |",
            w.name,
            b.instructions,
            b.critical_path,
            b.bound,
            r.cycles,
            100.0 * b.efficiency(r.cycles).unwrap_or(0.0),
        );
    }
    if violations > 0 {
        return Err(format!(
            "{violations} run(s) beat the dataflow bound — simulator bug (cycles >= dataflow_bound must hold)"
        ));
    }
    println!(
        "ok: cycles >= dataflow_bound for {} ({} workload(s))",
        name,
        suite.len()
    );
    Ok(())
}

fn run() -> Result<(), String> {
    if std::env::args().nth(1).as_deref() == Some("sweep") {
        let mut args = std::env::args();
        args.next(); // program name
        args.next(); // "sweep"
        return run_sweep(args);
    }
    if std::env::args().nth(1).as_deref() == Some("trace") {
        let mut args = std::env::args();
        args.next(); // program name
        args.next(); // "trace"
        return run_trace(args);
    }
    if std::env::args().nth(1).as_deref() == Some("cachesim") {
        let mut args = std::env::args();
        args.next(); // program name
        args.next(); // "cachesim"
        return run_cachesim(args);
    }
    if std::env::args().nth(1).as_deref() == Some("cbp") {
        let mut args = std::env::args();
        args.next(); // program name
        args.next(); // "cbp"
        return run_cbp(args);
    }
    if std::env::args().nth(1).as_deref() == Some("lint") {
        let mut args = std::env::args();
        args.next(); // program name
        args.next(); // "lint"
        return run_lint(args);
    }
    if std::env::args().nth(1).as_deref() == Some("analyze") {
        let mut args = std::env::args();
        args.next(); // program name
        args.next(); // "analyze"
        return run_analyze(args);
    }
    let opts = parse_args()?;
    let cfg = MachineConfig::paper()
        .with_dispatch_paths(opts.paths)
        .with_load_registers(opts.loadregs);
    let suite = workloads(&opts.workload)?;

    let e = opts.entries;
    let mechanism = mechanism_by_name(&opts.mechanism, e, opts.predictor)?;

    println!(
        "| {:<8} | {:>12} | {:>10} | {:>6} |",
        "loop", "instructions", "cycles", "IPC"
    );
    let mut total_i = 0u64;
    let mut total_c = 0u64;
    for w in &suite {
        let sim = mechanism.build(&cfg);
        let r = sim
            .run(&w.program, w.memory.clone(), w.inst_limit)
            .map_err(|e| format!("{}: {e}", w.name))?;
        w.verify(&r.memory)
            .map_err(|e| format!("{}: {e}", w.name))?;
        let (insts, cycles) = (r.instructions, r.cycles);
        total_i += insts;
        total_c += cycles;
        println!(
            "| {:<8} | {insts:>12} | {cycles:>10} | {:>6.3} |",
            w.name,
            insts as f64 / cycles as f64
        );
    }
    println!(
        "| {:<8} | {total_i:>12} | {total_c:>10} | {:>6.3} |",
        "total",
        total_i as f64 / total_c as f64
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
