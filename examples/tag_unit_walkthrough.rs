//! The paper's Figure 3, step by step: how the Tag Unit hands out tags
//! for destination registers, tracks the latest copy, and releases tags
//! when results return.
//!
//! ```sh
//! cargo run --release --example tag_unit_walkthrough
//! ```

use ruu::isa::Reg;
use ruu::issue::TagUnitModel;

fn main() {
    let mut tu = TagUnitModel::figure3();
    println!("The Tag Unit of paper Figure 3, before issuing anything:\n");
    println!("{tu}");

    println!("Decode I1: S4 <- S0 + S7 (paper §3.2.1.1)\n");

    // Destination: S4 already has a latest tag (4); a new one is drawn.
    let dst = tu.acquire_dest(Reg::s(4)).expect("tag 3 is free");
    println!("1. the issue logic obtains tag {dst} for destination S4;");
    println!("   tag 4 is told it may update S4 but not unlock it (latest = N).\n");

    // Source S0 is busy: its latest tag travels with the instruction.
    let s0 = tu.source_tag(Reg::s(0)).expect("S0 is busy");
    println!("2. S0 is busy, so the reservation station receives tag {s0}");
    println!("   and will monitor the result bus for it.\n");

    // Source S7 is not busy: read the register file directly.
    assert!(!tu.is_busy(Reg::s(7)));
    println!("3. S7 is not busy; its contents go to the station directly.\n");

    println!("{tu}");

    // Later: tag 2 (the producer of S0) returns...
    let r = tu.retire(s0);
    println!(
        "S0's producer (tag {s0}) completes: value forwarded to {}, unlock = {}.",
        r.register, r.unlock
    );
    println!("I1's station captures the value off the result bus and dispatches.\n");

    // ...and I1 itself completes.
    let r = tu.retire(dst);
    println!(
        "I1 (tag {dst}) completes: value forwarded to {}, unlock = {} — tag {dst} is free again.\n",
        r.register, r.unlock
    );
    println!("{tu}");

    // The stale instance (tag 4) eventually completes too — without the key.
    let r = tu.retire(4);
    assert!(!r.unlock);
    println!(
        "The older S4 instance (tag 4) completes last: it may not unlock {} (no key).",
        r.register
    );
}
