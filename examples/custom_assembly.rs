//! Write a program in the textual assembly syntax, parse it, and run it
//! on several machines — no Rust builder code required.
//!
//! ```sh
//! cargo run --release --example custom_assembly
//! ```
//!
//! (The same syntax can be fed to the CLI: `ruu-sim ruu myprog.s`.)

use ruu::exec::{Memory, Trace};
use ruu::isa::text;
use ruu::issue::{Bypass, Mechanism};
use ruu::sim::MachineConfig;

const SOURCE: &str = r"
; 32-step first-order recurrence followed by a reduction, with the
; loop count in A7 and the branch test value computed into A0.
.name recurrence
    a.imm  A1, 1
    a.imm  A7, 32
    a.imm  A0, 32
    a.imm  A2, 0
    ld.s   S1, A2, 0x400      ; carried x[0]
top:
    a.subi A7, A7, 1
    a.addi A0, A7, 0
    ld.s   S2, A1, 0x500      ; y[i]
    ld.s   S3, A1, 0x600      ; z[i]
    f.sub  S2, S2, S1
    f.mul  S1, S3, S2
    st.s   S1, A1, 0x400
    a.addi A1, A1, 1
    br.an  top
    halt
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = text::parse(SOURCE)?;
    println!("{}", text::emit(&program));

    let mut mem = Memory::new(1 << 12);
    for i in 0..40 {
        mem.write_f64(0x400 + i, 0.25);
        mem.write_f64(0x500 + i, 0.75);
        mem.write_f64(0x600 + i, 0.5);
    }

    let golden = Trace::capture(&program, mem.clone(), 100_000)?;
    println!("golden: {} dynamic instructions", golden.len());

    let cfg = MachineConfig::paper();
    for m in [
        Mechanism::Simple,
        Mechanism::Rstu { entries: 12 },
        Mechanism::Ruu {
            entries: 12,
            bypass: Bypass::Full,
        },
    ] {
        let r = m.run(&cfg, &program, mem.clone(), 100_000)?;
        assert_eq!(&r.state.regs, &golden.final_state().regs);
        println!("{m:<24} {:>6} cycles, IPC {:.3}", r.cycles, r.issue_rate());
    }
    Ok(())
}
