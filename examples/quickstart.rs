//! Quickstart: assemble a small program, run it on the golden interpreter
//! and on the RUU, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ruu::exec::{Memory, Trace};
use ruu::isa::{Asm, Reg};
use ruu::issue::{Bypass, Ruu};
use ruu::sim::MachineConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A dot product over 64 elements, in CRAY-1-flavoured scalar code:
    // loop count in A0, pointers in A1, accumulator in S1.
    let mut a = Asm::new("dot64");
    let top = a.new_label();
    a.s_imm(Reg::s(1), 0);
    a.a_imm(Reg::a(1), 0);
    a.a_imm(Reg::a(0), 64);
    a.bind(top);
    a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
    a.ld_s(Reg::s(2), Reg::a(1), 0x100); // x[k]
    a.ld_s(Reg::s(3), Reg::a(1), 0x200); // y[k]
    a.f_mul(Reg::s(2), Reg::s(2), Reg::s(3));
    a.f_add(Reg::s(1), Reg::s(1), Reg::s(2));
    a.a_add_imm(Reg::a(1), Reg::a(1), 1);
    a.br_an(top);
    a.st_s(Reg::s(1), Reg::a(1), 0x300); // result
    a.halt();
    let program = a.assemble()?;

    println!("{program}");

    // Initial data.
    let mut mem = Memory::new(1 << 12);
    for k in 0..64 {
        mem.write_f64(0x100 + k, 0.5);
        mem.write_f64(0x200 + k, 2.0);
    }

    // Golden run (architectural reference).
    let trace = Trace::capture(&program, mem.clone(), 100_000)?;
    println!(
        "golden: {} dynamic instructions, result = {}",
        trace.len(),
        trace.final_memory().read_f64(0x300 + 64)
    );
    println!("instruction mix:\n{}", trace.mix());

    // Timing run on the paper's machine with a 15-entry RUU.
    let ruu = Ruu::new(MachineConfig::paper(), 15, Bypass::Full);
    let r = ruu.run(&program, mem, 100_000)?;
    assert_eq!(&r.state.regs, &trace.final_state().regs);
    println!(
        "RUU(15, bypass): {} cycles, issue rate {:.3} instructions/cycle",
        r.cycles,
        r.issue_rate()
    );
    println!("stall breakdown:\n{}", r.stats);
    Ok(())
}
