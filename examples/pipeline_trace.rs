//! A software logic analyser on the RUU's ports: issue, dispatch,
//! result-bus and commit activity, cycle by cycle, rendered as a
//! pipeline diagram.
//!
//! ```sh
//! cargo run --release --example pipeline_trace
//! ```

use ruu::exec::Memory;
use ruu::isa::{Asm, Reg};
use ruu::issue::{Bypass, Ruu};
use ruu::sim::MachineConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A short block with a long-latency reciprocal, dependent work, and
    // independent work that overtakes it inside the RUU.
    let mut a = Asm::new("demo");
    a.a_imm(Reg::a(1), 64); // 0
    a.ld_s(Reg::s(1), Reg::a(1), 0); // 1: load (11 cycles)
    a.f_recip(Reg::s(2), Reg::s(1)); // 2: recip (14 cycles), needs the load
    a.f_mul(Reg::s(3), Reg::s(2), Reg::s(1)); // 3: needs the recip
    a.a_imm(Reg::a(2), 7); // 4: independent
    a.a_add(Reg::a(3), Reg::a(2), Reg::a(2)); // 5: independent
    a.st_s(Reg::s(3), Reg::a(1), 1); // 6: store the result
    a.halt();
    let program = a.assemble()?;
    println!("{program}");

    let mut mem = Memory::new(1 << 8);
    mem.write_f64(64, 4.0);

    let ruu = Ruu::new(MachineConfig::paper(), 8, Bypass::Full);
    let (result, trace) = ruu.run_traced(&program, mem, 10_000, 64)?;

    println!(
        "{} instructions in {} cycles (IPC {:.3})\n",
        result.instructions,
        result.cycles,
        result.issue_rate()
    );
    println!("cycle | occ | issue | dispatch   | result bus | commit");
    println!("------+-----+-------+------------+------------+-----------");
    for c in &trace.cycles {
        let fmt = |v: &Vec<u64>| {
            if v.is_empty() {
                String::new()
            } else {
                v.iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            }
        };
        println!(
            "{:>5} | {:>3} | {:>5} | {:>10} | {:>10} | {:>9}",
            c.cycle,
            c.occupancy,
            c.issued_pc.map_or(String::new(), |pc| format!("pc{pc}")),
            fmt(&c.dispatched),
            fmt(&c.finished),
            fmt(&c.committed),
        );
    }
    println!();
    println!(
        "Read it like the paper's Figure 5: instructions enter in order \
         (issue), leave for the functional units out of order (dispatch — \
         watch 4 and 5 overtake 2 and 3), broadcast on the single result \
         bus, and commit strictly in order — the precise-interrupt \
         guarantee."
    );
    Ok(())
}
