//! Inspect a Livermore kernel: disassembly, dynamic instruction mix, and
//! per-mechanism stall breakdown.
//!
//! ```sh
//! cargo run --release --example livermore_inspector [LLL1..LLL14]
//! ```

use ruu::issue::{Bypass, Mechanism};
use ruu::sim::MachineConfig;
use ruu::workloads::livermore;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "LLL3".into());
    let w = livermore::by_name(&name)
        .ok_or_else(|| format!("unknown workload {name}; use LLL1..LLL14"))?;

    println!("{}", w.program.listing());

    let trace = w.golden_trace()?;
    println!("dynamic instructions: {}", trace.len());
    println!("{}", trace.mix());

    let cfg = MachineConfig::paper();
    for m in [
        Mechanism::Simple,
        Mechanism::Ruu {
            entries: 15,
            bypass: Bypass::Full,
        },
    ] {
        let r = m.run(&cfg, &w.program, w.memory.clone(), w.inst_limit)?;
        println!(
            "--- {m}: {} cycles, IPC {:.3}, window peak {} ---",
            r.cycles,
            r.issue_rate(),
            r.stats.occupancy_peak
        );
        println!("{}", r.stats);
    }
    Ok(())
}
