//! Precise interrupts in action: inject a page fault into a Livermore
//! loop running on the RUU, show that the recovered state is exactly a
//! program-order boundary, then resume and finish the program — and show
//! the RSTU failing the same test.
//!
//! ```sh
//! cargo run --release --example precise_interrupts
//! ```

use ruu::issue::{Bypass, WindowKind};
use ruu::precise::{fault_points, imprecision, FaultKind, PrecisionCheck};
use ruu::sim::MachineConfig;
use ruu::workloads::livermore;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = livermore::lll5();
    println!("workload: {} — {}", w.name, w.description);

    // Pick a mid-run load to page-fault on.
    let trace = w.golden_trace()?;
    let loads = fault_points(&trace, FaultKind::PageFault);
    let fault_seq = loads[loads.len() / 2];
    println!(
        "injecting a page fault on dynamic instruction {fault_seq} (of {})",
        trace.len()
    );

    let check = PrecisionCheck::new(15, Bypass::Full);
    let report = check.run(&w.program, &w.memory, fault_seq)?;
    println!("interrupt taken at cycle {}", report.interrupt_cycle);
    println!(
        "  recovered registers match golden boundary: {}",
        report.state_precise
    );
    println!(
        "  recovered memory   match golden boundary: {}",
        report.memory_precise
    );
    println!(
        "  recovered pc points at faulting instruction: {}",
        report.pc_precise
    );
    println!(
        "  resumed run reaches the golden final state: {}",
        report.resume_exact
    );
    assert!(report.all_precise());

    println!();
    println!("The same machine *without* the in-order commit constraint (the RSTU):");
    let e = imprecision::demonstrate(&MachineConfig::paper(), WindowKind::Merged { entries: 8 })?;
    println!(
        "  at the moment a young store executed, the machine state matched a \
         program-order boundary: {}",
        !e.is_imprecise()
    );
    println!(
        "  boundaries checked: {:?} — no true entries means no recoverable state \
         exists (imprecise, paper §1/§4)",
        e.boundary_matches
    );
    assert!(e.is_imprecise());
    Ok(())
}
