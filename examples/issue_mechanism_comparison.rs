//! Run one Livermore loop across every issue mechanism in the paper and
//! print the comparison — the paper's §3→§5 story on a single kernel.
//!
//! ```sh
//! cargo run --release --example issue_mechanism_comparison [LLL1..LLL14]
//! ```

use ruu::issue::{Bypass, Mechanism};
use ruu::sim::MachineConfig;
use ruu::workloads::livermore;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "LLL7".into());
    let w = livermore::by_name(&name)
        .ok_or_else(|| format!("unknown workload {name}; use LLL1..LLL14"))?;
    println!("workload: {} — {}", w.name, w.description);

    let cfg = MachineConfig::paper();
    let mechanisms = [
        Mechanism::Simple,
        Mechanism::Tomasulo { rs_per_fu: 2 },
        Mechanism::TagUnitDistributed {
            rs_per_fu: 2,
            tags: 15,
        },
        Mechanism::RsPool { rs: 10, tags: 15 },
        Mechanism::Rstu { entries: 15 },
        Mechanism::Ruu {
            entries: 15,
            bypass: Bypass::Full,
        },
        Mechanism::Ruu {
            entries: 15,
            bypass: Bypass::LimitedA,
        },
        Mechanism::Ruu {
            entries: 15,
            bypass: Bypass::None,
        },
    ];

    let baseline = Mechanism::Simple
        .run(&cfg, &w.program, w.memory.clone(), w.inst_limit)?
        .cycles;

    println!(
        "| {:<38} | {:>8} | {:>7} | {:>7} | precise |",
        "mechanism", "cycles", "speedup", "IPC"
    );
    for m in mechanisms {
        let r = m.run(&cfg, &w.program, w.memory.clone(), w.inst_limit)?;
        w.verify(&r.memory)?;
        println!(
            "| {:<38} | {:>8} | {:>7.3} | {:>7.3} | {:>7} |",
            m.to_string(),
            r.cycles,
            r.speedup_vs(baseline),
            r.issue_rate(),
            if m.is_precise() { "yes" } else { "no" },
        );
    }
    Ok(())
}
