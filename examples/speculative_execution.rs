//! The paper's §7 future work, built: conditional execution of predicted
//! branch paths in the RUU, with nullification on mispredictions.
//!
//! ```sh
//! cargo run --release --example speculative_execution
//! ```

use ruu::issue::{AlwaysTaken, Btfn, Bypass, Mechanism, Predictor, SpecRuu, TwoBit};
use ruu::sim::MachineConfig;
use ruu::workloads::livermore;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = MachineConfig::paper();
    let w = livermore::lll11();
    println!("workload: {} — {}", w.name, w.description);
    println!(
        "(its branch condition depends on the loop counter chain, so the blocking\n\
         machine regularly parks the branch in the decode stage)\n"
    );

    let blocking = Mechanism::Ruu {
        entries: 20,
        bypass: Bypass::Full,
    }
    .run(&cfg, &w.program, w.memory.clone(), w.inst_limit)?;
    println!(
        "blocking RUU(20):            {:>7} cycles, IPC {:.3}",
        blocking.cycles,
        blocking.issue_rate()
    );

    let mut predictors: Vec<Box<dyn Predictor>> = vec![
        Box::new(AlwaysTaken),
        Box::new(Btfn),
        Box::new(TwoBit::default()),
    ];
    for p in &mut predictors {
        let r = SpecRuu::new(cfg.clone(), 20, Bypass::Full).run(
            &w.program,
            w.memory.clone(),
            w.inst_limit,
            p.as_mut(),
        )?;
        w.verify(&r.run.memory)?; // speculation is architecturally invisible
        println!(
            "speculative RUU(20, {:<12}): {:>7} cycles, IPC {:.3}  \
             ({} predicted, {} mispredicted, {} nullified)",
            p.name(),
            r.run.cycles,
            r.run.issue_rate(),
            r.spec.predicted,
            r.spec.mispredicted,
            r.spec.nullified,
        );
    }
    Ok(())
}
