//! Cross-check of the static analysis layer against every simulator:
//! the dataflow-limit lower bound must never exceed any mechanism's
//! measured cycles, the shipped Livermore loops must be lint-clean, and
//! the CLI lint gate must actually fail on a dirty program.

use std::process::Command;

use proptest::prelude::*;

use ruu::analysis::{apply_waivers, dataflow_bound, lint, LintOptions};
use ruu::exec::Trace;
use ruu::isa::{text, Asm, Reg};
use ruu::issue::{Bypass, Mechanism};
use ruu::sim::MachineConfig;
use ruu::workloads::livermore;
use ruu::workloads::synth::{random_program, SynthConfig};

/// The paper's six issue mechanisms at Table-scale capacities.
fn six_mechanisms() -> [Mechanism; 6] {
    [
        Mechanism::Simple,
        Mechanism::Tomasulo { rs_per_fu: 2 },
        Mechanism::TagUnitDistributed {
            rs_per_fu: 2,
            tags: 12,
        },
        Mechanism::RsPool { rs: 8, tags: 12 },
        Mechanism::Rstu { entries: 15 },
        Mechanism::Ruu {
            entries: 15,
            bypass: Bypass::Full,
        },
    ]
}

#[test]
fn no_mechanism_beats_the_dataflow_bound_on_any_loop() {
    let cfg = MachineConfig::paper();
    for w in livermore::all() {
        let golden = w.golden_trace().expect("golden run succeeds");
        let b = dataflow_bound(&golden, &cfg);
        assert!(
            b.bound >= golden.len() as u64,
            "{}: bound {} below instruction count {}",
            w.name,
            b.bound,
            golden.len()
        );
        for m in six_mechanisms() {
            let r = m
                .run(&cfg, &w.program, w.memory.clone(), w.inst_limit)
                .unwrap_or_else(|e| panic!("{m} failed on {}: {e}", w.name));
            assert!(
                r.cycles >= b.bound,
                "{m} on {}: {} cycles beats the dataflow limit {}",
                w.name,
                r.cycles,
                b.bound
            );
            let eff = b.efficiency(r.cycles).expect("nonzero cycles");
            assert!(
                eff > 0.0 && eff <= 1.0,
                "{m} on {}: efficiency {eff} out of (0, 1]",
                w.name
            );
        }
    }
}

#[test]
fn every_shipped_loop_is_lint_clean() {
    for w in livermore::all() {
        let opts = LintOptions::for_memory(w.memory.len() as u64);
        let (findings, stale) = apply_waivers(lint(&w.program, &opts), &w.lint_waivers);
        assert!(
            findings.is_empty(),
            "{} has unwaived findings: {:#?}",
            w.name,
            findings
        );
        assert!(
            stale.is_empty(),
            "{} has stale waivers at indices {:?}",
            w.name,
            stale
        );
    }
}

/// A deliberately dirty program: `S2`/`S3` are read before any write
/// (uninit-read), the first `S1` def is clobbered unread (dead-write),
/// and the second survives to the halt unread (unread-at-halt).
fn dirty_program_source() -> String {
    let mut a = Asm::new("dirty");
    a.s_add(Reg::s(1), Reg::s(2), Reg::s(3));
    a.s_imm(Reg::s(1), 5);
    a.halt();
    text::emit(&a.assemble().expect("dirty fixture assembles"))
}

#[test]
fn lint_cli_denies_warnings_on_a_dirty_fixture() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("ruu-dirty-{}.s", std::process::id()));
    std::fs::write(&path, dirty_program_source()).expect("write fixture");

    let denied = Command::new(env!("CARGO_BIN_EXE_ruu-sim"))
        .args(["lint", path.to_str().unwrap(), "--deny-warnings"])
        .output()
        .expect("run ruu-sim lint");
    let stdout = String::from_utf8_lossy(&denied.stdout);
    assert!(
        !denied.status.success(),
        "lint --deny-warnings must exit nonzero on the dirty fixture; stdout:\n{stdout}"
    );
    assert!(
        stdout.contains("uninit-read") && stdout.contains("dead-write"),
        "diagnostics missing from output:\n{stdout}"
    );

    let all_loops = Command::new(env!("CARGO_BIN_EXE_ruu-sim"))
        .args(["lint", "--all-loops", "--deny-warnings"])
        .output()
        .expect("run ruu-sim lint --all-loops");
    assert!(
        all_loops.status.success(),
        "the shipped suite must pass the lint gate; stdout:\n{}",
        String::from_utf8_lossy(&all_loops.stdout)
    );

    let _ = std::fs::remove_file(&path);
}

#[test]
fn analyze_cli_reports_bound_table_for_lll3() {
    let out = Command::new(env!("CARGO_BIN_EXE_ruu-sim"))
        .args(["analyze", "LLL3"])
        .output()
        .expect("run ruu-sim analyze");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "analyze failed:\n{stdout}");
    assert!(
        stdout.contains("cycles >= dataflow_bound"),
        "analyze must state the invariant held:\n{stdout}"
    );
    assert!(stdout.contains("LLL3") && stdout.contains("% of limit"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn synth_programs_never_beat_the_bound(
        seed in 0u64..1_000_000,
        entries in 2usize..24,
        mem_ops in proptest::bool::ANY,
    ) {
        let synth = SynthConfig { mem_ops, ..SynthConfig::default() };
        let (program, mem) = random_program(seed, &synth);
        let golden = Trace::capture(&program, mem.clone(), 500_000).expect("golden runs");
        let cfg = MachineConfig::paper();
        let b = dataflow_bound(&golden, &cfg);
        for m in [
            Mechanism::Simple,
            Mechanism::Rstu { entries },
            Mechanism::Ruu { entries, bypass: Bypass::Full },
        ] {
            let r = m.run(&cfg, &program, mem.clone(), 500_000)
                .unwrap_or_else(|e| panic!("{m} failed on seed {seed}: {e}"));
            prop_assert!(
                r.cycles >= b.bound,
                "{} on seed {}: {} cycles beats bound {}",
                m, seed, r.cycles, b.bound
            );
        }
    }
}
