//! The cycle-accounting invariant, enforced end to end: for every issue
//! mechanism, over every Livermore loop and over random synthetic
//! programs,
//!
//! ```text
//! cycles == issue_cycles + Σ stall_cycles
//! ```
//!
//! with exactly one `cycle_end` observation per simulated cycle — and
//! attaching an observer never changes the simulated numbers. Also the
//! golden check that the Chrome-trace observer emits valid,
//! monotonically-timestamped `trace_event` JSON.

use proptest::prelude::*;

use ruu::exec::ArchState;
use ruu::issue::{Bypass, IssueSimulator, Mechanism, PreciseScheme, PredictorConfig, SpecRuu};
use ruu::sim::{ChromeTraceObserver, CycleAccountant, FlushAccountant, MachineConfig, Tee};
use ruu::workloads::livermore;
use ruu::workloads::synth::{random_program, SynthConfig};

const LIMIT: u64 = 1_000_000;

/// One representative of each of the six simulator families.
fn all_simulators(cfg: &MachineConfig, entries: usize) -> Vec<(String, Box<dyn IssueSimulator>)> {
    let mechanisms = [
        Mechanism::Simple,
        Mechanism::Tomasulo {
            rs_per_fu: entries / 4 + 1,
        },
        Mechanism::Rstu { entries },
        Mechanism::Ruu {
            entries,
            bypass: Bypass::Full,
        },
        Mechanism::InOrderPrecise {
            scheme: PreciseScheme::ReorderBuffer,
            entries,
        },
        Mechanism::InOrderPrecise {
            scheme: PreciseScheme::FutureFile,
            entries,
        },
    ];
    let mut sims: Vec<(String, Box<dyn IssueSimulator>)> = mechanisms
        .into_iter()
        .map(|m| (m.to_string(), m.build(cfg)))
        .collect();
    sims.push((
        "spec-ruu".to_string(),
        Box::new(SpecRuu::new(cfg.clone(), entries, Bypass::Full)),
    ));
    // The speculative machine again, under history-based predictors: the
    // accounting identity must hold for every predictor choice, since
    // mispredict-repair stalls are just relabelled dead cycles.
    for predictor in [
        PredictorConfig::Btfn,
        PredictorConfig::Gshare { entries: 1024 },
        PredictorConfig::Tage { entries: 512 },
    ] {
        let m = Mechanism::SpecRuu {
            entries,
            bypass: Bypass::Full,
            predictor,
        };
        sims.push((m.to_string(), m.build(cfg)));
    }
    sims
}

#[test]
fn identity_holds_for_every_mechanism_on_every_livermore_loop() {
    let cfg = MachineConfig::paper();
    for w in livermore::all() {
        for (name, sim) in all_simulators(&cfg, 15) {
            let mut acct = CycleAccountant::default();
            let r = sim
                .run_observed(
                    ArchState::new(),
                    w.memory.clone(),
                    &w.program,
                    w.inst_limit,
                    &mut acct,
                )
                .unwrap_or_else(|e| panic!("{name} failed on {}: {e}", w.name));
            w.verify(&r.memory)
                .unwrap_or_else(|e| panic!("{name} wrong result on {}: {e}", w.name));
            acct.verify(r.cycles)
                .unwrap_or_else(|v| panic!("{name} on {}: {v}", w.name));
        }
    }
}

#[test]
fn every_flush_is_an_attributed_misprediction() {
    // Flush accounting: on every loop, under every predictor in the zoo,
    // the speculative machine's flush count equals its misprediction
    // count, and every flush charges exactly `penalty + 1` cycles of
    // mispredict-repair stall (the squash cycle plus the redirect
    // penalty). An unattributed flush — or a repair window of the wrong
    // width — fails here.
    let cfg = MachineConfig::paper();
    for w in livermore::all() {
        for predictor in PredictorConfig::zoo() {
            let m = Mechanism::SpecRuu {
                entries: 15,
                bypass: Bypass::Full,
                predictor,
            };
            let sim = m.build(&cfg);
            let mut acct = FlushAccountant::default();
            let r = sim
                .run_observed(
                    ArchState::new(),
                    w.memory.clone(),
                    &w.program,
                    w.inst_limit,
                    &mut acct,
                )
                .unwrap_or_else(|e| panic!("{m} failed on {}: {e}", w.name));
            w.verify(&r.memory)
                .unwrap_or_else(|e| panic!("{m} wrong result on {}: {e}", w.name));
            acct.verify(r.stats.mispredicted_branches, cfg.mispredict_penalty)
                .unwrap_or_else(|v| panic!("{m} on {}: {v}", w.name));
        }
    }
}

#[test]
fn observation_does_not_change_the_simulation() {
    let cfg = MachineConfig::paper();
    let w = livermore::by_name("LLL3").expect("LLL3 exists");
    for (name, sim) in all_simulators(&cfg, 12) {
        let plain = sim
            .run_from(ArchState::new(), w.memory.clone(), &w.program, w.inst_limit)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut acct = CycleAccountant::default();
        let observed = sim
            .run_observed(
                ArchState::new(),
                w.memory.clone(),
                &w.program,
                w.inst_limit,
                &mut acct,
            )
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(plain.cycles, observed.cycles, "{name} cycles");
        assert_eq!(plain.instructions, observed.instructions, "{name} insts");
        assert_eq!(plain.state, observed.state, "{name} state");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn identity_holds_on_random_programs(
        seed in 0u64..10_000,
        entries in 2usize..20,
        loadregs in 1usize..7,
        mem_ops in proptest::bool::ANY,
    ) {
        let synth = SynthConfig {
            segments: 3,
            block_len: 8,
            max_trips: 6,
            mem_ops,
            hot_addresses: false,
        };
        let (program, mem) = random_program(seed, &synth);
        let cfg = MachineConfig::paper().with_load_registers(loadregs);
        for (name, sim) in all_simulators(&cfg, entries) {
            let mut acct = CycleAccountant::default();
            let r = sim
                .run_observed(ArchState::new(), mem.clone(), &program, LIMIT, &mut acct)
                .unwrap_or_else(|e| panic!("{name} failed on seed {seed}: {e}"));
            let v = acct.verify(r.cycles);
            prop_assert!(v.is_ok(), "{} on seed {}: {}", name, seed, v.unwrap_err());
        }
    }
}

// ---- Chrome trace golden checks ---------------------------------------

/// Minimal JSON scanner: accepts exactly the grammar of RFC 8259 values
/// (no escapes beyond the writer's repertoire required). Returns the rest
/// of the input after one complete value.
fn skip_json_value(s: &str) -> Result<&str, String> {
    let s = s.trim_start();
    let mut chars = s.char_indices();
    let Some((_, c)) = chars.next() else {
        return Err("unexpected end of input".to_string());
    };
    match c {
        '{' => skip_json_container(&s[1..], '}', true),
        '[' => skip_json_container(&s[1..], ']', false),
        '"' => skip_json_string(s),
        't' => s.strip_prefix("true").ok_or("bad literal".to_string()),
        'f' => s.strip_prefix("false").ok_or("bad literal".to_string()),
        'n' => s.strip_prefix("null").ok_or("bad literal".to_string()),
        '-' | '0'..='9' => {
            let end = s
                .find(|c: char| !matches!(c, '-' | '+' | '.' | 'e' | 'E' | '0'..='9'))
                .unwrap_or(s.len());
            Ok(&s[end..])
        }
        other => Err(format!("unexpected character {other:?}")),
    }
}

fn skip_json_string(s: &str) -> Result<&str, String> {
    let mut it = s[1..].char_indices();
    while let Some((i, c)) = it.next() {
        match c {
            '\\' => {
                it.next();
            }
            '"' => return Ok(&s[1 + i + 1..]),
            _ => {}
        }
    }
    Err("unterminated string".to_string())
}

fn skip_json_container(mut s: &str, close: char, keyed: bool) -> Result<&str, String> {
    s = s.trim_start();
    if let Some(rest) = s.strip_prefix(close) {
        return Ok(rest);
    }
    loop {
        if keyed {
            s = s.trim_start();
            if !s.starts_with('"') {
                return Err("object key must be a string".to_string());
            }
            s = skip_json_string(s)?.trim_start();
            s = s.strip_prefix(':').ok_or("missing ':'".to_string())?;
        }
        s = skip_json_value(s)?.trim_start();
        if let Some(rest) = s.strip_prefix(',') {
            s = rest;
        } else {
            return s
                .strip_prefix(close)
                .ok_or(format!("missing {close:?} or ','"));
        }
    }
}

fn assert_valid_json(json: &str) {
    let rest = skip_json_value(json).unwrap_or_else(|e| panic!("invalid JSON: {e}"));
    assert!(rest.trim().is_empty(), "trailing garbage after JSON value");
}

#[test]
fn chrome_trace_is_valid_and_monotonically_timestamped() {
    let cfg = MachineConfig::paper();
    let w = livermore::by_name("LLL5").expect("LLL5 exists");
    let sim = Mechanism::Ruu {
        entries: 15,
        bypass: Bypass::Full,
    }
    .build(&cfg);
    let mut trace = ChromeTraceObserver::default();
    let mut acct = CycleAccountant::default();
    let mut tee = Tee::new(&mut trace, &mut acct);
    let r = sim
        .run_observed(
            ArchState::new(),
            w.memory.clone(),
            &w.program,
            w.inst_limit,
            &mut tee,
        )
        .expect("run completes");
    acct.verify(r.cycles).expect("accounting holds");

    let json = trace.to_json();
    assert_valid_json(&json);
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"window occupancy\""));

    // Timestamps must be nondecreasing in emission order, and at least
    // one per event kind must be present.
    let mut last_ts = 0u64;
    let mut count = 0usize;
    for chunk in json.split("\"ts\":").skip(1) {
        let end = chunk
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(chunk.len());
        let ts: u64 = chunk[..end].parse().expect("ts is an integer");
        assert!(ts >= last_ts, "timestamps regress: {ts} after {last_ts}");
        last_ts = ts;
        count += 1;
    }
    assert!(count > 100, "trace has real volume, got {count} events");
    for kind in [
        "\"ph\":\"X\"",
        "\"ph\":\"i\"",
        "\"ph\":\"C\"",
        "\"ph\":\"M\"",
    ] {
        assert!(json.contains(kind), "missing event kind {kind}");
    }
}

#[test]
fn spec_trace_records_flushes() {
    // The speculative RUU on a mispredicting workload must emit flush
    // instants on its dedicated track.
    let cfg = MachineConfig::paper();
    let w = livermore::by_name("LLL5").expect("LLL5 exists");
    let sim: Box<dyn IssueSimulator> = Box::new(SpecRuu::new(cfg, 15, Bypass::Full));
    let mut trace = ChromeTraceObserver::default();
    let r = sim
        .run_observed(
            ArchState::new(),
            w.memory.clone(),
            &w.program,
            w.inst_limit,
            &mut trace,
        )
        .expect("run completes");
    assert!(r.cycles > 0);
    let json = trace.to_json();
    assert_valid_json(&json);
    assert!(json.contains("\"flush\""), "speculative run shows no flush");
}

#[test]
fn memory_state_is_identical_under_observation() {
    // Drive one synthetic memory-heavy program through every simulator
    // both ways; the architectural memory image must not notice the
    // observer.
    let synth = SynthConfig {
        segments: 4,
        block_len: 10,
        max_trips: 5,
        mem_ops: true,
        hot_addresses: true,
    };
    let (program, mem) = random_program(7, &synth);
    let cfg = MachineConfig::paper();
    for (name, sim) in all_simulators(&cfg, 10) {
        let plain = sim
            .run_from(ArchState::new(), mem.clone(), &program, LIMIT)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut hist = ruu::sim::StallHistogram::default();
        let observed = sim
            .run_observed(ArchState::new(), mem.clone(), &program, LIMIT, &mut hist)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(plain.memory, observed.memory, "{name} memory");
        assert_eq!(hist.cycles(), observed.cycles, "{name} cycle_end count");
    }
}
