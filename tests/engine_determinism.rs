//! Determinism and trait-equivalence guarantees for the parallel sweep
//! engine.
//!
//! The engine promises that worker count is a pure throughput knob: the
//! numbers in a [`ruu::engine::SweepReport`] are bit-identical whether the
//! grid runs on one thread or many, and identical to the legacy serial
//! sweep loop it replaced. Separately, every boxed simulator produced by
//! [`ruu::issue::Mechanism::build`] must reproduce the golden
//! interpreter's architectural result, so the trait objects are safe to
//! run on arbitrary worker threads.

use ruu::engine::{Job, SweepEngine};
use ruu::issue::{Bypass, Mechanism};
use ruu::sim::MachineConfig;
use ruu::workloads::livermore;

fn table4_jobs(entries: &[usize]) -> Vec<Job> {
    let cfg = MachineConfig::paper();
    entries
        .iter()
        .map(|&e| {
            Job::new(
                Mechanism::Ruu {
                    entries: e,
                    bypass: Bypass::Full,
                },
                cfg.clone(),
            )
        })
        .collect()
}

/// jobs=4 must be byte-identical to jobs=1: same cycles/instructions, and
/// bit-identical f64 speedups and issue rates (compared via `to_bits`, not
/// an epsilon).
#[test]
fn parallel_grid_is_bit_identical_to_serial_grid() {
    let jobs = table4_jobs(&[3, 5, 8, 13, 21]);
    let serial = SweepEngine::livermore()
        .with_workers(1)
        .run_grid(&jobs)
        .expect("serial grid runs");
    let parallel = SweepEngine::livermore()
        .with_workers(4)
        .run_grid(&jobs)
        .expect("parallel grid runs");
    assert_eq!(serial.stats.workers, 1);
    assert_eq!(parallel.stats.workers, 4);
    assert_eq!(serial.jobs.len(), parallel.jobs.len());
    for (s, p) in serial.jobs.iter().zip(&parallel.jobs) {
        assert_eq!(s.label, p.label);
        assert_eq!(s.cycles, p.cycles, "{}", s.label);
        assert_eq!(s.instructions, p.instructions, "{}", s.label);
        assert_eq!(s.baseline_cycles, p.baseline_cycles, "{}", s.label);
        assert_eq!(s.speedup.to_bits(), p.speedup.to_bits(), "{}", s.label);
        assert_eq!(
            s.issue_rate.to_bits(),
            p.issue_rate.to_bits(),
            "{}",
            s.label
        );
    }
}

/// The speculative machine on the engine, once per zoo predictor: worker
/// count must not change a single number, including the per-job branch
/// summary (predicts, mispredicts, repair cycles). Branch-history state
/// lives inside each job's own predictor instance, so cross-thread
/// scheduling has nothing to leak.
#[test]
fn speculative_grid_is_deterministic_for_every_predictor() {
    use ruu::issue::PredictorConfig;
    let cfg = MachineConfig::paper();
    let jobs: Vec<Job> = PredictorConfig::zoo()
        .into_iter()
        .map(|predictor| {
            Job::new(
                Mechanism::SpecRuu {
                    entries: 15,
                    bypass: Bypass::Full,
                    predictor,
                },
                cfg.clone(),
            )
        })
        .collect();
    let serial = SweepEngine::livermore()
        .with_workers(1)
        .run_grid(&jobs)
        .expect("serial grid runs");
    let parallel = SweepEngine::livermore()
        .with_workers(4)
        .run_grid(&jobs)
        .expect("parallel grid runs");
    assert_eq!(serial.jobs.len(), parallel.jobs.len());
    for (s, p) in serial.jobs.iter().zip(&parallel.jobs) {
        assert_eq!(s.label, p.label);
        assert_eq!(s.cycles, p.cycles, "{}", s.label);
        assert_eq!(s.instructions, p.instructions, "{}", s.label);
        assert_eq!(s.speedup.to_bits(), p.speedup.to_bits(), "{}", s.label);
        let (sb, pb) = (
            s.branch.expect("speculative job has branch stats"),
            p.branch.expect("speculative job has branch stats"),
        );
        assert_eq!(sb, pb, "{}", s.label);
        assert!(sb.predicts > 0, "{}: predictor never consulted", s.label);
    }
}

/// Finite-dcache jobs on the engine: worker count must not change a
/// single number, including the per-job cache summary — the JSON report
/// of a parallel run must be byte-identical to the serial run's. Cache
/// state lives inside each unit's own `DCache` instance, so cross-thread
/// scheduling has nothing to leak.
#[test]
fn finite_dcache_grid_is_deterministic_across_worker_counts() {
    use ruu::sim::DCacheConfig;
    let jobs: Vec<Job> = ["16x1x2:25:3:1", "64x2x4:20", "256x4x8:40:2:8"]
        .iter()
        .map(|spec| {
            Job::new(
                Mechanism::Ruu {
                    entries: 15,
                    bypass: Bypass::Full,
                },
                MachineConfig::paper()
                    .with_dcache(DCacheConfig::parse(spec).expect("test geometry")),
            )
        })
        .collect();
    let serial = SweepEngine::livermore()
        .with_workers(1)
        .run_grid(&jobs)
        .expect("serial grid runs");
    let parallel = SweepEngine::livermore()
        .with_workers(4)
        .run_grid(&jobs)
        .expect("parallel grid runs");
    assert_eq!(serial.jobs.len(), parallel.jobs.len());
    for (s, p) in serial.jobs.iter().zip(&parallel.jobs) {
        assert_eq!(s.cycles, p.cycles, "{}", s.label);
        let (sc, pc) = (
            s.cache.expect("finite-dcache job has cache stats"),
            p.cache.expect("finite-dcache job has cache stats"),
        );
        assert_eq!(sc, pc, "{}", s.label);
        assert!(sc.accesses > 0, "{}: cache never consulted", s.label);
        assert_eq!(sc.hits + sc.misses, sc.accesses, "{}", s.label);
    }
    // The serialized reports carry identical per-job `cache` objects
    // (only the wall-clock engine stats may differ).
    let strip = |json: &str| {
        let jobs_at = json.find("\"jobs\":[").expect("report has a jobs array");
        json[jobs_at..].to_string()
    };
    assert_eq!(strip(&serial.to_json()), strip(&parallel.to_json()));
    assert_eq!(serial.to_json().matches("\"cache\":").count(), jobs.len());
}

/// The engine-backed sweep must reproduce the legacy serial sweep loop
/// (`ruu_bench::harness::sweep_serial`) exactly. This pins the API
/// redesign to the old behaviour: same suite order, same aggregation,
/// same speedup arithmetic.
#[test]
fn engine_sweep_matches_legacy_serial_sweep() {
    use ruu::engine::JobResult;
    let entries = [4usize, 9, 16];
    let cfg = MachineConfig::paper();
    let make = |e: usize| Mechanism::Ruu {
        entries: e,
        bypass: Bypass::Full,
    };

    let legacy = ruu_bench::sweep_serial(&cfg, &entries, make);

    let report = SweepEngine::livermore()
        .with_workers(4)
        .run_grid(&table4_jobs(&entries))
        .expect("grid runs");
    let engine_points: Vec<&JobResult> = report.jobs.iter().collect();

    assert_eq!(legacy.len(), engine_points.len());
    for (l, e) in legacy.iter().zip(engine_points) {
        assert_eq!(Some(l.entries), e.entries);
        assert_eq!(l.cycles, e.cycles);
        assert_eq!(l.speedup.to_bits(), e.speedup.to_bits());
        assert_eq!(l.issue_rate.to_bits(), e.issue_rate.to_bits());
    }
}

/// Every trait object out of `Mechanism::build` must produce exactly the
/// golden interpreter's architectural result — registers and memory checks
/// — on a Livermore loop. This is the object-safety contract the engine's
/// worker threads rely on.
#[test]
fn every_built_simulator_matches_golden() {
    let cfg = MachineConfig::paper();
    let mechanisms = [
        Mechanism::Simple,
        Mechanism::Tomasulo { rs_per_fu: 2 },
        Mechanism::TagUnitDistributed {
            rs_per_fu: 2,
            tags: 12,
        },
        Mechanism::RsPool { rs: 8, tags: 12 },
        Mechanism::Rstu { entries: 10 },
        Mechanism::Ruu {
            entries: 10,
            bypass: Bypass::Full,
        },
        Mechanism::Ruu {
            entries: 10,
            bypass: Bypass::None,
        },
        Mechanism::InOrderPrecise {
            scheme: ruu::issue::PreciseScheme::ReorderBuffer,
            entries: 10,
        },
        Mechanism::InOrderPrecise {
            scheme: ruu::issue::PreciseScheme::FutureFile,
            entries: 10,
        },
    ];
    for w in [livermore::lll1(), livermore::lll5(), livermore::lll11()] {
        let golden = w.golden_trace().expect("golden run succeeds");
        for m in &mechanisms {
            let sim = m.build(&cfg);
            let r = sim
                .run(&w.program, w.memory.clone(), w.inst_limit)
                .unwrap_or_else(|e| panic!("{m} failed on {}: {e}", w.name));
            assert_eq!(
                r.instructions,
                golden.len() as u64,
                "{m} on {}: instruction count",
                w.name
            );
            assert_eq!(
                &r.state.regs,
                &golden.final_state().regs,
                "{m} on {}: registers",
                w.name
            );
            assert_eq!(
                &r.memory,
                golden.final_memory(),
                "{m} on {}: memory",
                w.name
            );
            w.verify(&r.memory)
                .unwrap_or_else(|e| panic!("{m} on {}: {e}", w.name));
        }
    }
}
