//! Shape checks against the paper's evaluation (Tables 2–6): we do not
//! require absolute agreement (our kernels are hand-compiled, the paper's
//! were CFT output; see DESIGN.md §1), but every *qualitative* claim of
//! the paper must hold in the reproduction:
//!
//! 1. speedup grows monotonically with window size and saturates;
//! 2. RSTU ≥ RUU-with-bypass ≥ limited-bypass ≥ no-bypass at matched
//!    sizes (precision costs something; bypass buys most of it back);
//! 3. a second dispatch path helps the RSTU only marginally (§3.2.3.1);
//! 4. the RUU with bypass approaches the RSTU at large sizes (§6.1);
//! 5. out-of-order mechanisms beat the simple baseline at moderate sizes.

use ruu::issue::{Bypass, Mechanism};
use ruu::sim::MachineConfig;
use ruu_bench::{harness, sweep};

const SIZES: [usize; 5] = [3, 6, 10, 30, 50];

fn rstu(cfg: &MachineConfig, paths: u32) -> Vec<harness::SweepPoint> {
    let cfg = cfg.clone().with_dispatch_paths(paths);
    sweep(&cfg, &SIZES, |entries| Mechanism::Rstu { entries })
}

fn ruu(cfg: &MachineConfig, bypass: Bypass) -> Vec<harness::SweepPoint> {
    sweep(cfg, &SIZES, |entries| Mechanism::Ruu { entries, bypass })
}

#[test]
fn paper_shapes_hold() {
    let cfg = MachineConfig::paper();
    let rstu1 = rstu(&cfg, 1);
    let rstu2 = rstu(&cfg, 2);
    let full = ruu(&cfg, Bypass::Full);
    let none = ruu(&cfg, Bypass::None);
    let limited = ruu(&cfg, Bypass::LimitedA);

    // 1. Monotone growth (within a tiny tolerance for saturation jitter)
    //    and saturation: the last doubling of the window buys < 5%.
    for pts in [&rstu1, &rstu2, &full, &none, &limited] {
        for w in pts.windows(2) {
            assert!(
                w[1].speedup >= w[0].speedup * 0.995,
                "speedup should not fall when the window grows: {} -> {} at {} entries",
                w[0].speedup,
                w[1].speedup,
                w[1].entries
            );
        }
        let last = &pts[pts.len() - 1];
        let prev = &pts[pts.len() - 2];
        assert!(
            (last.speedup - prev.speedup) / prev.speedup < 0.05,
            "speedup should saturate: {} -> {}",
            prev.speedup,
            last.speedup
        );
    }

    // 2. Ordering at matched sizes (from 6 entries up; at 3 entries all
    //    mechanisms are window-starved and differences are noise).
    for i in 1..SIZES.len() {
        let e = SIZES[i];
        assert!(
            rstu1[i].speedup >= full[i].speedup * 0.98,
            "RSTU ({}) should be at least the precise RUU ({}) at {e} entries",
            rstu1[i].speedup,
            full[i].speedup
        );
        assert!(
            full[i].speedup > none[i].speedup,
            "bypass ({}) must beat no-bypass ({}) at {e} entries",
            full[i].speedup,
            none[i].speedup
        );
        assert!(
            limited[i].speedup > none[i].speedup,
            "limited bypass ({}) must beat no-bypass ({}) at {e} entries",
            limited[i].speedup,
            none[i].speedup
        );
        assert!(
            full[i].speedup >= limited[i].speedup * 0.98,
            "full bypass ({}) should be at least limited ({}) at {e} entries",
            full[i].speedup,
            limited[i].speedup
        );
    }

    // 3. The second RSTU dispatch path helps, but only a little
    //    (paper Table 3 vs 2: ~1-3%).
    for i in 0..SIZES.len() {
        assert!(rstu2[i].speedup >= rstu1[i].speedup * 0.995);
        assert!(
            rstu2[i].speedup <= rstu1[i].speedup * 1.10,
            "2 paths should not change the picture: {} vs {}",
            rstu2[i].speedup,
            rstu1[i].speedup
        );
    }

    // 4. With bypass and a large window, the precise RUU approaches the
    //    unconstrained RSTU (paper: 1.786 vs 1.821 ≈ 2%; allow 10%).
    let i_last = SIZES.len() - 1;
    assert!(
        full[i_last].speedup >= rstu1[i_last].speedup * 0.90,
        "RUU at 50 ({}) should approach RSTU ({})",
        full[i_last].speedup,
        rstu1[i_last].speedup
    );

    // 5. Everything out-of-order beats the simple baseline at ≥10 entries.
    for pts in [&rstu1, &rstu2, &full, &none, &limited] {
        assert!(
            pts[2].speedup > 1.0,
            "speedup at 10 entries: {}",
            pts[2].speedup
        );
    }
}

#[test]
fn no_bypass_gap_grows_with_window_size_pressure() {
    // The no-bypass penalty comes from consumers arriving after their
    // producers completed (paper §6.2); with a bigger window more
    // producers complete early, so the *absolute* gap to full bypass must
    // be substantial at large sizes.
    let cfg = MachineConfig::paper();
    let full = ruu(&cfg, Bypass::Full);
    let none = ruu(&cfg, Bypass::None);
    let i_last = SIZES.len() - 1;
    let gap = (full[i_last].speedup - none[i_last].speedup) / full[i_last].speedup;
    assert!(
        gap > 0.15,
        "no-bypass should cost well over 15% at saturation (paper: ~17%), got {:.1}%",
        gap * 100.0
    );
}

#[test]
fn limited_bypass_recovers_part_of_the_gap() {
    // Paper §6.3: the A future file recovers a significant portion of the
    // bypass benefit (branches test A0), but not all of it.
    let cfg = MachineConfig::paper();
    let full = ruu(&cfg, Bypass::Full);
    let none = ruu(&cfg, Bypass::None);
    let limited = ruu(&cfg, Bypass::LimitedA);
    let i = 2; // 10 entries
    let recovered = (limited[i].speedup - none[i].speedup) / (full[i].speedup - none[i].speedup);
    assert!(
        recovered > 0.3,
        "the future file should recover >30% of the bypass gap, got {:.0}%",
        recovered * 100.0
    );
}

#[test]
fn baseline_issue_rate_is_dependency_bound() {
    // Paper §2.2: the simple machine runs far below 1 IPC because of data
    // dependencies (theirs: 0.438; ours is lower because the hand-coded
    // kernels are leaner — see EXPERIMENTS.md).
    let cfg = MachineConfig::paper();
    let rows = harness::baseline_rows(&cfg);
    let total = rows.last().unwrap();
    let rate = total.issue_rate();
    assert!(
        (0.2..0.6).contains(&rate),
        "baseline rate should be far below 1 IPC: {rate}"
    );
}
