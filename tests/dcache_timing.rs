//! The data-cache timing model, end to end.
//!
//! Three properties pin it down:
//!
//! 1. **Calibration**: the default `DCacheConfig::Perfect` reproduces the
//!    calibrated per-loop cycle counts of the perfect-memory machine
//!    bit-for-bit — adding the cache layer must not move a single number.
//! 2. **Timing-only**: under *any* cache geometry, every mechanism still
//!    produces exactly the golden interpreter's registers and memory; a
//!    cache can reorder and delay, never corrupt.
//! 3. **It does something**: a finite cache with a hit latency equal to
//!    the perfect latency can only add cycles, and does add them; and the
//!    dynamic mechanisms absorb a growing miss latency better than the
//!    in-order baselines (the paper's motivating claim, extended to a
//!    real memory path).

use ruu::exec::ArchState;
use ruu::isa::FuClass;
use ruu::issue::{Bypass, Mechanism, PreciseScheme, PredictorConfig};
use ruu::sim::{
    CycleAccountant, DCache, DCacheConfig, LoadRegUnit, LrOutcome, MachineConfig, MemOpKind,
    StallReason,
};
use ruu::workloads::livermore;

/// Per-loop cycle counts of the perfect-memory machine over
/// `livermore::all()` (LLL1..LLL14), captured from the seed tree before
/// the cache model existed. `DCacheConfig::Perfect` must reproduce these
/// exactly.
fn calibrated() -> Vec<(Mechanism, [u64; 14])> {
    vec![
        (
            Mechanism::Simple,
            [
                19614, 19913, 35051, 16307, 30854, 33774, 18610, 20018, 19399, 15347, 35094, 36408,
                32769, 31169,
            ],
        ),
        (
            Mechanism::Tomasulo { rs_per_fu: 2 },
            [
                9628, 10051, 18536, 6669, 13947, 14268, 9326, 9341, 9947, 10147, 16902, 15615,
                18495, 18249,
            ],
        ),
        (
            Mechanism::Rstu { entries: 15 },
            [
                7433, 10088, 15036, 6682, 14449, 14317, 6381, 7236, 6944, 9509, 14306, 15615,
                16257, 15598,
            ],
        ),
        (
            Mechanism::Ruu {
                entries: 15,
                bypass: Bypass::Full,
            },
            [
                10222, 12025, 16040, 6981, 13954, 14873, 8869, 8781, 8440, 9640, 14307, 15617,
                16539, 15600,
            ],
        ),
        (
            Mechanism::Ruu {
                entries: 15,
                bypass: Bypass::None,
            },
            [
                17219, 17085, 28041, 16273, 26871, 33337, 12466, 10954, 14139, 11575, 27295, 27308,
                20166, 20906,
            ],
        ),
        (
            Mechanism::InOrderPrecise {
                scheme: PreciseScheme::ReorderBufferBypass,
                entries: 15,
            },
            [
                19617, 19915, 35051, 16311, 30855, 33777, 18611, 20019, 19400, 15348, 35095, 36410,
                32770, 31170,
            ],
        ),
        (
            Mechanism::SpecRuu {
                entries: 15,
                bypass: Bypass::Full,
                predictor: PredictorConfig::default(),
            },
            [
                10222, 11966, 16040, 6973, 13954, 14613, 8869, 8781, 8440, 9640, 14307, 15617,
                16539, 15600,
            ],
        ),
    ]
}

/// Every simulator family, for the differential (architectural) checks.
fn all_mechanisms() -> Vec<Mechanism> {
    let mut v: Vec<Mechanism> = calibrated().into_iter().map(|(m, _)| m).collect();
    v.push(Mechanism::TagUnitDistributed {
        rs_per_fu: 2,
        tags: 12,
    });
    v.push(Mechanism::RsPool { rs: 8, tags: 12 });
    v.push(Mechanism::InOrderPrecise {
        scheme: PreciseScheme::FutureFile,
        entries: 15,
    });
    v
}

fn dcache(spec: &str) -> DCacheConfig {
    DCacheConfig::parse(spec).expect("test geometry is valid")
}

#[test]
fn perfect_default_reproduces_the_calibrated_cycle_snapshot() {
    let cfg = MachineConfig::paper();
    assert!(cfg.dcache.is_perfect(), "paper() must default to Perfect");
    let loops = livermore::all();
    for (m, want) in calibrated() {
        for (w, &cycles) in loops.iter().zip(want.iter()) {
            let r = m
                .run(&cfg, &w.program, w.memory.clone(), w.inst_limit)
                .unwrap_or_else(|e| panic!("{m} failed on {}: {e}", w.name));
            assert_eq!(
                r.cycles, cycles,
                "{m} on {}: perfect-memory cycle count drifted from the seed calibration",
                w.name
            );
            assert_eq!(r.stats.dcache_accesses, 0, "{m} on {}", w.name);
        }
    }
}

#[test]
fn every_mechanism_matches_golden_under_any_dcache() {
    // Small and thrashy, tiny MSHR pool, and a comfortable cache: the
    // architectural result must not notice any of them.
    let geometries = ["16x1x2:25:3:1", "16x2x4:20", "256x4x8:40:2:8"];
    for spec in geometries {
        let cfg = MachineConfig::paper().with_dcache(dcache(spec));
        for w in livermore::all() {
            let golden = w.golden_trace().expect("golden run succeeds");
            for m in all_mechanisms() {
                let r = m
                    .run(&cfg, &w.program, w.memory.clone(), w.inst_limit)
                    .unwrap_or_else(|e| panic!("{m} under {spec} failed on {}: {e}", w.name));
                assert_eq!(
                    &r.state.regs,
                    &golden.final_state().regs,
                    "{m} under {spec} on {}: registers",
                    w.name
                );
                assert_eq!(
                    &r.memory,
                    golden.final_memory(),
                    "{m} under {spec} on {}: memory",
                    w.name
                );
                w.verify(&r.memory)
                    .unwrap_or_else(|e| panic!("{m} under {spec} on {}: mirror: {e}", w.name));
                assert!(
                    r.stats.dcache_accesses > 0,
                    "{m} under {spec} on {}: loads must consult the cache",
                    w.name
                );
                assert_eq!(
                    r.stats.dcache_hits + r.stats.dcache_misses,
                    r.stats.dcache_accesses,
                    "{m} under {spec} on {}: hit/miss accounting",
                    w.name
                );
            }
        }
    }
}

#[test]
fn a_finite_cache_only_adds_cycles_and_does_add_them() {
    // Hit latency pinned to the perfect memory latency: every access is
    // at least as slow as under perfect memory, so cycle counts can only
    // grow — and with a thrashy geometry they must grow somewhere.
    let perfect_lat = MachineConfig::paper().fu_latency(FuClass::Memory);
    let spec = format!("16x1x2:40:{perfect_lat}:2");
    let cfg = MachineConfig::paper().with_dcache(dcache(&spec));
    let loops = livermore::all();
    for (m, perfect) in calibrated() {
        let mut strictly_slower = 0usize;
        for (w, &base) in loops.iter().zip(perfect.iter()) {
            let r = m
                .run(&cfg, &w.program, w.memory.clone(), w.inst_limit)
                .unwrap_or_else(|e| panic!("{m} failed on {}: {e}", w.name));
            assert!(
                r.cycles >= base,
                "{m} on {}: finite cache ({} cycles) beat perfect memory ({base})",
                w.name,
                r.cycles
            );
            if r.cycles > base {
                strictly_slower += 1;
            }
        }
        assert!(
            strictly_slower > 0,
            "{m}: a thrashy finite cache never cost a single cycle on any loop"
        );
    }
}

#[test]
fn dynamic_mechanisms_absorb_miss_latency_better_than_in_order_baselines() {
    // The ablation claim: as miss latency grows, the out-of-order windows
    // (RUU, speculative RUU) degrade less than the Thornton-style
    // in-order machines, because independent work proceeds under a miss.
    let total = |m: &Mechanism, dc: &DCacheConfig| -> u64 {
        let cfg = MachineConfig::paper().with_dcache(*dc);
        livermore::all()
            .iter()
            .map(|w| {
                m.run(&cfg, &w.program, w.memory.clone(), w.inst_limit)
                    .unwrap_or_else(|e| panic!("{m} failed on {}: {e}", w.name))
                    .cycles
            })
            .sum()
    };
    let slowdown = |m: &Mechanism| -> f64 {
        let near = total(m, &dcache("64x2x4:5:1:4"));
        let far = total(m, &dcache("64x2x4:60:1:4"));
        far as f64 / near as f64
    };
    let simple = slowdown(&Mechanism::Simple);
    let ruu = slowdown(&Mechanism::Ruu {
        entries: 15,
        bypass: Bypass::Full,
    });
    let spec = slowdown(&Mechanism::SpecRuu {
        entries: 15,
        bypass: Bypass::Full,
        predictor: PredictorConfig::default(),
    });
    assert!(
        ruu < simple,
        "RUU slowdown {ruu:.3} should beat the simple machine's {simple:.3}"
    );
    assert!(
        spec < simple,
        "spec-RUU slowdown {spec:.3} should beat the simple machine's {simple:.3}"
    );
}

#[test]
fn cycle_accounting_holds_with_mem_stall_under_a_finite_cache() {
    // The accounting identity (cycles == issue + Σ stalls) must survive
    // the new MemStall reason, and the single-MSHR geometry must actually
    // exercise it on the blocking in-order machines.
    let cfg = MachineConfig::paper().with_dcache(dcache("16x1x2:30:1:1"));
    let mut mem_stalls = 0u64;
    for w in livermore::all() {
        for m in all_mechanisms() {
            let sim = m.build(&cfg);
            let mut acct = CycleAccountant::default();
            let r = sim
                .run_observed(
                    ArchState::new(),
                    w.memory.clone(),
                    &w.program,
                    w.inst_limit,
                    &mut acct,
                )
                .unwrap_or_else(|e| panic!("{m} failed on {}: {e}", w.name));
            acct.verify(r.cycles)
                .unwrap_or_else(|v| panic!("{m} on {}: {v}", w.name));
            if matches!(m, Mechanism::Simple | Mechanism::InOrderPrecise { .. }) {
                mem_stalls += r.stats.stalls(StallReason::MemStall);
            } else {
                assert_eq!(
                    r.stats.stalls(StallReason::MemStall),
                    0,
                    "{m} on {}: out-of-order machines retry dispatch, not decode",
                    w.name
                );
            }
        }
    }
    assert!(
        mem_stalls > 0,
        "a single-MSHR cache never blocked the in-order decode stage"
    );
}

#[test]
fn aliased_addresses_share_cache_set_way_and_load_register_entry() {
    // Satellite of the canonicalization audit: an address and its wrap
    // `addr + mem_words` must be one location to the cache *and* to the
    // load registers, exactly as they are to `Memory`.
    let words = 1u64 << 16;
    let mem = ruu::exec::Memory::new(words as usize);
    let mut dc = DCache::new(&dcache("64x4x4:20"), 11, words);
    let addr = 12_345u64;
    let alias = addr + words;
    assert_eq!(mem.canonicalize(addr), mem.canonicalize(alias));
    assert_eq!(dc.set_of(addr), dc.set_of(alias));
    dc.access(addr, 0); // fill the line
    assert_eq!(dc.way_of(addr), dc.way_of(alias));
    assert!(
        dc.way_of(alias).is_some(),
        "alias resolves to the filled way"
    );
    assert!(dc.plan(alias, 50).is_hit(), "alias hits the filled line");

    // Every simulator canonicalizes before consulting the load registers
    // (see the `canonicalize` call sites in `crates/issue`), so the
    // aliased pair resolves to one entry and forwards.
    let mut lr = LoadRegUnit::new(4);
    assert_eq!(
        lr.process(1, MemOpKind::Load, mem.canonicalize(addr)),
        Some(LrOutcome::ToMemory)
    );
    assert_eq!(
        lr.process(2, MemOpKind::Load, mem.canonicalize(alias)),
        Some(LrOutcome::WaitOn { provider: 1 })
    );
}
