//! Round-trip properties of the ISA's binary encoding and textual
//! assembly, over the full Livermore suite and random programs.

use proptest::prelude::*;

use ruu::isa::{encoding, text};
use ruu::workloads::livermore;
use ruu::workloads::synth::{random_program, SynthConfig};

#[test]
fn every_livermore_kernel_survives_binary_roundtrip() {
    for w in livermore::all() {
        let parcels = encoding::encode_program(&w.program)
            .unwrap_or_else(|e| panic!("{} failed to encode: {e}", w.name));
        let back = encoding::decode_program(w.name, &parcels)
            .unwrap_or_else(|e| panic!("{} failed to decode: {e}", w.name));
        assert_eq!(w.program.len(), back.len(), "{}", w.name);
        for (x, y) in w.program.iter().zip(back.iter()) {
            assert_eq!(x, y, "{}", w.name);
        }
        // Paper §2: instructions are 1 or 2 parcels; the footprint lies
        // between n and 2n.
        let n = w.program.len();
        assert!((n..=2 * n).contains(&parcels.len()), "{}", w.name);
    }
}

#[test]
fn every_livermore_kernel_survives_text_roundtrip() {
    for w in livermore::all() {
        let src = text::emit(&w.program);
        let back =
            text::parse(&src).unwrap_or_else(|e| panic!("{} failed to re-parse: {e}", w.name));
        assert_eq!(w.program, back, "{}", w.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_programs_survive_binary_roundtrip(seed in 0u64..100_000) {
        let (p, _) = random_program(seed, &SynthConfig::default());
        let parcels = encoding::encode_program(&p).expect("synth programs encode");
        let back = encoding::decode_program("t", &parcels).expect("decode");
        prop_assert_eq!(p.len(), back.len());
        for (x, y) in p.iter().zip(back.iter()) {
            prop_assert_eq!(x, y);
        }
    }

    #[test]
    fn random_programs_survive_text_roundtrip(seed in 0u64..100_000) {
        let (p, _) = random_program(seed, &SynthConfig::default());
        let src = text::emit(&p);
        let back = text::parse(&src).expect("emit output parses");
        prop_assert_eq!(p, back);
    }
}
