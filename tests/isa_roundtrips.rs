//! Round-trip properties of the ISA's binary encoding and textual
//! assembly, over the full Livermore suite and random programs.

use proptest::prelude::*;

use ruu::isa::{encoding, text, Asm, Inst, Opcode, Reg};
use ruu::workloads::livermore;
use ruu::workloads::synth::{random_program, SynthConfig};

#[test]
fn every_livermore_kernel_survives_binary_roundtrip() {
    for w in livermore::all() {
        let parcels = encoding::encode_program(&w.program)
            .unwrap_or_else(|e| panic!("{} failed to encode: {e}", w.name));
        let back = encoding::decode_program(w.name, &parcels)
            .unwrap_or_else(|e| panic!("{} failed to decode: {e}", w.name));
        assert_eq!(w.program.len(), back.len(), "{}", w.name);
        for (x, y) in w.program.iter().zip(back.iter()) {
            assert_eq!(x, y, "{}", w.name);
        }
        // Paper §2: instructions are 1 or 2 parcels; the footprint lies
        // between n and 2n.
        let n = w.program.len();
        assert!((n..=2 * n).contains(&parcels.len()), "{}", w.name);
    }
}

#[test]
fn backward_branch_to_address_zero_roundtrips() {
    let mut a = Asm::new("back0");
    let top = a.new_label();
    a.bind(top); // pc 0
    a.a_imm(Reg::a(0), 1);
    a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
    a.br_an(top);
    a.halt();
    let p = a.assemble().unwrap();
    assert_eq!(p[2].target, Some(0));
    let parcels = encoding::encode_program(&p).unwrap();
    let back = encoding::decode_program("back0", &parcels).unwrap();
    assert_eq!(back[2].target, Some(0));
    for (x, y) in p.iter().zip(back.iter()) {
        assert_eq!(x, y);
    }
}

#[test]
fn branch_to_self_roundtrips() {
    let mut a = Asm::new("selfloop");
    a.a_imm(Reg::a(0), 0);
    let here = a.new_label();
    a.bind(here); // pc 1
    a.br_an(here); // a conditional branch targeting its own pc
    a.halt();
    let p = a.assemble().unwrap();
    assert_eq!(p[1].target, Some(1));
    let parcels = encoding::encode_program(&p).unwrap();
    let back = encoding::decode_program("selfloop", &parcels).unwrap();
    assert_eq!(back[1].target, Some(1));
}

#[test]
fn max_forward_branch_target_roundtrips() {
    // Branch targets share the 22-bit signed jkm field, so the largest
    // encodable instruction index is 2^21 - 1. One past it must fail to
    // encode rather than wrap.
    let max_target = (1u32 << 21) - 1;
    let i = Inst::new(Opcode::Jump, None, None, None, 0, Some(max_target));
    let parcels = encoding::encode_inst(&i).unwrap();
    let (back, used) = encoding::decode_inst(&parcels).unwrap();
    assert_eq!(used, 2);
    assert_eq!(back.target, Some(max_target));

    let too_far = Inst::new(Opcode::Jump, None, None, None, 0, Some(max_target + 1));
    assert!(matches!(
        encoding::encode_inst(&too_far),
        Err(encoding::EncodeError::ImmOutOfRange { .. })
    ));
}

#[test]
fn every_livermore_kernel_survives_text_roundtrip() {
    for w in livermore::all() {
        let src = text::emit(&w.program);
        let back =
            text::parse(&src).unwrap_or_else(|e| panic!("{} failed to re-parse: {e}", w.name));
        assert_eq!(w.program, back, "{}", w.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_programs_survive_binary_roundtrip(seed in 0u64..100_000) {
        let (p, _) = random_program(seed, &SynthConfig::default());
        let parcels = encoding::encode_program(&p).expect("synth programs encode");
        let back = encoding::decode_program("t", &parcels).expect("decode");
        prop_assert_eq!(p.len(), back.len());
        for (x, y) in p.iter().zip(back.iter()) {
            prop_assert_eq!(x, y);
        }
    }

    #[test]
    fn random_programs_survive_text_roundtrip(seed in 0u64..100_000) {
        let (p, _) = random_program(seed, &SynthConfig::default());
        let src = text::emit(&p);
        let back = text::parse(&src).expect("emit output parses");
        prop_assert_eq!(p, back);
    }
}
