//! End-to-end precise-interrupt properties (the paper's central claim):
//! at *any* faultable dynamic instruction of *any* program, the RUU
//! recovers a state equal to the golden program-order boundary and can
//! resume to the exact golden final state — while the out-of-order-commit
//! mechanisms demonstrably cannot.

use proptest::prelude::*;

use ruu::exec::Trace;
use ruu::issue::{Bypass, WindowKind};
use ruu::precise::{fault_points, imprecision, FaultKind, PrecisionCheck};
use ruu::sim::MachineConfig;
use ruu::workloads::livermore;
use ruu::workloads::synth::{random_program, SynthConfig};

#[test]
fn page_faults_are_precise_across_the_suite() {
    // A few loads per loop, spread across the run.
    for w in livermore::all() {
        let trace = w.golden_trace().unwrap();
        let loads = fault_points(&trace, FaultKind::PageFault);
        assert!(!loads.is_empty(), "{} has loads", w.name);
        let picks = [loads[0], loads[loads.len() / 2], *loads.last().unwrap()];
        let check = PrecisionCheck::new(12, Bypass::Full);
        for &seq in &picks {
            let r = check
                .run(&w.program, &w.memory, seq)
                .unwrap_or_else(|e| panic!("{} at {seq}: {e}", w.name));
            assert!(r.all_precise(), "{} at {seq}: {r:?}", w.name);
        }
    }
}

#[test]
fn arithmetic_faults_are_precise() {
    let w = livermore::lll7();
    let trace = w.golden_trace().unwrap();
    let flops = fault_points(&trace, FaultKind::Arithmetic);
    let check = PrecisionCheck::new(20, Bypass::LimitedA);
    for &seq in &[flops[1], flops[flops.len() / 3]] {
        let r = check.run(&w.program, &w.memory, seq).unwrap();
        assert!(r.all_precise(), "at {seq}: {r:?}");
    }
}

#[test]
fn every_imprecise_mechanism_is_caught() {
    let cfg = MachineConfig::paper();
    for kind in [
        WindowKind::Distributed { rs_per_fu: 3 },
        WindowKind::TagUnitDistributed {
            rs_per_fu: 3,
            tags: 10,
        },
        WindowKind::Pooled { rs: 6, tags: 10 },
        WindowKind::Merged { entries: 8 },
    ] {
        let e = imprecision::demonstrate(&cfg, kind).unwrap();
        assert!(e.is_imprecise(), "{kind:?} should be imprecise");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The precise-interrupt property on random programs at random fault
    /// points, across window sizes and bypass policies.
    #[test]
    fn random_fault_points_are_precise(
        seed in 0u64..10_000,
        entries in 2usize..20,
        pick in 0usize..1000,
        bypass_sel in 0usize..3,
    ) {
        let (program, mem) = random_program(seed, &SynthConfig::default());
        let trace = Trace::capture(&program, mem.clone(), 500_000).expect("golden runs");
        let points = fault_points(&trace, FaultKind::Any);
        prop_assume!(!points.is_empty());
        let seq = points[pick % points.len()];
        let bypass = [Bypass::Full, Bypass::None, Bypass::LimitedA][bypass_sel];
        let mut check = PrecisionCheck::new(entries, bypass);
        check.inst_limit = 500_000;
        let r = check.run(&program, &mem, seq)
            .unwrap_or_else(|e| panic!("seed {seed}, fault {seq}: {e}"));
        prop_assert!(r.all_precise(), "seed {} fault {}: {:?}", seed, seq, r);
    }
}
