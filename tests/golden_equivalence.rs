//! The master correctness property: every issue mechanism, at every
//! window size, produces exactly the architectural result of the golden
//! interpreter on every Livermore loop — and every loop's result matches
//! its independent Rust mirror.
//!
//! Timing may differ wildly between mechanisms; architecture must not.

use ruu::exec::Memory;
use ruu::issue::{Bypass, Mechanism, SpecRuu, TwoBit};
use ruu::sim::MachineConfig;
use ruu::workloads::livermore;

fn mechanisms() -> Vec<Mechanism> {
    let mut v = vec![
        Mechanism::Simple,
        Mechanism::Tomasulo { rs_per_fu: 2 },
        Mechanism::TagUnitDistributed {
            rs_per_fu: 2,
            tags: 12,
        },
        Mechanism::RsPool { rs: 8, tags: 12 },
    ];
    for entries in [3, 10, 30] {
        v.push(Mechanism::Rstu { entries });
        for bypass in [Bypass::Full, Bypass::None, Bypass::LimitedA] {
            v.push(Mechanism::Ruu { entries, bypass });
        }
    }
    v
}

#[test]
fn every_mechanism_matches_golden_on_every_loop() {
    let cfg = MachineConfig::paper();
    for w in livermore::all() {
        let golden = w.golden_trace().expect("golden run succeeds");
        for m in mechanisms() {
            let r = m
                .run(&cfg, &w.program, w.memory.clone(), w.inst_limit)
                .unwrap_or_else(|e| panic!("{m} failed on {}: {e}", w.name));
            assert_eq!(
                r.instructions,
                golden.len() as u64,
                "{m} on {}: instruction count",
                w.name
            );
            assert_eq!(
                &r.state.regs,
                &golden.final_state().regs,
                "{m} on {}: registers",
                w.name
            );
            assert_eq!(
                &r.memory,
                golden.final_memory(),
                "{m} on {}: memory",
                w.name
            );
            w.verify(&r.memory)
                .unwrap_or_else(|e| panic!("{m} on {}: mirror: {e}", w.name));
        }
    }
}

#[test]
fn speculative_ruu_matches_golden_on_every_loop() {
    let cfg = MachineConfig::paper();
    for w in livermore::all() {
        let golden = w.golden_trace().expect("golden run succeeds");
        let mut pred = TwoBit::default();
        let r = SpecRuu::new(cfg.clone(), 15, Bypass::Full)
            .run(&w.program, w.memory.clone(), w.inst_limit, &mut pred)
            .unwrap_or_else(|e| panic!("spec RUU failed on {}: {e}", w.name));
        assert_eq!(r.run.instructions, golden.len() as u64, "{}", w.name);
        assert_eq!(&r.run.state.regs, &golden.final_state().regs, "{}", w.name);
        assert_eq!(&r.run.memory, golden.final_memory(), "{}", w.name);
        w.verify(&r.run.memory).unwrap();
        assert_eq!(
            r.run.stats.branches,
            golden.mix().branches,
            "{}: resolved branch count",
            w.name
        );
    }
}

#[test]
fn tiny_windows_still_converge() {
    // Degenerate sizes exercise every stall path but must stay correct.
    let cfg = MachineConfig::paper();
    let w = livermore::lll2();
    let golden = w.golden_trace().unwrap();
    for m in [
        Mechanism::Rstu { entries: 1 },
        Mechanism::Ruu {
            entries: 1,
            bypass: Bypass::Full,
        },
        Mechanism::Ruu {
            entries: 2,
            bypass: Bypass::None,
        },
        Mechanism::Tomasulo { rs_per_fu: 1 },
    ] {
        let r = m
            .run(&cfg, &w.program, w.memory.clone(), w.inst_limit)
            .unwrap_or_else(|e| panic!("{m}: {e}"));
        assert_eq!(&r.state.regs, &golden.final_state().regs, "{m}");
        assert_eq!(&r.memory, golden.final_memory(), "{m}");
    }
}

#[test]
fn one_load_register_is_slow_but_correct() {
    let cfg = MachineConfig::paper().with_load_registers(1);
    let w = livermore::lll13(); // scatter/gather heavy
    let golden = w.golden_trace().unwrap();
    let r = Mechanism::Ruu {
        entries: 10,
        bypass: Bypass::Full,
    }
    .run(&cfg, &w.program, w.memory.clone(), w.inst_limit)
    .unwrap();
    assert_eq!(&r.memory, golden.final_memory());
}

#[test]
fn narrow_instance_counters_are_slow_but_correct() {
    let cfg = MachineConfig::paper().with_counter_bits(1);
    let w = livermore::lll9();
    let golden = w.golden_trace().unwrap();
    let r = Mechanism::Ruu {
        entries: 20,
        bypass: Bypass::Full,
    }
    .run(&cfg, &w.program, w.memory.clone(), w.inst_limit)
    .unwrap();
    assert_eq!(&r.state.regs, &golden.final_state().regs);
    assert_eq!(&r.memory, golden.final_memory());
}

#[test]
fn extra_buses_and_paths_preserve_results() {
    let cfg = MachineConfig::paper()
        .with_result_buses(2)
        .with_dispatch_paths(2);
    let w = livermore::lll8();
    let golden = w.golden_trace().unwrap();
    for m in [
        Mechanism::Simple,
        Mechanism::Rstu { entries: 12 },
        Mechanism::Ruu {
            entries: 12,
            bypass: Bypass::Full,
        },
    ] {
        let r = m
            .run(&cfg, &w.program, w.memory.clone(), w.inst_limit)
            .unwrap();
        assert_eq!(&r.memory, golden.final_memory(), "{m}");
    }
}

#[test]
fn memory_is_shared_ground_truth() {
    // Two mechanisms given the same memory image end with identical
    // images even though their store timings differ by hundreds of
    // cycles.
    let cfg = MachineConfig::paper();
    let w = livermore::lll10();
    let a = Mechanism::Simple
        .run(&cfg, &w.program, w.memory.clone(), w.inst_limit)
        .unwrap();
    let b = Mechanism::Ruu {
        entries: 25,
        bypass: Bypass::None,
    }
    .run(&cfg, &w.program, w.memory.clone(), w.inst_limit)
    .unwrap();
    assert_eq!(a.memory, b.memory);
    assert!(!Memory::new(8).is_empty()); // Memory sanity helper
}
