//! Property-based golden equivalence: thousands of random (but always
//! terminating) programs through every mechanism must reproduce the
//! golden interpreter exactly, and speculation must stay architecturally
//! invisible.

use proptest::prelude::*;

use ruu::exec::Trace;
use ruu::issue::{Bypass, Mechanism, SpecRuu, TwoBit};
use ruu::sim::MachineConfig;
use ruu::workloads::synth::{random_program, SynthConfig};

const LIMIT: u64 = 500_000;

fn synth_cfg(segments: usize, block_len: usize, mem_ops: bool) -> SynthConfig {
    SynthConfig {
        segments,
        block_len,
        max_trips: 6,
        mem_ops,
        hot_addresses: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_programs_match_golden_everywhere(
        seed in 0u64..10_000,
        entries in 2usize..24,
        segments in 2usize..8,
        block_len in 4usize..20,
        mem_ops in proptest::bool::ANY,
    ) {
        let (program, mem) = random_program(seed, &synth_cfg(segments, block_len, mem_ops));
        let golden = Trace::capture(&program, mem.clone(), LIMIT).expect("golden runs");
        let cfg = MachineConfig::paper();
        for m in [
            Mechanism::Simple,
            Mechanism::Rstu { entries },
            Mechanism::Tomasulo { rs_per_fu: entries / 4 + 1 },
            Mechanism::Ruu { entries, bypass: Bypass::Full },
            Mechanism::Ruu { entries, bypass: Bypass::None },
            Mechanism::Ruu { entries, bypass: Bypass::LimitedA },
        ] {
            let r = m.run(&cfg, &program, mem.clone(), LIMIT)
                .unwrap_or_else(|e| panic!("{m} failed on seed {seed}: {e}"));
            prop_assert_eq!(r.instructions, golden.len() as u64, "{} count", m);
            prop_assert_eq!(&r.state.regs, &golden.final_state().regs, "{} regs", m);
            prop_assert_eq!(&r.memory, golden.final_memory(), "{} memory", m);
        }
    }

    /// Same-address memory traffic is where the load registers earn
    /// their keep: hammer a four-word window with every mechanism.
    #[test]
    fn hot_address_programs_match_golden_everywhere(
        seed in 0u64..10_000,
        entries in 2usize..20,
        loadregs in 1usize..7,
    ) {
        let cfg_s = SynthConfig { hot_addresses: true, ..SynthConfig::default() };
        let (program, mem) = random_program(seed, &cfg_s);
        let golden = Trace::capture(&program, mem.clone(), LIMIT).expect("golden runs");
        let cfg = MachineConfig::paper().with_load_registers(loadregs);
        for m in [
            Mechanism::Rstu { entries },
            Mechanism::Ruu { entries, bypass: Bypass::Full },
            Mechanism::Ruu { entries, bypass: Bypass::None },
        ] {
            let r = m.run(&cfg, &program, mem.clone(), LIMIT)
                .unwrap_or_else(|e| panic!("{m} failed on hot seed {seed}: {e}"));
            prop_assert_eq!(&r.state.regs, &golden.final_state().regs, "{} regs", m);
            prop_assert_eq!(&r.memory, golden.final_memory(), "{} memory", m);
        }
    }

    #[test]
    fn speculation_is_architecturally_invisible(
        seed in 0u64..10_000,
        entries in 2usize..24,
    ) {
        let (program, mem) = random_program(seed, &synth_cfg(6, 10, true));
        let golden = Trace::capture(&program, mem.clone(), LIMIT).expect("golden runs");
        let cfg = MachineConfig::paper();
        for bypass in [Bypass::Full, Bypass::None, Bypass::LimitedA] {
            let mut pred = TwoBit::default();
            let r = SpecRuu::new(cfg.clone(), entries, bypass)
                .run(&program, mem.clone(), LIMIT, &mut pred)
                .unwrap_or_else(|e| panic!("spec {bypass:?} failed on seed {seed}: {e}"));
            prop_assert_eq!(&r.run.state.regs, &golden.final_state().regs);
            prop_assert_eq!(&r.run.memory, golden.final_memory());
            prop_assert_eq!(r.run.instructions, golden.len() as u64);
        }
    }

    #[test]
    fn machine_variations_preserve_architecture(
        seed in 0u64..10_000,
        buses in 1u32..3,
        paths in 1u32..3,
        loadregs in 1usize..8,
        counter_bits in 1u32..5,
    ) {
        let (program, mem) = random_program(seed, &synth_cfg(5, 10, true));
        let golden = Trace::capture(&program, mem.clone(), LIMIT).expect("golden runs");
        let cfg = MachineConfig::paper()
            .with_result_buses(buses)
            .with_dispatch_paths(paths)
            .with_load_registers(loadregs)
            .with_counter_bits(counter_bits);
        let r = Mechanism::Ruu { entries: 12, bypass: Bypass::Full }
            .run(&cfg, &program, mem.clone(), LIMIT)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        prop_assert_eq!(&r.state.regs, &golden.final_state().regs);
        prop_assert_eq!(&r.memory, golden.final_memory());
    }
}
