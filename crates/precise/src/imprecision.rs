//! The counter-demonstration: out-of-order-commit mechanisms are
//! imprecise.
//!
//! A mechanism is *imprecise* if the machine can be observed (at an
//! exception) in a state that matches **no** program-order boundary: some
//! younger instruction has updated architectural state while an older one
//! has not (paper §1, §4). The RSTU — the paper's best performer before
//! the RUU — fails exactly this way, which is the entire motivation for
//! constraining it into the RUU.

use ruu_exec::{golden_state_at, ArchState, Memory};
use ruu_isa::{Asm, Program, Reg};
use ruu_issue::{SimError, TaggedSim, WindowKind};
use ruu_sim_core::MachineConfig;

/// Evidence that a mechanism reached a state matching no program-order
/// boundary.
#[derive(Debug, Clone)]
pub struct ImprecisionEvidence {
    /// The probed dynamic instruction (a younger instruction that
    /// executed early).
    pub probe_seq: u64,
    /// For each boundary `k` (0..=n), whether the observed state equals
    /// the golden state after exactly `k` instructions.
    pub boundary_matches: Vec<bool>,
}

impl ImprecisionEvidence {
    /// `true` if *no* boundary matched — the state was irrecoverable by
    /// program-order semantics.
    #[must_use]
    pub fn is_imprecise(&self) -> bool {
        !self.boundary_matches.iter().any(|&m| m)
    }
}

/// A program crafted so that a fast store (dynamic index 3) executes
/// while an older, slow register write (index 1) is still in flight.
#[must_use]
pub fn witness_program() -> (Program, Memory, u64) {
    let mut a = Asm::new("imprecision-witness");
    a.a_imm(Reg::a(1), 80); // 0
    a.f_recip(Reg::s(1), Reg::s(0)); // 1: slow (14 cycles)
    a.s_imm(Reg::s(2), 5); // 2: fast
    a.st_s(Reg::s(2), Reg::a(1), 0); // 3: fast store — the probe
    a.halt();
    (
        a.assemble().expect("witness assembles"),
        Memory::new(1 << 8),
        3,
    )
}

/// Runs `kind` on the witness program, snapshots the machine state at the
/// moment the probe store executes, and compares it against every
/// program-order boundary.
///
/// # Errors
/// Propagates simulator errors.
pub fn demonstrate(
    config: &MachineConfig,
    kind: WindowKind,
) -> Result<ImprecisionEvidence, SimError> {
    let (program, mem, probe_seq) = witness_program();
    let snap = TaggedSim::new(config.clone(), kind)
        .snapshot_at_execute(&program, mem.clone(), 100_000, probe_seq)?
        .expect("the probe store executes");
    let (state, memory) = snap;
    let n = program.len() as u64 - 1; // exclude Halt
    let mut boundary_matches = Vec::new();
    for k in 0..=n {
        let (gs, gm) = golden_state_at(&program, mem.clone(), k).expect("witness runs on golden");
        boundary_matches.push(states_equal(&state, &memory, &gs, &gm));
    }
    Ok(ImprecisionEvidence {
        probe_seq,
        boundary_matches,
    })
}

fn states_equal(s: &ArchState, m: &Memory, gs: &ArchState, gm: &Memory) -> bool {
    s.regs == gs.regs && m == gm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rstu_is_imprecise() {
        let e = demonstrate(&MachineConfig::paper(), WindowKind::Merged { entries: 8 }).unwrap();
        assert!(e.is_imprecise(), "matches: {:?}", e.boundary_matches);
    }

    #[test]
    fn tomasulo_is_imprecise() {
        let e = demonstrate(
            &MachineConfig::paper(),
            WindowKind::Distributed { rs_per_fu: 3 },
        )
        .unwrap();
        assert!(e.is_imprecise());
    }

    #[test]
    fn rs_pool_is_imprecise() {
        let e = demonstrate(
            &MachineConfig::paper(),
            WindowKind::Pooled { rs: 6, tags: 8 },
        )
        .unwrap();
        assert!(e.is_imprecise());
    }
}
