//! Choosing where to fault.

use ruu_exec::Trace;

/// The kind of instruction-generated trap being modelled (paper §1: "an
/// imprecise interrupt can be caused by instruction-generated traps such
/// as arithmetic exceptions and page faults").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A page fault: faults on loads and stores. The common case in a
    /// virtual-memory machine, and the reason interrupts *must* be
    /// precise (§1).
    PageFault,
    /// An arithmetic exception: faults on floating-point operations.
    Arithmetic,
    /// Any non-branch instruction may fault (the most general check).
    Any,
}

impl FaultKind {
    /// Whether a dynamic instruction of this opcode class can raise this
    /// fault.
    #[must_use]
    pub fn applies_to(self, inst: &ruu_isa::Inst) -> bool {
        use ruu_isa::FuClass;
        match self {
            FaultKind::PageFault => inst.is_mem(),
            FaultKind::Arithmetic => matches!(
                inst.fu_class(),
                Some(FuClass::FloatAdd | FuClass::FloatMul | FuClass::Recip)
            ),
            FaultKind::Any => !inst.is_branch() && inst.fu_class().is_some(),
        }
    }
}

/// All dynamic instruction indices in `trace` at which a `kind` fault can
/// be injected. (Branches resolve in the decode stage of this model and
/// never fault.)
#[must_use]
pub fn fault_points(trace: &Trace, kind: FaultKind) -> Vec<u64> {
    trace
        .events()
        .iter()
        .filter(|ev| kind.applies_to(&ev.inst))
        .map(|ev| ev.index)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruu_exec::Memory;
    use ruu_isa::{Asm, Reg};

    fn trace() -> Trace {
        let mut a = Asm::new("t");
        a.a_imm(Reg::a(1), 64); // 0
        a.ld_s(Reg::s(1), Reg::a(1), 0); // 1: load
        a.f_add(Reg::s(2), Reg::s(1), Reg::s(1)); // 2: float
        a.st_s(Reg::s(2), Reg::a(1), 1); // 3: store
        a.halt();
        let p = a.assemble().unwrap();
        Trace::capture(&p, Memory::new(1 << 8), 100).unwrap()
    }

    #[test]
    fn page_faults_hit_memory_ops() {
        assert_eq!(fault_points(&trace(), FaultKind::PageFault), vec![1, 3]);
    }

    #[test]
    fn arithmetic_hits_float_ops() {
        assert_eq!(fault_points(&trace(), FaultKind::Arithmetic), vec![2]);
    }

    #[test]
    fn any_hits_everything_with_a_unit() {
        assert_eq!(fault_points(&trace(), FaultKind::Any), vec![0, 1, 2, 3]);
    }
}
