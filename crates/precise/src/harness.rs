//! The precise-interrupt check: inject, recover, compare, resume.

use ruu_exec::{golden_state_at, Memory, Trace};
use ruu_isa::Program;
use ruu_issue::{Bypass, RunOutcome, Ruu, SimError};
use ruu_sim_core::MachineConfig;

/// Outcome of one injected-exception experiment.
#[derive(Debug, Clone)]
pub struct PrecisionReport {
    /// Dynamic index of the faulting instruction.
    pub fault_seq: u64,
    /// The recovered register state equals the golden interpreter's state
    /// after exactly `fault_seq` instructions.
    pub state_precise: bool,
    /// The recovered memory equals the golden memory at the boundary.
    pub memory_precise: bool,
    /// The recovered pc equals the faulting instruction's pc.
    pub pc_precise: bool,
    /// After resuming from the recovered state, the program's final state
    /// and memory equal an uninterrupted golden run.
    pub resume_exact: bool,
    /// Cycle at which the interrupt was taken.
    pub interrupt_cycle: u64,
}

impl PrecisionReport {
    /// `true` only if every check passed.
    #[must_use]
    pub fn all_precise(&self) -> bool {
        self.state_precise && self.memory_precise && self.pc_precise && self.resume_exact
    }
}

/// Error from a [`PrecisionCheck`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// The underlying simulation failed.
    Sim(SimError),
    /// The designated instruction never reached the commit point (e.g.
    /// the index was out of range or named a branch).
    FaultNeverTaken {
        /// The requested fault index.
        fault_seq: u64,
    },
    /// The golden interpreter could not execute the program.
    Golden(ruu_exec::ExecError),
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Sim(e) => write!(f, "simulation failed: {e}"),
            CheckError::FaultNeverTaken { fault_seq } => {
                write!(f, "instruction {fault_seq} never reached the commit point")
            }
            CheckError::Golden(e) => write!(f, "golden execution failed: {e}"),
        }
    }
}

impl std::error::Error for CheckError {}

/// Configuration of a precise-interrupt experiment on the RUU.
#[derive(Debug, Clone)]
pub struct PrecisionCheck {
    /// Machine configuration.
    pub config: MachineConfig,
    /// RUU entries.
    pub entries: usize,
    /// RUU bypass policy.
    pub bypass: Bypass,
    /// Dynamic-instruction budget.
    pub inst_limit: u64,
}

impl PrecisionCheck {
    /// A check with the paper's machine and a mid-sized RUU.
    #[must_use]
    pub fn new(entries: usize, bypass: Bypass) -> Self {
        PrecisionCheck {
            config: MachineConfig::paper(),
            entries,
            bypass,
            inst_limit: 10_000_000,
        }
    }

    /// Runs `program` with an exception injected at dynamic instruction
    /// `fault_seq`, checks the recovered state against the golden
    /// boundary, resumes, and checks the final state.
    ///
    /// # Errors
    /// See [`CheckError`].
    pub fn run(
        &self,
        program: &Program,
        mem: &Memory,
        fault_seq: u64,
    ) -> Result<PrecisionReport, CheckError> {
        let sim = Ruu::new(self.config.clone(), self.entries, self.bypass);
        let outcome = sim
            .run_with_exception(program, mem.clone(), self.inst_limit, fault_seq)
            .map_err(CheckError::Sim)?;
        let frame = match outcome {
            RunOutcome::Interrupted(frame) => frame,
            RunOutcome::Completed(_) => {
                return Err(CheckError::FaultNeverTaken { fault_seq });
            }
        };

        let (golden_state, golden_mem) =
            golden_state_at(program, mem.clone(), fault_seq).map_err(CheckError::Golden)?;
        let state_precise = frame.state.regs == golden_state.regs;
        let memory_precise = frame.memory == golden_mem;
        let pc_precise = frame.state.pc == golden_state.pc;

        // "Handle" the fault (the model fault needs no state change — a
        // page fault would map the page) and restart from the frame.
        let resumed = sim
            .run_from(frame.state, frame.memory, program, self.inst_limit)
            .map_err(CheckError::Sim)?;
        let golden_final =
            Trace::capture(program, mem.clone(), self.inst_limit).map_err(CheckError::Golden)?;
        let resume_exact = resumed.state.regs == golden_final.final_state().regs
            && &resumed.memory == golden_final.final_memory();

        Ok(PrecisionReport {
            fault_seq,
            state_precise,
            memory_precise,
            pc_precise,
            resume_exact,
            interrupt_cycle: frame.cycle,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruu_workloads::livermore;

    #[test]
    fn interrupts_on_a_livermore_loop_are_precise() {
        let w = livermore::lll5();
        let check = PrecisionCheck::new(12, Bypass::Full);
        for fault_seq in [10, 57, 333] {
            let r = check.run(&w.program, &w.memory, fault_seq).unwrap();
            assert!(r.all_precise(), "fault at {fault_seq}: {r:?}");
        }
    }

    #[test]
    fn all_bypass_modes_are_precise() {
        let w = livermore::lll12();
        for bypass in [Bypass::Full, Bypass::None, Bypass::LimitedA] {
            let check = PrecisionCheck::new(8, bypass);
            let r = check.run(&w.program, &w.memory, 101).unwrap();
            assert!(r.all_precise(), "{bypass:?}: {r:?}");
        }
    }

    #[test]
    fn fault_on_branch_reports_never_taken() {
        // Dynamic index 6 in this program is the loop branch.
        let mut a = ruu_isa::Asm::new("t");
        let top = a.new_label();
        a.a_imm(ruu_isa::Reg::a(0), 3);
        a.bind(top);
        a.a_sub_imm(ruu_isa::Reg::a(0), ruu_isa::Reg::a(0), 1);
        a.br_an(top);
        a.halt();
        let p = a.assemble().unwrap();
        let check = PrecisionCheck::new(8, Bypass::Full);
        let err = check.run(&p, &Memory::new(1 << 8), 2).unwrap_err();
        assert!(matches!(err, CheckError::FaultNeverTaken { fault_seq: 2 }));
    }
}
