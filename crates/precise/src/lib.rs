//! # ruu-precise — precise-interrupt verification (paper §4–5)
//!
//! The paper's central claim is that the RUU implements **precise
//! interrupts** while still issuing out of order: at any instruction-
//! generated trap (page fault, arithmetic exception), a machine state is
//! recoverable in which every instruction before the faulting one — and
//! none after — has updated the architectural state.
//!
//! This crate turns that claim into executable checks:
//!
//! * [`PrecisionCheck`] — inject an exception at an arbitrary dynamic
//!   instruction of any program running on the RUU; verify the recovered
//!   state equals the golden interpreter's state at that exact boundary;
//!   then *resume* from the recovered state and verify the final state is
//!   unchanged by the interruption (full restartability, the virtual-
//!   memory requirement of §1);
//! * [`imprecision`] — the counter-demonstration: the RSTU (and the other
//!   out-of-order-commit mechanisms) can be caught in states that match
//!   *no* program-order boundary;
//! * [`fault_points`] — helpers for choosing faultable dynamic
//!   instructions (loads for page faults, float ops for arithmetic
//!   exceptions).

pub mod faults;
pub mod harness;
pub mod imprecision;

pub use faults::{fault_points, FaultKind};
pub use harness::{PrecisionCheck, PrecisionReport};
