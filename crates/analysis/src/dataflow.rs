//! Classic forward/backward dataflow over the 144-register file.
//!
//! Three analyses power the lints in [`crate::lint`]:
//!
//! * **may-be-uninitialized** (forward, union join): which registers can
//!   reach a read without an intervening write — flags reads of
//!   never-written registers;
//! * **liveness** (backward, union join): which registers may still be
//!   read on some path — exposed for diagnostics and tests;
//! * **reaching definitions** (forward, union join) with def→use
//!   chaining: which writes are never read at all, split into writes
//!   overwritten before use (dead) and writes still architecturally
//!   current at program exit (computed-but-unread).
//!
//! All lattices are powersets of the register file, represented as
//! three-word bitsets ([`RegSet`]); the fixpoints are round-robin
//! iterations over the basic blocks of a [`Cfg`] and terminate because
//! every transfer function is monotone on a finite lattice.

use ruu_isa::{Program, Reg, NUM_REGS};

use crate::cfg::Cfg;

const WORDS: usize = NUM_REGS.div_ceil(64);

/// A set of registers over all four files (A/S/B/T), as a bitset keyed
/// by [`Reg::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct RegSet([u64; WORDS]);

impl RegSet {
    /// The empty set.
    pub const EMPTY: RegSet = RegSet([0; WORDS]);

    /// The set of all [`NUM_REGS`] registers.
    #[must_use]
    pub fn full() -> Self {
        let mut s = RegSet::EMPTY;
        for r in Reg::all() {
            s.insert(r);
        }
        s
    }

    /// Adds `r` to the set.
    pub fn insert(&mut self, r: Reg) {
        let i = r.index();
        self.0[i / 64] |= 1 << (i % 64);
    }

    /// Removes `r` from the set.
    pub fn remove(&mut self, r: Reg) {
        let i = r.index();
        self.0[i / 64] &= !(1 << (i % 64));
    }

    /// `true` if `r` is in the set.
    #[must_use]
    pub fn contains(&self, r: Reg) -> bool {
        let i = r.index();
        self.0[i / 64] & (1 << (i % 64)) != 0
    }

    /// Unions `other` into `self`; returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &RegSet) -> bool {
        let mut changed = false;
        for (a, b) in self.0.iter_mut().zip(other.0) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Removes every register of `other` from `self`.
    pub fn subtract(&mut self, other: &RegSet) {
        for (a, b) in self.0.iter_mut().zip(other.0) {
            *a &= !b;
        }
    }

    /// `true` if no register is in the set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.iter().all(|&w| w == 0)
    }

    /// Number of registers in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterator over the members, in [`Reg::index`] order.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        Reg::all().filter(|&r| self.contains(r))
    }
}

impl FromIterator<Reg> for RegSet {
    fn from_iter<T: IntoIterator<Item = Reg>>(iter: T) -> Self {
        let mut s = RegSet::EMPTY;
        for r in iter {
            s.insert(r);
        }
        s
    }
}

/// Per-block liveness solution (backward may-analysis).
#[derive(Debug, Clone)]
pub struct Liveness {
    /// `live_in[b]`: registers possibly read before being written on some
    /// path starting at block `b`'s entry.
    pub live_in: Vec<RegSet>,
    /// `live_out[b]`: union of successors' `live_in`.
    pub live_out: Vec<RegSet>,
}

/// Solves liveness over `cfg`. Unreachable blocks participate (their
/// reads keep registers live within themselves) but have no effect on
/// reachable blocks unless an edge leads back into the reachable region.
#[must_use]
pub fn liveness(program: &Program, cfg: &Cfg) -> Liveness {
    let nb = cfg.blocks().len();
    // Upward-exposed uses and kills per block.
    let mut uses = vec![RegSet::EMPTY; nb];
    let mut defs = vec![RegSet::EMPTY; nb];
    for b in cfg.blocks() {
        for pc in b.pcs() {
            let inst = program.get(pc).expect("pc in range");
            for s in inst.sources() {
                if !defs[b.id].contains(s) {
                    uses[b.id].insert(s);
                }
            }
            if let Some(d) = inst.dst {
                defs[b.id].insert(d);
            }
        }
    }
    let mut live_in = vec![RegSet::EMPTY; nb];
    let mut live_out = vec![RegSet::EMPTY; nb];
    let mut changed = true;
    while changed {
        changed = false;
        for b in cfg.blocks().iter().rev() {
            let mut out = RegSet::EMPTY;
            for &s in &b.succs {
                out.union_with(&live_in[s]);
            }
            let mut inn = out;
            inn.subtract(&defs[b.id]);
            inn.union_with(&uses[b.id]);
            changed |= live_out[b.id].union_with(&out);
            changed |= live_in[b.id].union_with(&inn);
        }
    }
    Liveness { live_in, live_out }
}

/// A read of a possibly-uninitialized register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UninitRead {
    /// Pc of the reading instruction.
    pub pc: u32,
    /// The register read before any write on some path.
    pub reg: Reg,
}

/// Finds reads of registers that some path reaches without a prior write
/// (forward may-uninitialized analysis over reachable blocks only).
/// Registers in `assume_initialized` are treated as written at entry.
#[must_use]
pub fn uninit_reads(program: &Program, cfg: &Cfg, assume_initialized: &RegSet) -> Vec<UninitRead> {
    let nb = cfg.blocks().len();
    if nb == 0 {
        return Vec::new();
    }
    let mut entry = RegSet::full();
    entry.subtract(assume_initialized);
    // uninit_in[b]: registers possibly unwritten at block entry.
    let mut uninit_in = vec![RegSet::EMPTY; nb];
    uninit_in[0] = entry;
    let mut changed = true;
    while changed {
        changed = false;
        for b in cfg.blocks() {
            if !b.reachable {
                continue;
            }
            let mut state = uninit_in[b.id];
            for pc in b.pcs() {
                if let Some(d) = program.get(pc).expect("pc in range").dst {
                    state.remove(d);
                }
            }
            for &s in &b.succs {
                changed |= uninit_in[s].union_with(&state);
            }
        }
    }
    let mut found = Vec::new();
    for b in cfg.blocks() {
        if !b.reachable {
            continue;
        }
        let mut state = uninit_in[b.id];
        for pc in b.pcs() {
            let inst = program.get(pc).expect("pc in range");
            let mut seen: Option<Reg> = None;
            for s in inst.sources() {
                if state.contains(s) && seen != Some(s) {
                    found.push(UninitRead { pc, reg: s });
                    seen = Some(s);
                }
            }
            if let Some(d) = inst.dst {
                state.remove(d);
            }
        }
    }
    found
}

/// Def→use facts from reaching definitions: for every write (identified
/// by its pc), whether any read consumes it and whether it is still the
/// architecturally current value at some program exit.
#[derive(Debug, Clone)]
pub struct DefUse {
    /// `used[pc]`: the write at `pc` reaches at least one read.
    pub used: Vec<bool>,
    /// `at_exit[pc]`: the write at `pc` is the live-out definition of its
    /// register at some reachable exit (halt or program end).
    pub at_exit: Vec<bool>,
}

/// Solves reaching definitions over the reachable region and chains defs
/// to uses. Each pc defines at most one register, so a definition is
/// identified by its pc.
#[must_use]
pub fn def_use(program: &Program, cfg: &Cfg) -> DefUse {
    let n = program.len();
    let nb = cfg.blocks().len();
    // reach_in[b][reg.index()] = pcs of defs of `reg` reaching b's entry.
    let mut reach_in: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); NUM_REGS]; nb];
    let mut changed = true;
    while changed {
        changed = false;
        for b in cfg.blocks() {
            if !b.reachable {
                continue;
            }
            let mut state = reach_in[b.id].clone();
            for pc in b.pcs() {
                if let Some(d) = program.get(pc).expect("pc in range").dst {
                    state[d.index()] = vec![pc];
                }
            }
            for &s in &b.succs {
                for (reg, defs) in state.iter().enumerate() {
                    for &pc in defs {
                        if !reach_in[s][reg].contains(&pc) {
                            reach_in[s][reg].push(pc);
                            changed = true;
                        }
                    }
                }
            }
        }
    }
    let mut used = vec![false; n];
    let mut at_exit = vec![false; n];
    for b in cfg.blocks() {
        if !b.reachable {
            continue;
        }
        let mut state = reach_in[b.id].clone();
        for pc in b.pcs() {
            let inst = program.get(pc).expect("pc in range");
            for s in inst.sources() {
                for &def_pc in &state[s.index()] {
                    used[def_pc as usize] = true;
                }
            }
            if let Some(d) = inst.dst {
                state[d.index()] = vec![pc];
            }
        }
        if b.succs.is_empty() || b.falls_off_end {
            for defs in &state {
                for &def_pc in defs {
                    at_exit[def_pc as usize] = true;
                }
            }
        }
    }
    DefUse { used, at_exit }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruu_isa::Asm;

    fn cfg_of(p: &Program) -> Cfg {
        Cfg::build(p)
    }

    #[test]
    fn regset_basics() {
        let mut s = RegSet::EMPTY;
        assert!(s.is_empty());
        s.insert(Reg::a(3));
        s.insert(Reg::t(63));
        assert!(s.contains(Reg::a(3)) && s.contains(Reg::t(63)));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().count(), 2);
        s.remove(Reg::a(3));
        assert!(!s.contains(Reg::a(3)));
        assert_eq!(RegSet::full().len(), NUM_REGS);
    }

    #[test]
    fn uninit_read_found_and_cleared_by_write() {
        let mut a = Asm::new("t");
        a.s_add(Reg::s(1), Reg::s(2), Reg::s(3)); // S2, S3 unwritten
        a.s_add(Reg::s(4), Reg::s(1), Reg::s(1)); // S1 now written: clean
        a.halt();
        let p = a.assemble().unwrap();
        let cfg = cfg_of(&p);
        let reads = uninit_reads(&p, &cfg, &RegSet::EMPTY);
        let regs: Vec<Reg> = reads.iter().map(|u| u.reg).collect();
        assert_eq!(regs, vec![Reg::s(2), Reg::s(3)]);
        // Assuming them initialized silences the findings.
        let preset: RegSet = [Reg::s(2), Reg::s(3)].into_iter().collect();
        assert!(uninit_reads(&p, &cfg, &preset).is_empty());
    }

    #[test]
    fn loop_carried_write_is_initialized_after_first_iteration_only() {
        // The loop body reads S1 before the body's own write on iteration
        // one, so the may-uninit analysis still flags it.
        let mut a = Asm::new("t");
        let top = a.new_label();
        a.a_imm(Reg::a(0), 2);
        a.bind(top);
        a.s_add(Reg::s(2), Reg::s(1), Reg::s(1));
        a.s_imm(Reg::s(1), 5);
        a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
        a.br_an(top);
        a.halt();
        let p = a.assemble().unwrap();
        let reads = uninit_reads(&p, &cfg_of(&p), &RegSet::EMPTY);
        assert!(reads.iter().any(|u| u.reg == Reg::s(1)));
    }

    #[test]
    fn liveness_sees_loop_carried_use() {
        let mut a = Asm::new("t");
        let top = a.new_label();
        a.a_imm(Reg::a(0), 3);
        a.bind(top);
        a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
        a.br_an(top);
        a.halt();
        let p = a.assemble().unwrap();
        let cfg = cfg_of(&p);
        let live = liveness(&p, &cfg);
        // A0 is live around the back edge.
        let body = cfg.block_of(1).id;
        assert!(live.live_in[body].contains(Reg::a(0)));
        assert!(live.live_out[body].contains(Reg::a(0)));
    }

    #[test]
    fn def_use_distinguishes_dead_and_unread_at_exit() {
        let mut a = Asm::new("t");
        a.s_imm(Reg::s(1), 1); // overwritten before any read: dead
        a.s_imm(Reg::s(1), 2); // read below
        a.s_add(Reg::s(2), Reg::s(1), Reg::s(1)); // S2 unread at halt
        a.halt();
        let p = a.assemble().unwrap();
        let du = def_use(&p, &cfg_of(&p));
        assert!(!du.used[0] && !du.at_exit[0]);
        assert!(du.used[1]);
        assert!(!du.used[2] && du.at_exit[2]);
    }

    #[test]
    fn loop_counter_write_has_a_use() {
        let mut a = Asm::new("t");
        let top = a.new_label();
        a.a_imm(Reg::a(0), 3);
        a.bind(top);
        a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
        a.br_an(top); // reads A0: both writes are used
        a.halt();
        let p = a.assemble().unwrap();
        let du = def_use(&p, &cfg_of(&p));
        assert!(du.used[0] && du.used[1]);
    }
}
