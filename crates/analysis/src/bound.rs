//! The dataflow-limit lower bound on cycles.
//!
//! The paper's central claim is that better issue logic moves a machine
//! closer to what the program's *data dependences* allow. This module
//! computes that limit for a concrete run: the critical path of the
//! latency-weighted RAW dependence graph over the **dynamic** instruction
//! stream recorded by the golden interpreter ([`Trace`]).
//!
//! Why this is a true lower bound for every simulator in the workspace:
//!
//! * it is computed over the dynamic trace, so only instructions that
//!   actually execute contribute (a static critical path over the
//!   program text would over-count unexecuted paths and *not* be a
//!   bound);
//! * each edge uses the **minimum achievable** producer latency under the
//!   given [`MachineConfig`]: loads take
//!   `min(memory latency, forward latency)` because load-register
//!   forwarding can satisfy a load without a memory trip, and branches /
//!   `Nop` / `Halt` (which resolve in the issue stage) contribute zero —
//!   so no simulator can complete a value earlier than the graph does;
//! * only true (RAW) register dependences are included. Omitting memory
//!   carried dependences, WAW/WAR hazards, structural hazards (one result
//!   bus, FU conflicts) and branch penalties only *lowers* the critical
//!   path, which keeps the bound valid;
//! * the machine decodes one instruction per cycle, so the dynamic
//!   instruction count is itself a lower bound; the reported bound is the
//!   maximum of the two.
//!
//! Any simulator reporting `cycles < bound` has a correctness bug — the
//! cross-check suite (`tests/dataflow_bound.rs`) asserts this for every
//! mechanism over every Livermore loop and over random synth programs.

use ruu_exec::Trace;
use ruu_isa::{FuClass, Inst, NUM_REGS};
use ruu_sim_core::MachineConfig;

/// The dataflow limit of one dynamic run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataflowBound {
    /// Length (in cycles) of the latency-weighted RAW critical path.
    pub critical_path: u64,
    /// Dynamic instruction count (a second bound: one decode per cycle).
    pub instructions: u64,
    /// The dataflow-limit lower bound on cycles:
    /// `max(critical_path, instructions)`.
    pub bound: u64,
}

impl DataflowBound {
    /// `bound / cycles`: how close an achieved cycle count comes to the
    /// dataflow limit (1.0 = at the limit). Returns `None` for
    /// `cycles == 0`.
    #[must_use]
    pub fn efficiency(&self, cycles: u64) -> Option<f64> {
        if cycles == 0 {
            None
        } else {
            #[allow(clippy::cast_precision_loss)]
            Some(self.bound as f64 / cycles as f64)
        }
    }
}

/// Minimum achievable producer latency of one dynamic instruction.
fn min_latency(inst: &Inst, config: &MachineConfig) -> u64 {
    match inst.fu_class() {
        // Branches, Nop, Halt resolve in the issue stage.
        None => 0,
        // A load may be satisfied from the load registers (forwarding)
        // instead of memory; take whichever path is faster.
        Some(FuClass::Memory) if inst.is_load() => config
            .fu_latency(FuClass::Memory)
            .min(config.forward_latency),
        Some(fu) => config.fu_latency(fu),
    }
}

/// Computes the dataflow-limit lower bound of `trace` under `config`.
#[must_use]
pub fn dataflow_bound(trace: &Trace, config: &MachineConfig) -> DataflowBound {
    // ready[r] = earliest cycle at which register r's current value can
    // exist, given only RAW dependences and minimum latencies.
    let mut ready = [0u64; NUM_REGS];
    let mut critical_path = 0u64;
    for ev in trace.events() {
        let start = ev
            .inst
            .sources()
            .map(|r| ready[r.index()])
            .max()
            .unwrap_or(0);
        let done = start + min_latency(&ev.inst, config);
        if let Some(d) = ev.inst.dst {
            ready[d.index()] = done;
        }
        critical_path = critical_path.max(done);
    }
    let instructions = trace.len() as u64;
    DataflowBound {
        critical_path,
        instructions,
        bound: critical_path.max(instructions),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruu_exec::Memory;
    use ruu_isa::{Asm, Reg};

    fn bound_of(a: Asm) -> DataflowBound {
        let p = a.assemble().unwrap();
        let t = Trace::capture(&p, Memory::new(1 << 8), 100_000).unwrap();
        dataflow_bound(&t, &MachineConfig::paper())
    }

    #[test]
    fn serial_chain_is_latency_times_length() {
        let mut a = Asm::new("chain");
        a.s_imm(Reg::s(1), 3);
        for _ in 0..10 {
            a.f_add(Reg::s(1), Reg::s(1), Reg::s(1)); // FloatAdd latency 6
        }
        a.halt();
        let b = bound_of(a);
        // One SImm producer plus ten chained FloatAdds at 6 cycles each.
        let simm_latency =
            MachineConfig::paper().fu_latency(ruu_isa::Opcode::SImm.fu_class().unwrap());
        assert_eq!(b.critical_path, simm_latency + 10 * 6);
        assert_eq!(b.bound, b.critical_path);
    }

    #[test]
    fn independent_ops_are_bounded_by_decode_width() {
        let mut a = Asm::new("ind");
        for i in 0..20 {
            a.s_imm(Reg::s(1 + (i % 7) as u8), i);
        }
        a.halt();
        let b = bound_of(a);
        assert_eq!(b.instructions, 20);
        // No chain longer than one op, so the decode bound dominates.
        assert_eq!(b.bound, 20);
    }

    #[test]
    fn loads_use_forwarding_latency_when_cheaper() {
        let mut a = Asm::new("ld");
        a.ld_s(Reg::s(1), Reg::a(1), 0);
        a.f_add(Reg::s(2), Reg::s(1), Reg::s(1));
        a.halt();
        let b = bound_of(a);
        let cfg = MachineConfig::paper();
        // forward_latency (1) < memory latency (11): chain is 1 + 6.
        assert_eq!(
            b.critical_path,
            cfg.forward_latency + cfg.fu_latency(FuClass::FloatAdd)
        );
    }

    #[test]
    fn branches_contribute_no_latency() {
        let mut a = Asm::new("br");
        let top = a.new_label();
        a.a_imm(Reg::a(0), 5);
        a.bind(top);
        a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
        a.br_an(top);
        a.halt();
        let b = bound_of(a);
        let cfg = MachineConfig::paper();
        let imm = cfg.fu_latency(ruu_isa::Opcode::AImm.fu_class().unwrap());
        let dec = cfg.fu_latency(ruu_isa::Opcode::ASubImm.fu_class().unwrap());
        // AImm then five chained decrements; branches add nothing.
        assert_eq!(b.critical_path, imm + 5 * dec);
        assert_eq!(b.instructions, 1 + 5 * 2);
        assert_eq!(b.bound, b.instructions.max(b.critical_path));
    }

    #[test]
    fn efficiency_is_bound_over_cycles() {
        let b = DataflowBound {
            critical_path: 50,
            instructions: 40,
            bound: 50,
        };
        assert_eq!(b.efficiency(100), Some(0.5));
        assert_eq!(b.efficiency(0), None);
    }
}
