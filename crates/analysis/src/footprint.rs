//! Static memory-footprint analysis: abstract interpretation of the A
//! (address) registers over an interval domain, checking every load/store
//! `base + displacement` range against the data-memory size.
//!
//! The domain tracks one interval per A register; everything else
//! (values loaded from memory, transfers from S/B, products that may
//! wrap) collapses to `Top`. Joins take the interval hull and widen to
//! `Top` after a bounded number of fixpoint passes, so loop-carried
//! induction pointers become `Top` (and are *not* reported) while
//! constant-addressed accesses — the prologue/epilogue traffic where
//! hand-compiled displacement bugs live — are checked exactly.
//! [`ruu_exec::Memory`] masks addresses instead of trapping, so an
//! out-of-range access silently wraps onto unrelated data: always a bug
//! in a workload.

use ruu_isa::{Opcode, Program, Reg, RegFile};

use crate::cfg::Cfg;

/// Number of round-robin fixpoint passes before joins widen to `Top`.
const WIDEN_AFTER: usize = 4;

/// An abstract A-register value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interval {
    /// Unknown (any `u64`).
    Top,
    /// All values in `lo..=hi` (within `u64` range; `lo <= hi`).
    Range(i128, i128),
}

impl Interval {
    /// The constant `v`.
    #[must_use]
    pub fn constant(v: i128) -> Self {
        Interval::Range(v, v)
    }

    /// Normalizes a candidate range: any bound outside the `u64` value
    /// range means the wrapping semantics may apply, so the result is
    /// unknown.
    fn norm(lo: i128, hi: i128) -> Self {
        if lo < 0 || hi > i128::from(u64::MAX) {
            Interval::Top
        } else {
            Interval::Range(lo, hi)
        }
    }

    fn add(self, other: Interval) -> Interval {
        match (self, other) {
            (Interval::Range(a, b), Interval::Range(c, d)) => Interval::norm(a + c, b + d),
            _ => Interval::Top,
        }
    }

    fn sub(self, other: Interval) -> Interval {
        match (self, other) {
            (Interval::Range(a, b), Interval::Range(c, d)) => Interval::norm(a - d, b - c),
            _ => Interval::Top,
        }
    }

    fn mul(self, other: Interval) -> Interval {
        match (self, other) {
            (Interval::Range(a, b), Interval::Range(c, d)) => {
                let products = [a * c, a * d, b * c, b * d];
                let lo = products.iter().copied().min().expect("nonempty");
                let hi = products.iter().copied().max().expect("nonempty");
                Interval::norm(lo, hi)
            }
            _ => Interval::Top,
        }
    }

    /// Interval hull; widens straight to `Top` when `widen` is set and
    /// the hull would grow.
    fn join(self, other: Interval, widen: bool) -> Interval {
        match (self, other) {
            (Interval::Range(a, b), Interval::Range(c, d)) => {
                let hull = Interval::Range(a.min(c), b.max(d));
                if widen && hull != self {
                    Interval::Top
                } else {
                    hull
                }
            }
            _ => Interval::Top,
        }
    }
}

/// How a statically-bounded effective-address range relates to the
/// data-memory size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessVerdict {
    /// Every address the access can produce is out of range.
    DefinitelyOut,
    /// The range is bounded and some (not all) addresses are out of range.
    PossiblyOut,
}

/// A load/store whose statically-known address range escapes memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FootprintFinding {
    /// Pc of the memory instruction.
    pub pc: u32,
    /// Smallest effective address the access can produce.
    pub lo: i128,
    /// Largest effective address the access can produce.
    pub hi: i128,
    /// Whether the whole range or only part of it is out of bounds.
    pub verdict: AccessVerdict,
}

/// Abstract state: one interval per A register.
type AState = [Interval; 8];

fn transfer(inst: &ruu_isa::Inst, state: &mut AState) {
    let Some(d) = inst.dst else { return };
    if d.file() != RegFile::A {
        return;
    }
    let get = |state: &AState, r: Option<Reg>| -> Interval {
        match r {
            Some(r) if r.file() == RegFile::A => state[r.num() as usize],
            _ => Interval::Top,
        }
    };
    let v = match inst.opcode {
        Opcode::AImm => Interval::norm(i128::from(inst.imm), i128::from(inst.imm)),
        Opcode::AAdd => get(state, inst.src1).add(get(state, inst.src2)),
        Opcode::ASub => get(state, inst.src1).sub(get(state, inst.src2)),
        Opcode::AMul => get(state, inst.src1).mul(get(state, inst.src2)),
        Opcode::AAddImm => get(state, inst.src1).add(Interval::constant(i128::from(inst.imm))),
        Opcode::ASubImm => get(state, inst.src1).sub(Interval::constant(i128::from(inst.imm))),
        // popcount/leading-zeros of a 64-bit word.
        Opcode::SPop | Opcode::SLz => Interval::Range(0, 64),
        // Loads, transfers from S/B: unknown.
        _ => Interval::Top,
    };
    state[d.num() as usize] = v;
}

/// Runs the footprint analysis over the reachable region and reports
/// every memory access whose bounded address range escapes
/// `memory_words`. `Top` base registers produce no findings.
#[must_use]
pub fn footprint(program: &Program, cfg: &Cfg, memory_words: u64) -> Vec<FootprintFinding> {
    let nb = cfg.blocks().len();
    if nb == 0 {
        return Vec::new();
    }
    // Registers are architecturally zeroed at program start.
    let entry: AState = [Interval::constant(0); 8];
    let bottom: AState = [Interval::Range(1, 0); 8]; // unvisited marker
    let mut in_state: Vec<Option<AState>> = vec![None; nb];
    in_state[0] = Some(entry);
    // Terminates: once widening kicks in every join that still grows goes
    // straight to `Top`, which is final, so at most one more change per
    // (block, register) slot remains.
    let mut pass = 0usize;
    loop {
        let widen = pass >= WIDEN_AFTER;
        pass += 1;
        let mut changed = false;
        for b in cfg.blocks() {
            if !b.reachable {
                continue;
            }
            let Some(mut state) = in_state[b.id] else {
                continue;
            };
            for pc in b.pcs() {
                transfer(program.get(pc).expect("pc in range"), &mut state);
            }
            for &s in &b.succs {
                let joined = match in_state[s] {
                    None => state,
                    Some(prev) => {
                        let mut j = bottom;
                        for (i, slot) in j.iter_mut().enumerate() {
                            *slot = prev[i].join(state[i], widen);
                        }
                        j
                    }
                };
                if in_state[s] != Some(joined) {
                    in_state[s] = Some(joined);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let words = i128::from(memory_words);
    let mut findings = Vec::new();
    for b in cfg.blocks() {
        if !b.reachable {
            continue;
        }
        let Some(mut state) = in_state[b.id] else {
            continue;
        };
        for pc in b.pcs() {
            let inst = program.get(pc).expect("pc in range");
            if inst.is_mem() {
                let base = match inst.src1 {
                    Some(r) if r.file() == RegFile::A => state[r.num() as usize],
                    _ => Interval::Top,
                };
                // Raw mathematical range of base + displacement: a value
                // outside [0, words) wraps onto unrelated data, which is
                // exactly what this lint reports, so no u64 normalization
                // here.
                if let Interval::Range(b_lo, b_hi) = base {
                    let (lo, hi) = (b_lo + i128::from(inst.imm), b_hi + i128::from(inst.imm));
                    let verdict = if hi < 0 || lo >= words {
                        Some(AccessVerdict::DefinitelyOut)
                    } else if lo < 0 || hi >= words {
                        Some(AccessVerdict::PossiblyOut)
                    } else {
                        None
                    };
                    if let Some(verdict) = verdict {
                        findings.push(FootprintFinding {
                            pc,
                            lo,
                            hi,
                            verdict,
                        });
                    }
                }
            }
            transfer(inst, &mut state);
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruu_isa::Asm;

    #[test]
    fn constant_oob_store_is_definite() {
        let mut a = Asm::new("t");
        a.a_imm(Reg::a(1), 100);
        a.st_s(Reg::s(1), Reg::a(1), 30); // ea = 130, memory = 64 words
        a.halt();
        let p = a.assemble().unwrap();
        let f = footprint(&p, &Cfg::build(&p), 64);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].verdict, AccessVerdict::DefinitelyOut);
        assert_eq!((f[0].lo, f[0].hi), (130, 130));
    }

    #[test]
    fn in_bounds_access_is_clean_and_loop_pointer_goes_top() {
        let mut a = Asm::new("t");
        let top = a.new_label();
        a.a_imm(Reg::a(0), 4);
        a.a_imm(Reg::a(1), 8);
        a.bind(top);
        a.ld_s(Reg::s(1), Reg::a(1), 0);
        a.a_add_imm(Reg::a(1), Reg::a(1), 1); // unbounded by intervals
        a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
        a.br_an(top);
        a.halt();
        let p = a.assemble().unwrap();
        // The induction pointer widens to Top, so no (false) findings.
        assert!(footprint(&p, &Cfg::build(&p), 64).is_empty());
    }

    #[test]
    fn negative_displacement_from_zero_base_is_flagged() {
        let mut a = Asm::new("t");
        a.ld_s(Reg::s(1), Reg::a(1), -5); // A1 is architecturally 0
        a.halt();
        let p = a.assemble().unwrap();
        let f = footprint(&p, &Cfg::build(&p), 64);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].verdict, AccessVerdict::DefinitelyOut);
        assert_eq!(f[0].lo, -5);
    }

    #[test]
    fn interval_arithmetic_edges() {
        let c = Interval::constant;
        assert_eq!(c(3).add(c(4)), c(7));
        assert_eq!(c(3).sub(c(4)), Interval::Top); // would wrap below 0
        assert_eq!(
            Interval::Range(2, 3).mul(Interval::Range(4, 5)),
            Interval::Range(8, 15)
        );
        assert_eq!(c(1).join(c(5), false), Interval::Range(1, 5));
        assert_eq!(c(1).join(c(5), true), Interval::Top);
        assert_eq!(c(1).join(c(1), true), c(1));
    }
}
