//! Control-flow graph construction over a [`Program`].
//!
//! Basic blocks are maximal straight-line runs of instructions: a leader
//! starts at pc 0, at every branch target, and immediately after every
//! branch or `Halt`. Successor edges follow the [`ruu_isa::Inst`]
//! conventions (`target` is `Some` exactly for branches; conditional
//! branches also fall through). Reachability is computed from block 0 so
//! lints can flag dead code and restrict dataflow to executable paths.

use ruu_isa::Program;

/// A maximal straight-line run of instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Block id (index into [`Cfg::blocks`]).
    pub id: usize,
    /// First instruction pc (inclusive).
    pub start: u32,
    /// One past the last instruction pc (exclusive); always `> start`.
    pub end: u32,
    /// Successor block ids, in (branch target, fallthrough) order.
    pub succs: Vec<usize>,
    /// Predecessor block ids, ascending.
    pub preds: Vec<usize>,
    /// `true` if execution can leave this block by running past the last
    /// program instruction (no `Halt`, no unconditional branch).
    pub falls_off_end: bool,
    /// `true` if the block is reachable from the program entry.
    pub reachable: bool,
}

impl BasicBlock {
    /// Iterator over the pcs of this block's instructions.
    pub fn pcs(&self) -> impl Iterator<Item = u32> {
        self.start..self.end
    }
}

/// A control-flow graph: basic blocks plus a pc → block index.
#[derive(Debug, Clone)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    /// `block_of[pc]` = id of the block containing `pc`.
    block_of: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG of `program`.
    ///
    /// An empty program yields an empty CFG (no blocks).
    #[must_use]
    pub fn build(program: &Program) -> Self {
        let n = program.len();
        if n == 0 {
            return Cfg {
                blocks: Vec::new(),
                block_of: Vec::new(),
            };
        }
        // Leaders: entry, branch targets, instruction after a branch/Halt.
        let mut leader = vec![false; n];
        leader[0] = true;
        for (pc, inst) in program.iter().enumerate() {
            if let Some(t) = inst.target {
                leader[t as usize] = true;
                if pc + 1 < n {
                    leader[pc + 1] = true;
                }
            } else if inst.is_halt() && pc + 1 < n {
                leader[pc + 1] = true;
            }
        }
        // Carve blocks.
        let mut blocks: Vec<BasicBlock> = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0usize;
        for pc in 0..n {
            block_of[pc] = blocks.len();
            let last = pc + 1 == n || leader[pc + 1];
            if last {
                blocks.push(BasicBlock {
                    id: blocks.len(),
                    start: start as u32,
                    end: (pc + 1) as u32,
                    succs: Vec::new(),
                    preds: Vec::new(),
                    falls_off_end: false,
                    reachable: false,
                });
                start = pc + 1;
            }
        }
        // Successor edges from each block's terminator.
        for block in &mut blocks {
            let tail = block.end as usize - 1;
            let inst = program.get(tail as u32).expect("pc in range");
            let mut succs = Vec::new();
            let mut falls_off = false;
            if let Some(t) = inst.target {
                succs.push(block_of[t as usize]);
                if inst.opcode.is_cond_branch() {
                    if tail + 1 < n {
                        succs.push(block_of[tail + 1]);
                    } else {
                        falls_off = true;
                    }
                }
            } else if !inst.is_halt() {
                if tail + 1 < n {
                    succs.push(block_of[tail + 1]);
                } else {
                    falls_off = true;
                }
            }
            block.falls_off_end = falls_off;
            block.succs = succs;
        }
        // Predecessors + reachability (DFS from block 0).
        for b in 0..blocks.len() {
            for s in blocks[b].succs.clone() {
                if !blocks[s].preds.contains(&b) {
                    blocks[s].preds.push(b);
                }
            }
        }
        for b in &mut blocks {
            b.preds.sort_unstable();
        }
        let mut stack = vec![0usize];
        while let Some(b) = stack.pop() {
            if blocks[b].reachable {
                continue;
            }
            blocks[b].reachable = true;
            stack.extend(blocks[b].succs.iter().copied());
        }
        Cfg { blocks, block_of }
    }

    /// All basic blocks, in program order.
    #[must_use]
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The block containing `pc`.
    ///
    /// # Panics
    /// Panics if `pc` is out of program range.
    #[must_use]
    pub fn block_of(&self, pc: u32) -> &BasicBlock {
        &self.blocks[self.block_of[pc as usize]]
    }

    /// `true` if the instruction at `pc` is on some path from the entry.
    #[must_use]
    pub fn is_reachable(&self, pc: u32) -> bool {
        self.block_of(pc).reachable
    }

    /// Blocks that execution can exit the program from: a reachable block
    /// ending in `Halt` or falling past the last instruction.
    pub fn exit_blocks(&self) -> impl Iterator<Item = &BasicBlock> {
        self.blocks
            .iter()
            .filter(|b| b.reachable && (b.succs.is_empty() || b.falls_off_end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruu_isa::{Asm, Reg};

    fn counted_loop() -> Program {
        let mut a = Asm::new("t");
        let top = a.new_label();
        a.a_imm(Reg::a(0), 3);
        a.bind(top);
        a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
        a.br_an(top);
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn loop_blocks_and_edges() {
        let cfg = Cfg::build(&counted_loop());
        // [a_imm] [sub; br] [halt]
        assert_eq!(cfg.blocks().len(), 3);
        assert_eq!(cfg.blocks()[0].succs, vec![1]);
        assert_eq!(cfg.blocks()[1].succs, vec![1, 2]);
        assert!(cfg.blocks()[2].succs.is_empty());
        assert!(cfg.blocks().iter().all(|b| b.reachable));
        assert_eq!(cfg.blocks()[1].preds, vec![0, 1]);
        assert_eq!(cfg.exit_blocks().count(), 1);
    }

    #[test]
    fn code_after_halt_is_unreachable() {
        let mut a = Asm::new("t");
        a.halt();
        a.nop();
        let cfg = Cfg::build(&a.assemble().unwrap());
        assert_eq!(cfg.blocks().len(), 2);
        assert!(cfg.blocks()[0].reachable);
        assert!(!cfg.blocks()[1].reachable);
        assert!(!cfg.is_reachable(1));
    }

    #[test]
    fn missing_halt_falls_off_end() {
        let mut a = Asm::new("t");
        a.nop();
        a.nop();
        let cfg = Cfg::build(&a.assemble().unwrap());
        let last = cfg.blocks().last().unwrap();
        assert!(last.falls_off_end);
        assert_eq!(cfg.exit_blocks().count(), 1);
    }

    #[test]
    fn empty_program_is_empty_cfg() {
        let p = Program::from_parts("empty", Vec::new());
        let cfg = Cfg::build(&p);
        assert!(cfg.blocks().is_empty());
    }
}
