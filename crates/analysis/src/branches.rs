//! Static branch-site census over a program.
//!
//! The dynamic side of the branch-prediction subsystem (`ruu-predict`)
//! reports per-site accuracy from a trace; this module is its static
//! counterpart: every branch *site* in the program text, classified by
//! kind and direction, with CFG reachability so dead sites are visible.
//! The `ruu-sim lint --branch-sites` view uses it to sanity-check the
//! dynamic per-site tables (a CBP replay can never report more distinct
//! conditional sites than the census counts).

use ruu_isa::Program;

use crate::cfg::Cfg;

/// One static branch instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchSite {
    /// The branch's pc.
    pub pc: u32,
    /// Decoded target pc.
    pub target: u32,
    /// `true` for conditional branches, `false` for unconditional jumps.
    pub conditional: bool,
    /// `true` if the branch jumps backward (`target <= pc`) — the static
    /// loop heuristic BTFN keys on.
    pub backward: bool,
    /// `true` if the CFG reaches this site from the program entry.
    pub reachable: bool,
}

/// The static branch census of one program.
#[derive(Debug, Clone, Default)]
pub struct BranchCensus {
    /// Every branch site, ascending pc.
    pub sites: Vec<BranchSite>,
}

impl BranchCensus {
    /// Conditional branch sites.
    #[must_use]
    pub fn conditional(&self) -> usize {
        self.sites.iter().filter(|s| s.conditional).count()
    }

    /// Unconditional jump sites.
    #[must_use]
    pub fn unconditional(&self) -> usize {
        self.sites.len() - self.conditional()
    }

    /// Backward (loop-shaped) branch sites.
    #[must_use]
    pub fn backward(&self) -> usize {
        self.sites.iter().filter(|s| s.backward).count()
    }

    /// Sites the CFG cannot reach from the entry.
    #[must_use]
    pub fn unreachable(&self) -> usize {
        self.sites.iter().filter(|s| !s.reachable).count()
    }

    /// Reachable conditional sites — the upper bound on distinct
    /// conditional pcs any trace of this program can touch.
    #[must_use]
    pub fn reachable_conditional(&self) -> usize {
        self.sites
            .iter()
            .filter(|s| s.conditional && s.reachable)
            .count()
    }
}

/// Enumerates every branch site of `program`, with CFG reachability.
#[must_use]
pub fn branch_sites(program: &Program) -> BranchCensus {
    let cfg = Cfg::build(program);
    let sites = program
        .iter()
        .enumerate()
        .filter_map(|(pc, inst)| {
            let target = inst.target?;
            let pc = pc as u32;
            Some(BranchSite {
                pc,
                target,
                conditional: inst.opcode.is_cond_branch(),
                backward: target <= pc,
                reachable: cfg.is_reachable(pc),
            })
        })
        .collect();
    BranchCensus { sites }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruu_isa::{Asm, Reg};

    #[test]
    fn census_classifies_kinds_and_directions() {
        let mut a = Asm::new("t");
        let top = a.new_label();
        let skip = a.new_label();
        a.a_imm(Reg::a(0), 4);
        a.bind(top);
        a.br_az(skip); // forward conditional
        a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
        a.bind(skip);
        a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
        a.br_an(top); // backward conditional
        a.jump(top); // backward unconditional (dead: br_an falls to halt)
        a.halt();
        let p = a.assemble().unwrap();
        let c = branch_sites(&p);
        assert_eq!(c.sites.len(), 3);
        assert_eq!(c.conditional(), 2);
        assert_eq!(c.unconditional(), 1);
        assert_eq!(c.backward(), 2);
        assert_eq!(c.reachable_conditional(), 2);
        let fwd = c.sites.iter().find(|s| !s.backward).unwrap();
        assert!(fwd.conditional && fwd.target > fwd.pc);
    }

    #[test]
    fn unreachable_sites_are_flagged() {
        let mut a = Asm::new("t");
        let top = a.new_label();
        let dead = a.new_label();
        a.bind(top);
        a.a_imm(Reg::a(0), 1);
        a.halt();
        a.bind(dead);
        a.br_an(top); // after halt: never reached
        let p = a.assemble().unwrap();
        let c = branch_sites(&p);
        assert_eq!(c.sites.len(), 1);
        assert_eq!(c.unreachable(), 1);
        assert_eq!(c.reachable_conditional(), 0);
    }

    #[test]
    fn livermore_census_bounds_the_dynamic_site_count() {
        for w in ruu_workloads::livermore::all() {
            let c = branch_sites(&w.program);
            assert!(c.conditional() > 0, "{} has a loop branch", w.name);
            assert!(
                c.backward() > 0,
                "{} is loop-shaped, so some branch is backward",
                w.name
            );
        }
    }
}
