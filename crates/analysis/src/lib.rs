//! # ruu-analysis — static analysis for RUU programs
//!
//! Everything else in this workspace *executes* programs; this crate
//! reasons about them statically (and, for the dataflow bound, over the
//! golden interpreter's dynamic trace — still without touching a timing
//! simulator). Five layers:
//!
//! * [`cfg`] — basic blocks, branch edges, reachability;
//! * [`branches`] — the static branch-site census ([`branch_sites`]):
//!   every branch pc classified by kind/direction with reachability,
//!   bounding the per-site tables of the dynamic CBP harness;
//! * [`dataflow`] — register bitsets ([`RegSet`]), liveness,
//!   may-uninitialized reads, reaching-definition def→use chains;
//! * [`footprint`] — interval abstract interpretation of the A registers
//!   checking load/store address ranges against the data-memory size;
//! * [`lint`] — the typed diagnostic driver ([`lint()`]) over all of the
//!   above, with inline [`Waiver`]s for intentional findings;
//! * [`bound`] — the **dataflow-limit lower bound on cycles**
//!   ([`dataflow_bound`]): the latency-weighted RAW critical path of a
//!   dynamic trace under a [`ruu_sim_core::MachineConfig`]. Every timing
//!   simulator must report `cycles >= bound`; the workspace cross-check
//!   suite enforces exactly that.
//!
//! DESIGN.md §6 documents the lattices, the lint catalog, and the
//! argument that the bound is a true lower bound.

pub mod bound;
pub mod branches;
pub mod cfg;
pub mod dataflow;
pub mod footprint;
pub mod lint;

pub use bound::{dataflow_bound, DataflowBound};
pub use branches::{branch_sites, BranchCensus, BranchSite};
pub use cfg::{BasicBlock, Cfg};
pub use dataflow::{def_use, liveness, uninit_reads, DefUse, Liveness, RegSet};
pub use footprint::{footprint, AccessVerdict, FootprintFinding, Interval};
pub use lint::{apply_waivers, lint, Finding, LintKind, LintOptions, Severity, Waiver};
