//! The lint driver: typed diagnostics over the CFG, dataflow and
//! footprint analyses, plus the waiver mechanism workloads use to
//! acknowledge intentional findings inline.

use std::fmt;

use ruu_isa::Program;

use crate::cfg::Cfg;
use crate::dataflow::{self, RegSet};
use crate::footprint::{self, AccessVerdict};

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not necessarily wrong.
    Warning,
    /// Almost certainly a bug (bad control flow, provable out-of-bounds).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The catalog of lints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintKind {
    /// A register is read on some path before any instruction writes it.
    /// Registers are architecturally zeroed, so this is well-defined but
    /// usually means a missing initialization.
    UninitRead,
    /// A write that is overwritten on every path before any read.
    DeadWrite,
    /// A write whose value is still current at program exit but never
    /// read: computed and then discarded.
    UnreadAtHalt,
    /// Instructions not reachable from the program entry.
    UnreachableCode,
    /// Execution can run past the last instruction (no `Halt` on some
    /// path) — the interpreter traps with `PcOutOfRange`.
    FallthroughEnd,
    /// An unconditional jump to its own pc: guaranteed livelock.
    InfiniteSelfLoop,
    /// No reachable `Halt` anywhere: the program cannot terminate
    /// normally.
    MissingHalt,
    /// A load/store whose statically-bounded address range escapes the
    /// data memory; the memory wraps addresses instead of trapping, so
    /// the access lands on unrelated data.
    OobAccess,
}

impl fmt::Display for LintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LintKind::UninitRead => "uninit-read",
            LintKind::DeadWrite => "dead-write",
            LintKind::UnreadAtHalt => "unread-at-halt",
            LintKind::UnreachableCode => "unreachable-code",
            LintKind::FallthroughEnd => "fallthrough-end",
            LintKind::InfiniteSelfLoop => "infinite-self-loop",
            LintKind::MissingHalt => "missing-halt",
            LintKind::OobAccess => "oob-access",
        };
        write!(f, "{s}")
    }
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which lint fired.
    pub kind: LintKind,
    /// How severe it is.
    pub severity: Severity,
    /// The pc the finding is anchored to (`None` for whole-program
    /// findings such as [`LintKind::MissingHalt`]).
    pub pc: Option<u32>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pc {
            Some(pc) => write!(
                f,
                "{}[{}] at pc {pc}: {}",
                self.severity, self.kind, self.message
            ),
            None => write!(f, "{}[{}]: {}", self.severity, self.kind, self.message),
        }
    }
}

/// An inline acknowledgement that a specific finding is intentional.
///
/// Waivers live next to the code they waive (e.g. in a Livermore kernel
/// builder) and must carry a reason; [`apply_waivers`] drops matching
/// findings and reports waivers that matched nothing (a stale waiver is
/// itself suspicious).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Waiver {
    /// The lint being waived.
    pub kind: LintKind,
    /// The pc of the waived finding (`None` waives a whole-program
    /// finding of this kind).
    pub pc: Option<u32>,
    /// Why the finding is intentional.
    pub reason: &'static str,
}

impl Waiver {
    /// A waiver for a pc-anchored finding.
    #[must_use]
    pub fn at(kind: LintKind, pc: u32, reason: &'static str) -> Self {
        Waiver {
            kind,
            pc: Some(pc),
            reason,
        }
    }

    /// `true` if this waiver covers `finding`.
    #[must_use]
    pub fn matches(&self, finding: &Finding) -> bool {
        self.kind == finding.kind && self.pc == finding.pc
    }
}

/// Knobs for [`lint`].
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Registers to treat as initialized at entry (e.g. a harness preset
    /// that fills load registers before the kernel runs).
    pub assume_initialized: RegSet,
    /// Data-memory size in words for the footprint check; `None` skips
    /// the out-of-bounds analysis.
    pub memory_words: Option<u64>,
}

impl LintOptions {
    /// Options matching how workloads actually run: no registers
    /// pre-initialized, footprint checked against `memory_words`.
    #[must_use]
    pub fn for_memory(memory_words: u64) -> Self {
        LintOptions {
            assume_initialized: RegSet::EMPTY,
            memory_words: Some(memory_words),
        }
    }
}

/// Runs every lint over `program` and returns the findings in pc order
/// (whole-program findings last).
#[must_use]
pub fn lint(program: &Program, opts: &LintOptions) -> Vec<Finding> {
    let cfg = Cfg::build(program);
    let mut findings = Vec::new();

    // ---- branch-shape lints (CFG only) -------------------------------
    for b in cfg.blocks() {
        if !b.reachable {
            findings.push(Finding {
                kind: LintKind::UnreachableCode,
                severity: Severity::Warning,
                pc: Some(b.start),
                message: format!(
                    "instructions {}..{} are unreachable from the entry",
                    b.start,
                    b.end - 1
                ),
            });
            continue;
        }
        if b.falls_off_end {
            findings.push(Finding {
                kind: LintKind::FallthroughEnd,
                severity: Severity::Error,
                pc: Some(b.end - 1),
                message: "execution can run past the last instruction (missing halt on this path)"
                    .to_string(),
            });
        }
        let tail = b.end - 1;
        let inst = program.get(tail).expect("pc in range");
        if inst.opcode == ruu_isa::Opcode::Jump && inst.target == Some(tail) {
            findings.push(Finding {
                kind: LintKind::InfiniteSelfLoop,
                severity: Severity::Error,
                pc: Some(tail),
                message: "unconditional jump to itself never terminates".to_string(),
            });
        }
    }
    let has_reachable_halt = cfg.blocks().iter().any(|b| {
        b.reachable
            && b.pcs()
                .any(|pc| program.get(pc).expect("pc in range").is_halt())
    });
    if !program.is_empty() && !has_reachable_halt {
        findings.push(Finding {
            kind: LintKind::MissingHalt,
            severity: Severity::Warning,
            pc: None,
            message: "no reachable halt: the program cannot terminate normally".to_string(),
        });
    }

    // ---- dataflow lints ----------------------------------------------
    for u in dataflow::uninit_reads(program, &cfg, &opts.assume_initialized) {
        let inst = program.get(u.pc).expect("pc in range");
        findings.push(Finding {
            kind: LintKind::UninitRead,
            severity: Severity::Warning,
            pc: Some(u.pc),
            message: format!(
                "`{inst}` reads {} before any write (architecturally zero)",
                u.reg
            ),
        });
    }
    let du = dataflow::def_use(program, &cfg);
    for b in cfg.blocks().iter().filter(|b| b.reachable) {
        for pc in b.pcs() {
            let inst = program.get(pc).expect("pc in range");
            let Some(d) = inst.dst else { continue };
            if du.used[pc as usize] {
                continue;
            }
            if du.at_exit[pc as usize] {
                findings.push(Finding {
                    kind: LintKind::UnreadAtHalt,
                    severity: Severity::Warning,
                    pc: Some(pc),
                    message: format!("`{inst}` computes {d} but nothing reads it before halt"),
                });
            } else {
                findings.push(Finding {
                    kind: LintKind::DeadWrite,
                    severity: Severity::Warning,
                    pc: Some(pc),
                    message: format!("`{inst}` writes {d}, which is overwritten before any read"),
                });
            }
        }
    }

    // ---- memory footprint --------------------------------------------
    if let Some(words) = opts.memory_words {
        for f in footprint::footprint(program, &cfg, words) {
            let inst = program.get(f.pc).expect("pc in range");
            let (severity, what) = match f.verdict {
                AccessVerdict::DefinitelyOut => (Severity::Error, "is entirely outside"),
                AccessVerdict::PossiblyOut => (Severity::Warning, "can escape"),
            };
            findings.push(Finding {
                kind: LintKind::OobAccess,
                severity,
                pc: Some(f.pc),
                message: format!(
                    "`{inst}` address range [{}, {}] {what} memory of {words} words",
                    f.lo, f.hi
                ),
            });
        }
    }

    findings.sort_by_key(|f| (f.pc.is_none(), f.pc, f.kind as u32));
    findings
}

/// Drops findings covered by `waivers`. Returns the surviving findings
/// plus the indices of waivers that matched nothing (stale waivers).
#[must_use]
pub fn apply_waivers(findings: Vec<Finding>, waivers: &[Waiver]) -> (Vec<Finding>, Vec<usize>) {
    let mut matched = vec![false; waivers.len()];
    let remaining: Vec<Finding> = findings
        .into_iter()
        .filter(|f| {
            let mut waived = false;
            for (i, w) in waivers.iter().enumerate() {
                if w.matches(f) {
                    matched[i] = true;
                    waived = true;
                }
            }
            !waived
        })
        .collect();
    let stale = matched
        .iter()
        .enumerate()
        .filter_map(|(i, &m)| (!m).then_some(i))
        .collect();
    (remaining, stale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruu_isa::{Asm, Reg};

    fn lint_default(a: Asm) -> Vec<Finding> {
        lint(&a.assemble().unwrap(), &LintOptions::for_memory(1 << 8))
    }

    fn kinds(findings: &[Finding]) -> Vec<LintKind> {
        findings.iter().map(|f| f.kind).collect()
    }

    #[test]
    fn clean_loop_has_no_findings() {
        let mut a = Asm::new("clean");
        let top = a.new_label();
        a.a_imm(Reg::a(0), 4);
        a.a_imm(Reg::a(1), 8);
        a.bind(top);
        a.ld_s(Reg::s(1), Reg::a(1), 0);
        a.st_s(Reg::s(1), Reg::a(1), 32);
        a.a_add_imm(Reg::a(1), Reg::a(1), 1);
        a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
        a.br_an(top);
        a.halt();
        assert_eq!(lint_default(a), Vec::new());
    }

    #[test]
    fn uninit_read_and_dead_write_fire() {
        let mut a = Asm::new("t");
        a.s_add(Reg::s(1), Reg::s(2), Reg::s(2)); // uninit S2; S1 dead
        a.s_imm(Reg::s(1), 7); // unread at halt
        a.halt();
        let f = lint_default(a);
        assert_eq!(
            kinds(&f),
            vec![
                LintKind::UninitRead,
                LintKind::DeadWrite,
                LintKind::UnreadAtHalt
            ]
        );
        assert!(f.iter().all(|x| x.severity == Severity::Warning));
        assert!(f[0].to_string().contains("S2"));
    }

    #[test]
    fn control_flow_errors_fire() {
        let mut a = Asm::new("t");
        let own = a.new_label();
        a.bind(own);
        a.jump(own); // self-loop
        a.nop(); // unreachable, and the nop path falls off the end
        let f = lint_default(a);
        assert!(kinds(&f).contains(&LintKind::InfiniteSelfLoop));
        assert!(kinds(&f).contains(&LintKind::UnreachableCode));
        assert!(kinds(&f).contains(&LintKind::MissingHalt));
        assert!(f
            .iter()
            .any(|x| x.kind == LintKind::InfiniteSelfLoop && x.severity == Severity::Error));
    }

    #[test]
    fn fallthrough_end_is_an_error() {
        let mut a = Asm::new("t");
        a.a_imm(Reg::a(1), 1);
        a.a_add_imm(Reg::a(1), Reg::a(1), 1);
        let f = lint_default(a);
        assert!(f
            .iter()
            .any(|x| x.kind == LintKind::FallthroughEnd && x.severity == Severity::Error));
    }

    #[test]
    fn oob_store_is_reported_with_range() {
        let mut a = Asm::new("t");
        a.a_imm(Reg::a(1), 300);
        a.st_s(Reg::s(1), Reg::a(1), 0);
        a.halt();
        let p = a.assemble().unwrap();
        let f = lint(
            &p,
            &LintOptions {
                assume_initialized: [Reg::s(1)].into_iter().collect(),
                memory_words: Some(256),
            },
        );
        assert_eq!(kinds(&f), vec![LintKind::OobAccess]);
        assert_eq!(f[0].severity, Severity::Error);
        assert!(f[0].message.contains("[300, 300]"));
    }

    #[test]
    fn waivers_drop_findings_and_report_stale_ones() {
        let mut a = Asm::new("t");
        a.s_imm(Reg::s(1), 7); // unread at halt
        a.halt();
        let p = a.assemble().unwrap();
        let findings = lint(&p, &LintOptions::default());
        assert_eq!(findings.len(), 1);
        let waivers = [
            Waiver::at(LintKind::UnreadAtHalt, 0, "test waiver"),
            Waiver::at(LintKind::DeadWrite, 9, "matches nothing"),
        ];
        let (rest, stale) = apply_waivers(findings, &waivers);
        assert!(rest.is_empty());
        assert_eq!(stale, vec![1]);
    }

    #[test]
    fn findings_display_severity_kind_and_pc() {
        let f = Finding {
            kind: LintKind::DeadWrite,
            severity: Severity::Warning,
            pc: Some(3),
            message: "m".to_string(),
        };
        assert_eq!(f.to_string(), "warning[dead-write] at pc 3: m");
    }
}
