//! Golden CBP-replay numbers over the Livermore suite.
//!
//! The per-loop TwoBit(64) snapshot pins the paper-era default predictor:
//! any change to the branch-stream extraction, the replay loop, or the
//! two-bit dynamics shows up here as an exact-count diff. The ablation
//! test pins the headline result of the predictor zoo — TAGE-lite
//! strictly beats the calibrated TwoBit(64) default in total
//! mispredictions, because its BTFN-primed base wins the cold
//! first-occurrences that dominate once-through kernel traces.

use ruu_predict::cbp::{evaluate, evaluate_with_btb, BranchStream};
use ruu_predict::{Btb, PredictorConfig};
use ruu_workloads::livermore;

/// Replays every Livermore loop through `cfg` with a fresh predictor per
/// loop (CBP convention), returning `(loop, cond_branches, mispredicts)`
/// rows plus the total instruction count.
fn replay_suite(cfg: PredictorConfig) -> (Vec<(&'static str, u64, u64)>, u64) {
    let mut rows = Vec::new();
    let mut instructions = 0;
    for w in livermore::all() {
        let trace = w.golden_trace().expect("golden run succeeds");
        let stream = BranchStream::from_trace(&trace);
        let mut p = cfg.build();
        let r = evaluate(&stream, p.as_mut());
        instructions += r.instructions;
        rows.push((w.name, r.cond_branches, r.mispredicts));
    }
    (rows, instructions)
}

#[test]
fn twobit64_per_loop_golden_snapshot() {
    // Exact per-loop conditional-branch and misprediction counts for the
    // speculative RUU's calibrated default, TwoBit(64).
    let expected: [(&str, u64, u64); 14] = [
        ("LLL1", 400, 1),
        ("LLL2", 510, 11),
        ("LLL3", 1001, 1),
        ("LLL4", 603, 4),
        ("LLL5", 995, 1),
        ("LLL6", 1274, 52),
        ("LLL7", 150, 1),
        ("LLL8", 78, 2),
        ("LLL9", 150, 1),
        ("LLL10", 130, 1),
        ("LLL11", 1299, 1),
        ("LLL12", 1300, 1),
        ("LLL13", 280, 1),
        ("LLL14", 380, 1),
    ];
    let (rows, instructions) = replay_suite(PredictorConfig::default());
    assert_eq!(rows.as_slice(), &expected);
    assert_eq!(instructions, 108_513);
    let (cond, miss) = rows
        .iter()
        .fold((0, 0), |(c, m), &(_, bc, bm)| (c + bc, m + bm));
    assert_eq!((cond, miss), (8550, 79));
    // Suite-level MPKI of the default predictor, pinned to the counts.
    let mpki = miss as f64 * 1000.0 / instructions as f64;
    assert!((mpki - 79_000.0 / 108_513.0).abs() < 1e-12);
}

#[test]
fn tage_lite_strictly_beats_the_twobit_default() {
    let (twobit, _) = replay_suite(PredictorConfig::default());
    let (tage, _) = replay_suite(PredictorConfig::Tage { entries: 512 });
    let total = |rows: &[(&str, u64, u64)]| rows.iter().map(|r| r.2).sum::<u64>();
    let (t2, tg) = (total(&twobit), total(&tage));
    assert!(
        tg < t2,
        "tage-lite must strictly beat twobit:64 in total mispredictions, got {tg} vs {t2}"
    );
    // And it never loses on any individual loop.
    for (a, b) in twobit.iter().zip(&tage) {
        assert!(b.2 <= a.2, "{}: tage {} vs twobit {}", a.0, b.2, a.2);
    }
}

#[test]
fn the_whole_zoo_is_usable_and_accurate_on_the_suite() {
    for cfg in PredictorConfig::zoo() {
        let (rows, _) = replay_suite(cfg);
        let (cond, miss) = rows
            .iter()
            .fold((0, 0), |(c, m), &(_, bc, bm)| (c + bc, m + bm));
        assert_eq!(cond, 8550, "{cfg}: replays the full branch stream");
        let accuracy = 1.0 - miss as f64 / cond as f64;
        assert!(
            accuracy > 0.98,
            "{cfg}: accuracy {accuracy:.4} collapsed on the suite"
        );
    }
}

#[test]
fn btb_misses_are_compulsory_only() {
    // Kernel loops have few distinct taken sites, far below 64 sets x 4
    // ways: every BTB miss must be a site's compulsory first lookup —
    // zero capacity or conflict misses.
    for w in livermore::all() {
        let trace = w.golden_trace().expect("golden run succeeds");
        let stream = BranchStream::from_trace(&trace);
        let distinct_taken: std::collections::BTreeSet<u32> = stream
            .events
            .iter()
            .filter(|e| e.taken)
            .map(|e| e.pc)
            .collect();
        let mut p = PredictorConfig::default().build();
        let mut btb = Btb::new(64, 4);
        let r = evaluate_with_btb(&stream, p.as_mut(), &mut btb);
        let b = r.btb.expect("btb stats present");
        assert_eq!(
            b.lookups - b.hits,
            distinct_taken.len() as u64,
            "{}: BTB misses must equal the distinct taken sites",
            w.name
        );
    }
}
