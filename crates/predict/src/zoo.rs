//! The predictor zoo: dynamic predictors beyond Smith's 2-bit table.
//!
//! Everything here is deterministic — no randomness, no wall-clock — so
//! replays and parallel sweeps are bit-reproducible. Each predictor keeps
//! its speculation history in `update` only: on the pipelined machine a
//! prediction may be consulted several cycles before the branch resolves,
//! and folding history at update time keeps the two paths (CBP replay,
//! where predict/update are adjacent, and the speculative RUU, where they
//! are not) behaviourally consistent.

use crate::Predictor;

/// A bimodal table of 2-bit saturating counters, indexed by low pc bits.
///
/// Dynamics are identical to [`crate::TwoBit`]; it exists as a separately
/// named, separately sized zoo member so ablations can distinguish the
/// paper-default 64-entry table from a generously sized bimodal.
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<u8>,
    mask: u32,
}

impl Bimodal {
    /// A table of `entries` counters (power of two), initialised weakly
    /// taken.
    ///
    /// # Panics
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "predictor table size must be a power of two"
        );
        Bimodal {
            table: vec![2; entries],
            mask: (entries - 1) as u32,
        }
    }
}

impl Predictor for Bimodal {
    fn predict(&mut self, pc: u32, _target: u32) -> bool {
        self.table[(pc & self.mask) as usize] >= 2
    }

    fn update(&mut self, pc: u32, taken: bool) {
        let c = &mut self.table[(pc & self.mask) as usize];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    fn name(&self) -> &'static str {
        "bimodal"
    }
}

/// McFarling's gshare: a counter table indexed by pc XOR global branch
/// history.
///
/// The global history register shifts on every `update` (i.e. at branch
/// resolution), so in-flight predictions on the speculative machine see
/// slightly stale history — the classic delayed-update simplification.
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<u8>,
    mask: u32,
    history: u32,
    hist_mask: u32,
}

impl Gshare {
    /// A table of `entries` counters (power of two) with
    /// `min(log2(entries), 12)` bits of global history.
    ///
    /// # Panics
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "predictor table size must be a power of two"
        );
        let hist_bits = (entries.trailing_zeros()).min(12);
        Gshare {
            table: vec![2; entries],
            mask: (entries - 1) as u32,
            history: 0,
            hist_mask: if hist_bits == 0 {
                0
            } else {
                (1u32 << hist_bits) - 1
            },
        }
    }

    fn index(&self, pc: u32) -> usize {
        ((pc ^ (self.history & self.hist_mask)) & self.mask) as usize
    }
}

impl Predictor for Gshare {
    fn predict(&mut self, pc: u32, _target: u32) -> bool {
        self.table[self.index(pc)] >= 2
    }

    fn update(&mut self, pc: u32, taken: bool) {
        let i = self.index(pc);
        let c = &mut self.table[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = (self.history << 1) | u32::from(taken);
    }

    fn name(&self) -> &'static str {
        "gshare"
    }
}

/// A two-level local-history predictor (Yeh & Patt's PAg): a per-branch
/// history table feeding one shared pattern table of 2-bit counters.
#[derive(Debug, Clone)]
pub struct LocalPag {
    /// Per-branch local histories, indexed by low pc bits.
    lht: Vec<u16>,
    lht_mask: u32,
    /// Shared pattern table of 2-bit counters, indexed by local history.
    pattern: Vec<u8>,
    pattern_mask: u16,
}

impl LocalPag {
    /// Number of per-branch history registers (the workloads have few
    /// static branch sites, so a small first level suffices).
    const LHT_ENTRIES: usize = 64;

    /// A pattern table of `entries` counters (power of two); the local
    /// history length is `min(log2(entries), 14)` bits.
    ///
    /// # Panics
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "predictor table size must be a power of two"
        );
        let hist_bits = (entries.trailing_zeros()).min(14);
        LocalPag {
            lht: vec![0; Self::LHT_ENTRIES],
            lht_mask: (Self::LHT_ENTRIES - 1) as u32,
            pattern: vec![2; entries],
            pattern_mask: if hist_bits == 0 {
                0
            } else {
                ((1u32 << hist_bits) - 1) as u16
            },
        }
    }

    fn pattern_index(&self, pc: u32) -> usize {
        usize::from(self.lht[(pc & self.lht_mask) as usize] & self.pattern_mask)
    }
}

impl Predictor for LocalPag {
    fn predict(&mut self, pc: u32, _target: u32) -> bool {
        self.pattern[self.pattern_index(pc)] >= 2
    }

    fn update(&mut self, pc: u32, taken: bool) {
        let i = self.pattern_index(pc);
        let c = &mut self.pattern[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        let h = &mut self.lht[(pc & self.lht_mask) as usize];
        *h = (*h << 1) | u16::from(taken);
    }

    fn name(&self) -> &'static str {
        "local"
    }
}

/// One entry of a tagged history table.
#[derive(Debug, Clone, Copy, Default)]
struct TagEntry {
    tag: u16,
    /// 3-bit counter, taken when `>= 4`. The all-zero entry is "never
    /// allocated": real allocations always set a nonzero tag (see
    /// [`TageLite::tag_of`]).
    ctr: u8,
    /// 2-bit usefulness counter; `0` makes the entry an allocation victim.
    useful: u8,
}

/// A small tagged geometric-history predictor in the TAGE family
/// (Seznec & Michaud), scaled down for this repo's kernel traces.
///
/// Components:
/// * a **base bimodal** table whose cold entries are primed with the
///   static backward-taken/forward-not-taken hint the first time a pc is
///   seen (classic static-hint priming — on once-through loop kernels the
///   cold-start policy, not history capacity, dominates accuracy);
/// * three **tagged tables** indexed by pc folded with geometrically
///   increasing global-history lengths ([`TageLite::HIST_LENS`]), with
///   8-bit tags, 3-bit prediction counters and 2-bit useful counters;
/// * the standard machinery: longest-matching table provides the
///   prediction, next match (or base) is the alternate; newly allocated
///   weak providers defer to the alternate while the adaptive
///   `use_alt_on_na` counter says so; on a misprediction an entry is
///   allocated in a longer table whose victim has `useful == 0`,
///   otherwise the candidates' useful counters decay.
#[derive(Debug, Clone)]
pub struct TageLite {
    /// Base bimodal counters; `COLD` marks never-touched entries so the
    /// first access can prime them from the branch direction.
    base: Vec<u8>,
    base_mask: u32,
    tables: Vec<Vec<TagEntry>>,
    table_mask: u32,
    ghist: u64,
    /// 4-bit counter; `>= 8` means a weak newly-allocated provider defers
    /// to its alternate prediction.
    use_alt_on_na: u8,
}

/// Where a TAGE lookup found its prediction.
#[derive(Debug, Clone, Copy)]
struct Lookup {
    /// Longest matching tagged table, if any.
    provider: Option<usize>,
    /// Prediction of the provider entry (valid when `provider.is_some()`).
    provider_pred: bool,
    /// `true` when the provider entry is weak and has never proven useful.
    provider_weak_new: bool,
    /// The alternate prediction: next matching table, or the base.
    alt_pred: bool,
    /// Per-table (index, tag) pairs for this pc/history.
    slots: [(usize, u16); TageLite::HIST_LENS.len()],
}

impl TageLite {
    /// Global-history lengths of the tagged tables, shortest first.
    pub const HIST_LENS: [u32; 3] = [4, 8, 16];
    const COLD: u8 = 0xff;

    /// A TAGE-lite with a base bimodal of `entries` counters (power of
    /// two) and three tagged tables of `max(entries / 4, 16)` entries.
    ///
    /// # Panics
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "predictor table size must be a power of two"
        );
        let tagged = (entries / 4).max(16);
        TageLite {
            base: vec![Self::COLD; entries],
            base_mask: (entries - 1) as u32,
            tables: vec![vec![TagEntry::default(); tagged]; Self::HIST_LENS.len()],
            table_mask: (tagged - 1) as u32,
            ghist: 0,
            use_alt_on_na: 8,
        }
    }

    /// XOR-folds the low `len` history bits down to `bits` bits.
    fn fold(hist: u64, len: u32, bits: u32) -> u32 {
        let mut h = hist & ((1u64 << len) - 1);
        let mut folded = 0u64;
        while h != 0 {
            folded ^= h & ((1u64 << bits) - 1);
            h >>= bits;
        }
        folded as u32
    }

    fn index_of(&self, pc: u32, t: usize) -> usize {
        let f = Self::fold(self.ghist, Self::HIST_LENS[t], self.table_mask.count_ones());
        ((pc ^ (pc >> 4) ^ f.rotate_left(t as u32)) & self.table_mask) as usize
    }

    /// 12-bit nonzero tag (0 is reserved for never-allocated entries).
    ///
    /// The low 6 bits are pure pc so nearby branch sites can never alias
    /// onto each other's entries (cross-site aliasing is what pollutes a
    /// small-program trace); the high 6 bits fold the table's history.
    fn tag_of(&self, pc: u32, t: usize) -> u16 {
        let f = Self::fold(self.ghist, Self::HIST_LENS[t], 6);
        let tag = (((pc ^ (pc >> 6)) & 0x3f) | (f << 6)) as u16;
        if tag == 0 {
            0xa5
        } else {
            tag
        }
    }

    fn base_index(&self, pc: u32) -> usize {
        (pc & self.base_mask) as usize
    }

    /// Reads (priming if cold) the base counter's prediction.
    fn base_pred(&mut self, pc: u32, target: u32) -> bool {
        let i = self.base_index(pc);
        if self.base[i] == Self::COLD {
            // Static BTFN hint as the cold-start prior.
            self.base[i] = if target <= pc { 2 } else { 1 };
        }
        self.base[i] >= 2
    }

    fn lookup(&mut self, pc: u32, target: u32) -> Lookup {
        let mut slots = [(0usize, 0u16); Self::HIST_LENS.len()];
        for (t, slot) in slots.iter_mut().enumerate() {
            *slot = (self.index_of(pc, t), self.tag_of(pc, t));
        }
        let base = self.base_pred(pc, target);
        let mut provider = None;
        let mut alt = None;
        for t in (0..Self::HIST_LENS.len()).rev() {
            let (i, tag) = slots[t];
            if self.tables[t][i].tag == tag {
                if provider.is_none() {
                    provider = Some(t);
                } else if alt.is_none() {
                    alt = Some(t);
                    break;
                }
            }
        }
        let alt_pred = match alt {
            Some(t) => self.tables[t][slots[t].0].ctr >= 4,
            None => base,
        };
        let (provider_pred, provider_weak_new) = match provider {
            Some(t) => {
                let e = self.tables[t][slots[t].0];
                (e.ctr >= 4, e.useful == 0 && (e.ctr == 3 || e.ctr == 4))
            }
            None => (base, false),
        };
        Lookup {
            provider,
            provider_pred,
            provider_weak_new,
            alt_pred,
            slots,
        }
    }

    fn final_pred(&self, l: &Lookup) -> bool {
        if l.provider.is_some() && l.provider_weak_new && self.use_alt_on_na >= 8 {
            l.alt_pred
        } else if l.provider.is_some() {
            l.provider_pred
        } else {
            l.alt_pred
        }
    }

    fn bump3(c: &mut u8, taken: bool) {
        if taken {
            *c = (*c + 1).min(7);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

impl Predictor for TageLite {
    fn predict(&mut self, pc: u32, target: u32) -> bool {
        let l = self.lookup(pc, target);
        self.final_pred(&l)
    }

    fn update(&mut self, pc: u32, taken: bool) {
        // Recompute the lookup with the pre-update history — identical to
        // the predict-time view in trace replay, and a deterministic
        // delayed-history approximation on the pipelined machine. The
        // target is unknown here, so a still-cold base entry is seeded
        // from the outcome instead of the static hint.
        let i = self.base_index(pc);
        if self.base[i] == Self::COLD {
            self.base[i] = if taken { 2 } else { 1 };
        }
        let l = self.lookup(pc, 0);
        let pred = self.final_pred(&l);

        // Adapt the weak-new policy whenever provider and alternate
        // disagree on a weak newly-allocated entry.
        if l.provider.is_some() && l.provider_weak_new && l.provider_pred != l.alt_pred {
            if l.alt_pred == taken {
                self.use_alt_on_na = (self.use_alt_on_na + 1).min(15);
            } else {
                self.use_alt_on_na = self.use_alt_on_na.saturating_sub(1);
            }
        }

        // Train the provider (and its usefulness); always keep the base
        // trained so the alternate stays reliable.
        if let Some(t) = l.provider {
            let (idx, _) = l.slots[t];
            let e = &mut self.tables[t][idx];
            Self::bump3(&mut e.ctr, taken);
            if l.provider_pred != l.alt_pred {
                if l.provider_pred == taken {
                    e.useful = (e.useful + 1).min(3);
                } else {
                    e.useful = e.useful.saturating_sub(1);
                }
            }
        }
        let b = &mut self.base[i];
        if taken {
            *b = (*b + 1).min(3);
        } else {
            *b = b.saturating_sub(1);
        }

        // Allocate on a misprediction, in a table with longer history
        // than the provider; decay usefulness when every victim resists.
        let provider_rank = l.provider.map_or(-1i32, |t| t as i32);
        if pred != taken && provider_rank < (Self::HIST_LENS.len() as i32 - 1) {
            let start = (provider_rank + 1) as usize;
            let mut allocated = false;
            for t in start..Self::HIST_LENS.len() {
                let (idx, tag) = l.slots[t];
                let e = &mut self.tables[t][idx];
                if e.useful == 0 {
                    *e = TagEntry {
                        tag,
                        ctr: if taken { 4 } else { 3 },
                        useful: 0,
                    };
                    allocated = true;
                    break;
                }
            }
            if !allocated {
                for t in start..Self::HIST_LENS.len() {
                    let (idx, _) = l.slots[t];
                    let e = &mut self.tables[t][idx];
                    e.useful = e.useful.saturating_sub(1);
                }
            }
        }

        self.ghist = (self.ghist << 1) | u64::from(taken);
    }

    fn name(&self) -> &'static str {
        "tage-lite"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TwoBit;

    /// Drives `pred` through `pattern` repeated `reps` times at one site,
    /// returning the misprediction count.
    fn run_pattern(pred: &mut dyn Predictor, pc: u32, pattern: &[bool], reps: usize) -> u64 {
        let mut miss = 0;
        for _ in 0..reps {
            for &taken in pattern {
                if pred.predict(pc, pc.wrapping_sub(4)) != taken {
                    miss += 1;
                }
                pred.update(pc, taken);
            }
        }
        miss
    }

    #[test]
    fn bimodal_matches_two_bit_dynamics() {
        let mut b = Bimodal::new(1024);
        let mut t = TwoBit::new(1024);
        let pattern = [true, true, false, true, false, false, true];
        assert_eq!(
            run_pattern(&mut b, 17, &pattern, 5),
            run_pattern(&mut t, 17, &pattern, 5)
        );
    }

    #[test]
    fn gshare_history_separates_contexts() {
        // An alternating branch defeats a per-pc counter (it predicts
        // taken every time from the weak-taken oscillation) but is a
        // 1-bit history pattern gshare learns perfectly after warmup.
        let mut gs = Gshare::new(1024);
        let mut tb = TwoBit::new(1024);
        let alt: Vec<bool> = (0..64).map(|i| i % 2 == 0).collect();
        let g = run_pattern(&mut gs, 40, &alt, 1);
        let t = run_pattern(&mut tb, 40, &alt, 1);
        assert!(g < t, "gshare {g} must beat two-bit {t} on alternation");
        // Fully warmed up, gshare stops missing entirely.
        let g2 = run_pattern(&mut gs, 40, &alt, 1);
        assert_eq!(g2, 0, "warm gshare is perfect on a period-2 pattern");
    }

    #[test]
    fn gshare_small_table_aliases() {
        // With a 2-entry table every (pc, history) context collapses onto
        // two counters, so two branches with opposite biases interfere.
        let mut gs = Gshare::new(2);
        for _ in 0..32 {
            gs.predict(0, 0);
            gs.update(0, true);
            gs.predict(1, 0);
            gs.update(1, false);
        }
        assert!(
            gs.table.iter().any(|&c| c == 1 || c == 2),
            "aliased counters are pulled both ways: {:?}",
            gs.table
        );
    }

    #[test]
    fn gshare_fold_uses_only_configured_history() {
        let mut a = Gshare::new(16); // 4 history bits
        let mut b = Gshare::new(16);
        // Histories differing only in bit 5 index identically.
        for &t in &[true, false, true, true, false, true] {
            a.update(9, t);
        }
        for &t in &[false, false, true, true, false, true] {
            b.update(9, t);
        }
        assert_eq!(a.index(9), b.index(9));
    }

    #[test]
    fn local_learns_per_site_periodic_patterns() {
        let mut lp = LocalPag::new(1024);
        let mut tb = TwoBit::new(1024);
        // Period-3 pattern: taken, taken, not-taken.
        let p: Vec<bool> = (0..60).map(|i| i % 3 != 2).collect();
        let l = run_pattern(&mut lp, 21, &p, 1);
        let t = run_pattern(&mut tb, 21, &p, 1);
        assert!(l < t, "local {l} must beat two-bit {t} on period-3");
        assert_eq!(run_pattern(&mut lp, 21, &p, 1), 0, "warm local is perfect");
    }

    #[test]
    fn local_histories_are_per_site() {
        let mut lp = LocalPag::new(256);
        // Site A alternates; site B is always taken. A per-site history
        // keeps B's pattern-table context saturated-taken.
        for i in 0..40 {
            lp.predict(3, 0);
            lp.update(3, i % 2 == 0);
            lp.predict(4, 0);
            lp.update(4, true);
        }
        assert!(lp.predict(4, 0), "site B stays predicted taken");
    }

    #[test]
    fn tage_base_is_primed_with_the_static_hint() {
        let mut t = TageLite::new(512);
        assert!(t.predict(50, 10), "cold backward branch predicted taken");
        assert!(
            !t.predict(60, 90),
            "cold forward branch predicted not taken"
        );
    }

    #[test]
    fn tage_allocates_and_provides_on_history_patterns() {
        let mut t = TageLite::new(512);
        let alt: Vec<bool> = (0..128).map(|i| i % 2 == 0).collect();
        let first = run_pattern(&mut t, 33, &alt, 1);
        let warm = run_pattern(&mut t, 33, &alt, 1);
        assert!(
            warm < first,
            "tagged tables must learn the alternation: first {first}, warm {warm}"
        );
        assert!(
            t.tables.iter().flatten().any(|e| e.tag != 0),
            "mispredictions must have allocated tagged entries"
        );
    }

    #[test]
    fn tage_useful_bits_protect_providers() {
        let mut t = TageLite::new(512);
        let alt: Vec<bool> = (0..256).map(|i| i % 2 == 0).collect();
        run_pattern(&mut t, 33, &alt, 2);
        // A warmed-up alternation has providers that repeatedly beat the
        // (taken-oscillating) base — their useful counters must be set.
        assert!(
            t.tables.iter().flatten().any(|e| e.useful > 0),
            "correct providers that disagree with the alternate gain usefulness"
        );
    }

    #[test]
    fn tage_weak_new_providers_defer_to_altpred() {
        let t = TageLite::new(512);
        assert!(t.use_alt_on_na >= 8, "starts in the conservative regime");
        let l = Lookup {
            provider: Some(1),
            provider_pred: true,
            provider_weak_new: true,
            alt_pred: false,
            slots: [(0, 1); TageLite::HIST_LENS.len()],
        };
        assert!(!t.final_pred(&l), "weak new provider defers to alternate");
        let mut t2 = t.clone();
        t2.use_alt_on_na = 0;
        assert!(t2.final_pred(&l), "trusting regime uses the provider");
    }

    #[test]
    fn fold_is_stable_and_bounded() {
        for len in [1u32, 4, 8, 16, 63] {
            for bits in [4u32, 8] {
                let f = TageLite::fold(0xdead_beef_cafe_f00d, len, bits);
                assert!(f < (1 << bits));
                assert_eq!(f, TageLite::fold(0xdead_beef_cafe_f00d, len, bits));
            }
        }
    }
}
