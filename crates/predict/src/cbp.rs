//! A trace-driven, CBP-style predictor evaluation harness.
//!
//! Championship Branch Prediction contests evaluate predictors by
//! replaying recorded per-branch outcome streams — no pipeline model, no
//! timing, just `predict → compare → update` per dynamic branch. This
//! module does the same against streams extracted from the golden
//! `ruu-exec` interpreter trace (modelled on the `cbp-experiments`
//! harness from the related-work set): any [`Predictor`] can be scored in
//! microseconds, and the ranking carries over to the speculative RUU,
//! whose flushes are exactly the mispredictions of the branches it had
//! to guess.

use ruu_exec::Trace;

use crate::{Btb, Predictor};

/// One dynamic branch from a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchEvent {
    /// Dynamic instruction index in the source trace.
    pub index: u64,
    /// Branch pc.
    pub pc: u32,
    /// Decoded target.
    pub target: u32,
    /// Actual outcome.
    pub taken: bool,
    /// `true` for conditional branches (direction-predicted), `false`
    /// for unconditional jumps (BTB-only).
    pub conditional: bool,
}

/// The per-branch outcome stream of one workload.
#[derive(Debug, Clone, Default)]
pub struct BranchStream {
    /// Branch events in dynamic order.
    pub events: Vec<BranchEvent>,
    /// Total dynamic instructions in the source trace (for MPKI).
    pub instructions: u64,
}

impl BranchStream {
    /// Extracts the branch stream from a golden trace.
    #[must_use]
    pub fn from_trace(trace: &Trace) -> Self {
        let events = trace
            .events()
            .iter()
            .filter(|ev| ev.inst.is_branch())
            .map(|ev| BranchEvent {
                index: ev.index,
                pc: ev.pc,
                target: ev.inst.target.expect("branch has a decoded target"),
                taken: ev.taken.unwrap_or(true),
                conditional: ev.inst.opcode.is_cond_branch(),
            })
            .collect();
        BranchStream {
            events,
            instructions: trace.len() as u64,
        }
    }

    /// Number of conditional branch events.
    #[must_use]
    pub fn cond_branches(&self) -> u64 {
        self.events.iter().filter(|e| e.conditional).count() as u64
    }

    /// Distinct conditional branch pcs in the stream.
    #[must_use]
    pub fn cond_sites(&self) -> usize {
        let mut pcs: Vec<u32> = self
            .events
            .iter()
            .filter(|e| e.conditional)
            .map(|e| e.pc)
            .collect();
        pcs.sort_unstable();
        pcs.dedup();
        pcs.len()
    }
}

/// Per-branch-site accuracy accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteStats {
    /// Branch pc.
    pub pc: u32,
    /// Dynamic executions.
    pub executed: u64,
    /// Taken outcomes.
    pub taken: u64,
    /// Mispredicted executions.
    pub mispredicted: u64,
}

impl SiteStats {
    /// Misprediction rate at this site (0 for a never-executed site).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            self.mispredicted as f64 / self.executed as f64
        }
    }
}

/// BTB target-lookup statistics (taken branches only: a not-taken branch
/// never needs the target).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BtbStats {
    /// Taken-branch lookups performed.
    pub lookups: u64,
    /// Lookups that returned the correct target.
    pub hits: u64,
}

impl BtbStats {
    /// Hit rate (1 for an unused BTB).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            1.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// The replay result for one predictor over one stream.
#[derive(Debug, Clone)]
pub struct CbpResult {
    /// Predictor display name.
    pub predictor: String,
    /// Dynamic instructions in the source trace.
    pub instructions: u64,
    /// Conditional branches replayed.
    pub cond_branches: u64,
    /// Unconditional branches seen (BTB-only).
    pub uncond_branches: u64,
    /// Mispredicted conditional branches.
    pub mispredicts: u64,
    /// BTB statistics, when a BTB was replayed alongside.
    pub btb: Option<BtbStats>,
    /// Per-site breakdown, ascending pc.
    pub sites: Vec<SiteStats>,
}

impl CbpResult {
    /// Direction-prediction accuracy (1 when there was nothing to
    /// predict).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.cond_branches == 0 {
            1.0
        } else {
            1.0 - self.mispredicts as f64 / self.cond_branches as f64
        }
    }

    /// Mispredictions per 1000 instructions.
    #[must_use]
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.mispredicts as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// The `n` worst sites by misprediction count (ties broken by pc).
    #[must_use]
    pub fn top_offenders(&self, n: usize) -> Vec<&SiteStats> {
        let mut sites: Vec<&SiteStats> = self.sites.iter().collect();
        sites.sort_by_key(|s| (std::cmp::Reverse(s.mispredicted), s.pc));
        sites.truncate(n);
        sites
    }

    /// Merges another result (same predictor, different workload) into
    /// this one. Site tables are concatenated, so `sites` is only
    /// meaningful per workload.
    pub fn absorb(&mut self, other: &CbpResult) {
        self.instructions += other.instructions;
        self.cond_branches += other.cond_branches;
        self.uncond_branches += other.uncond_branches;
        self.mispredicts += other.mispredicts;
        self.btb = match (self.btb, other.btb) {
            (Some(a), Some(b)) => Some(BtbStats {
                lookups: a.lookups + b.lookups,
                hits: a.hits + b.hits,
            }),
            (a, b) => a.or(b),
        };
    }
}

/// Replays `stream` through `predictor` (direction only).
#[must_use]
pub fn evaluate(stream: &BranchStream, predictor: &mut dyn Predictor) -> CbpResult {
    replay(stream, predictor, None)
}

/// Replays `stream` through `predictor` and `btb` together.
#[must_use]
pub fn evaluate_with_btb(
    stream: &BranchStream,
    predictor: &mut dyn Predictor,
    btb: &mut Btb,
) -> CbpResult {
    replay(stream, predictor, Some(btb))
}

fn replay(
    stream: &BranchStream,
    predictor: &mut dyn Predictor,
    btb: Option<&mut Btb>,
) -> CbpResult {
    let mut out = CbpResult {
        predictor: predictor.name().to_string(),
        instructions: stream.instructions,
        cond_branches: 0,
        uncond_branches: 0,
        mispredicts: 0,
        btb: btb.as_ref().map(|_| BtbStats::default()),
        sites: Vec::new(),
    };
    let mut btb = btb;
    for ev in &stream.events {
        if let Some(b) = btb.as_deref_mut() {
            // The BTB serves fetch redirection, so only taken branches
            // exercise it; allocation is also on taken (classic policy).
            if ev.taken {
                let stats = out.btb.as_mut().expect("stats follow the btb");
                stats.lookups += 1;
                if b.lookup(ev.pc) == Some(ev.target) {
                    stats.hits += 1;
                }
                b.insert(ev.pc, ev.target);
            }
        }
        if !ev.conditional {
            out.uncond_branches += 1;
            continue;
        }
        out.cond_branches += 1;
        let predicted = predictor.predict(ev.pc, ev.target);
        predictor.update(ev.pc, ev.taken);
        let miss = predicted != ev.taken;
        if miss {
            out.mispredicts += 1;
        }
        let site = match out.sites.iter_mut().find(|s| s.pc == ev.pc) {
            Some(s) => s,
            None => {
                out.sites.push(SiteStats {
                    pc: ev.pc,
                    executed: 0,
                    taken: 0,
                    mispredicted: 0,
                });
                out.sites.last_mut().expect("just pushed")
            }
        };
        site.executed += 1;
        site.taken += u64::from(ev.taken);
        site.mispredicted += u64::from(miss);
    }
    out.sites.sort_by_key(|s| s.pc);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AlwaysTaken, Btfn, TwoBit};
    use ruu_exec::Memory;
    use ruu_isa::{Asm, Reg};

    fn counted_loop(n: i64) -> BranchStream {
        let mut a = Asm::new("t");
        let top = a.new_label();
        a.a_imm(Reg::a(0), n);
        a.bind(top);
        a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
        a.br_an(top);
        a.halt();
        let p = a.assemble().unwrap();
        let trace = Trace::capture(&p, Memory::new(1 << 10), 100_000).unwrap();
        BranchStream::from_trace(&trace)
    }

    #[test]
    fn stream_extraction_counts_branches() {
        let s = counted_loop(10);
        assert_eq!(s.events.len(), 10, "one conditional branch per trip");
        assert_eq!(s.cond_branches(), 10);
        assert_eq!(s.cond_sites(), 1);
        assert_eq!(s.events.iter().filter(|e| e.taken).count(), 9);
        // sub + branch per trip, plus the imm (halt is not traced).
        assert_eq!(s.instructions, 1 + 2 * 10);
    }

    #[test]
    fn always_taken_misses_exactly_the_exit() {
        let s = counted_loop(25);
        let mut p = AlwaysTaken;
        let r = evaluate(&s, &mut p);
        assert_eq!(r.mispredicts, 1);
        assert_eq!(r.cond_branches, 25);
        assert!((r.accuracy() - 24.0 / 25.0).abs() < 1e-12);
        assert!((r.mpki() - 1000.0 / 51.0).abs() < 1e-9);
        assert_eq!(r.sites.len(), 1);
        assert_eq!(r.sites[0].mispredicted, 1);
        assert_eq!(r.top_offenders(3)[0].pc, r.sites[0].pc);
    }

    #[test]
    fn jump_is_btb_only() {
        let mut a = Asm::new("t");
        let top = a.new_label();
        let body = a.new_label();
        a.a_imm(Reg::a(0), 5);
        a.bind(top);
        a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
        a.jump(body); // unconditional, in-loop
        a.bind(body);
        a.br_an(top);
        a.halt();
        let p = a.assemble().unwrap();
        let trace = Trace::capture(&p, Memory::new(1 << 10), 100_000).unwrap();
        let s = BranchStream::from_trace(&trace);
        let mut pred = Btfn;
        let mut btb = Btb::new(16, 2);
        let r = evaluate_with_btb(&s, &mut pred, &mut btb);
        assert_eq!(r.uncond_branches, 5);
        assert_eq!(r.cond_branches, 5);
        let btb_stats = r.btb.unwrap();
        // Every taken branch looks up; first sight of each site misses.
        assert_eq!(btb_stats.lookups, 5 + 4);
        assert_eq!(btb_stats.hits, btb_stats.lookups - 2);
        assert!(btb_stats.hit_rate() > 0.7);
    }

    #[test]
    fn absorb_sums_suite_totals() {
        let a = counted_loop(10);
        let b = counted_loop(30);
        let mut p = TwoBit::default();
        let mut total = evaluate(&a, &mut p);
        let rb = evaluate(&b, &mut p);
        total.absorb(&rb);
        assert_eq!(total.cond_branches, 40);
        assert_eq!(total.instructions, a.instructions + b.instructions);
        assert_eq!(total.mispredicts, 2, "one exit each; the site is warm");
    }

    #[test]
    fn replay_is_deterministic() {
        let s = counted_loop(40);
        let mut p1 = TwoBit::default();
        let mut p2 = TwoBit::default();
        let r1 = evaluate(&s, &mut p1);
        let r2 = evaluate(&s, &mut p2);
        assert_eq!(r1.mispredicts, r2.mispredicts);
        assert_eq!(r1.sites, r2.sites);
    }
}
