//! # ruu-predict — branch prediction for the §7 extension
//!
//! The paper closes by observing that the RUU "provides a very powerful
//! mechanism for nullifying instructions", making conditional execution
//! down a predicted path easy (§7), and cites Smith's branch-prediction
//! study (the paper's reference \[6\]). Once the speculative RUU exists,
//! the issue-logic bottleneck moves to the front end — so prediction
//! deserves its own subsystem rather than a corner of `ruu-issue`.
//!
//! This crate holds:
//!
//! * the [`Predictor`] trait and the classic static/counter predictors
//!   ([`AlwaysTaken`], [`Btfn`], [`TwoBit`]) that previously lived in
//!   `ruu-issue` (re-exported there for compatibility);
//! * a predictor zoo ([`zoo`]): [`Bimodal`], [`Gshare`], the two-level
//!   local-history [`LocalPag`], and the tagged [`TageLite`];
//! * a set-associative branch target buffer ([`Btb`]);
//! * [`PredictorConfig`], the `Copy` configuration value the issue layer
//!   and sweep engine understand, with CLI parsing and typed validation
//!   ([`PredictError`]) instead of constructor panics;
//! * a trace-driven CBP-style evaluation harness ([`cbp`]) that replays
//!   per-branch outcome streams extracted from the golden `ruu-exec`
//!   trace through any predictor — no pipeline simulation required —
//!   and reports accuracy, MPKI and per-site top offenders.

use std::fmt;

pub mod btb;
pub mod cbp;
pub mod config;
pub mod zoo;

pub use btb::Btb;
pub use cbp::{BranchEvent, BranchStream, BtbStats, CbpResult, SiteStats};
pub use config::{PredictError, PredictorConfig};
pub use zoo::{Bimodal, Gshare, LocalPag, TageLite};

/// A direction predictor for conditional branches.
pub trait Predictor {
    /// Predicts whether the branch at `pc` (jumping to `target`) is
    /// taken.
    fn predict(&mut self, pc: u32, target: u32) -> bool;

    /// Trains the predictor with the branch's actual outcome.
    fn update(&mut self, pc: u32, taken: bool);

    /// Short display name for reports.
    fn name(&self) -> &'static str;
}

impl fmt::Debug for dyn Predictor + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Predictor({})", self.name())
    }
}

/// Predict every conditional branch taken — surprisingly strong on loop
/// code.
#[derive(Debug, Clone, Default)]
pub struct AlwaysTaken;

impl Predictor for AlwaysTaken {
    fn predict(&mut self, _pc: u32, _target: u32) -> bool {
        true
    }

    fn update(&mut self, _pc: u32, _taken: bool) {}

    fn name(&self) -> &'static str {
        "always-taken"
    }
}

/// Backward-taken / forward-not-taken: static prediction by branch
/// direction.
#[derive(Debug, Clone, Default)]
pub struct Btfn;

impl Predictor for Btfn {
    fn predict(&mut self, pc: u32, target: u32) -> bool {
        target <= pc
    }

    fn update(&mut self, _pc: u32, _taken: bool) {}

    fn name(&self) -> &'static str {
        "btfn"
    }
}

/// Smith's 2-bit saturating-counter table, indexed by low pc bits.
#[derive(Debug, Clone)]
pub struct TwoBit {
    table: Vec<u8>,
    mask: u32,
}

impl TwoBit {
    /// A table of `entries` counters (power of two), initialised to
    /// weakly taken.
    ///
    /// # Panics
    /// Panics if `entries` is not a power of two. Use
    /// [`PredictorConfig::validate`] to reject bad sizes with a typed
    /// error before construction.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "predictor table size must be a power of two"
        );
        TwoBit {
            table: vec![2; entries],
            mask: (entries - 1) as u32,
        }
    }
}

impl Default for TwoBit {
    fn default() -> Self {
        TwoBit::new(64)
    }
}

impl Predictor for TwoBit {
    fn predict(&mut self, pc: u32, _target: u32) -> bool {
        self.table[(pc & self.mask) as usize] >= 2
    }

    fn update(&mut self, pc: u32, taken: bool) {
        let c = &mut self.table[(pc & self.mask) as usize];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    fn name(&self) -> &'static str {
        "2-bit"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_taken() {
        let mut p = AlwaysTaken;
        assert!(p.predict(10, 2));
        assert!(p.predict(10, 20));
    }

    #[test]
    fn btfn_predicts_by_direction() {
        let mut p = Btfn;
        assert!(p.predict(10, 2), "backward taken");
        assert!(!p.predict(10, 20), "forward not taken");
    }

    #[test]
    fn two_bit_saturates_and_hysteresis() {
        let mut p = TwoBit::new(16);
        // initial: weakly taken
        assert!(p.predict(5, 0));
        p.update(5, false);
        assert!(!p.predict(5, 0), "one not-taken flips weak counter");
        p.update(5, true);
        p.update(5, true);
        assert!(p.predict(5, 0));
        // one not-taken does not flip a strong counter
        p.update(5, true);
        p.update(5, false);
        assert!(p.predict(5, 0));
    }

    #[test]
    fn two_bit_entries_are_independent() {
        let mut p = TwoBit::new(16);
        p.update(0, false);
        p.update(0, false);
        assert!(!p.predict(0, 0));
        assert!(p.predict(1, 0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn table_size_validated() {
        let _ = TwoBit::new(10);
    }

    #[test]
    fn trait_object_debug_shows_name() {
        let mut p = TwoBit::default();
        let d: &mut dyn Predictor = &mut p;
        assert_eq!(format!("{d:?}"), "Predictor(2-bit)");
    }
}
