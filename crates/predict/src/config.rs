//! Predictor configuration values: parse, validate, build.
//!
//! [`PredictorConfig`] is a plain `Copy` value so the issue layer's
//! `Mechanism` enum (also `Copy`) can embed one and sweep grids can hash
//! and compare jobs cheaply. Table-size validation lives here as typed
//! [`PredictError`]s — the constructors in the zoo keep their internal
//! `assert!`s, but every CLI/config path is expected to call
//! [`PredictorConfig::validate`] (or [`PredictorConfig::parse`], which
//! validates) first, so a user typo like `twobit:63` is a diagnostic,
//! not a panic.

use std::fmt;

use crate::zoo::{Bimodal, Gshare, LocalPag, TageLite};
use crate::{AlwaysTaken, Btfn, Predictor, TwoBit};

/// A predictor choice plus its sizing, as a plain value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictorConfig {
    /// Static: every conditional branch taken.
    AlwaysTaken,
    /// Static: backward taken, forward not taken.
    Btfn,
    /// Smith's 2-bit counter table (the paper-era default).
    TwoBit {
        /// Counter-table entries (power of two).
        entries: usize,
    },
    /// Bimodal 2-bit counter table.
    Bimodal {
        /// Counter-table entries (power of two).
        entries: usize,
    },
    /// Gshare: pc XOR global history.
    Gshare {
        /// Counter-table entries (power of two).
        entries: usize,
    },
    /// Two-level local-history (PAg).
    Local {
        /// Pattern-table entries (power of two).
        entries: usize,
    },
    /// TAGE-lite: primed bimodal base + tagged geometric-history tables.
    Tage {
        /// Base-table entries (power of two); each tagged table gets
        /// `max(entries / 4, 16)`.
        entries: usize,
    },
}

impl Default for PredictorConfig {
    /// The calibrated default of the speculative RUU: `TwoBit(64)`.
    fn default() -> Self {
        PredictorConfig::TwoBit { entries: 64 }
    }
}

impl PredictorConfig {
    /// The default ablation line-up, cheapest static predictor first.
    #[must_use]
    pub fn zoo() -> Vec<PredictorConfig> {
        vec![
            PredictorConfig::AlwaysTaken,
            PredictorConfig::Btfn,
            PredictorConfig::TwoBit { entries: 64 },
            PredictorConfig::Bimodal { entries: 1024 },
            PredictorConfig::Gshare { entries: 1024 },
            PredictorConfig::Local { entries: 1024 },
            PredictorConfig::Tage { entries: 512 },
        ]
    }

    /// Parses `NAME` or `NAME:SIZE` (e.g. `gshare:1024`), validating the
    /// size.
    ///
    /// # Errors
    /// [`PredictError::UnknownPredictor`] for an unrecognised name,
    /// [`PredictError::BadSize`] for an unparsable size,
    /// [`PredictError::SizeNotAllowed`] for a size on a static predictor,
    /// and whatever [`PredictorConfig::validate`] reports for a bad one.
    pub fn parse(s: &str) -> Result<Self, PredictError> {
        let (name, size) = match s.split_once(':') {
            Some((n, sz)) => {
                let v: usize = sz
                    .parse()
                    .map_err(|_| PredictError::BadSize(sz.to_string()))?;
                (n, Some(v))
            }
            None => (s, None),
        };
        let cfg = match name {
            "always-taken" | "always" => {
                if size.is_some() {
                    return Err(PredictError::SizeNotAllowed {
                        name: "always-taken",
                    });
                }
                PredictorConfig::AlwaysTaken
            }
            "btfn" => {
                if size.is_some() {
                    return Err(PredictError::SizeNotAllowed { name: "btfn" });
                }
                PredictorConfig::Btfn
            }
            "twobit" | "2bit" | "2-bit" => PredictorConfig::TwoBit {
                entries: size.unwrap_or(64),
            },
            "bimodal" => PredictorConfig::Bimodal {
                entries: size.unwrap_or(1024),
            },
            "gshare" => PredictorConfig::Gshare {
                entries: size.unwrap_or(1024),
            },
            "local" | "pag" => PredictorConfig::Local {
                entries: size.unwrap_or(1024),
            },
            "tage" | "tage-lite" => PredictorConfig::Tage {
                entries: size.unwrap_or(512),
            },
            other => return Err(PredictError::UnknownPredictor(other.to_string())),
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Checks the table sizing.
    ///
    /// # Errors
    /// [`PredictError::NotPowerOfTwo`] or [`PredictError::TooSmall`] when
    /// a table size is invalid.
    pub fn validate(&self) -> Result<(), PredictError> {
        let entries = match *self {
            PredictorConfig::AlwaysTaken | PredictorConfig::Btfn => return Ok(()),
            PredictorConfig::TwoBit { entries }
            | PredictorConfig::Bimodal { entries }
            | PredictorConfig::Gshare { entries }
            | PredictorConfig::Local { entries }
            | PredictorConfig::Tage { entries } => entries,
        };
        if entries < 2 {
            return Err(PredictError::TooSmall {
                what: "predictor table",
                got: entries,
                min: 2,
            });
        }
        if !entries.is_power_of_two() {
            return Err(PredictError::NotPowerOfTwo {
                what: "predictor table",
                got: entries,
            });
        }
        Ok(())
    }

    /// Builds the predictor.
    ///
    /// # Panics
    /// Panics on an invalid table size — call
    /// [`PredictorConfig::validate`] first on untrusted input.
    #[must_use]
    pub fn build(&self) -> Box<dyn Predictor> {
        if let Err(e) = self.validate() {
            panic!("invalid predictor config {self}: {e}");
        }
        match *self {
            PredictorConfig::AlwaysTaken => Box::new(AlwaysTaken),
            PredictorConfig::Btfn => Box::new(Btfn),
            PredictorConfig::TwoBit { entries } => Box::new(TwoBit::new(entries)),
            PredictorConfig::Bimodal { entries } => Box::new(Bimodal::new(entries)),
            PredictorConfig::Gshare { entries } => Box::new(Gshare::new(entries)),
            PredictorConfig::Local { entries } => Box::new(LocalPag::new(entries)),
            PredictorConfig::Tage { entries } => Box::new(TageLite::new(entries)),
        }
    }
}

impl fmt::Display for PredictorConfig {
    /// The canonical `NAME[:size]` spelling; round-trips through
    /// [`PredictorConfig::parse`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PredictorConfig::AlwaysTaken => write!(f, "always-taken"),
            PredictorConfig::Btfn => write!(f, "btfn"),
            PredictorConfig::TwoBit { entries } => write!(f, "twobit:{entries}"),
            PredictorConfig::Bimodal { entries } => write!(f, "bimodal:{entries}"),
            PredictorConfig::Gshare { entries } => write!(f, "gshare:{entries}"),
            PredictorConfig::Local { entries } => write!(f, "local:{entries}"),
            PredictorConfig::Tage { entries } => write!(f, "tage:{entries}"),
        }
    }
}

/// A typed predictor-configuration error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredictError {
    /// The predictor name is not in the zoo.
    UnknownPredictor(String),
    /// A table size must be a power of two.
    NotPowerOfTwo {
        /// What was being sized.
        what: &'static str,
        /// The offending value.
        got: usize,
    },
    /// A table size is below the supported minimum.
    TooSmall {
        /// What was being sized.
        what: &'static str,
        /// The offending value.
        got: usize,
        /// The minimum allowed.
        min: usize,
    },
    /// The size suffix did not parse as a number.
    BadSize(String),
    /// A static predictor takes no size.
    SizeNotAllowed {
        /// The predictor name.
        name: &'static str,
    },
}

impl fmt::Display for PredictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictError::UnknownPredictor(n) => write!(
                f,
                "unknown predictor '{n}' (try always-taken, btfn, twobit, bimodal, gshare, local, tage)"
            ),
            PredictError::NotPowerOfTwo { what, got } => {
                write!(f, "{what} size must be a power of two, got {got}")
            }
            PredictError::TooSmall { what, got, min } => {
                write!(f, "{what} size must be at least {min}, got {got}")
            }
            PredictError::BadSize(s) => write!(f, "size '{s}' is not a number"),
            PredictError::SizeNotAllowed { name } => {
                write!(f, "predictor '{name}' takes no table size")
            }
        }
    }
}

impl std::error::Error for PredictError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_display() {
        for cfg in PredictorConfig::zoo() {
            assert_eq!(PredictorConfig::parse(&cfg.to_string()).unwrap(), cfg);
        }
    }

    #[test]
    fn parse_defaults_and_aliases() {
        assert_eq!(
            PredictorConfig::parse("twobit").unwrap(),
            PredictorConfig::TwoBit { entries: 64 }
        );
        assert_eq!(
            PredictorConfig::parse("2-bit:128").unwrap(),
            PredictorConfig::TwoBit { entries: 128 }
        );
        assert_eq!(
            PredictorConfig::parse("pag").unwrap(),
            PredictorConfig::Local { entries: 1024 }
        );
        assert_eq!(
            PredictorConfig::parse("tage-lite:256").unwrap(),
            PredictorConfig::Tage { entries: 256 }
        );
    }

    #[test]
    fn non_power_of_two_is_a_typed_error_not_a_panic() {
        // The bug this layer fixes: `twobit:63` used to reach
        // `TwoBit::new` and assert. Now it is a diagnostic.
        let e = PredictorConfig::parse("twobit:63").unwrap_err();
        assert_eq!(
            e,
            PredictError::NotPowerOfTwo {
                what: "predictor table",
                got: 63
            }
        );
        assert!(e.to_string().contains("power of two"));
    }

    #[test]
    fn bad_inputs_are_reported() {
        assert!(matches!(
            PredictorConfig::parse("nonsense"),
            Err(PredictError::UnknownPredictor(_))
        ));
        assert!(matches!(
            PredictorConfig::parse("gshare:banana"),
            Err(PredictError::BadSize(_))
        ));
        assert!(matches!(
            PredictorConfig::parse("btfn:8"),
            Err(PredictError::SizeNotAllowed { .. })
        ));
        assert!(matches!(
            PredictorConfig::parse("local:1"),
            Err(PredictError::TooSmall { .. })
        ));
    }

    #[test]
    fn build_produces_the_named_predictor() {
        for cfg in PredictorConfig::zoo() {
            let p = cfg.build();
            assert!(!p.name().is_empty());
        }
        assert_eq!(PredictorConfig::default().build().name(), "2-bit");
    }

    #[test]
    #[should_panic(expected = "invalid predictor config")]
    fn build_panics_on_unvalidated_bad_size() {
        let _ = PredictorConfig::Gshare { entries: 63 }.build();
    }

    #[test]
    fn zoo_labels_are_distinct() {
        let mut labels: Vec<String> = PredictorConfig::zoo()
            .iter()
            .map(ToString::to_string)
            .collect();
        let n = labels.len();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), n);
    }
}
