//! A set-associative branch target buffer.
//!
//! Direction predictors answer *taken or not*; the BTB answers *where
//! to*. On this ISA branch targets are decoded from the instruction word,
//! so the pipeline models do not need a BTB functionally — the buffer
//! exists for the CBP harness, which reports how often a fetch-stage
//! target lookup would have hit had targets not been free.

/// One BTB way.
#[derive(Debug, Clone, Copy, Default)]
struct Way {
    valid: bool,
    pc: u32,
    target: u32,
    /// Logical access time for LRU replacement (deterministic tick, not
    /// wall clock).
    stamp: u64,
}

/// A set-associative branch target buffer with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Btb {
    ways: Vec<Way>,
    assoc: usize,
    set_mask: u32,
    tick: u64,
}

impl Btb {
    /// A BTB of `sets` sets (power of two) × `assoc` ways.
    ///
    /// # Panics
    /// Panics if `sets` is not a power of two or `assoc` is zero.
    #[must_use]
    pub fn new(sets: usize, assoc: usize) -> Self {
        assert!(
            sets.is_power_of_two(),
            "BTB set count must be a power of two"
        );
        assert!(assoc > 0, "BTB needs at least one way");
        Btb {
            ways: vec![Way::default(); sets * assoc],
            assoc,
            set_mask: (sets - 1) as u32,
            tick: 0,
        }
    }

    /// Total entries.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.ways.len()
    }

    fn set_range(&self, pc: u32) -> std::ops::Range<usize> {
        let set = (pc & self.set_mask) as usize;
        set * self.assoc..(set + 1) * self.assoc
    }

    /// Looks up the predicted target for the branch at `pc`, refreshing
    /// its LRU stamp on a hit.
    pub fn lookup(&mut self, pc: u32) -> Option<u32> {
        self.tick += 1;
        let range = self.set_range(pc);
        let tick = self.tick;
        self.ways[range]
            .iter_mut()
            .find(|w| w.valid && w.pc == pc)
            .map(|w| {
                w.stamp = tick;
                w.target
            })
    }

    /// Installs (or refreshes) the mapping `pc → target`, evicting the
    /// least recently used way of the set if necessary.
    pub fn insert(&mut self, pc: u32, target: u32) {
        self.tick += 1;
        let range = self.set_range(pc);
        let tick = self.tick;
        let set = &mut self.ways[range];
        let slot = match set.iter_mut().find(|w| w.valid && w.pc == pc) {
            Some(hit) => hit,
            None => match set.iter_mut().find(|w| !w.valid) {
                Some(free) => free,
                None => set
                    .iter_mut()
                    .min_by_key(|w| w.stamp)
                    .expect("assoc > 0 guarantees a way"),
            },
        };
        *slot = Way {
            valid: true,
            pc,
            target,
            stamp: tick,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut b = Btb::new(16, 2);
        assert_eq!(b.lookup(5), None);
        b.insert(5, 99);
        assert_eq!(b.lookup(5), Some(99));
        b.insert(5, 100);
        assert_eq!(b.lookup(5), Some(100), "reinsert updates the target");
    }

    #[test]
    fn set_conflicts_evict_lru() {
        // 1 set × 2 ways: three conflicting pcs force an eviction.
        let mut b = Btb::new(1, 2);
        b.insert(1, 11);
        b.insert(2, 22);
        assert_eq!(b.lookup(1), Some(11)); // 1 is now most recent
        b.insert(3, 33); // evicts 2, the LRU
        assert_eq!(b.lookup(2), None);
        assert_eq!(b.lookup(1), Some(11));
        assert_eq!(b.lookup(3), Some(33));
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut b = Btb::new(4, 1);
        b.insert(0, 10);
        b.insert(1, 11);
        b.insert(2, 12);
        b.insert(3, 13);
        assert_eq!(b.lookup(0), Some(10));
        assert_eq!(b.lookup(3), Some(13));
        assert_eq!(b.entries(), 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn set_count_validated() {
        let _ = Btb::new(3, 2);
    }
}
