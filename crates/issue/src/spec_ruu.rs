//! The §7 extension: an RUU with branch prediction and **conditional
//! (speculative) execution**.
//!
//! The paper closes by observing that the RUU "provides a very powerful
//! mechanism for nullifying instructions … the conditional execution of
//! instructions with a RUU is very easy" and that "there is no hard limit
//! to the number of branches that can be predicted" (§7). This module
//! builds that machine:
//!
//! * a conditional branch whose condition is not ready no longer parks in
//!   the decode stage — a [`Predictor`] picks a path and fetch continues;
//! * speculative instructions enter the RUU, execute, and forward results
//!   normally, but **cannot commit** past an unresolved branch, so the
//!   architectural state stays precise;
//! * on a misprediction, every younger RUU entry is nullified: the NI/LI
//!   instance counters, the A future file and the load registers are
//!   restored from the branch's snapshot, and fetch redirects to the
//!   correct path.
//!
//! Everything architectural is untouched by speculation, so the golden-
//! equivalence tests hold for this machine exactly as for the base RUU.

use std::collections::{BTreeMap, VecDeque};

use ruu_exec::{ArchState, Memory};
use ruu_isa::{semantics, FuClass, Inst, Opcode, Program, Reg, NUM_REGS};
use ruu_sim_core::{
    DCache, FuPool, LoadRegUnit, LrOutcome, MachineConfig, MemOpKind, NullObserver,
    PipelineObserver, RunResult, RunStats, SlotReservation, StallReason,
};

use crate::common::{Broadcasts, Operand, Tag};
use crate::predict::{Predictor, PredictorConfig};
use crate::ruu::Bypass;
use crate::SimError;

/// Statistics specific to speculative execution.
#[derive(Debug, Clone, Default)]
pub struct SpecStats {
    /// Conditional branches whose outcome had to be predicted.
    pub predicted: u64,
    /// Predictions that turned out wrong.
    pub mispredicted: u64,
    /// Speculative instructions nullified by squashes.
    pub nullified: u64,
}

/// Result of a speculative run: the architectural [`RunResult`] plus
/// speculation statistics.
#[derive(Debug, Clone)]
pub struct SpecRunResult {
    /// The architectural result (instructions = committed instructions
    /// plus resolved branches, exactly as the non-speculative machines
    /// count).
    pub run: RunResult,
    /// Speculation counters.
    pub spec: SpecStats,
}

/// The speculative RUU simulator.
#[derive(Debug, Clone)]
pub struct SpecRuu {
    config: MachineConfig,
    entries: usize,
    bypass: Bypass,
    predictor: PredictorConfig,
}

impl SpecRuu {
    /// Creates a speculative RUU with `entries` window entries and the
    /// default predictor ([`PredictorConfig::default`], the paper-era
    /// 64-entry two-bit counter table).
    ///
    /// # Panics
    /// Panics if `entries` is zero.
    #[must_use]
    pub fn new(config: MachineConfig, entries: usize, bypass: Bypass) -> Self {
        SpecRuu::with_predictor(config, entries, bypass, PredictorConfig::default())
    }

    /// As [`SpecRuu::new`], selecting the branch predictor the uniform
    /// [`crate::IssueSimulator`] entry points instantiate per run.
    ///
    /// # Panics
    /// Panics if `entries` is zero or `predictor` fails
    /// [`PredictorConfig::validate`].
    #[must_use]
    pub fn with_predictor(
        config: MachineConfig,
        entries: usize,
        bypass: Bypass,
        predictor: PredictorConfig,
    ) -> Self {
        assert!(entries > 0, "the RUU needs at least one entry");
        if let Err(e) = predictor.validate() {
            panic!("invalid predictor configuration: {e}");
        }
        SpecRuu {
            config,
            entries,
            bypass,
            predictor,
        }
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The predictor configuration used by the trait-object entry points.
    #[must_use]
    pub fn predictor(&self) -> PredictorConfig {
        self.predictor
    }

    /// Runs `program` to completion under speculation with `predictor`.
    ///
    /// # Errors
    /// [`SimError::InstLimit`] if more than `limit` *architectural*
    /// instructions complete; [`SimError::Deadlock`] on lack of progress.
    pub fn run(
        &self,
        program: &Program,
        mem: Memory,
        limit: u64,
        predictor: &mut dyn Predictor,
    ) -> Result<SpecRunResult, SimError> {
        let mut nobs = NullObserver;
        self.run_observed(program, mem, limit, predictor, &mut nobs)
    }

    /// As [`SpecRuu::run`], reporting every pipeline event to `obs`
    /// (including [`PipelineObserver::flush`] on each misprediction
    /// squash).
    ///
    /// # Errors
    /// As for [`SpecRuu::run`].
    pub fn run_observed(
        &self,
        program: &Program,
        mem: Memory,
        limit: u64,
        predictor: &mut dyn Predictor,
        obs: &mut dyn PipelineObserver,
    ) -> Result<SpecRunResult, SimError> {
        self.run_from_observed(ArchState::new(), mem, program, limit, predictor, obs)
    }

    /// As [`SpecRuu::run_observed`], starting from an explicit
    /// architectural state (fetch starts at `state.pc`).
    ///
    /// # Errors
    /// As for [`SpecRuu::run`].
    pub fn run_from_observed(
        &self,
        state: ArchState,
        mem: Memory,
        program: &Program,
        limit: u64,
        predictor: &mut dyn Predictor,
        obs: &mut dyn PipelineObserver,
    ) -> Result<SpecRunResult, SimError> {
        let mut core = SCore::new(self, state, mem, program, limit, predictor, obs);
        core.run()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemPhase {
    NotMem,
    AwaitingLr,
    ToMemory,
    AwaitingData,
    Forwarding,
    StorePending,
    Done,
}

#[derive(Debug, Clone)]
struct Entry {
    seq: u64,
    inst: Inst,
    dst_tag: Option<Tag>,
    ops: [Operand; 2],
    dispatched: bool,
    executed: bool,
    result: Option<u64>,
    ea: Option<u64>,
    mem_phase: MemPhase,
    lr_provider: bool,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Finish(u64),
    StoreExec(u64),
}

#[derive(Debug, Clone, Copy, Default)]
struct FfEntry {
    value: u64,
    valid: bool,
}

/// Snapshot taken when a branch is predicted, for misprediction repair.
/// Branches whose condition was already known at decode also get a record
/// (with `assumed_taken` = the actual outcome, so they can never
/// "mispredict"): a branch only *counts* architecturally when it reaches
/// the front of the record queue, i.e. when it is itself known to be on
/// the correct path.
#[derive(Debug, Clone)]
struct BranchRecord {
    seq: u64,
    pc: u32,
    inst: Inst,
    assumed_taken: bool,
    /// `true` if the direction came from the predictor (may mispredict).
    speculative: bool,
    cond: Operand,
    /// pc of the *other* path, fetched on misprediction.
    repair_pc: u32,
    /// LI counters at prediction time (only issue advances LI, and every
    /// post-branch issue is squashed, so restoring is exact).
    li: [u64; NUM_REGS],
    /// A future file at prediction time (restoring is conservative: a
    /// legitimate older broadcast in between re-arrives via the commit
    /// bus, so a stale-invalid entry only delays, never corrupts).
    ff: [FfEntry; 8],
}

struct SCore<'a> {
    cfg: &'a MachineConfig,
    program: &'a Program,
    bypass: Bypass,
    capacity: usize,
    limit: u64,
    predictor: &'a mut dyn Predictor,

    cycle: u64,
    arch: ArchState,
    mem: Memory,
    ni: [u32; NUM_REGS],
    li: [u64; NUM_REGS],
    ff: [FfEntry; 8],
    window: VecDeque<Entry>,
    branches: VecDeque<BranchRecord>,
    mem_queue: VecDeque<u64>,
    forward_queue: Vec<u64>,
    events: BTreeMap<u64, Vec<Event>>,
    lr: LoadRegUnit,
    fus: FuPool,
    bus: SlotReservation,
    dcache: DCache,
    broadcasts: Broadcasts,
    stats: RunStats,
    spec: SpecStats,
    obs: &'a mut dyn PipelineObserver,

    pc: u32,
    next_fetch_cycle: u64,
    /// Fetch-stall cycles strictly before this cycle are misprediction
    /// repair (squash + redirect) rather than ordinary branch bubbles.
    repair_until: u64,
    halted: bool,

    seq_counter: u64,
    /// Architectural completions: commits + resolved branches.
    completed: u64,
    events_scheduled: u64,
    last_progress: (u64, u64),
    last_progress_cycle: u64,
}

impl<'a> SCore<'a> {
    fn new(
        sim: &'a SpecRuu,
        state: ArchState,
        mem: Memory,
        program: &'a Program,
        limit: u64,
        predictor: &'a mut dyn Predictor,
        obs: &'a mut dyn PipelineObserver,
    ) -> Self {
        let pc = state.pc;
        let cfg = &sim.config;
        let dcache = DCache::new(
            &cfg.dcache,
            cfg.fu_latency(FuClass::Memory),
            mem.len() as u64,
        );
        SCore {
            cfg,
            program,
            bypass: sim.bypass,
            capacity: sim.entries,
            limit,
            predictor,
            cycle: 0,
            arch: state,
            mem,
            ni: [0; NUM_REGS],
            li: [0; NUM_REGS],
            ff: [FfEntry::default(); 8],
            window: VecDeque::new(),
            branches: VecDeque::new(),
            mem_queue: VecDeque::new(),
            forward_queue: Vec::new(),
            events: BTreeMap::new(),
            lr: LoadRegUnit::new(sim.config.load_registers),
            fus: FuPool::new(),
            bus: SlotReservation::new(sim.config.result_buses),
            dcache,
            broadcasts: Broadcasts::default(),
            stats: RunStats::default(),
            spec: SpecStats::default(),
            obs,
            pc,
            next_fetch_cycle: 0,
            repair_until: 0,
            halted: false,
            seq_counter: 0,
            completed: 0,
            events_scheduled: 0,
            last_progress: (0, 0),
            last_progress_cycle: 0,
        }
    }

    fn tag_mask(&self) -> u64 {
        (1u64 << self.cfg.counter_bits) - 1
    }

    fn pos(&self, seq: u64) -> usize {
        self.window
            .iter()
            .position(|e| e.seq == seq)
            .expect("entry for live seq is in the window")
    }

    fn schedule(&mut self, cycle: u64, ev: Event) {
        self.events_scheduled += 1;
        self.events.entry(cycle).or_default().push(ev);
    }

    fn gate_all(&mut self, tag: Tag, value: u64) {
        self.broadcasts.push(tag, value);
        for e in &mut self.window {
            for op in &mut e.ops {
                op.gate(tag, value);
            }
        }
        for b in &mut self.branches {
            b.cond.gate(tag, value);
        }
    }

    fn broadcast_result(&mut self, tag: Tag, value: u64) {
        self.gate_all(tag, value);
        if tag.reg.is_a() && tag.instance == (self.li[tag.reg.index()] & self.tag_mask()) {
            self.ff[tag.reg.num() as usize] = FfEntry { value, valid: true };
        }
    }

    fn wake_forwarded_load(&mut self, seq: u64, value: u64) {
        let i = self.pos(seq);
        let e = &mut self.window[i];
        debug_assert_eq!(e.mem_phase, MemPhase::AwaitingData);
        e.result = Some(value);
        e.mem_phase = MemPhase::Forwarding;
        self.forward_queue.push(seq);
        self.stats.forwarded_loads += 1;
    }

    // ---- phases (mirroring the base RUU; see ruu.rs) -----------------

    fn phase_completions(&mut self) {
        let Some(evs) = self.events.remove(&self.cycle) else {
            return;
        };
        for ev in evs {
            match ev {
                Event::Finish(seq) => {
                    let i = self.pos(seq);
                    self.obs.complete(self.cycle, seq);
                    let e = &mut self.window[i];
                    e.executed = true;
                    let dst_tag = e.dst_tag;
                    let value = e.result;
                    let is_load = e.inst.is_load();
                    let was_provider = e.lr_provider;
                    if is_load {
                        e.mem_phase = MemPhase::Done;
                    }
                    if let Some(tag) = dst_tag {
                        let v = value.expect("finished producer has a result");
                        self.broadcast_result(tag, v);
                    }
                    if is_load {
                        if was_provider {
                            let v = value.expect("finished load has data");
                            for w in self.lr.provider_ready(seq, v) {
                                self.wake_forwarded_load(w, v);
                            }
                        }
                        self.lr.retire(seq);
                    }
                }
                Event::StoreExec(seq) => {
                    let i = self.pos(seq);
                    self.obs.complete(self.cycle, seq);
                    let e = &mut self.window[i];
                    e.executed = true;
                    let data = e.ops[1].value();
                    for w in self.lr.provider_ready(seq, data) {
                        self.wake_forwarded_load(w, data);
                    }
                }
            }
        }
    }

    fn phase_addr_gen(&mut self) {
        let Some(&seq) = self.mem_queue.front() else {
            return;
        };
        let i = self.pos(seq);
        let (ready, kind, imm) = {
            let e = &self.window[i];
            (
                e.ops[0].is_ready(),
                if e.inst.is_load() {
                    MemOpKind::Load
                } else {
                    MemOpKind::Store
                },
                e.inst.imm,
            )
        };
        if !ready {
            return;
        }
        let base = self.window[i].ops[0].value();
        // Canonicalize so the load registers compare the word actually
        // touched; raw effective addresses may alias one memory word.
        let ea = self
            .mem
            .canonicalize(semantics::effective_address(base, imm));
        let Some(outcome) = self.lr.process(seq, kind, ea) else {
            return;
        };
        self.mem_queue.pop_front();
        let e = &mut self.window[i];
        e.ea = Some(ea);
        match outcome {
            LrOutcome::ToMemory => {
                e.mem_phase = MemPhase::ToMemory;
                e.lr_provider = true;
            }
            LrOutcome::Forwarded { value } => {
                e.result = Some(value);
                e.mem_phase = MemPhase::Forwarding;
                self.forward_queue.push(seq);
                self.stats.forwarded_loads += 1;
            }
            LrOutcome::WaitOn { .. } => e.mem_phase = MemPhase::AwaitingData,
            LrOutcome::StoreRecorded => e.mem_phase = MemPhase::StorePending,
        }
    }

    fn phase_forwards(&mut self) {
        let lat = self.cfg.forward_latency;
        let queue = std::mem::take(&mut self.forward_queue);
        let mut remaining = Vec::new();
        for seq in queue {
            if self.bus.try_reserve(self.cycle + lat) {
                self.obs
                    .dispatch(self.cycle, seq, FuClass::Memory, self.cycle + lat);
                self.schedule(self.cycle + lat, Event::Finish(seq));
            } else {
                remaining.push(seq);
            }
        }
        self.forward_queue = remaining;
    }

    fn phase_dispatch(&mut self) {
        let mut paths = self.cfg.dispatch_paths;
        let mut candidates: Vec<(bool, u64)> = Vec::new();
        for e in &self.window {
            if e.dispatched || e.executed {
                continue;
            }
            match e.mem_phase {
                MemPhase::ToMemory => candidates.push((true, e.seq)),
                MemPhase::StorePending if e.ops[0].is_ready() && e.ops[1].is_ready() => {
                    candidates.push((true, e.seq));
                }
                MemPhase::NotMem
                    if e.inst.fu_class().is_some()
                        && e.ops[0].is_ready()
                        && e.ops[1].is_ready() =>
                {
                    candidates.push((false, e.seq));
                }
                _ => {}
            }
        }
        candidates.sort_by_key(|&(is_mem, seq)| (!is_mem, seq));
        for (_, seq) in candidates {
            if paths == 0 {
                break;
            }
            let i = self.pos(seq);
            let e = &self.window[i];
            match e.mem_phase {
                MemPhase::ToMemory => {
                    let ea = e.ea.expect("address generated");
                    let plan = self.dcache.plan(ea, self.cycle);
                    let Some(lat) = plan.latency() else {
                        continue; // every outstanding-miss register busy: retry
                    };
                    if self.fus.can_accept(FuClass::Memory, self.cycle)
                        && self.bus.available(self.cycle + lat)
                    {
                        self.fus.accept(FuClass::Memory, self.cycle);
                        self.bus.try_reserve(self.cycle + lat);
                        let v = self.mem.read(ea);
                        let e = &mut self.window[i];
                        e.result = Some(v);
                        e.dispatched = true;
                        self.obs
                            .dispatch(self.cycle, seq, FuClass::Memory, self.cycle + lat);
                        if self.dcache.is_finite() {
                            let plan = self.dcache.access(ea, self.cycle);
                            self.obs.mem_access(self.cycle, ea, plan.is_hit(), lat);
                        }
                        self.schedule(self.cycle + lat, Event::Finish(seq));
                        paths -= 1;
                    }
                }
                MemPhase::StorePending if self.fus.can_accept(FuClass::Memory, self.cycle) => {
                    self.fus.accept(FuClass::Memory, self.cycle);
                    self.window[i].dispatched = true;
                    self.obs.dispatch(
                        self.cycle,
                        seq,
                        FuClass::Memory,
                        self.cycle + self.cfg.store_exec_latency,
                    );
                    self.schedule(
                        self.cycle + self.cfg.store_exec_latency,
                        Event::StoreExec(seq),
                    );
                    paths -= 1;
                }
                MemPhase::NotMem => {
                    let fu = e.inst.fu_class().expect("ALU entry has a unit");
                    let lat = self.cfg.fu_latency(fu);
                    if self.fus.can_accept(fu, self.cycle) && self.bus.available(self.cycle + lat) {
                        self.fus.accept(fu, self.cycle);
                        self.bus.try_reserve(self.cycle + lat);
                        let e = &mut self.window[i];
                        let v = semantics::alu_result(
                            e.inst.opcode,
                            e.ops[0].value(),
                            e.ops[1].value(),
                            e.inst.imm,
                        );
                        e.result = Some(v);
                        e.dispatched = true;
                        self.obs.dispatch(self.cycle, seq, fu, self.cycle + lat);
                        self.schedule(self.cycle + lat, Event::Finish(seq));
                        paths -= 1;
                    }
                }
                _ => {}
            }
        }
    }

    /// Commit is gated on the oldest unresolved branch: a speculative
    /// instruction may execute but never update architectural state.
    fn phase_commit(&mut self) {
        let spec_boundary = self.branches.front().map(|b| b.seq);
        for _ in 0..self.cfg.commit_width {
            let Some(head) = self.window.front() else {
                break;
            };
            if !head.executed {
                break;
            }
            if let Some(boundary) = spec_boundary {
                if head.seq > boundary {
                    break;
                }
            }
            let e = self.window.pop_front().expect("head exists");
            if e.inst.is_store() {
                let ea = e.ea.expect("executed store has an address");
                self.mem.write(ea, e.ops[1].value());
                self.lr.retire(e.seq);
            }
            if let Some(tag) = e.dst_tag {
                let v = e.result.expect("executed producer has a result");
                self.arch.set_reg(tag.reg, v);
                self.ni[tag.reg.index()] -= 1;
                self.gate_all(tag, v);
            }
            self.obs.commit(self.cycle, e.seq);
            self.completed += 1;
        }
    }

    /// Resolves the oldest branch whose condition value is available.
    fn phase_resolve_branches(&mut self) {
        while let Some(b) = self.branches.front() {
            if !b.cond.is_ready() {
                break;
            }
            let b = self.branches.pop_front().expect("front exists");
            let actual = semantics::branch_taken(b.inst.opcode, b.cond.value());
            if b.inst.opcode.is_cond_branch() {
                self.predictor.update(b.pc, actual);
            }
            self.stats.branches += 1;
            if actual {
                self.stats.taken_branches += 1;
            }
            self.completed += 1;
            if actual != b.assumed_taken {
                debug_assert!(b.speculative, "a known-direction branch cannot mispredict");
                self.spec.mispredicted += 1;
                self.stats.mispredicted_branches += 1;
                self.squash(&b);
                break; // younger branches were squashed with everything else
            }
        }
    }

    /// Nullifies every instruction younger than the mispredicted branch
    /// (paper §7: identify conditional instructions "and prevent them
    /// from being committed until they are proven to be from a correct
    /// path" — here they are removed outright).
    fn squash(&mut self, b: &BranchRecord) {
        // Window entries, youngest first (the load registers require
        // youngest-first squash ordering).
        let mut squashed: Vec<u64> = self
            .window
            .iter()
            .filter(|e| e.seq > b.seq)
            .map(|e| e.seq)
            .collect();
        squashed.sort_unstable_by(|a, c| c.cmp(a));
        self.spec.nullified += squashed.len() as u64;
        self.obs.flush(self.cycle, squashed.len() as u64);
        for &seq in &squashed {
            self.lr.squash(seq);
            // Undo the instance the squashed instruction acquired. (NI is
            // repaired per entry rather than snapshot-restored: older
            // instructions may have committed since the prediction, and
            // their NI decrements must survive the squash.)
            let i = self.pos(seq);
            if let Some(tag) = self.window[i].dst_tag {
                self.ni[tag.reg.index()] -= 1;
            }
        }
        self.window.retain(|e| e.seq <= b.seq);
        self.mem_queue.retain(|&s| s <= b.seq);
        self.forward_queue.retain(|&s| s <= b.seq);
        for evs in self.events.values_mut() {
            evs.retain(|ev| match ev {
                Event::Finish(s) | Event::StoreExec(s) => *s <= b.seq,
            });
        }
        self.events.retain(|_, evs| !evs.is_empty());
        self.branches.clear(); // all younger than b

        // Restore the rename state from the branch's snapshot.
        self.li = b.li;
        self.ff = b.ff;

        // Redirect fetch to the repair path. The current cycle and the
        // `mispredict_penalty` cycles after it are all charged as
        // misprediction repair: `repair_stalls == flushes * (penalty + 1)`
        // is the invariant `FlushAccountant` checks.
        self.pc = b.repair_pc;
        self.halted = false;
        self.next_fetch_cycle = self.cycle + 1 + self.cfg.mispredict_penalty;
        self.repair_until = self.next_fetch_cycle;
    }

    fn read_operand(&self, r: Reg) -> Operand {
        if self.ni[r.index()] == 0 {
            return Operand::Ready(self.arch.reg(r));
        }
        let tag = Tag {
            reg: r,
            instance: self.li[r.index()] & self.tag_mask(),
        };
        if let Some(v) = self.broadcasts.lookup(tag) {
            return Operand::Ready(v);
        }
        match self.bypass {
            Bypass::Full => {
                match self
                    .window
                    .iter()
                    .find(|e| e.dst_tag == Some(tag) && e.executed)
                {
                    Some(e) => Operand::Ready(e.result.expect("executed producer has a result")),
                    None => Operand::Waiting(tag),
                }
            }
            Bypass::None => Operand::Waiting(tag),
            Bypass::LimitedA => {
                if r.is_a() {
                    let ff = self.ff[r.num() as usize];
                    if ff.valid {
                        Operand::Ready(ff.value)
                    } else {
                        Operand::Waiting(tag)
                    }
                } else {
                    Operand::Waiting(tag)
                }
            }
        }
    }

    fn phase_issue(&mut self) -> Result<(), SimError> {
        if self.halted {
            self.stats.stall(StallReason::Drained);
            self.obs.stall(self.cycle, StallReason::Drained);
            return Ok(());
        }
        if self.cycle < self.next_fetch_cycle {
            let reason = if self.cycle < self.repair_until {
                StallReason::MispredictRepair
            } else {
                StallReason::DeadCycle
            };
            self.stats.stall(reason);
            self.obs.stall(self.cycle, reason);
            return Ok(());
        }
        // Running off the end of the program or decoding HALT drains the
        // machine: the cycle is charged like every other drain cycle (it
        // previously went unaccounted, breaking the cycle identity).
        let Some(&inst) = self.program.get(self.pc) else {
            self.halted = true;
            self.stats.stall(StallReason::Drained);
            self.obs.stall(self.cycle, StallReason::Drained);
            return Ok(());
        };
        if inst.is_halt() {
            self.halted = true;
            self.stats.stall(StallReason::Drained);
            self.obs.stall(self.cycle, StallReason::Drained);
            return Ok(());
        }
        if self.completed >= self.limit {
            return Err(SimError::InstLimit { limit: self.limit });
        }
        self.obs.fetch(self.cycle, self.pc);

        if inst.is_branch() {
            let cond = match inst.src1 {
                Some(r) => self.read_operand(r),
                None => Operand::Ready(0),
            };
            let target = inst.target.expect("branch has a target");
            // Decide the fetch direction: the actual outcome if the
            // condition is already known, the predictor's guess
            // otherwise. Either way the branch is *counted* only when it
            // reaches the front of the record queue — it may itself be
            // sitting on an older branch's wrong path.
            let (assumed_taken, speculative) = match cond {
                Operand::Ready(v) => {
                    let taken = if inst.opcode == Opcode::Jump {
                        true
                    } else {
                        semantics::branch_taken(inst.opcode, v)
                    };
                    (taken, false)
                }
                Operand::Waiting(_) => {
                    self.spec.predicted += 1;
                    self.stats.predicted_branches += 1;
                    (self.predictor.predict(self.pc, target), true)
                }
            };
            let (next_pc, repair_pc, bubble) = if assumed_taken {
                (
                    target,
                    self.pc + 1,
                    if speculative {
                        self.cfg.spec_taken_bubble
                    } else {
                        self.cfg.branch_taken_penalty
                    },
                )
            } else {
                (
                    self.pc + 1,
                    target,
                    if speculative {
                        0
                    } else {
                        self.cfg.branch_untaken_penalty
                    },
                )
            };
            self.branches.push_back(BranchRecord {
                seq: self.seq_counter,
                pc: self.pc,
                inst,
                assumed_taken,
                speculative,
                cond,
                repair_pc,
                li: self.li,
                ff: self.ff,
            });
            self.obs.issue(self.cycle, self.seq_counter);
            self.seq_counter += 1;
            self.pc = next_pc;
            self.next_fetch_cycle = self.cycle + 1 + bubble;
            self.stats.issue_cycles += 1;
            return Ok(());
        }

        if self.window.len() >= self.capacity {
            self.stats.stall(StallReason::WindowFull);
            self.obs.stall(self.cycle, StallReason::WindowFull);
            return Ok(());
        }
        if let Some(d) = inst.dst {
            if self.ni[d.index()] >= self.cfg.max_instances() {
                self.stats.stall(StallReason::RegInstanceLimit);
                self.obs.stall(self.cycle, StallReason::RegInstanceLimit);
                return Ok(());
            }
        }
        if inst.is_mem() && self.lr.is_full() {
            self.stats.stall(StallReason::LoadRegFull);
            self.obs.stall(self.cycle, StallReason::LoadRegFull);
            return Ok(());
        }

        let ops = [
            inst.src1
                .map_or(Operand::Ready(0), |r| self.read_operand(r)),
            inst.src2
                .map_or(Operand::Ready(0), |r| self.read_operand(r)),
        ];
        let dst_tag = inst.dst.map(|d| {
            self.ni[d.index()] += 1;
            self.li[d.index()] += 1;
            if d.is_a() {
                self.ff[d.num() as usize].valid = false;
            }
            Tag {
                reg: d,
                instance: self.li[d.index()] & self.tag_mask(),
            }
        });
        let seq = self.seq_counter;
        self.seq_counter += 1;
        let is_mem = inst.is_mem();
        let no_fu = inst.fu_class().is_none();
        self.window.push_back(Entry {
            seq,
            inst,
            dst_tag,
            ops,
            dispatched: no_fu,
            executed: no_fu,
            result: None,
            ea: None,
            mem_phase: if is_mem {
                MemPhase::AwaitingLr
            } else {
                MemPhase::NotMem
            },
            lr_provider: false,
        });
        if is_mem {
            self.mem_queue.push_back(seq);
        }
        self.obs.issue(self.cycle, seq);
        self.stats.issue_cycles += 1;
        self.pc += 1;
        Ok(())
    }

    fn drained(&self) -> bool {
        self.halted
            && self.window.is_empty()
            && self.branches.is_empty()
            && self.mem_queue.is_empty()
            && self.forward_queue.is_empty()
            && self.events.is_empty()
    }

    fn run(&mut self) -> Result<SpecRunResult, SimError> {
        loop {
            self.broadcasts.clear();
            let occ = self.window.len() as u32;
            self.stats.observe_occupancy(occ);

            self.phase_completions();
            self.phase_addr_gen();
            self.phase_forwards();
            self.phase_dispatch();
            self.phase_commit();
            self.phase_resolve_branches();
            self.phase_issue()?;

            let progress = (self.completed + self.seq_counter, self.events_scheduled);
            if progress != self.last_progress {
                self.last_progress = progress;
                self.last_progress_cycle = self.cycle;
            } else if self.cycle - self.last_progress_cycle > 100_000 {
                return Err(SimError::Deadlock { cycle: self.cycle });
            }

            self.obs.cycle_end(self.cycle, occ);
            if self.drained() {
                self.cycle += 1;
                break;
            }
            self.cycle += 1;
            if self.cycle.is_multiple_of(4096) {
                self.bus.release_before(self.cycle);
            }
        }
        let mut state = self.arch.clone();
        state.pc = self.pc;
        let cs = self.dcache.stats();
        self.stats.dcache_accesses = cs.accesses;
        self.stats.dcache_hits = cs.hits;
        self.stats.dcache_misses = cs.misses;
        Ok(SpecRunResult {
            run: RunResult {
                cycles: self.cycle,
                instructions: self.completed,
                state,
                memory: self.mem.clone(),
                stats: std::mem::take(&mut self.stats),
            },
            spec: std::mem::take(&mut self.spec),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::{AlwaysTaken, Btfn, TwoBit};
    use crate::ruu::Ruu;
    use ruu_exec::Trace;
    use ruu_isa::Asm;

    fn cfg() -> MachineConfig {
        MachineConfig::paper()
    }

    fn loop_prog() -> Program {
        let mut a = Asm::new("t");
        let top = a.new_label();
        a.a_imm(Reg::a(0), 25);
        a.a_imm(Reg::a(1), 100);
        a.bind(top);
        a.ld_s(Reg::s(1), Reg::a(1), 0);
        a.f_add(Reg::s(2), Reg::s(1), Reg::s(2));
        a.st_s(Reg::s(2), Reg::a(1), 64);
        a.a_add_imm(Reg::a(1), Reg::a(1), 1);
        a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
        a.br_an(top);
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn matches_golden_with_every_predictor() {
        let p = loop_prog();
        let g = Trace::capture(&p, Memory::new(1 << 12), 1_000_000).unwrap();
        let sim = SpecRuu::new(cfg(), 16, Bypass::Full);
        let mut preds: Vec<Box<dyn Predictor>> = vec![
            Box::new(AlwaysTaken),
            Box::new(Btfn),
            Box::new(TwoBit::default()),
        ];
        for p_ in &mut preds {
            let r = sim
                .run(&p, Memory::new(1 << 12), 1_000_000, p_.as_mut())
                .unwrap();
            assert_eq!(&r.run.state, g.final_state(), "{}", p_.name());
            assert_eq!(&r.run.memory, g.final_memory(), "{}", p_.name());
            assert_eq!(r.run.instructions, g.len() as u64, "{}", p_.name());
        }
    }

    #[test]
    fn speculation_beats_the_blocking_ruu_when_conditions_are_slow() {
        // The branch condition comes from a load, so the non-speculative
        // machine parks in decode every iteration while the predictor
        // sails through.
        let mut a = Asm::new("t");
        let top = a.new_label();
        let done = a.new_label();
        a.a_imm(Reg::a(1), 0); // index
        a.bind(top);
        a.ld_a(Reg::a(0), Reg::a(1), 600); // condition from memory (slow)
        a.ld_s(Reg::s(2), Reg::a(1), 200);
        a.f_mul(Reg::s(2), Reg::s(2), Reg::s(2));
        a.st_s(Reg::s(2), Reg::a(1), 400);
        a.a_add_imm(Reg::a(1), Reg::a(1), 1);
        a.br_az(done); // waits on the load in the blocking machine
        a.jump(top);
        a.bind(done);
        a.halt();
        let p = a.assemble().unwrap();
        let mut mem = Memory::new(1 << 12);
        for i in 0..40 {
            mem.write(600 + i, 1); // loop continues while nonzero
        }
        mem.write(640, 0);

        let base = Ruu::new(cfg(), 16, Bypass::Full)
            .run(&p, mem.clone(), 1_000_000)
            .unwrap();
        let mut pred = TwoBit::default();
        let spec = SpecRuu::new(cfg(), 16, Bypass::Full)
            .run(&p, mem.clone(), 1_000_000, &mut pred)
            .unwrap();
        assert_eq!(spec.run.state.regs, base.state.regs);
        assert_eq!(spec.run.memory, base.memory);
        assert!(
            spec.run.cycles < base.cycles,
            "spec {} vs blocking {}",
            spec.run.cycles,
            base.cycles
        );
        assert!(spec.spec.predicted > 0);
        // The exit iteration (br_az finally taken) is the misprediction.
        assert!(spec.spec.mispredicted >= 1);
        assert!(spec.spec.nullified > 0);
    }

    #[test]
    fn mispredictions_are_architecturally_invisible() {
        // An alternating, slowly-resolving branch direction defeats the
        // predictor regularly; the final state must still be golden.
        let mut a = Asm::new("t2");
        let top = a.new_label();
        let skip = a.new_label();
        a.a_imm(Reg::a(7), 20); // loop count in A7
        a.a_imm(Reg::a(1), 0);
        a.bind(top);
        a.ld_a(Reg::a(0), Reg::a(1), 500); // alternating 0/1, slow
        a.br_az(skip);
        a.s_imm(Reg::s(1), 7);
        a.st_s(Reg::s(1), Reg::a(1), 300);
        a.bind(skip);
        a.a_add_imm(Reg::a(1), Reg::a(1), 1);
        a.a_sub_imm(Reg::a(7), Reg::a(7), 1);
        a.a_add_imm(Reg::a(0), Reg::a(7), 0);
        a.br_an(top);
        a.halt();
        let p = a.assemble().unwrap();
        let mut mem = Memory::new(1 << 12);
        for i in 0..20 {
            mem.write(500 + i, i % 2);
        }
        let g = Trace::capture(&p, mem.clone(), 1_000_000).unwrap();
        for bypass in [Bypass::Full, Bypass::None, Bypass::LimitedA] {
            let mut pred = TwoBit::default();
            let r = SpecRuu::new(cfg(), 12, bypass)
                .run(&p, mem.clone(), 1_000_000, &mut pred)
                .unwrap();
            assert_eq!(&r.run.state, g.final_state(), "{bypass:?}");
            assert_eq!(&r.run.memory, g.final_memory(), "{bypass:?}");
            assert!(r.spec.mispredicted > 0, "{bypass:?} must mispredict");
        }
    }

    #[test]
    fn livermore_kernel_runs_speculatively_and_verifies() {
        let w = ruu_workloads::livermore::lll5();
        let mut pred = TwoBit::default();
        let r = SpecRuu::new(cfg(), 16, Bypass::Full)
            .run(&w.program, w.memory.clone(), w.inst_limit, &mut pred)
            .unwrap();
        w.verify(&r.run.memory).unwrap();
    }
}
