//! The [`IssueSimulator`] trait: one object-safe, `Send` interface over
//! every cycle-level issue-mechanism simulator.
//!
//! Before this trait existed, each mechanism exposed its own inherent
//! `run`/`run_from` methods and [`crate::Mechanism::run`] dispatched
//! through a giant `match`. The trait turns "a configured simulator" into
//! a first-class value: [`crate::Mechanism::build`] returns a
//! `Box<dyn IssueSimulator>` that batch engines (`ruu-engine`) can hand
//! to worker threads, hold in job tables, and drive uniformly — without
//! caring which mechanism is behind it.
//!
//! Object safety is deliberate: the parallel sweep engine stores
//! heterogeneous simulators in one grid. `Send` is part of the contract
//! because jobs migrate to `std::thread::scope` workers.

use ruu_exec::{ArchState, Memory};
use ruu_isa::Program;
use ruu_sim_core::{MachineConfig, RunResult};

use crate::reorder::InOrderPrecise;
use crate::ruu::Ruu;
use crate::simple::SimpleIssue;
use crate::tagged::TaggedSim;
use crate::SimError;

/// A configured, runnable issue-mechanism simulator.
///
/// Implementations are cheap to construct (configuration only — no
/// per-run state), so a fresh one can be built per job. All per-run
/// state lives inside `run_from`, which is why one simulator value can
/// serve many sequential runs and why `&self` suffices.
pub trait IssueSimulator: Send {
    /// The machine configuration this simulator was built with.
    fn config(&self) -> &MachineConfig;

    /// Runs `program` from an explicit architectural state (e.g. a
    /// restart after a precise interrupt).
    ///
    /// # Errors
    /// [`SimError::InstLimit`] if more than `limit` dynamic instructions
    /// issue; [`SimError::Deadlock`] on internal lack of progress.
    fn run_from(
        &self,
        state: ArchState,
        mem: Memory,
        program: &Program,
        limit: u64,
    ) -> Result<RunResult, SimError>;

    /// Runs `program` to completion from zeroed registers.
    ///
    /// # Errors
    /// As for [`IssueSimulator::run_from`].
    fn run(&self, program: &Program, mem: Memory, limit: u64) -> Result<RunResult, SimError> {
        self.run_from(ArchState::new(), mem, program, limit)
    }
}

impl IssueSimulator for SimpleIssue {
    fn config(&self) -> &MachineConfig {
        SimpleIssue::config(self)
    }

    fn run_from(
        &self,
        state: ArchState,
        mem: Memory,
        program: &Program,
        limit: u64,
    ) -> Result<RunResult, SimError> {
        SimpleIssue::run_from(self, state, mem, program, limit)
    }
}

impl IssueSimulator for TaggedSim {
    fn config(&self) -> &MachineConfig {
        TaggedSim::config(self)
    }

    fn run_from(
        &self,
        state: ArchState,
        mem: Memory,
        program: &Program,
        limit: u64,
    ) -> Result<RunResult, SimError> {
        TaggedSim::run_from(self, state, mem, program, limit)
    }
}

impl IssueSimulator for Ruu {
    fn config(&self) -> &MachineConfig {
        Ruu::config(self)
    }

    fn run_from(
        &self,
        state: ArchState,
        mem: Memory,
        program: &Program,
        limit: u64,
    ) -> Result<RunResult, SimError> {
        Ruu::run_from(self, state, mem, program, limit)
    }
}

impl IssueSimulator for InOrderPrecise {
    fn config(&self) -> &MachineConfig {
        InOrderPrecise::config(self)
    }

    fn run_from(
        &self,
        state: ArchState,
        mem: Memory,
        program: &Program,
        limit: u64,
    ) -> Result<RunResult, SimError> {
        InOrderPrecise::run_from(self, state, mem, program, limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bypass, Mechanism, PreciseScheme, WindowKind};
    use ruu_isa::{Asm, Reg};

    fn tiny_program() -> Program {
        let mut a = Asm::new("t");
        a.a_imm(Reg::a(1), 7);
        a.a_add(Reg::a(2), Reg::a(1), Reg::a(1));
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn trait_objects_are_send() {
        fn assert_send<T: Send + ?Sized>() {}
        assert_send::<dyn IssueSimulator>();
        assert_send::<Box<dyn IssueSimulator>>();
    }

    #[test]
    fn boxed_simulators_run_uniformly() {
        let cfg = MachineConfig::paper();
        let p = tiny_program();
        let sims: Vec<Box<dyn IssueSimulator>> = vec![
            Box::new(SimpleIssue::new(cfg.clone())),
            Box::new(TaggedSim::new(
                cfg.clone(),
                WindowKind::Merged { entries: 8 },
            )),
            Box::new(Ruu::new(cfg.clone(), 8, Bypass::Full)),
            Box::new(InOrderPrecise::new(
                cfg.clone(),
                PreciseScheme::FutureFile,
                8,
            )),
        ];
        for sim in &sims {
            assert_eq!(sim.config(), &cfg);
            let r = sim.run(&p, Memory::new(1 << 10), 1_000).unwrap();
            assert_eq!(r.state.reg(Reg::a(2)), 14);
        }
    }

    #[test]
    fn default_run_matches_explicit_run_from() {
        let cfg = MachineConfig::paper();
        let p = tiny_program();
        for m in [
            Mechanism::Simple,
            Mechanism::Rstu { entries: 4 },
            Mechanism::Ruu {
                entries: 4,
                bypass: Bypass::Full,
            },
            Mechanism::InOrderPrecise {
                scheme: PreciseScheme::ReorderBuffer,
                entries: 4,
            },
        ] {
            let sim = m.build(&cfg);
            let a = sim.run(&p, Memory::new(1 << 10), 1_000).unwrap();
            let b = sim
                .run_from(ArchState::new(), Memory::new(1 << 10), &p, 1_000)
                .unwrap();
            assert_eq!(a.cycles, b.cycles, "{m}");
            assert_eq!(a.state, b.state, "{m}");
        }
    }
}
