//! The [`IssueSimulator`] trait: one object-safe, `Send` interface over
//! every cycle-level issue-mechanism simulator.
//!
//! Before this trait existed, each mechanism exposed its own inherent
//! `run`/`run_from` methods and [`crate::Mechanism::run`] dispatched
//! through a giant `match`. The trait turns "a configured simulator" into
//! a first-class value: [`crate::Mechanism::build`] returns a
//! `Box<dyn IssueSimulator>` that batch engines (`ruu-engine`) can hand
//! to worker threads, hold in job tables, and drive uniformly — without
//! caring which mechanism is behind it.
//!
//! Object safety is deliberate: the parallel sweep engine stores
//! heterogeneous simulators in one grid. `Send` is part of the contract
//! because jobs migrate to `std::thread::scope` workers.

use ruu_exec::{ArchState, Memory};
use ruu_isa::Program;
use ruu_sim_core::{MachineConfig, PipelineObserver, RunResult};

use crate::reorder::InOrderPrecise;
use crate::ruu::Ruu;
use crate::simple::SimpleIssue;
use crate::spec_ruu::SpecRuu;
use crate::tagged::TaggedSim;
use crate::SimError;

/// A configured, runnable issue-mechanism simulator.
///
/// Implementations are cheap to construct (configuration only — no
/// per-run state), so a fresh one can be built per job. All per-run
/// state lives inside `run_from`, which is why one simulator value can
/// serve many sequential runs and why `&self` suffices.
pub trait IssueSimulator: Send {
    /// The machine configuration this simulator was built with.
    fn config(&self) -> &MachineConfig;

    /// Runs `program` from an explicit architectural state (e.g. a
    /// restart after a precise interrupt).
    ///
    /// # Errors
    /// [`SimError::InstLimit`] if more than `limit` dynamic instructions
    /// issue; [`SimError::Deadlock`] on internal lack of progress.
    fn run_from(
        &self,
        state: ArchState,
        mem: Memory,
        program: &Program,
        limit: u64,
    ) -> Result<RunResult, SimError>;

    /// Runs `program` to completion from zeroed registers.
    ///
    /// # Errors
    /// As for [`IssueSimulator::run_from`].
    fn run(&self, program: &Program, mem: Memory, limit: u64) -> Result<RunResult, SimError> {
        self.run_from(ArchState::new(), mem, program, limit)
    }

    /// As [`IssueSimulator::run_from`], reporting every pipeline event to
    /// `obs`. The default ignores the observer so that implementations
    /// without instrumentation remain valid; every in-tree simulator
    /// overrides it.
    ///
    /// # Errors
    /// As for [`IssueSimulator::run_from`].
    fn run_observed(
        &self,
        state: ArchState,
        mem: Memory,
        program: &Program,
        limit: u64,
        obs: &mut dyn PipelineObserver,
    ) -> Result<RunResult, SimError> {
        let _ = obs;
        self.run_from(state, mem, program, limit)
    }
}

impl IssueSimulator for SimpleIssue {
    fn config(&self) -> &MachineConfig {
        SimpleIssue::config(self)
    }

    fn run_from(
        &self,
        state: ArchState,
        mem: Memory,
        program: &Program,
        limit: u64,
    ) -> Result<RunResult, SimError> {
        SimpleIssue::run_from(self, state, mem, program, limit)
    }

    fn run_observed(
        &self,
        state: ArchState,
        mem: Memory,
        program: &Program,
        limit: u64,
        obs: &mut dyn PipelineObserver,
    ) -> Result<RunResult, SimError> {
        SimpleIssue::run_observed(self, state, mem, program, limit, obs)
    }
}

impl IssueSimulator for TaggedSim {
    fn config(&self) -> &MachineConfig {
        TaggedSim::config(self)
    }

    fn run_from(
        &self,
        state: ArchState,
        mem: Memory,
        program: &Program,
        limit: u64,
    ) -> Result<RunResult, SimError> {
        TaggedSim::run_from(self, state, mem, program, limit)
    }

    fn run_observed(
        &self,
        state: ArchState,
        mem: Memory,
        program: &Program,
        limit: u64,
        obs: &mut dyn PipelineObserver,
    ) -> Result<RunResult, SimError> {
        TaggedSim::run_observed(self, state, mem, program, limit, obs)
    }
}

impl IssueSimulator for Ruu {
    fn config(&self) -> &MachineConfig {
        Ruu::config(self)
    }

    fn run_from(
        &self,
        state: ArchState,
        mem: Memory,
        program: &Program,
        limit: u64,
    ) -> Result<RunResult, SimError> {
        Ruu::run_from(self, state, mem, program, limit)
    }

    fn run_observed(
        &self,
        state: ArchState,
        mem: Memory,
        program: &Program,
        limit: u64,
        obs: &mut dyn PipelineObserver,
    ) -> Result<RunResult, SimError> {
        Ruu::run_observed(self, state, mem, program, limit, obs)
    }
}

impl IssueSimulator for InOrderPrecise {
    fn config(&self) -> &MachineConfig {
        InOrderPrecise::config(self)
    }

    fn run_from(
        &self,
        state: ArchState,
        mem: Memory,
        program: &Program,
        limit: u64,
    ) -> Result<RunResult, SimError> {
        InOrderPrecise::run_from(self, state, mem, program, limit)
    }

    fn run_observed(
        &self,
        state: ArchState,
        mem: Memory,
        program: &Program,
        limit: u64,
        obs: &mut dyn PipelineObserver,
    ) -> Result<RunResult, SimError> {
        InOrderPrecise::run_observed(self, state, mem, program, limit, obs)
    }
}

/// The speculative RUU behind the uniform interface: each run builds a
/// fresh predictor from the simulator's [`SpecRuu::predictor`]
/// configuration, so `&self` runs stay independent and repeatable. The
/// architectural [`RunResult`] is returned; the speculation counters are
/// available via [`SpecRuu::run`] directly.
impl IssueSimulator for SpecRuu {
    fn config(&self) -> &MachineConfig {
        SpecRuu::config(self)
    }

    fn run_from(
        &self,
        state: ArchState,
        mem: Memory,
        program: &Program,
        limit: u64,
    ) -> Result<RunResult, SimError> {
        let mut pred = self.predictor().build();
        let mut nobs = ruu_sim_core::NullObserver;
        SpecRuu::run_from_observed(self, state, mem, program, limit, pred.as_mut(), &mut nobs)
            .map(|r| r.run)
    }

    fn run_observed(
        &self,
        state: ArchState,
        mem: Memory,
        program: &Program,
        limit: u64,
        obs: &mut dyn PipelineObserver,
    ) -> Result<RunResult, SimError> {
        let mut pred = self.predictor().build();
        SpecRuu::run_from_observed(self, state, mem, program, limit, pred.as_mut(), obs)
            .map(|r| r.run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::TwoBit;
    use crate::{Bypass, Mechanism, PreciseScheme, WindowKind};
    use ruu_isa::{Asm, Reg};

    fn tiny_program() -> Program {
        let mut a = Asm::new("t");
        a.a_imm(Reg::a(1), 7);
        a.a_add(Reg::a(2), Reg::a(1), Reg::a(1));
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn trait_objects_are_send() {
        fn assert_send<T: Send + ?Sized>() {}
        assert_send::<dyn IssueSimulator>();
        assert_send::<Box<dyn IssueSimulator>>();
    }

    #[test]
    fn boxed_simulators_run_uniformly() {
        let cfg = MachineConfig::paper();
        let p = tiny_program();
        let sims: Vec<Box<dyn IssueSimulator>> = vec![
            Box::new(SimpleIssue::new(cfg.clone())),
            Box::new(TaggedSim::new(
                cfg.clone(),
                WindowKind::Merged { entries: 8 },
            )),
            Box::new(Ruu::new(cfg.clone(), 8, Bypass::Full)),
            Box::new(InOrderPrecise::new(
                cfg.clone(),
                PreciseScheme::FutureFile,
                8,
            )),
        ];
        for sim in &sims {
            assert_eq!(sim.config(), &cfg);
            let r = sim.run(&p, Memory::new(1 << 10), 1_000).unwrap();
            assert_eq!(r.state.reg(Reg::a(2)), 14);
        }
    }

    #[test]
    fn run_observed_satisfies_cycle_accounting() {
        use ruu_sim_core::CycleAccountant;
        let cfg = MachineConfig::paper();
        let p = tiny_program();
        let sims: Vec<Box<dyn IssueSimulator>> = vec![
            Box::new(SimpleIssue::new(cfg.clone())),
            Box::new(TaggedSim::new(
                cfg.clone(),
                WindowKind::Merged { entries: 8 },
            )),
            Box::new(Ruu::new(cfg.clone(), 8, Bypass::Full)),
            Box::new(InOrderPrecise::new(
                cfg.clone(),
                PreciseScheme::FutureFile,
                8,
            )),
            Box::new(SpecRuu::new(cfg.clone(), 8, Bypass::Full)),
        ];
        for sim in &sims {
            let mut acct = CycleAccountant::default();
            let r = sim
                .run_observed(ArchState::new(), Memory::new(1 << 10), &p, 1_000, &mut acct)
                .unwrap();
            acct.verify(r.cycles).unwrap();
        }
    }

    #[test]
    fn spec_ruu_trait_run_matches_inherent_run() {
        let cfg = MachineConfig::paper();
        let p = tiny_program();
        let sim = SpecRuu::new(cfg, 8, Bypass::Full);
        let mut pred = TwoBit::default();
        let inherent = sim.run(&p, Memory::new(1 << 10), 1_000, &mut pred).unwrap();
        let boxed: Box<dyn IssueSimulator> = Box::new(sim);
        let via_trait = IssueSimulator::run(&*boxed, &p, Memory::new(1 << 10), 1_000).unwrap();
        assert_eq!(inherent.run.cycles, via_trait.cycles);
        assert_eq!(inherent.run.state, via_trait.state);
    }

    #[test]
    fn default_run_matches_explicit_run_from() {
        let cfg = MachineConfig::paper();
        let p = tiny_program();
        for m in [
            Mechanism::Simple,
            Mechanism::Rstu { entries: 4 },
            Mechanism::Ruu {
                entries: 4,
                bypass: Bypass::Full,
            },
            Mechanism::InOrderPrecise {
                scheme: PreciseScheme::ReorderBuffer,
                entries: 4,
            },
        ] {
            let sim = m.build(&cfg);
            let a = sim.run(&p, Memory::new(1 << 10), 1_000).unwrap();
            let b = sim
                .run_from(ArchState::new(), Memory::new(1 << 10), &p, 1_000)
                .unwrap();
            assert_eq!(a.cycles, b.cycles, "{m}");
            assert_eq!(a.state, b.state, "{m}");
        }
    }
}
