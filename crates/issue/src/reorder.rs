//! The Smith & Pleszkun precise-interrupt schemes (paper §4; their
//! reference \[5\]).
//!
//! Before merging precise interrupts with dependency resolution, the
//! paper surveys the *in-order-issue* solutions of Smith & Pleszkun,
//! "Implementation of Precise Interrupts in Pipelined Processors"
//! (ISCA 1985):
//!
//! * [`PreciseScheme::ReorderBuffer`] — results wait in a reorder buffer
//!   and update the register file in program order. A source register
//!   cannot be read until its producer *commits*, so the buffer
//!   "aggravates data dependencies" (§4);
//! * [`PreciseScheme::ReorderBufferBypass`] — same, but issue may read a
//!   completed value out of the buffer (expensive associative search +
//!   data paths), removing the aggravation;
//! * [`PreciseScheme::HistoryBuffer`] — results go straight to the
//!   register file (as in the imprecise baseline) while old values are
//!   banked for undo; performance equals the bypassed reorder buffer at
//!   the cost of a register-file read port;
//! * [`PreciseScheme::FutureFile`] — a second, eagerly-updated register
//!   file feeds issue while the architectural file is updated in order;
//!   again the performance of the bypassed buffer, for a duplicated
//!   register file.
//!
//! All four issue **in program order** (they fix interrupts, not
//! dependencies); the RUU's point (§5) is that one structure can do both.
//! The `section4` bench puts these machines next to the RUU.
//!
//! Because issue is in-order and blocking, the whole timing of an
//! instruction is determined at issue: completion is `issue + latency`,
//! and commit is `max(completion, previous commit + 1)` (one commit per
//! cycle over the buffer→register-file path). That makes this simulator a
//! small extension of [`crate::SimpleIssue`].

use ruu_exec::{ArchState, Memory};
use ruu_isa::{semantics, FuClass, Program, NUM_REGS};
use ruu_sim_core::{
    DCache, FuPool, MachineConfig, NullObserver, PipelineObserver, RunResult, RunStats,
    SlotReservation, StallReason,
};

use crate::common::{charge_frontend_stall, end_cycle, FetchSlot, Frontend, Operand, Tag};
use crate::SimError;

/// Which Smith & Pleszkun structure guarantees precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PreciseScheme {
    /// Simple reorder buffer: sources readable at producer *commit*.
    ReorderBuffer,
    /// Reorder buffer with bypass paths: sources readable at producer
    /// *completion*.
    ReorderBufferBypass,
    /// History buffer: register file updated at completion, old values
    /// banked; sources readable at completion.
    HistoryBuffer,
    /// Future file: issue reads the eagerly-updated future file; sources
    /// readable at completion.
    FutureFile,
}

impl PreciseScheme {
    /// `true` if a consumer may read its operand as soon as the producer
    /// completes (rather than commits).
    #[must_use]
    pub fn reads_at_completion(self) -> bool {
        !matches!(self, PreciseScheme::ReorderBuffer)
    }

    /// Short display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PreciseScheme::ReorderBuffer => "reorder-buffer",
            PreciseScheme::ReorderBufferBypass => "reorder-buffer+bypass",
            PreciseScheme::HistoryBuffer => "history-buffer",
            PreciseScheme::FutureFile => "future-file",
        }
    }
}

/// An in-order-issue machine with one of the [`PreciseScheme`]s bolted
/// on — the §4 strawmen the RUU improves upon.
#[derive(Debug, Clone)]
pub struct InOrderPrecise {
    config: MachineConfig,
    scheme: PreciseScheme,
    buffer_entries: usize,
}

impl InOrderPrecise {
    /// Creates the machine with `buffer_entries` reorder/history/future
    /// buffer slots.
    ///
    /// # Panics
    /// Panics if `buffer_entries` is zero.
    #[must_use]
    pub fn new(config: MachineConfig, scheme: PreciseScheme, buffer_entries: usize) -> Self {
        assert!(buffer_entries > 0, "the buffer needs at least one entry");
        InOrderPrecise {
            config,
            scheme,
            buffer_entries,
        }
    }

    /// The scheme being simulated.
    #[must_use]
    pub fn scheme(&self) -> PreciseScheme {
        self.scheme
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Runs `program` to completion from zeroed registers.
    ///
    /// # Errors
    /// Returns [`SimError::InstLimit`] if more than `limit` dynamic
    /// instructions issue.
    pub fn run(&self, program: &Program, mem: Memory, limit: u64) -> Result<RunResult, SimError> {
        self.run_from(ArchState::new(), mem, program, limit)
    }

    /// Runs `program` from an explicit architectural state (fetch starts
    /// at `state.pc`).
    ///
    /// # Errors
    /// As for [`InOrderPrecise::run`].
    pub fn run_from(
        &self,
        state: ArchState,
        mem: Memory,
        program: &Program,
        limit: u64,
    ) -> Result<RunResult, SimError> {
        self.run_observed(state, mem, program, limit, &mut NullObserver)
    }

    /// Runs `program` from an explicit architectural state, reporting
    /// every pipeline event to `obs`.
    ///
    /// # Errors
    /// As for [`InOrderPrecise::run`].
    pub fn run_observed(
        &self,
        state: ArchState,
        mem: Memory,
        program: &Program,
        limit: u64,
        obs: &mut dyn PipelineObserver,
    ) -> Result<RunResult, SimError> {
        let cfg = &self.config;
        let mut state = state;
        let mut mem = mem;
        let mut frontend = Frontend::new(state.pc);
        // Cycle at which each register's value becomes *readable* under
        // the scheme (commit for the plain reorder buffer, completion for
        // the others).
        let mut reg_ready = [0u64; NUM_REGS];
        let mut fus = FuPool::new();
        let mut bus = SlotReservation::new(cfg.result_buses);
        let mut dcache = DCache::new(
            &cfg.dcache,
            cfg.fu_latency(FuClass::Memory),
            mem.len() as u64,
        );
        let mut stats = RunStats::default();
        let mut cycle: u64 = 0;
        let mut issued: u64 = 0;
        let mut last_write: u64 = 0;
        // In-order commit bookkeeping: commit_i = max(complete_i,
        // commit_{i-1} + 1). The buffer holds instructions from issue to
        // commit; since both sequences are in order, occupancy at a
        // future time is derived from the commit times of the last
        // `buffer_entries` instructions (a ring of commit times).
        let mut last_commit: u64 = 0;
        let mut commit_ring = vec![0u64; self.buffer_entries];
        let mut ring_pos = 0usize;
        // (completion cycle, seq) and (commit cycle, seq) of in-flight
        // instructions, for the observer's complete/commit events; the
        // pending-commit count is the buffer occupancy.
        let mut pending_complete: Vec<(u64, u64)> = Vec::new();
        let mut pending_commit: Vec<(u64, u64)> = Vec::new();

        loop {
            pending_complete.retain(|&(done_at, seq)| {
                if done_at <= cycle {
                    obs.complete(cycle, seq);
                    false
                } else {
                    true
                }
            });
            pending_commit.retain(|&(commit_at, seq)| {
                if commit_at <= cycle {
                    obs.commit(cycle, seq);
                    false
                } else {
                    true
                }
            });
            // Buffer occupancy: instructions issued but not yet committed.
            let occ = commit_ring.iter().filter(|&&t| t > cycle).count() as u32;
            match frontend.peek(cycle, program) {
                FetchSlot::Halted => {
                    // Attribute the drain tail (issued instructions still
                    // completing/committing) rather than dropping it.
                    if cycle >= last_write {
                        break;
                    }
                    stats.stall(StallReason::Drained);
                    obs.stall(cycle, StallReason::Drained);
                    end_cycle(obs, &mut stats, &mut cycle, occ);
                }
                slot @ (FetchSlot::Dead | FetchSlot::BranchParked) => {
                    if let FetchSlot::BranchParked = slot {
                        let pb = *frontend.pending_branch().expect("branch is parked");
                        let cond_reg = pb.inst.src1;
                        let ready = cond_reg.is_none_or(|r| reg_ready[r.index()] <= cycle);
                        if ready {
                            let v = cond_reg.map_or(0, |r| state.reg(r));
                            frontend.resolve_branch(cycle, &pb.inst, v, cfg, &mut stats);
                            obs.issue(cycle, issued);
                            issued += 1;
                            stats.issue_cycles += 1;
                            end_cycle(obs, &mut stats, &mut cycle, occ);
                            continue;
                        }
                    }
                    if let Some(reason) = charge_frontend_stall(&slot, &mut stats) {
                        obs.stall(cycle, reason);
                    }
                    end_cycle(obs, &mut stats, &mut cycle, occ);
                }
                FetchSlot::Inst(pc, inst) => {
                    if issued >= limit {
                        return Err(SimError::InstLimit { limit });
                    }
                    obs.fetch(cycle, pc);
                    if inst.is_branch() {
                        let cond_reg = inst.src1;
                        let ready = cond_reg.is_none_or(|r| reg_ready[r.index()] <= cycle);
                        if ready {
                            let v = cond_reg.map_or(0, |r| state.reg(r));
                            frontend.resolve_branch(cycle, &inst, v, cfg, &mut stats);
                            obs.issue(cycle, issued);
                            issued += 1;
                            stats.issue_cycles += 1;
                        } else {
                            frontend.park_branch(
                                pc,
                                inst,
                                Operand::Waiting(Tag {
                                    reg: cond_reg.expect("waiting branch reads a register"),
                                    instance: 0,
                                }),
                            );
                            stats.stall(StallReason::BranchWait);
                            obs.stall(cycle, StallReason::BranchWait);
                        }
                        end_cycle(obs, &mut stats, &mut cycle, occ);
                        continue;
                    }
                    if inst.fu_class().is_none() {
                        obs.issue(cycle, issued);
                        issued += 1;
                        stats.issue_cycles += 1;
                        frontend.advance();
                        end_cycle(obs, &mut stats, &mut cycle, occ);
                        continue;
                    }

                    // (i) sources readable under the scheme
                    if inst.sources().any(|r| reg_ready[r.index()] > cycle) {
                        stats.stall(StallReason::OperandsNotReady);
                        obs.stall(cycle, StallReason::OperandsNotReady);
                        end_cycle(obs, &mut stats, &mut cycle, occ);
                        continue;
                    }
                    // (ii) destination not busy (single outstanding write
                    // per register keeps every scheme's bookkeeping a
                    // plain busy bit, as in the baseline machine)
                    if let Some(d) = inst.dst {
                        if reg_ready[d.index()] > cycle {
                            stats.stall(StallReason::DestinationBusy);
                            obs.stall(cycle, StallReason::DestinationBusy);
                            end_cycle(obs, &mut stats, &mut cycle, occ);
                            continue;
                        }
                    }
                    let fu = inst.fu_class().expect("non-branch has a unit");
                    if !fus.can_accept(fu, cycle) {
                        stats.stall(StallReason::FuBusy);
                        obs.stall(cycle, StallReason::FuBusy);
                        end_cycle(obs, &mut stats, &mut cycle, occ);
                        continue;
                    }
                    // A load's latency comes from the data cache (the
                    // perfect cache answers with the fixed memory-unit
                    // latency); everything else runs at its unit's rate.
                    let mut lat = cfg.fu_latency(fu);
                    let mut load_ea = None;
                    if inst.is_load() {
                        let s1 = inst.src1.map_or(0, |r| state.reg(r));
                        let ea = mem.canonicalize(semantics::effective_address(s1, inst.imm));
                        let Some(l) = dcache.plan(ea, cycle).latency() else {
                            // every outstanding-miss register busy: the
                            // blocking decode stage stalls in place
                            stats.stall(StallReason::MemStall);
                            obs.stall(cycle, StallReason::MemStall);
                            end_cycle(obs, &mut stats, &mut cycle, occ);
                            continue;
                        };
                        lat = l;
                        load_ea = Some(ea);
                    }
                    let needs_bus = inst.dst.is_some();
                    if needs_bus && !bus.available(cycle + lat) {
                        stats.stall(StallReason::BusConflict);
                        obs.stall(cycle, StallReason::BusConflict);
                        end_cycle(obs, &mut stats, &mut cycle, occ);
                        continue;
                    }
                    // (iii) a buffer slot: the slot taken now frees at
                    // this instruction's commit; the slot it reuses must
                    // have drained already.
                    if commit_ring[ring_pos] > cycle {
                        stats.stall(StallReason::WindowFull);
                        obs.stall(cycle, StallReason::WindowFull);
                        end_cycle(obs, &mut stats, &mut cycle, occ);
                        continue;
                    }

                    // Issue. Timing:
                    fus.accept(fu, cycle);
                    if needs_bus {
                        bus.try_reserve(cycle + lat);
                    }
                    if let Some(ea) = load_ea {
                        if dcache.is_finite() {
                            let plan = dcache.access(ea, cycle);
                            obs.mem_access(cycle, ea, plan.is_hit(), lat);
                        }
                    }
                    let complete = cycle + lat;
                    let commit = complete.max(last_commit + 1);
                    last_commit = commit;
                    commit_ring[ring_pos] = commit;
                    ring_pos = (ring_pos + 1) % self.buffer_entries;
                    if let Some(d) = inst.dst {
                        reg_ready[d.index()] = if self.scheme.reads_at_completion() {
                            complete
                        } else {
                            commit
                        };
                    }
                    last_write = last_write.max(commit);
                    obs.issue(cycle, issued);
                    obs.dispatch(cycle, issued, fu, complete);
                    pending_complete.push((complete, issued));
                    pending_commit.push((commit, issued));

                    // Function (eager update is safe: in-order issue with
                    // readable operands):
                    let s1 = inst.src1.map_or(0, |r| state.reg(r));
                    let s2 = inst.src2.map_or(0, |r| state.reg(r));
                    if inst.is_load() {
                        let ea = semantics::effective_address(s1, inst.imm);
                        state.set_reg(inst.dst.expect("load writes a register"), mem.read(ea));
                    } else if inst.is_store() {
                        let ea = semantics::effective_address(s1, inst.imm);
                        mem.write(ea, s2);
                    } else if let Some(d) = inst.dst {
                        state.set_reg(d, semantics::alu_result(inst.opcode, s1, s2, inst.imm));
                    }

                    issued += 1;
                    stats.issue_cycles += 1;
                    frontend.advance();
                    end_cycle(obs, &mut stats, &mut cycle, occ);
                }
            }
        }

        state.pc = frontend.pc();
        debug_assert_eq!(cycle, cycle.max(last_write));
        let cs = dcache.stats();
        stats.dcache_accesses = cs.accesses;
        stats.dcache_hits = cs.hits;
        stats.dcache_misses = cs.misses;
        Ok(RunResult {
            cycles: cycle,
            instructions: issued,
            state,
            memory: mem,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple::SimpleIssue;
    use ruu_isa::{Asm, Reg};
    use ruu_workloads::livermore;

    fn cfg() -> MachineConfig {
        MachineConfig::paper()
    }

    fn all_schemes() -> [PreciseScheme; 4] {
        [
            PreciseScheme::ReorderBuffer,
            PreciseScheme::ReorderBufferBypass,
            PreciseScheme::HistoryBuffer,
            PreciseScheme::FutureFile,
        ]
    }

    #[test]
    fn all_schemes_match_golden_on_a_kernel() {
        let w = livermore::lll5();
        let g = w.golden_trace().unwrap();
        for scheme in all_schemes() {
            let r = InOrderPrecise::new(cfg(), scheme, 8)
                .run(&w.program, w.memory.clone(), w.inst_limit)
                .unwrap_or_else(|e| panic!("{}: {e}", scheme.name()));
            assert_eq!(&r.state.regs, &g.final_state().regs, "{}", scheme.name());
            assert_eq!(&r.memory, g.final_memory(), "{}", scheme.name());
            w.verify(&r.memory).unwrap();
        }
    }

    #[test]
    fn plain_reorder_buffer_aggravates_dependencies() {
        // Paper §4: "the value of a register cannot be read till it has
        // been updated by the reorder buffer". A consumer right behind a
        // long-latency producer pays extra commit-wait cycles.
        let mut a = Asm::new("t");
        a.f_recip(Reg::s(1), Reg::s(0)); // long
        a.s_imm(Reg::s(2), 3); // quick, commits behind the recip
        a.s_add(Reg::s(3), Reg::s(2), Reg::s(2)); // consumer of the quick one
        a.halt();
        let p = a.assemble().unwrap();
        let plain = InOrderPrecise::new(cfg(), PreciseScheme::ReorderBuffer, 8)
            .run(&p, Memory::new(1 << 8), 1000)
            .unwrap();
        let bypass = InOrderPrecise::new(cfg(), PreciseScheme::ReorderBufferBypass, 8)
            .run(&p, Memory::new(1 << 8), 1000)
            .unwrap();
        assert!(
            plain.cycles > bypass.cycles,
            "plain {} should exceed bypassed {}",
            plain.cycles,
            bypass.cycles
        );
        assert_eq!(plain.state.regs, bypass.state.regs);
    }

    #[test]
    fn bypass_history_and_future_file_perform_identically() {
        // Paper §4: the three full-visibility schemes have the same
        // performance (they differ in hardware cost, not timing).
        let w = livermore::lll1();
        let runs: Vec<u64> = [
            PreciseScheme::ReorderBufferBypass,
            PreciseScheme::HistoryBuffer,
            PreciseScheme::FutureFile,
        ]
        .into_iter()
        .map(|s| {
            InOrderPrecise::new(cfg(), s, 10)
                .run(&w.program, w.memory.clone(), w.inst_limit)
                .unwrap()
                .cycles
        })
        .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
    }

    #[test]
    fn bypassed_buffer_costs_little_over_the_imprecise_baseline() {
        // Paper §4: "with a bypass mechanism, the issue rate of the
        // machine is not degraded considerably if the size of the buffer
        // is reasonably large".
        let w = livermore::lll12();
        let base = SimpleIssue::new(cfg())
            .run(&w.program, w.memory.clone(), w.inst_limit)
            .unwrap();
        let rb = InOrderPrecise::new(cfg(), PreciseScheme::ReorderBufferBypass, 12)
            .run(&w.program, w.memory.clone(), w.inst_limit)
            .unwrap();
        let ratio = rb.cycles as f64 / base.cycles as f64;
        assert!(
            ratio < 1.10,
            "bypassed reorder buffer should cost <10% over baseline, got {ratio:.3}"
        );
    }

    #[test]
    fn tiny_buffer_throttles_issue() {
        let w = livermore::lll7();
        let small = InOrderPrecise::new(cfg(), PreciseScheme::ReorderBufferBypass, 1)
            .run(&w.program, w.memory.clone(), w.inst_limit)
            .unwrap();
        let big = InOrderPrecise::new(cfg(), PreciseScheme::ReorderBufferBypass, 16)
            .run(&w.program, w.memory.clone(), w.inst_limit)
            .unwrap();
        assert!(small.cycles > big.cycles);
        assert!(small.stats.stalls(StallReason::WindowFull) > 0);
        assert_eq!(small.state.regs, big.state.regs);
    }

    #[test]
    fn scheme_names_are_distinct() {
        let mut names: Vec<&str> = all_schemes().iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
    }
}
