//! The associative (tagged) out-of-order mechanisms: Tomasulo, Tag Unit +
//! distributed reservation stations, the merged RS pool, and the RSTU.
//!
//! These mechanisms share one engine, [`TaggedSim`], parameterised by
//! [`WindowKind`]: they differ only in *where reservation stations live*
//! and *how many tags exist*:
//!
//! * [`WindowKind::Distributed`] — classic Tomasulo (§3.1): per-functional-
//!   unit reservation stations, a tag for every register (conceptually 144
//!   tag-matching units — the expense the paper's Tag Unit removes);
//! * [`WindowKind::TagUnitDistributed`] — §3.2.1, Figure 2: a central Tag
//!   Unit holding tags only for *currently active* registers, with
//!   distributed reservation stations;
//! * [`WindowKind::Pooled`] — §3.2.2: the reservation stations merged into
//!   a common pool (freed at dispatch), Tag Unit unchanged;
//! * [`WindowKind::Merged`] — §3.2.3, Figure 4: the **RSTU**, where a
//!   reservation station and a tag are reserved together and released at
//!   writeback.
//!
//! All of them update the register file *as results complete* (out of
//! program order) — interrupts are **imprecise**, which is precisely what
//! the RUU (see [`crate::ruu`]) fixes. To keep the final architectural
//! state well-defined, a completing result updates the register file only
//! if it is the *latest* instance of its register (Tomasulo's
//! register-capture rule; the paper's "may update the register but may not
//! unlock it" wording is modelled this way so that stale instances never
//! clobber newer values).

use std::collections::{BTreeMap, VecDeque};

use ruu_exec::{ArchState, Memory};
use ruu_isa::{semantics, FuClass, Inst, Program, Reg, NUM_REGS};
use ruu_sim_core::{
    DCache, FuPool, LoadRegUnit, LrOutcome, MachineConfig, MemOpKind, NullObserver,
    PipelineObserver, RunResult, RunStats, SlotReservation, StallReason,
};

use crate::common::{Broadcasts, FetchSlot, Frontend, Operand, Tag};
use crate::SimError;

/// Window organisation of a tagged mechanism (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowKind {
    /// Classic Tomasulo: `rs_per_fu` reservation stations at each
    /// functional unit; every register is tagged (no tag limit).
    Distributed {
        /// Reservation stations per functional unit.
        rs_per_fu: usize,
    },
    /// Central Tag Unit (capacity `tags`) + distributed reservation
    /// stations.
    TagUnitDistributed {
        /// Reservation stations per functional unit.
        rs_per_fu: usize,
        /// Tag Unit entries.
        tags: usize,
    },
    /// Central Tag Unit + merged reservation-station pool (stations are
    /// released when the instruction dispatches to a unit).
    Pooled {
        /// Stations in the merged pool.
        rs: usize,
        /// Tag Unit entries.
        tags: usize,
    },
    /// The RSTU: one merged structure; an entry is both station and tag
    /// and is released at writeback.
    Merged {
        /// RSTU entries.
        entries: usize,
    },
}

impl WindowKind {
    fn tag_capacity(self) -> Option<usize> {
        match self {
            WindowKind::Distributed { .. } => None,
            WindowKind::TagUnitDistributed { tags, .. } | WindowKind::Pooled { tags, .. } => {
                Some(tags)
            }
            WindowKind::Merged { entries } => Some(entries),
        }
    }
}

/// Cycle-level simulator for the tagged (imprecise) mechanisms.
#[derive(Debug, Clone)]
pub struct TaggedSim {
    config: MachineConfig,
    kind: WindowKind,
}

impl TaggedSim {
    /// Creates a simulator with the given machine configuration and
    /// window organisation.
    #[must_use]
    pub fn new(config: MachineConfig, kind: WindowKind) -> Self {
        TaggedSim { config, kind }
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The window organisation.
    #[must_use]
    pub fn kind(&self) -> WindowKind {
        self.kind
    }

    /// Runs `program` to completion from zeroed registers.
    ///
    /// # Errors
    /// [`SimError::InstLimit`] if more than `limit` instructions issue.
    pub fn run(&self, program: &Program, mem: Memory, limit: u64) -> Result<RunResult, SimError> {
        self.run_from(ArchState::new(), mem, program, limit)
    }

    /// Runs `program` from an explicit architectural state (fetch starts
    /// at `state.pc`).
    ///
    /// # Errors
    /// As for [`TaggedSim::run`].
    pub fn run_from(
        &self,
        state: ArchState,
        mem: Memory,
        program: &Program,
        limit: u64,
    ) -> Result<RunResult, SimError> {
        let mut nobs = NullObserver;
        self.run_observed(state, mem, program, limit, &mut nobs)
    }

    /// As [`TaggedSim::run_from`], reporting every pipeline event to `obs`.
    ///
    /// # Errors
    /// As for [`TaggedSim::run`].
    pub fn run_observed(
        &self,
        state: ArchState,
        mem: Memory,
        program: &Program,
        limit: u64,
        obs: &mut dyn PipelineObserver,
    ) -> Result<RunResult, SimError> {
        let mut core = TCore::new(self, state, mem, program, limit, obs);
        core.run(None).map(|o| o.expect("no probe: run completes"))
    }

    /// Runs until the dynamic instruction `probe_seq` has *executed*
    /// (updated machine state), then returns a snapshot of the
    /// architectural registers and memory at that moment — used to
    /// demonstrate that interrupts on these mechanisms are imprecise.
    ///
    /// Returns `None` if the probe instruction never executed.
    ///
    /// # Errors
    /// As for [`TaggedSim::run`].
    pub fn snapshot_at_execute(
        &self,
        program: &Program,
        mem: Memory,
        limit: u64,
        probe_seq: u64,
    ) -> Result<Option<(ArchState, Memory)>, SimError> {
        let mut nobs = NullObserver;
        let mut core = TCore::new(self, ArchState::new(), mem, program, limit, &mut nobs);
        let mut probe = Some(probe_seq);
        match core.run(probe.take().map(Probe::new).inspect(|_p| {
            probe = None;
        })) {
            Ok(_) => Ok(core.probe_result.take()),
            Err(e) => Err(e),
        }
    }
}

/// Probe for the imprecision demonstration.
#[derive(Debug, Clone)]
struct Probe {
    seq: u64,
}

impl Probe {
    fn new(seq: u64) -> Self {
        Probe { seq }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemPhase {
    NotMem,
    AwaitingLr,
    ToMemory,
    AwaitingData,
    Forwarding,
    StorePending,
}

#[derive(Debug, Clone)]
struct Entry {
    seq: u64,
    inst: Inst,
    dst_tag: Option<Tag>,
    ops: [Operand; 2],
    dispatched: bool,
    result: Option<u64>,
    ea: Option<u64>,
    mem_phase: MemPhase,
    lr_provider: bool,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Finish(u64),
    StoreExec(u64),
}

struct TCore<'a> {
    cfg: &'a MachineConfig,
    program: &'a Program,
    kind: WindowKind,
    limit: u64,

    cycle: u64,
    arch: ArchState,
    mem: Memory,
    /// Latest in-flight producer tag per register (`None` = register file
    /// value is current).
    reg_latest: [Option<Tag>; NUM_REGS],
    window: BTreeMap<u64, Entry>,
    mem_queue: VecDeque<u64>,
    forward_queue: Vec<u64>,
    events: BTreeMap<u64, Vec<Event>>,
    lr: LoadRegUnit,
    fus: FuPool,
    bus: SlotReservation,
    dcache: DCache,
    frontend: Frontend,
    broadcasts: Broadcasts,
    stats: RunStats,
    obs: &'a mut dyn PipelineObserver,
    issued: u64,
    retired: u64,
    events_scheduled: u64,
    last_progress: (u64, u64, u64),
    last_progress_cycle: u64,
    probe: Option<Probe>,
    probe_result: Option<(ArchState, Memory)>,
}

impl<'a> TCore<'a> {
    fn new(
        sim: &'a TaggedSim,
        state: ArchState,
        mem: Memory,
        program: &'a Program,
        limit: u64,
        obs: &'a mut dyn PipelineObserver,
    ) -> Self {
        let cfg = &sim.config;
        let dcache = DCache::new(
            &cfg.dcache,
            cfg.fu_latency(FuClass::Memory),
            mem.len() as u64,
        );
        TCore {
            cfg,
            program,
            kind: sim.kind,
            limit,
            cycle: 0,
            frontend: Frontend::new(state.pc),
            arch: state,
            mem,
            reg_latest: [None; NUM_REGS],
            window: BTreeMap::new(),
            mem_queue: VecDeque::new(),
            forward_queue: Vec::new(),
            events: BTreeMap::new(),
            lr: LoadRegUnit::new(sim.config.load_registers),
            fus: FuPool::new(),
            bus: SlotReservation::new(sim.config.result_buses),
            dcache,
            broadcasts: Broadcasts::default(),
            stats: RunStats::default(),
            obs,
            issued: 0,
            retired: 0,
            events_scheduled: 0,
            last_progress: (0, 0, 0),
            last_progress_cycle: 0,
            probe: None,
            probe_result: None,
        }
    }

    // ---- capacity accounting -------------------------------------------

    fn rs_in_use(&self, fu: Option<FuClass>) -> usize {
        self.window
            .values()
            .filter(|e| !e.dispatched)
            .filter(|e| match fu {
                Some(f) => e.inst.fu_class() == Some(f),
                None => true,
            })
            .count()
    }

    fn has_room(&self, inst: &Inst) -> bool {
        if let Some(tags) = self.kind.tag_capacity() {
            if self.window.len() >= tags {
                return false;
            }
        }
        match self.kind {
            WindowKind::Distributed { rs_per_fu }
            | WindowKind::TagUnitDistributed { rs_per_fu, .. } => {
                let Some(fu) = inst.fu_class() else {
                    return true; // Nop occupies no station
                };
                self.rs_in_use(Some(fu)) < rs_per_fu
            }
            WindowKind::Pooled { rs, .. } => {
                if inst.fu_class().is_none() {
                    return true;
                }
                self.rs_in_use(None) < rs
            }
            WindowKind::Merged { .. } => true, // covered by the tag check
        }
    }

    // ---- broadcast & wake ------------------------------------------------

    fn broadcast(&mut self, tag: Tag, value: u64) {
        self.broadcasts.push(tag, value);
        for e in self.window.values_mut() {
            for op in &mut e.ops {
                op.gate(tag, value);
            }
        }
        if let Some(pb) = self.frontend.pending_branch_mut() {
            pb.cond.gate(tag, value);
        }
        // The register file captures the result if it is the latest
        // instance of the register; the busy condition then clears.
        if self.reg_latest[tag.reg.index()] == Some(tag) {
            self.arch.set_reg(tag.reg, value);
            self.reg_latest[tag.reg.index()] = None;
        }
    }

    fn wake_forwarded_load(&mut self, seq: u64, value: u64) {
        let e = self.window.get_mut(&seq).expect("woken load is live");
        debug_assert_eq!(e.mem_phase, MemPhase::AwaitingData);
        e.result = Some(value);
        e.mem_phase = MemPhase::Forwarding;
        self.forward_queue.push(seq);
        self.stats.forwarded_loads += 1;
    }

    fn check_probe(&mut self, seq: u64) {
        if self.probe.as_ref().is_some_and(|p| p.seq == seq) && self.probe_result.is_none() {
            let mut st = self.arch.clone();
            st.pc = self.frontend.pc();
            self.probe_result = Some((st, self.mem.clone()));
        }
    }

    // ---- phases -----------------------------------------------------------

    fn phase_completions(&mut self) {
        let Some(evs) = self.events.remove(&self.cycle) else {
            return;
        };
        for ev in evs {
            match ev {
                Event::Finish(seq) => {
                    let e = self.window.remove(&seq).expect("finishing entry is live");
                    self.obs.complete(self.cycle, seq);
                    if let Some(tag) = e.dst_tag {
                        let v = e.result.expect("finished producer has a result");
                        self.broadcast(tag, v);
                    }
                    if e.inst.is_load() {
                        if e.lr_provider {
                            let v = e.result.expect("finished load has data");
                            for w in self.lr.provider_ready(seq, v) {
                                self.wake_forwarded_load(w, v);
                            }
                        }
                        self.lr.retire(seq);
                    }
                    self.retired += 1;
                    self.check_probe(seq);
                }
                Event::StoreExec(seq) => {
                    let e = self.window.remove(&seq).expect("executing store is live");
                    self.obs.complete(self.cycle, seq);
                    let ea = e.ea.expect("store has an address");
                    let data = e.ops[1].value();
                    self.mem.write(ea, data);
                    for w in self.lr.provider_ready(seq, data) {
                        self.wake_forwarded_load(w, data);
                    }
                    self.lr.retire(seq);
                    self.retired += 1;
                    self.check_probe(seq);
                }
            }
        }
    }

    fn phase_addr_gen(&mut self) {
        let Some(&seq) = self.mem_queue.front() else {
            return;
        };
        let e = self.window.get(&seq).expect("queued mem op is live");
        if !e.ops[0].is_ready() {
            return;
        }
        let kind = if e.inst.is_load() {
            MemOpKind::Load
        } else {
            MemOpKind::Store
        };
        // Canonicalize so the load registers compare the word actually
        // touched; raw effective addresses may alias one memory word.
        let ea = self
            .mem
            .canonicalize(semantics::effective_address(e.ops[0].value(), e.inst.imm));
        let Some(outcome) = self.lr.process(seq, kind, ea) else {
            return;
        };
        self.mem_queue.pop_front();
        let e = self.window.get_mut(&seq).expect("queued mem op is live");
        e.ea = Some(ea);
        match outcome {
            LrOutcome::ToMemory => {
                e.mem_phase = MemPhase::ToMemory;
                e.lr_provider = true;
            }
            LrOutcome::Forwarded { value } => {
                e.result = Some(value);
                e.mem_phase = MemPhase::Forwarding;
                self.forward_queue.push(seq);
                self.stats.forwarded_loads += 1;
            }
            LrOutcome::WaitOn { .. } => e.mem_phase = MemPhase::AwaitingData,
            LrOutcome::StoreRecorded => e.mem_phase = MemPhase::StorePending,
        }
    }

    fn phase_forwards(&mut self) {
        let lat = self.cfg.forward_latency;
        let queue = std::mem::take(&mut self.forward_queue);
        let mut remaining = Vec::new();
        for seq in queue {
            if self.bus.try_reserve(self.cycle + lat) {
                // Booking the bus is this load's "dispatch": its station
                // frees in the dispatch-released organisations.
                self.window
                    .get_mut(&seq)
                    .expect("forwarding load is live")
                    .dispatched = true;
                self.obs
                    .dispatch(self.cycle, seq, FuClass::Memory, self.cycle + lat);
                self.events_scheduled += 1;
                self.events
                    .entry(self.cycle + lat)
                    .or_default()
                    .push(Event::Finish(seq));
            } else {
                remaining.push(seq);
            }
        }
        self.forward_queue = remaining;
    }

    /// A store may hand its data to memory only when every older memory
    /// operation that will *read architectural memory* has sampled it
    /// (dispatched), and every older store has already done so — the
    /// memory port preserves program order. Without the first condition a
    /// younger store could clobber the word an older, bus-stalled load is
    /// about to read (WAR through memory).
    fn store_may_exec(&self, seq: u64) -> bool {
        !self.window.values().any(|e| {
            e.seq < seq
                && !e.dispatched
                && matches!(e.mem_phase, MemPhase::ToMemory | MemPhase::StorePending)
        })
    }

    fn phase_dispatch(&mut self) {
        // Distributed organisations have a private path from each unit's
        // stations; the pooled ones share `dispatch_paths` ports.
        let mut paths = match self.kind {
            WindowKind::Distributed { .. } | WindowKind::TagUnitDistributed { .. } => u32::MAX,
            _ => self.cfg.dispatch_paths,
        };
        let mut candidates: Vec<(bool, u64)> = Vec::new();
        for e in self.window.values() {
            if e.dispatched {
                continue;
            }
            match e.mem_phase {
                MemPhase::ToMemory => candidates.push((true, e.seq)),
                MemPhase::StorePending
                    if e.ops[0].is_ready() && e.ops[1].is_ready() && self.store_may_exec(e.seq) =>
                {
                    candidates.push((true, e.seq));
                }
                MemPhase::NotMem
                    if e.inst.fu_class().is_some()
                        && e.ops[0].is_ready()
                        && e.ops[1].is_ready() =>
                {
                    candidates.push((false, e.seq));
                }
                _ => {}
            }
        }
        candidates.sort_by_key(|&(is_mem, seq)| (!is_mem, seq));

        for (_, seq) in candidates {
            if paths == 0 {
                break;
            }
            let e = self.window.get(&seq).expect("candidate is live");
            match e.mem_phase {
                MemPhase::ToMemory => {
                    let ea = e.ea.expect("address generated");
                    let plan = self.dcache.plan(ea, self.cycle);
                    let Some(lat) = plan.latency() else {
                        continue; // every outstanding-miss register busy: retry
                    };
                    if self.fus.can_accept(FuClass::Memory, self.cycle)
                        && self.bus.available(self.cycle + lat)
                    {
                        self.fus.accept(FuClass::Memory, self.cycle);
                        self.bus.try_reserve(self.cycle + lat);
                        let v = self.mem.read(ea);
                        let e = self.window.get_mut(&seq).expect("candidate is live");
                        e.result = Some(v);
                        e.dispatched = true;
                        self.obs
                            .dispatch(self.cycle, seq, FuClass::Memory, self.cycle + lat);
                        if self.dcache.is_finite() {
                            let plan = self.dcache.access(ea, self.cycle);
                            self.obs.mem_access(self.cycle, ea, plan.is_hit(), lat);
                        }
                        self.events_scheduled += 1;
                        self.events
                            .entry(self.cycle + lat)
                            .or_default()
                            .push(Event::Finish(seq));
                        paths -= 1;
                    }
                }
                MemPhase::StorePending if self.fus.can_accept(FuClass::Memory, self.cycle) => {
                    self.fus.accept(FuClass::Memory, self.cycle);
                    self.window
                        .get_mut(&seq)
                        .expect("candidate is live")
                        .dispatched = true;
                    self.obs.dispatch(
                        self.cycle,
                        seq,
                        FuClass::Memory,
                        self.cycle + self.cfg.store_exec_latency,
                    );
                    self.events_scheduled += 1;
                    self.events
                        .entry(self.cycle + self.cfg.store_exec_latency)
                        .or_default()
                        .push(Event::StoreExec(seq));
                    paths -= 1;
                }
                MemPhase::NotMem => {
                    let fu = e.inst.fu_class().expect("ALU entry has a unit");
                    let lat = self.cfg.fu_latency(fu);
                    if self.fus.can_accept(fu, self.cycle) && self.bus.available(self.cycle + lat) {
                        self.fus.accept(fu, self.cycle);
                        self.bus.try_reserve(self.cycle + lat);
                        let e = self.window.get_mut(&seq).expect("candidate is live");
                        let v = semantics::alu_result(
                            e.inst.opcode,
                            e.ops[0].value(),
                            e.ops[1].value(),
                            e.inst.imm,
                        );
                        e.result = Some(v);
                        e.dispatched = true;
                        self.obs.dispatch(self.cycle, seq, fu, self.cycle + lat);
                        self.events_scheduled += 1;
                        self.events
                            .entry(self.cycle + lat)
                            .or_default()
                            .push(Event::Finish(seq));
                        paths -= 1;
                    }
                }
                _ => {}
            }
        }
    }

    fn read_operand(&self, r: Reg) -> Operand {
        match self.reg_latest[r.index()] {
            None => Operand::Ready(self.arch.reg(r)),
            Some(tag) => match self.broadcasts.lookup(tag) {
                Some(v) => Operand::Ready(v),
                None => Operand::Waiting(tag),
            },
        }
    }

    fn phase_issue(&mut self) -> Result<(), SimError> {
        match self.frontend.peek(self.cycle, self.program) {
            FetchSlot::Halted => {
                self.frontend.set_halted();
                self.stats.stall(StallReason::Drained);
                self.obs.stall(self.cycle, StallReason::Drained);
            }
            FetchSlot::Dead => {
                self.stats.stall(StallReason::DeadCycle);
                self.obs.stall(self.cycle, StallReason::DeadCycle);
            }
            FetchSlot::BranchParked => {
                let pb = *self.frontend.pending_branch().expect("branch is parked");
                if pb.cond.is_ready() {
                    self.frontend.resolve_branch(
                        self.cycle,
                        &pb.inst,
                        pb.cond.value(),
                        self.cfg,
                        &mut self.stats,
                    );
                    self.obs.issue(self.cycle, self.issued);
                    self.issued += 1;
                    self.stats.issue_cycles += 1;
                } else {
                    self.stats.stall(StallReason::BranchWait);
                    self.obs.stall(self.cycle, StallReason::BranchWait);
                }
            }
            FetchSlot::Inst(pc, inst) => {
                if self.issued >= self.limit {
                    return Err(SimError::InstLimit { limit: self.limit });
                }
                self.obs.fetch(self.cycle, pc);
                if inst.is_branch() {
                    let cond = match inst.src1 {
                        Some(r) => self.read_operand(r),
                        None => Operand::Ready(0),
                    };
                    if cond.is_ready() {
                        self.frontend.resolve_branch(
                            self.cycle,
                            &inst,
                            cond.value(),
                            self.cfg,
                            &mut self.stats,
                        );
                        self.obs.issue(self.cycle, self.issued);
                        self.issued += 1;
                        self.stats.issue_cycles += 1;
                    } else {
                        self.frontend.park_branch(pc, inst, cond);
                        self.stats.stall(StallReason::BranchWait);
                        self.obs.stall(self.cycle, StallReason::BranchWait);
                    }
                    return Ok(());
                }

                if !self.has_room(&inst) {
                    self.stats.stall(StallReason::WindowFull);
                    self.obs.stall(self.cycle, StallReason::WindowFull);
                    return Ok(());
                }
                if inst.is_mem() && self.lr.is_full() {
                    self.stats.stall(StallReason::LoadRegFull);
                    self.obs.stall(self.cycle, StallReason::LoadRegFull);
                    return Ok(());
                }

                let ops = [
                    inst.src1
                        .map_or(Operand::Ready(0), |r| self.read_operand(r)),
                    inst.src2
                        .map_or(Operand::Ready(0), |r| self.read_operand(r)),
                ];
                let seq = self.issued;
                let dst_tag = inst.dst.map(|d| {
                    let tag = Tag {
                        reg: d,
                        instance: seq,
                    };
                    self.reg_latest[d.index()] = Some(tag);
                    tag
                });

                let is_mem = inst.is_mem();
                let no_fu = inst.fu_class().is_none(); // Nop: nothing to do
                if !no_fu {
                    self.window.insert(
                        seq,
                        Entry {
                            seq,
                            inst,
                            dst_tag,
                            ops,
                            dispatched: false,
                            result: None,
                            ea: None,
                            mem_phase: if is_mem {
                                MemPhase::AwaitingLr
                            } else {
                                MemPhase::NotMem
                            },
                            lr_provider: false,
                        },
                    );
                    if is_mem {
                        self.mem_queue.push_back(seq);
                    }
                } else {
                    self.retired += 1;
                }
                self.obs.issue(self.cycle, seq);
                self.issued += 1;
                self.stats.issue_cycles += 1;
                self.frontend.advance();
            }
        }
        Ok(())
    }

    fn drained(&self) -> bool {
        self.frontend.halted()
            && self.window.is_empty()
            && self.mem_queue.is_empty()
            && self.forward_queue.is_empty()
            && self.events.is_empty()
    }

    fn run(&mut self, probe: Option<Probe>) -> Result<Option<RunResult>, SimError> {
        self.probe = probe;
        loop {
            self.broadcasts.clear();
            let occ = self.window.len() as u32;
            self.stats.observe_occupancy(occ);

            self.phase_completions();
            self.phase_addr_gen();
            self.phase_forwards();
            self.phase_dispatch();
            self.phase_issue()?;

            let progress = (self.issued, self.retired, self.events_scheduled);
            if progress != self.last_progress {
                self.last_progress = progress;
                self.last_progress_cycle = self.cycle;
            } else if self.cycle - self.last_progress_cycle > 100_000 {
                return Err(SimError::Deadlock { cycle: self.cycle });
            }

            self.obs.cycle_end(self.cycle, occ);
            if self.drained() {
                self.cycle += 1;
                break;
            }
            self.cycle += 1;
            if self.cycle.is_multiple_of(4096) {
                self.bus.release_before(self.cycle);
            }
        }
        let mut state = self.arch.clone();
        state.pc = self.frontend.pc();
        let cs = self.dcache.stats();
        self.stats.dcache_accesses = cs.accesses;
        self.stats.dcache_hits = cs.hits;
        self.stats.dcache_misses = cs.misses;
        Ok(Some(RunResult {
            cycles: self.cycle,
            instructions: self.issued,
            state,
            memory: self.mem.clone(),
            stats: std::mem::take(&mut self.stats),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruu_exec::Trace;
    use ruu_isa::Asm;

    fn cfg() -> MachineConfig {
        MachineConfig::paper()
    }

    fn all_kinds() -> Vec<WindowKind> {
        vec![
            WindowKind::Distributed { rs_per_fu: 3 },
            WindowKind::TagUnitDistributed {
                rs_per_fu: 3,
                tags: 12,
            },
            WindowKind::Pooled { rs: 8, tags: 12 },
            WindowKind::Merged { entries: 10 },
        ]
    }

    fn loop_prog() -> Asm {
        let mut a = Asm::new("t");
        let top = a.new_label();
        a.a_imm(Reg::a(0), 12);
        a.a_imm(Reg::a(1), 200);
        a.s_imm(Reg::s(1), 3);
        a.bind(top);
        a.ld_s(Reg::s(2), Reg::a(1), 0);
        a.f_add(Reg::s(3), Reg::s(2), Reg::s(1));
        a.st_s(Reg::s(3), Reg::a(1), 0);
        a.st_s(Reg::s(3), Reg::a(1), 32);
        a.ld_s(Reg::s(4), Reg::a(1), 32);
        a.s_add(Reg::s(5), Reg::s(4), Reg::s(4));
        a.a_add_imm(Reg::a(1), Reg::a(1), 1);
        a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
        a.br_an(top);
        a.halt();
        a
    }

    #[test]
    fn all_kinds_match_golden() {
        let p = loop_prog().assemble().unwrap();
        let g = Trace::capture(&p, Memory::new(1 << 12), 1_000_000).unwrap();
        for kind in all_kinds() {
            let r = TaggedSim::new(cfg(), kind)
                .run(&p, Memory::new(1 << 12), 1_000_000)
                .unwrap();
            assert_eq!(r.instructions, g.len() as u64, "{kind:?}");
            assert_eq!(&r.state, g.final_state(), "{kind:?}");
            assert_eq!(&r.memory, g.final_memory(), "{kind:?}");
        }
    }

    #[test]
    fn rstu_beats_simple_issue_on_ilp() {
        let p = loop_prog().assemble().unwrap();
        let simple = crate::SimpleIssue::new(cfg())
            .run(&p, Memory::new(1 << 12), 1_000_000)
            .unwrap();
        let rstu = TaggedSim::new(cfg(), WindowKind::Merged { entries: 20 })
            .run(&p, Memory::new(1 << 12), 1_000_000)
            .unwrap();
        assert!(rstu.cycles < simple.cycles);
    }

    #[test]
    fn waw_same_register_resolves_to_latest() {
        // Long-latency write followed by a fast write to the same
        // register: the fast one is younger and must win the final state.
        let mut a = Asm::new("t");
        a.f_recip(Reg::s(1), Reg::s(0)); // slow producer of S1 (inf)
        a.s_imm(Reg::s(1), 42); // fast, younger
        a.halt();
        let p = a.assemble().unwrap();
        for kind in all_kinds() {
            let r = TaggedSim::new(cfg(), kind)
                .run(&p, Memory::new(1 << 12), 1_000_000)
                .unwrap();
            assert_eq!(r.state.reg(Reg::s(1)), 42, "{kind:?}");
        }
    }

    #[test]
    fn stores_to_one_address_write_in_order() {
        // An older store whose data arrives late must not clobber a
        // younger store's value.
        let mut a = Asm::new("t");
        a.a_imm(Reg::a(1), 64);
        a.f_recip(Reg::s(1), Reg::s(0)); // S1 ready late
        a.st_s(Reg::s(1), Reg::a(1), 0); // older store, late data
        a.s_imm(Reg::s(2), 9);
        a.st_s(Reg::s(2), Reg::a(1), 0); // younger store, early data
        a.halt();
        let p = a.assemble().unwrap();
        let g = Trace::capture(&p, Memory::new(1 << 12), 1_000_000).unwrap();
        for kind in all_kinds() {
            let r = TaggedSim::new(cfg(), kind)
                .run(&p, Memory::new(1 << 12), 1_000_000)
                .unwrap();
            assert_eq!(r.memory.read(64), g.final_memory().read(64), "{kind:?}");
        }
    }

    #[test]
    fn rstu_small_window_stalls() {
        let p = loop_prog().assemble().unwrap();
        let r = TaggedSim::new(cfg(), WindowKind::Merged { entries: 3 })
            .run(&p, Memory::new(1 << 12), 1_000_000)
            .unwrap();
        assert!(r.stats.stalls(StallReason::WindowFull) > 0);
    }

    #[test]
    fn two_dispatch_paths_help_a_little() {
        let p = loop_prog().assemble().unwrap();
        let one = TaggedSim::new(cfg(), WindowKind::Merged { entries: 10 })
            .run(&p, Memory::new(1 << 12), 1_000_000)
            .unwrap();
        let two = TaggedSim::new(
            cfg().with_dispatch_paths(2),
            WindowKind::Merged { entries: 10 },
        )
        .run(&p, Memory::new(1 << 12), 1_000_000)
        .unwrap();
        assert!(two.cycles <= one.cycles);
    }

    #[test]
    fn imprecision_snapshot_differs_from_every_program_order_boundary() {
        // A long-latency op followed by a fast store: when the fast store
        // has executed, the long op has not — no program-order boundary
        // matches the machine state (store done, earlier reg write not).
        let mut a = Asm::new("t");
        a.a_imm(Reg::a(1), 80);
        a.f_recip(Reg::s(1), Reg::s(0)); // seq 1: slow
        a.s_imm(Reg::s(2), 5); // seq 2
        a.st_s(Reg::s(2), Reg::a(1), 0); // seq 3: fast store
        a.halt();
        let p = a.assemble().unwrap();
        let snap = TaggedSim::new(cfg(), WindowKind::Merged { entries: 8 })
            .snapshot_at_execute(&p, Memory::new(1 << 12), 1_000_000, 3)
            .unwrap()
            .expect("store executes");
        let (state, mem) = snap;
        // Store done...
        assert_eq!(mem.read(80), 5);
        // ...but the older recip has not updated S1 yet.
        let (g2, _) = ruu_exec::golden_state_at(&p, Memory::new(1 << 12), 4).unwrap();
        assert_ne!(state.regs, g2.regs, "imprecise: S1 missing");
    }

    #[test]
    fn distributed_blocks_on_per_fu_stations() {
        // Three dependent float-adds fill a 1-deep FloatAdd RS while an
        // independent AddrAdd can still issue.
        let mut a = Asm::new("t");
        a.f_recip(Reg::s(1), Reg::s(0));
        a.f_add(Reg::s(2), Reg::s(1), Reg::s(1));
        a.f_add(Reg::s(3), Reg::s(2), Reg::s(2));
        a.a_imm(Reg::a(1), 7);
        a.halt();
        let p = a.assemble().unwrap();
        let r = TaggedSim::new(cfg(), WindowKind::Distributed { rs_per_fu: 1 })
            .run(&p, Memory::new(1 << 12), 1_000_000)
            .unwrap();
        assert!(r.stats.stalls(StallReason::WindowFull) > 0);
        assert_eq!(r.state.reg(Reg::a(1)), 7);
    }
}
