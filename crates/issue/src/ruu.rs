//! The **Register Update Unit** (paper §5–6, Figure 5).
//!
//! The RUU is the paper's contribution: the merged reservation-station /
//! tag-unit structure (RSTU) managed as a FIFO queue. Instructions enter at
//! the tail in program order, issue to the functional units out of order as
//! their operands arrive, and **commit in program order from the head**,
//! which makes interrupts precise (paper §4–5).
//!
//! Managing the window as a queue removes the associative tag search of
//! the RSTU: each register carries two small counters, *NI* (number of
//! instances in the RUU) and *LI* (latest instance); a tag is just the
//! register number appended with LI (paper §5.1).
//!
//! Three operand-bypass policies are modelled, matching the paper's three
//! evaluations:
//!
//! * [`Bypass::Full`] — source operands may be read from any executed RUU
//!   entry (Table 4);
//! * [`Bypass::None`] — no bypass: a consumer that missed the producer's
//!   result-bus broadcast waits until the value crosses the
//!   RUU→register-file bus at commit (Table 5, §6.2);
//! * [`Bypass::LimitedA`] — the A register file is shadowed by a *future
//!   file* updated from the result bus; all other files behave as
//!   [`Bypass::None`] (Table 6, §6.3).

use std::collections::{BTreeMap, VecDeque};

use ruu_exec::{ArchState, Memory};
use ruu_isa::{semantics, FuClass, Inst, Program, Reg, NUM_REGS};
use ruu_sim_core::{
    DCache, FuPool, LoadRegUnit, LrOutcome, MachineConfig, MemOpKind, NullObserver,
    PipelineObserver, RunResult, RunStats, SlotReservation, StallReason,
};

use crate::common::{Broadcasts, FetchSlot, Frontend, Operand, Tag};
use crate::SimError;

/// Operand-bypass policy of the RUU (paper §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bypass {
    /// Associative bypass from every executed RUU entry (paper §6.1).
    Full,
    /// No bypass: reservation stations monitor the result bus *and* the
    /// RUU→register-file bus (paper §6.2).
    None,
    /// A future file shadows the 8 A registers; other files are
    /// un-bypassed (paper §6.3).
    LimitedA,
}

/// The machine state captured when the RUU takes a precise interrupt.
#[derive(Debug, Clone)]
pub struct InterruptFrame {
    /// The precise register state: every instruction before the faulting
    /// one has updated it; none after (nor the faulting one) has.
    pub state: ArchState,
    /// The precise memory: committed stores only.
    pub memory: Memory,
    /// Program counter of the faulting instruction (restart point).
    pub resume_pc: u32,
    /// Dynamic instructions committed before the interrupt (window
    /// entries only; branches resolve in the issue stage).
    pub committed: u64,
    /// Cycle at which the interrupt was taken.
    pub cycle: u64,
}

/// Outcome of [`Ruu::run_with_exception`].
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// The program ran to completion (the designated instruction never
    /// committed — e.g. it was never reached).
    Completed(RunResult),
    /// The designated instruction reached the commit point and the
    /// interrupt was taken with this precise frame.
    Interrupted(InterruptFrame),
}

/// One cycle of RUU activity, for pipeline visualisation (see
/// `examples/pipeline_trace.rs`).
#[derive(Debug, Clone, Default)]
pub struct CycleRecord {
    /// The cycle number.
    pub cycle: u64,
    /// Window occupancy at the start of the cycle.
    pub occupancy: u32,
    /// pc of the instruction that entered the RUU (or resolved, for a
    /// branch) this cycle.
    pub issued_pc: Option<u32>,
    /// Sequence numbers dispatched to functional units this cycle.
    pub dispatched: Vec<u64>,
    /// Sequence numbers whose results appeared on the result bus.
    pub finished: Vec<u64>,
    /// Sequence numbers committed to the architectural state.
    pub committed: Vec<u64>,
}

/// A bounded per-cycle activity log from [`Ruu::run_traced`].
#[derive(Debug, Clone, Default)]
pub struct CycleTrace {
    /// Records for the first `capacity` cycles of the run.
    pub cycles: Vec<CycleRecord>,
    capacity: usize,
}

impl CycleTrace {
    fn new(capacity: usize) -> Self {
        CycleTrace {
            cycles: Vec::new(),
            capacity,
        }
    }

    fn start_cycle(&mut self, cycle: u64, occupancy: u32) -> bool {
        if self.cycles.len() >= self.capacity {
            return false;
        }
        self.cycles.push(CycleRecord {
            cycle,
            occupancy,
            ..CycleRecord::default()
        });
        true
    }

    fn cur(&mut self) -> Option<&mut CycleRecord> {
        self.cycles.last_mut()
    }
}

/// Configuration + entry point for the RUU simulator.
#[derive(Debug, Clone)]
pub struct Ruu {
    config: MachineConfig,
    entries: usize,
    bypass: Bypass,
}

impl Ruu {
    /// Creates an RUU simulator with `entries` window entries and the
    /// given bypass policy.
    ///
    /// # Panics
    /// Panics if `entries` is zero.
    #[must_use]
    pub fn new(config: MachineConfig, entries: usize, bypass: Bypass) -> Self {
        assert!(entries > 0, "the RUU needs at least one entry");
        Ruu {
            config,
            entries,
            bypass,
        }
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Number of RUU entries.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// The bypass policy.
    #[must_use]
    pub fn bypass(&self) -> Bypass {
        self.bypass
    }

    /// Runs `program` to completion from zeroed registers.
    ///
    /// # Errors
    /// [`SimError::InstLimit`] if more than `limit` instructions issue;
    /// [`SimError::Deadlock`] on internal lack of progress (a bug).
    pub fn run(&self, program: &Program, mem: Memory, limit: u64) -> Result<RunResult, SimError> {
        match self.run_inner(ArchState::new(), mem, program, limit, None)? {
            RunOutcome::Completed(r) => Ok(r),
            RunOutcome::Interrupted(_) => unreachable!("no fault was injected"),
        }
    }

    /// Runs `program` from an explicit architectural state (restart after
    /// an interrupt).
    ///
    /// # Errors
    /// As for [`Ruu::run`].
    pub fn run_from(
        &self,
        state: ArchState,
        mem: Memory,
        program: &Program,
        limit: u64,
    ) -> Result<RunResult, SimError> {
        match self.run_inner(state, mem, program, limit, None)? {
            RunOutcome::Completed(r) => Ok(r),
            RunOutcome::Interrupted(_) => unreachable!("no fault was injected"),
        }
    }

    /// Runs `program` from an explicit architectural state, reporting
    /// every pipeline event to `obs`.
    ///
    /// # Errors
    /// As for [`Ruu::run`].
    pub fn run_observed(
        &self,
        state: ArchState,
        mem: Memory,
        program: &Program,
        limit: u64,
        obs: &mut dyn PipelineObserver,
    ) -> Result<RunResult, SimError> {
        let mut core = Core::new(self, state, mem, program, limit, None, obs);
        match core.run()? {
            RunOutcome::Completed(r) => Ok(r),
            RunOutcome::Interrupted(_) => unreachable!("no fault was injected"),
        }
    }

    /// Runs `program`, injecting an exception on the dynamic instruction
    /// with sequence number `fault_seq` (0-based over *all* dynamic
    /// instructions, branches included). The exception is detected when
    /// the instruction reaches the head of the RUU, i.e. at the commit
    /// point, and the interrupt is precise.
    ///
    /// The designated instruction must not be a branch (branches resolve
    /// in the decode stage and cannot fault in this model).
    ///
    /// # Errors
    /// As for [`Ruu::run`].
    pub fn run_with_exception(
        &self,
        program: &Program,
        mem: Memory,
        limit: u64,
        fault_seq: u64,
    ) -> Result<RunOutcome, SimError> {
        self.run_inner(ArchState::new(), mem, program, limit, Some(fault_seq))
    }

    fn run_inner(
        &self,
        state: ArchState,
        mem: Memory,
        program: &Program,
        limit: u64,
        fault_seq: Option<u64>,
    ) -> Result<RunOutcome, SimError> {
        let mut nobs = NullObserver;
        let mut core = Core::new(self, state, mem, program, limit, fault_seq, &mut nobs);
        core.run()
    }

    /// Runs `program` while logging per-cycle activity for the first
    /// `trace_cycles` cycles (issue, dispatch, result-bus and commit
    /// events) — a software logic analyser on the RUU's ports.
    ///
    /// # Errors
    /// As for [`Ruu::run`].
    pub fn run_traced(
        &self,
        program: &Program,
        mem: Memory,
        limit: u64,
        trace_cycles: usize,
    ) -> Result<(RunResult, CycleTrace), SimError> {
        let mut nobs = NullObserver;
        let mut core = Core::new(self, ArchState::new(), mem, program, limit, None, &mut nobs);
        core.trace = Some(CycleTrace::new(trace_cycles));
        match core.run()? {
            RunOutcome::Completed(r) => {
                let trace = core.trace.take().expect("trace was installed");
                Ok((r, trace))
            }
            RunOutcome::Interrupted(_) => unreachable!("no fault was injected"),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemPhase {
    /// Not a memory operation.
    NotMem,
    /// In the address-generation queue, not yet matched against the load
    /// registers.
    AwaitingLr,
    /// Load, no match: waiting to dispatch to the memory unit.
    ToMemory,
    /// Load, matched a pending operation: waiting for its data.
    AwaitingData,
    /// Load with data in hand: waiting for a result-bus slot.
    Forwarding,
    /// Store with its address recorded: waiting for data + memory port.
    StorePending,
    /// Finished with the memory system.
    Done,
}

#[derive(Debug, Clone)]
struct Entry {
    seq: u64,
    pc: u32,
    inst: Inst,
    dst_tag: Option<Tag>,
    ops: [Operand; 2],
    dispatched: bool,
    executed: bool,
    result: Option<u64>,
    ea: Option<u64>,
    mem_phase: MemPhase,
    lr_provider: bool,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// The entry's result appears on the result bus (ALU op or load).
    Finish(u64),
    /// A store's address+data have been handed to the memory port.
    StoreExec(u64),
}

#[derive(Debug, Clone, Copy, Default)]
struct FfEntry {
    value: u64,
    valid: bool,
}

struct Core<'a> {
    cfg: &'a MachineConfig,
    program: &'a Program,
    bypass: Bypass,
    capacity: usize,
    limit: u64,
    fault_seq: Option<u64>,

    cycle: u64,
    arch: ArchState,
    mem: Memory,
    ni: [u32; NUM_REGS],
    li: [u64; NUM_REGS],
    ff: [FfEntry; 8],
    window: VecDeque<Entry>,
    mem_queue: VecDeque<u64>,
    forward_queue: Vec<u64>,
    events: BTreeMap<u64, Vec<Event>>,
    lr: LoadRegUnit,
    fus: FuPool,
    bus: SlotReservation,
    dcache: DCache,
    frontend: Frontend,
    broadcasts: Broadcasts,
    stats: RunStats,
    issued: u64,
    committed: u64,
    trace: Option<CycleTrace>,
    obs: &'a mut dyn PipelineObserver,
    events_scheduled: u64,
    last_progress: (u64, u64, u64),
    last_progress_cycle: u64,
}

impl<'a> Core<'a> {
    fn new(
        ruu: &'a Ruu,
        state: ArchState,
        mem: Memory,
        program: &'a Program,
        limit: u64,
        fault_seq: Option<u64>,
        obs: &'a mut dyn PipelineObserver,
    ) -> Self {
        let cfg = &ruu.config;
        let dcache = DCache::new(
            &cfg.dcache,
            cfg.fu_latency(FuClass::Memory),
            mem.len() as u64,
        );
        Core {
            cfg,
            program,
            bypass: ruu.bypass,
            capacity: ruu.entries,
            limit,
            fault_seq,
            cycle: 0,
            frontend: Frontend::new(state.pc),
            arch: state,
            mem,
            ni: [0; NUM_REGS],
            li: [0; NUM_REGS],
            ff: [FfEntry::default(); 8],
            window: VecDeque::new(),
            mem_queue: VecDeque::new(),
            forward_queue: Vec::new(),
            events: BTreeMap::new(),
            lr: LoadRegUnit::new(cfg.load_registers),
            fus: FuPool::new(),
            bus: SlotReservation::new(cfg.result_buses),
            dcache,
            broadcasts: Broadcasts::default(),
            stats: RunStats::default(),
            issued: 0,
            committed: 0,
            trace: None,
            obs,
            events_scheduled: 0,
            last_progress: (0, 0, 0),
            last_progress_cycle: 0,
        }
    }

    fn tag_mask(&self) -> u64 {
        (1u64 << self.cfg.counter_bits) - 1
    }

    fn pos(&self, seq: u64) -> usize {
        self.window
            .iter()
            .position(|e| e.seq == seq)
            .expect("entry for live seq is in the window")
    }

    fn note(&mut self, f: impl FnOnce(&mut CycleRecord)) {
        let cycle = self.cycle;
        if let Some(t) = self.trace.as_mut() {
            if let Some(rec) = t.cur() {
                // Only record into the live cycle; once the trace is full
                // (capacity reached) later cycles are not logged.
                if rec.cycle == cycle {
                    f(rec);
                }
            }
        }
    }

    fn schedule(&mut self, cycle: u64, ev: Event) {
        self.events_scheduled += 1;
        self.events.entry(cycle).or_default().push(ev);
    }

    /// Broadcast on the result bus: gates waiting stations, the parked
    /// branch, and updates the A future file.
    fn broadcast_result(&mut self, tag: Tag, value: u64) {
        self.broadcasts.push(tag, value);
        for e in &mut self.window {
            for op in &mut e.ops {
                op.gate(tag, value);
            }
        }
        if let Some(pb) = self.frontend.pending_branch_mut() {
            pb.cond.gate(tag, value);
        }
        if tag.reg.is_a() && tag.instance == (self.li[tag.reg.index()] & self.tag_mask()) {
            self.ff[tag.reg.num() as usize] = FfEntry { value, valid: true };
        }
    }

    /// Broadcast on the RUU→register-file (commit) bus: gates waiting
    /// stations and the parked branch, but does not touch the future file
    /// (which mirrors the result bus).
    fn broadcast_commit(&mut self, tag: Tag, value: u64) {
        self.broadcasts.push(tag, value);
        for e in &mut self.window {
            for op in &mut e.ops {
                op.gate(tag, value);
            }
        }
        if let Some(pb) = self.frontend.pending_branch_mut() {
            pb.cond.gate(tag, value);
        }
    }

    /// A forwarded load received its data: queue its broadcast.
    fn wake_forwarded_load(&mut self, seq: u64, value: u64) {
        let i = self.pos(seq);
        let e = &mut self.window[i];
        debug_assert_eq!(e.mem_phase, MemPhase::AwaitingData);
        e.result = Some(value);
        e.mem_phase = MemPhase::Forwarding;
        self.forward_queue.push(seq);
        self.stats.forwarded_loads += 1;
    }

    // ---- phase 1: completions --------------------------------------

    fn phase_completions(&mut self) {
        let Some(evs) = self.events.remove(&self.cycle) else {
            return;
        };
        for ev in evs {
            match ev {
                Event::Finish(seq) => {
                    self.note(|r| r.finished.push(seq));
                    self.obs.complete(self.cycle, seq);
                    let i = self.pos(seq);
                    let e = &mut self.window[i];
                    e.executed = true;
                    let dst_tag = e.dst_tag;
                    let value = e.result;
                    let is_load = e.inst.is_load();
                    let was_provider = e.lr_provider;
                    if is_load {
                        e.mem_phase = MemPhase::Done;
                    }
                    if let Some(tag) = dst_tag {
                        let v = value.expect("finished producer has a result");
                        self.broadcast_result(tag, v);
                    }
                    if is_load {
                        if was_provider {
                            let v = value.expect("finished load has data");
                            for w in self.lr.provider_ready(seq, v) {
                                self.wake_forwarded_load(w, v);
                            }
                        }
                        self.lr.retire(seq);
                    }
                }
                Event::StoreExec(seq) => {
                    self.obs.complete(self.cycle, seq);
                    let i = self.pos(seq);
                    let e = &mut self.window[i];
                    e.executed = true;
                    let data = e.ops[1].value();
                    for w in self.lr.provider_ready(seq, data) {
                        self.wake_forwarded_load(w, data);
                    }
                }
            }
        }
    }

    // ---- phase 2: memory address generation (in program order) ------

    fn phase_addr_gen(&mut self) {
        let Some(&seq) = self.mem_queue.front() else {
            return;
        };
        let i = self.pos(seq);
        let (ready, kind, imm) = {
            let e = &self.window[i];
            (
                e.ops[0].is_ready(),
                if e.inst.is_load() {
                    MemOpKind::Load
                } else {
                    MemOpKind::Store
                },
                e.inst.imm,
            )
        };
        if !ready {
            return;
        }
        let base = self.window[i].ops[0].value();
        // Canonicalize so the load registers compare the word actually
        // touched; raw effective addresses may alias one memory word.
        let ea = self
            .mem
            .canonicalize(semantics::effective_address(base, imm));
        let Some(outcome) = self.lr.process(seq, kind, ea) else {
            return; // no free load register; retry next cycle
        };
        self.mem_queue.pop_front();
        let e = &mut self.window[i];
        e.ea = Some(ea);
        match outcome {
            LrOutcome::ToMemory => {
                e.mem_phase = MemPhase::ToMemory;
                e.lr_provider = true;
            }
            LrOutcome::Forwarded { value } => {
                e.result = Some(value);
                e.mem_phase = MemPhase::Forwarding;
                self.forward_queue.push(seq);
                self.stats.forwarded_loads += 1;
            }
            LrOutcome::WaitOn { .. } => {
                e.mem_phase = MemPhase::AwaitingData;
            }
            LrOutcome::StoreRecorded => {
                e.mem_phase = MemPhase::StorePending;
            }
        }
    }

    // ---- phase 3: forwarded-load broadcasts ---------------------------

    fn phase_forwards(&mut self) {
        let lat = self.cfg.forward_latency;
        let mut remaining = Vec::new();
        let queue = std::mem::take(&mut self.forward_queue);
        for seq in queue {
            if self.bus.try_reserve(self.cycle + lat) {
                self.note(|r| r.dispatched.push(seq));
                self.obs
                    .dispatch(self.cycle, seq, FuClass::Memory, self.cycle + lat);
                self.schedule(self.cycle + lat, Event::Finish(seq));
            } else {
                remaining.push(seq);
            }
        }
        self.forward_queue = remaining;
    }

    // ---- phase 4: dispatch to the functional units --------------------

    fn dispatchable(&self) -> Vec<(bool, u64)> {
        let mut out = Vec::new();
        for e in &self.window {
            if e.dispatched || e.executed {
                continue;
            }
            match e.mem_phase {
                MemPhase::ToMemory => out.push((true, e.seq)),
                MemPhase::StorePending if e.ops[0].is_ready() && e.ops[1].is_ready() => {
                    out.push((true, e.seq));
                }
                MemPhase::NotMem
                    if e.inst.fu_class().is_some()
                        && e.ops[0].is_ready()
                        && e.ops[1].is_ready() =>
                {
                    out.push((false, e.seq));
                }
                _ => {}
            }
        }
        // Load/store priority first (stable within each class = age order,
        // paper §5.1).
        out.sort_by_key(|&(is_mem, _)| !is_mem);
        out
    }

    fn phase_dispatch(&mut self) {
        let mut paths = self.cfg.dispatch_paths;
        for (_, seq) in self.dispatchable() {
            if paths == 0 {
                break;
            }
            let i = self.pos(seq);
            let e = &self.window[i];
            match e.mem_phase {
                MemPhase::ToMemory => {
                    let ea = e.ea.expect("address generated");
                    let plan = self.dcache.plan(ea, self.cycle);
                    let Some(lat) = plan.latency() else {
                        continue; // every outstanding-miss register busy: retry
                    };
                    if self.fus.can_accept(FuClass::Memory, self.cycle)
                        && self.bus.available(self.cycle + lat)
                    {
                        self.fus.accept(FuClass::Memory, self.cycle);
                        self.bus.try_reserve(self.cycle + lat);
                        let v = self.mem.read(ea);
                        let e = &mut self.window[i];
                        e.result = Some(v);
                        e.dispatched = true;
                        self.note(|r| r.dispatched.push(seq));
                        self.obs
                            .dispatch(self.cycle, seq, FuClass::Memory, self.cycle + lat);
                        if self.dcache.is_finite() {
                            let plan = self.dcache.access(ea, self.cycle);
                            self.obs.mem_access(self.cycle, ea, plan.is_hit(), lat);
                        }
                        self.schedule(self.cycle + lat, Event::Finish(seq));
                        paths -= 1;
                    }
                }
                MemPhase::StorePending if self.fus.can_accept(FuClass::Memory, self.cycle) => {
                    self.fus.accept(FuClass::Memory, self.cycle);
                    self.window[i].dispatched = true;
                    self.note(|r| r.dispatched.push(seq));
                    self.obs.dispatch(
                        self.cycle,
                        seq,
                        FuClass::Memory,
                        self.cycle + self.cfg.store_exec_latency,
                    );
                    self.schedule(
                        self.cycle + self.cfg.store_exec_latency,
                        Event::StoreExec(seq),
                    );
                    paths -= 1;
                }
                MemPhase::NotMem => {
                    let fu = e.inst.fu_class().expect("ALU entry has a unit");
                    let lat = self.cfg.fu_latency(fu);
                    if self.fus.can_accept(fu, self.cycle) && self.bus.available(self.cycle + lat) {
                        self.fus.accept(fu, self.cycle);
                        self.bus.try_reserve(self.cycle + lat);
                        let e = &mut self.window[i];
                        let v = semantics::alu_result(
                            e.inst.opcode,
                            e.ops[0].value(),
                            e.ops[1].value(),
                            e.inst.imm,
                        );
                        e.result = Some(v);
                        e.dispatched = true;
                        self.note(|r| r.dispatched.push(seq));
                        self.obs.dispatch(self.cycle, seq, fu, self.cycle + lat);
                        self.schedule(self.cycle + lat, Event::Finish(seq));
                        paths -= 1;
                    }
                }
                _ => {}
            }
        }
    }

    // ---- phase 5: in-order commit --------------------------------------

    fn phase_commit(&mut self) -> Option<InterruptFrame> {
        for _ in 0..self.cfg.commit_width {
            let Some(head) = self.window.front() else {
                break;
            };
            if !head.executed {
                break;
            }
            if self.fault_seq == Some(head.seq) {
                // Precise interrupt: the faulting instruction does not
                // update any state; everything older already has.
                let mut state = self.arch.clone();
                state.pc = head.pc;
                return Some(InterruptFrame {
                    state,
                    memory: self.mem.clone(),
                    resume_pc: head.pc,
                    committed: self.committed,
                    cycle: self.cycle,
                });
            }
            let e = self.window.pop_front().expect("head exists");
            self.note(|r| r.committed.push(e.seq));
            self.obs.commit(self.cycle, e.seq);
            if e.inst.is_store() {
                let ea = e.ea.expect("executed store has an address");
                self.mem.write(ea, e.ops[1].value());
                self.lr.retire(e.seq);
            }
            if let Some(tag) = e.dst_tag {
                let v = e.result.expect("executed producer has a result");
                self.arch.set_reg(tag.reg, v);
                self.ni[tag.reg.index()] -= 1;
                self.broadcast_commit(tag, v);
            }
            self.committed += 1;
        }
        None
    }

    // ---- phase 6: decode / issue ----------------------------------------

    fn read_operand(&self, r: Reg) -> Operand {
        if self.ni[r.index()] == 0 {
            return Operand::Ready(self.arch.reg(r));
        }
        let tag = Tag {
            reg: r,
            instance: self.li[r.index()] & self.tag_mask(),
        };
        if let Some(v) = self.broadcasts.lookup(tag) {
            return Operand::Ready(v);
        }
        match self.bypass {
            Bypass::Full => {
                match self
                    .window
                    .iter()
                    .find(|e| e.dst_tag == Some(tag) && e.executed)
                {
                    Some(e) => Operand::Ready(e.result.expect("executed producer has a result")),
                    None => Operand::Waiting(tag),
                }
            }
            Bypass::None => Operand::Waiting(tag),
            Bypass::LimitedA => {
                if r.is_a() {
                    let ff = self.ff[r.num() as usize];
                    if ff.valid {
                        Operand::Ready(ff.value)
                    } else {
                        Operand::Waiting(tag)
                    }
                } else {
                    Operand::Waiting(tag)
                }
            }
        }
    }

    fn phase_issue(&mut self) -> Result<(), SimError> {
        match self.frontend.peek(self.cycle, self.program) {
            FetchSlot::Halted => {
                self.frontend.set_halted();
                self.stats.stall(StallReason::Drained);
                self.obs.stall(self.cycle, StallReason::Drained);
            }
            FetchSlot::Dead => {
                self.stats.stall(StallReason::DeadCycle);
                self.obs.stall(self.cycle, StallReason::DeadCycle);
            }
            FetchSlot::BranchParked => {
                let pb = *self.frontend.pending_branch().expect("branch is parked");
                if pb.cond.is_ready() {
                    self.frontend.resolve_branch(
                        self.cycle,
                        &pb.inst,
                        pb.cond.value(),
                        self.cfg,
                        &mut self.stats,
                    );
                    self.note(|r| r.issued_pc = Some(pb.pc));
                    self.obs.issue(self.cycle, self.issued);
                    self.issued += 1;
                    self.stats.issue_cycles += 1;
                } else {
                    self.stats.stall(StallReason::BranchWait);
                    self.obs.stall(self.cycle, StallReason::BranchWait);
                }
            }
            FetchSlot::Inst(pc, inst) => {
                if self.issued >= self.limit {
                    return Err(SimError::InstLimit { limit: self.limit });
                }
                self.obs.fetch(self.cycle, pc);
                if inst.is_branch() {
                    let cond = match inst.src1 {
                        Some(r) => self.read_operand(r),
                        None => Operand::Ready(0),
                    };
                    if cond.is_ready() {
                        self.frontend.resolve_branch(
                            self.cycle,
                            &inst,
                            cond.value(),
                            self.cfg,
                            &mut self.stats,
                        );
                        self.note(|r| r.issued_pc = Some(pc));
                        self.obs.issue(self.cycle, self.issued);
                        self.issued += 1;
                        self.stats.issue_cycles += 1;
                    } else {
                        self.frontend.park_branch(pc, inst, cond);
                        self.stats.stall(StallReason::BranchWait);
                        self.obs.stall(self.cycle, StallReason::BranchWait);
                    }
                    return Ok(());
                }

                if self.window.len() >= self.capacity {
                    self.stats.stall(StallReason::WindowFull);
                    self.obs.stall(self.cycle, StallReason::WindowFull);
                    return Ok(());
                }
                if let Some(d) = inst.dst {
                    if self.ni[d.index()] >= self.cfg.max_instances() {
                        self.stats.stall(StallReason::RegInstanceLimit);
                        self.obs.stall(self.cycle, StallReason::RegInstanceLimit);
                        return Ok(());
                    }
                }
                if inst.is_mem() && self.lr.is_full() {
                    self.stats.stall(StallReason::LoadRegFull);
                    self.obs.stall(self.cycle, StallReason::LoadRegFull);
                    return Ok(());
                }

                // Read source operands (value or tag).
                let ops = [
                    inst.src1
                        .map_or(Operand::Ready(0), |r| self.read_operand(r)),
                    inst.src2
                        .map_or(Operand::Ready(0), |r| self.read_operand(r)),
                ];

                // Acquire the destination instance.
                let dst_tag = inst.dst.map(|d| {
                    self.ni[d.index()] += 1;
                    self.li[d.index()] += 1;
                    if d.is_a() {
                        self.ff[d.num() as usize].valid = false;
                    }
                    Tag {
                        reg: d,
                        instance: self.li[d.index()] & self.tag_mask(),
                    }
                });

                let seq = self.issued;
                let is_mem = inst.is_mem();
                let no_fu = inst.fu_class().is_none(); // Nop
                self.window.push_back(Entry {
                    seq,
                    pc,
                    inst,
                    dst_tag,
                    ops,
                    dispatched: no_fu,
                    executed: no_fu,
                    result: None,
                    ea: None,
                    mem_phase: if is_mem {
                        MemPhase::AwaitingLr
                    } else {
                        MemPhase::NotMem
                    },
                    lr_provider: false,
                });
                if is_mem {
                    self.mem_queue.push_back(seq);
                }
                self.note(|r| r.issued_pc = Some(pc));
                self.obs.issue(self.cycle, seq);
                self.issued += 1;
                self.stats.issue_cycles += 1;
                self.frontend.advance();
            }
        }
        Ok(())
    }

    fn drained(&self) -> bool {
        self.frontend.halted()
            && self.window.is_empty()
            && self.mem_queue.is_empty()
            && self.forward_queue.is_empty()
            && self.events.is_empty()
    }

    fn run(&mut self) -> Result<RunOutcome, SimError> {
        loop {
            self.broadcasts.clear();
            let occ = self.window.len() as u32;
            self.stats.observe_occupancy(occ);
            if let Some(t) = self.trace.as_mut() {
                t.start_cycle(self.cycle, occ);
            }

            self.phase_completions();
            self.phase_addr_gen();
            self.phase_forwards();
            self.phase_dispatch();
            if let Some(frame) = self.phase_commit() {
                return Ok(RunOutcome::Interrupted(frame));
            }
            self.phase_issue()?;

            let progress = (self.issued, self.committed, self.events_scheduled);
            if progress != self.last_progress {
                self.last_progress = progress;
                self.last_progress_cycle = self.cycle;
            } else if self.cycle - self.last_progress_cycle > 100_000 {
                // Nothing issued, committed, or entered the pipelines for
                // far longer than any latency in the machine: a bug.
                return Err(SimError::Deadlock { cycle: self.cycle });
            }

            self.obs.cycle_end(self.cycle, occ);
            if self.drained() {
                self.cycle += 1;
                break;
            }
            self.cycle += 1;
            // Keep the reservation table small on long runs.
            if self.cycle.is_multiple_of(4096) {
                self.bus.release_before(self.cycle);
            }
        }

        let mut state = self.arch.clone();
        state.pc = self.frontend.pc();
        let cs = self.dcache.stats();
        self.stats.dcache_accesses = cs.accesses;
        self.stats.dcache_hits = cs.hits;
        self.stats.dcache_misses = cs.misses;
        Ok(RunOutcome::Completed(RunResult {
            cycles: self.cycle,
            instructions: self.issued,
            state,
            memory: self.mem.clone(),
            stats: std::mem::take(&mut self.stats),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruu_exec::Trace;
    use ruu_isa::Asm;

    fn cfg() -> MachineConfig {
        MachineConfig::paper()
    }

    fn run_bp(asm: &dyn Fn() -> Asm, entries: usize, bypass: Bypass) -> RunResult {
        let p = asm().assemble().unwrap();
        Ruu::new(cfg(), entries, bypass)
            .run(&p, Memory::new(1 << 12), 1_000_000)
            .unwrap()
    }

    fn golden(asm: &dyn Fn() -> Asm) -> Trace {
        let p = asm().assemble().unwrap();
        Trace::capture(&p, Memory::new(1 << 12), 1_000_000).unwrap()
    }

    #[test]
    fn straight_line_matches_golden() {
        let prog = || {
            let mut a = Asm::new("t");
            a.a_imm(Reg::a(1), 6);
            a.a_imm(Reg::a(2), 7);
            a.a_mul(Reg::a(3), Reg::a(1), Reg::a(2));
            a.a_to_s(Reg::s(1), Reg::a(3));
            a.halt();
            a
        };
        let g = golden(&prog);
        for bp in [Bypass::Full, Bypass::None, Bypass::LimitedA] {
            let r = run_bp(&prog, 8, bp);
            assert_eq!(r.instructions, g.len() as u64, "{bp:?}");
            assert_eq!(&r.state, g.final_state(), "{bp:?}");
            assert_eq!(&r.memory, g.final_memory(), "{bp:?}");
        }
    }

    #[test]
    fn out_of_order_execution_beats_simple_issue() {
        // A loop with a long-latency dependence chain plus independent
        // work: in steady state the RUU overlaps iterations while the
        // simple machine blocks in decode on every dependence.
        let prog = || {
            let mut a = Asm::new("t");
            let top = a.new_label();
            a.a_imm(Reg::a(0), 30);
            a.a_imm(Reg::a(1), 100);
            // Any nonzero bit pattern works: the chain's latency, not the
            // value, is what the test measures (and it must fit the 22-bit
            // SImm field, which `assemble` now checks).
            a.s_imm(Reg::s(1), 1 << 20);
            a.bind(top);
            a.ld_s(Reg::s(2), Reg::a(1), 0);
            a.f_mul(Reg::s(3), Reg::s(2), Reg::s(1));
            a.f_add(Reg::s(4), Reg::s(3), Reg::s(1));
            a.st_s(Reg::s(4), Reg::a(1), 64);
            a.a_add_imm(Reg::a(1), Reg::a(1), 1);
            a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
            a.br_an(top);
            a.halt();
            a
        };
        let p = prog().assemble().unwrap();
        let simple = crate::SimpleIssue::new(cfg())
            .run(&p, Memory::new(1 << 12), 1_000_000)
            .unwrap();
        let ruu = run_bp(&prog, 16, Bypass::Full);
        assert!(
            ruu.cycles < simple.cycles,
            "RUU {} vs simple {}",
            ruu.cycles,
            simple.cycles
        );
        assert_eq!(ruu.state, simple.state);
    }

    #[test]
    fn no_bypass_pays_for_early_completing_producers() {
        // Producer completes long before the consumer issues, but commits
        // late (stuck behind a long recip at the head). The consumer is a
        // branch, so the wait blocks the decode stage itself: with full
        // bypass the condition is read from the RUU; without bypass the
        // branch waits for the RUU→register-file bus (paper §6.3).
        let prog = || {
            let mut a = Asm::new("t");
            let skip = a.new_label();
            a.f_recip(Reg::s(1), Reg::s(0)); // head, 14 cycles
            a.a_imm(Reg::a(0), 0); // completes fast, commits late
            a.nop();
            a.nop();
            a.br_az(skip); // reads A0
            a.nop(); // skipped
            a.bind(skip);
            a.halt();
            a
        };
        let full = run_bp(&prog, 16, Bypass::Full);
        let none = run_bp(&prog, 16, Bypass::None);
        let limited = run_bp(&prog, 16, Bypass::LimitedA);
        assert!(
            none.cycles > full.cycles,
            "none {} should exceed full {}",
            none.cycles,
            full.cycles
        );
        // The branch reads an A register: the future file recovers the
        // full-bypass timing.
        assert_eq!(limited.cycles, full.cycles);
        assert_eq!(full.state, none.state);
        assert_eq!(full.state, limited.state);
    }

    #[test]
    fn limited_bypass_does_not_cover_s_registers() {
        let prog = || {
            let mut a = Asm::new("t");
            let skip = a.new_label();
            a.f_recip(Reg::s(1), Reg::s(1)); // head blocker
            a.s_imm(Reg::s(0), 0); // fast producer, S file
            a.nop();
            a.nop();
            a.br_sz(skip); // consumer of S0: no future file for S
            a.nop(); // skipped
            a.bind(skip);
            a.halt();
            a
        };
        let full = run_bp(&prog, 16, Bypass::Full);
        let limited = run_bp(&prog, 16, Bypass::LimitedA);
        assert!(limited.cycles > full.cycles);
    }

    #[test]
    fn store_load_forwarding_avoids_memory_latency() {
        let prog = || {
            let mut a = Asm::new("t");
            a.a_imm(Reg::a(1), 100);
            a.s_imm(Reg::s(1), 77);
            a.st_s(Reg::s(1), Reg::a(1), 0);
            a.ld_s(Reg::s(2), Reg::a(1), 0); // same address: forwarded
            a.s_add(Reg::s(3), Reg::s(2), Reg::s(2));
            a.halt();
            a
        };
        let r = run_bp(&prog, 16, Bypass::Full);
        assert_eq!(r.stats.forwarded_loads, 1);
        assert_eq!(r.state.reg(Reg::s(3)), 154);
        assert_eq!(r.memory.read(100), 77);
    }

    #[test]
    fn loads_to_different_addresses_use_memory() {
        let prog = || {
            let mut a = Asm::new("t");
            a.a_imm(Reg::a(1), 100);
            a.ld_s(Reg::s(1), Reg::a(1), 0);
            a.ld_s(Reg::s(2), Reg::a(1), 1);
            a.halt();
            a
        };
        let r = run_bp(&prog, 16, Bypass::Full);
        assert_eq!(r.stats.forwarded_loads, 0);
    }

    #[test]
    fn window_full_blocks_issue() {
        let prog = || {
            let mut a = Asm::new("t");
            for i in 1..7 {
                a.f_recip(Reg::s(i), Reg::s(0));
            }
            a.halt();
            a
        };
        let r = run_bp(&prog, 3, Bypass::Full);
        assert!(r.stats.stalls(StallReason::WindowFull) > 0);
    }

    #[test]
    fn instance_limit_blocks_issue() {
        // 8 writes to the same register with 3-bit counters (max 7
        // in-flight instances): the 8th must stall while the window is
        // large enough to hold them all.
        let prog = || {
            let mut a = Asm::new("t");
            for _ in 0..8 {
                a.f_recip(Reg::s(1), Reg::s(0));
            }
            a.halt();
            a
        };
        let p = prog().assemble().unwrap();
        let r = Ruu::new(cfg(), 30, Bypass::Full)
            .run(&p, Memory::new(1 << 12), 1_000_000)
            .unwrap();
        assert!(r.stats.stalls(StallReason::RegInstanceLimit) > 0);
    }

    #[test]
    fn loop_with_memory_matches_golden_all_modes() {
        let prog = || {
            let mut a = Asm::new("t");
            let top = a.new_label();
            a.a_imm(Reg::a(0), 10);
            a.a_imm(Reg::a(1), 200);
            a.s_imm(Reg::s(1), 1);
            a.bind(top);
            a.ld_s(Reg::s(2), Reg::a(1), 0);
            a.s_add(Reg::s(2), Reg::s(2), Reg::s(1));
            a.st_s(Reg::s(2), Reg::a(1), 0);
            a.st_s(Reg::s(2), Reg::a(1), 1);
            a.ld_s(Reg::s(3), Reg::a(1), 1);
            a.s_add(Reg::s(4), Reg::s(3), Reg::s(2));
            a.a_add_imm(Reg::a(1), Reg::a(1), 1);
            a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
            a.br_an(top);
            a.halt();
            a
        };
        let g = golden(&prog);
        for bp in [Bypass::Full, Bypass::None, Bypass::LimitedA] {
            for entries in [3, 4, 8, 30] {
                let r = run_bp(&prog, entries, bp);
                assert_eq!(r.instructions, g.len() as u64, "{bp:?}/{entries}");
                assert_eq!(&r.state, g.final_state(), "{bp:?}/{entries}");
                assert_eq!(&r.memory, g.final_memory(), "{bp:?}/{entries}");
            }
        }
    }

    #[test]
    fn bigger_window_is_not_slower() {
        let prog = || {
            let mut a = Asm::new("t");
            let top = a.new_label();
            a.a_imm(Reg::a(0), 20);
            a.a_imm(Reg::a(1), 300);
            a.bind(top);
            a.ld_s(Reg::s(1), Reg::a(1), 0);
            a.f_add(Reg::s(2), Reg::s(1), Reg::s(2));
            a.f_mul(Reg::s(3), Reg::s(1), Reg::s(1));
            a.st_s(Reg::s(3), Reg::a(1), 64);
            a.a_add_imm(Reg::a(1), Reg::a(1), 1);
            a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
            a.br_an(top);
            a.halt();
            a
        };
        let small = run_bp(&prog, 4, Bypass::Full);
        let big = run_bp(&prog, 30, Bypass::Full);
        assert!(big.cycles <= small.cycles);
    }

    #[test]
    fn precise_interrupt_state_matches_golden_boundary() {
        let prog = || {
            let mut a = Asm::new("t");
            a.a_imm(Reg::a(1), 100);
            a.s_imm(Reg::s(1), 5);
            a.st_s(Reg::s(1), Reg::a(1), 0);
            a.f_recip(Reg::s(2), Reg::s(1));
            a.s_imm(Reg::s(3), 9); // completes before recip, commits after
            a.st_s(Reg::s(3), Reg::a(1), 1);
            a.halt();
            a
        };
        let p = prog().assemble().unwrap();
        // Fault on seq 4 (the s_imm S3).
        let outcome = Ruu::new(cfg(), 16, Bypass::Full)
            .run_with_exception(&p, Memory::new(1 << 12), 1_000_000, 4)
            .unwrap();
        let RunOutcome::Interrupted(frame) = outcome else {
            panic!("expected an interrupt");
        };
        let (gs, gm) = ruu_exec::golden_state_at(&p, Memory::new(1 << 12), 4).unwrap();
        assert_eq!(frame.state.regs, gs.regs);
        assert_eq!(frame.state.pc, gs.pc);
        assert_eq!(frame.memory, gm);
        assert_eq!(frame.committed, 4);
        // S3 must NOT be written, the later store must not have happened.
        assert_eq!(frame.state.reg(Reg::s(3)), 0);
        assert_eq!(frame.memory.read(101), 0);
        // But everything older must be architectural despite the pending recip.
        assert_eq!(frame.memory.read(100), 5);
    }

    #[test]
    fn resume_after_interrupt_reaches_golden_final_state() {
        let prog = || {
            let mut a = Asm::new("t");
            let top = a.new_label();
            a.a_imm(Reg::a(0), 6);
            a.a_imm(Reg::a(1), 400);
            a.bind(top);
            a.ld_s(Reg::s(1), Reg::a(1), 0);
            a.s_add(Reg::s(2), Reg::s(2), Reg::s(1));
            a.st_s(Reg::s(2), Reg::a(1), 8);
            a.a_add_imm(Reg::a(1), Reg::a(1), 1);
            a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
            a.br_an(top);
            a.halt();
            a
        };
        let p = prog().assemble().unwrap();
        let g = golden(&prog);
        let sim = Ruu::new(cfg(), 10, Bypass::Full);
        let outcome = sim
            .run_with_exception(&p, Memory::new(1 << 12), 1_000_000, 12)
            .unwrap();
        let RunOutcome::Interrupted(frame) = outcome else {
            panic!("expected an interrupt");
        };
        // "Handle" the fault (nothing to do for this test) and resume.
        let resumed = sim
            .run_from(frame.state, frame.memory, &p, 1_000_000)
            .unwrap();
        assert_eq!(&resumed.state, g.final_state());
        assert_eq!(&resumed.memory, g.final_memory());
    }

    #[test]
    fn branch_condition_waits_without_deadlock_in_no_bypass() {
        // The branch condition chain goes through a B-register transfer —
        // the exact §6.3 pathology. Must terminate and match golden.
        let prog = || {
            let mut a = Asm::new("t");
            let top = a.new_label();
            a.a_imm(Reg::a(2), 3);
            a.bind(top);
            a.a_to_b(Reg::b(1), Reg::a(2));
            a.a_sub_imm(Reg::a(2), Reg::a(2), 1);
            a.b_to_a(Reg::a(0), Reg::b(1));
            a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
            a.br_an(top);
            a.halt();
            a
        };
        let g = golden(&prog);
        for bp in [Bypass::Full, Bypass::None, Bypass::LimitedA] {
            let r = run_bp(&prog, 8, bp);
            assert_eq!(&r.state, g.final_state(), "{bp:?}");
        }
    }

    #[test]
    fn cycle_trace_records_the_pipeline() {
        let prog = || {
            let mut a = Asm::new("t");
            a.a_imm(Reg::a(1), 5);
            a.a_add(Reg::a(2), Reg::a(1), Reg::a(1));
            a.a_add(Reg::a(3), Reg::a(2), Reg::a(1));
            a.halt();
            a
        };
        let p = prog().assemble().unwrap();
        let (r, t) = Ruu::new(cfg(), 8, Bypass::Full)
            .run_traced(&p, Memory::new(1 << 8), 1000, 64)
            .unwrap();
        assert_eq!(t.cycles.len() as u64, r.cycles.min(64));
        // Every dynamic instruction shows up once in issue, dispatch and
        // commit across the trace.
        let issued: Vec<u32> = t.cycles.iter().filter_map(|c| c.issued_pc).collect();
        assert_eq!(issued, vec![0, 1, 2]);
        let committed: Vec<u64> = t.cycles.iter().flat_map(|c| c.committed.clone()).collect();
        assert_eq!(committed, vec![0, 1, 2]);
        let dispatched: Vec<u64> = t.cycles.iter().flat_map(|c| c.dispatched.clone()).collect();
        assert_eq!(dispatched.len(), 3);
        // Commit order is program order and each commit follows its finish.
        for seq in 0..3u64 {
            let fin = t
                .cycles
                .iter()
                .position(|c| c.finished.contains(&seq))
                .unwrap();
            let com = t
                .cycles
                .iter()
                .position(|c| c.committed.contains(&seq))
                .unwrap();
            assert!(com >= fin, "seq {seq}");
        }
    }

    #[test]
    fn cycle_trace_is_bounded() {
        let prog = || {
            let mut a = Asm::new("t");
            let top = a.new_label();
            a.a_imm(Reg::a(0), 50);
            a.bind(top);
            a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
            a.br_an(top);
            a.halt();
            a
        };
        let p = prog().assemble().unwrap();
        let (r, t) = Ruu::new(cfg(), 8, Bypass::Full)
            .run_traced(&p, Memory::new(1 << 8), 10_000, 10)
            .unwrap();
        assert!(r.cycles > 10);
        assert_eq!(t.cycles.len(), 10);
    }

    #[test]
    fn interrupt_never_taken_completes() {
        let prog = || {
            let mut a = Asm::new("t");
            a.a_imm(Reg::a(1), 1);
            a.halt();
            a
        };
        let p = prog().assemble().unwrap();
        let outcome = Ruu::new(cfg(), 8, Bypass::Full)
            .run_with_exception(&p, Memory::new(1 << 12), 1_000_000, 999)
            .unwrap();
        assert!(matches!(outcome, RunOutcome::Completed(_)));
    }
}
