//! The *simple issue mechanism* — the paper's baseline (Table 1).
//!
//! A CRAY-1-style in-order, blocking decode/issue stage: an instruction
//! issues only when (i) its source registers are not busy, (ii) its
//! destination register is not busy, (iii) its functional unit can accept
//! it, and (iv) a result-bus slot is free at its completion cycle. While an
//! instruction waits, everything behind it waits too — the degradation the
//! out-of-order mechanisms exist to remove.
//!
//! Instructions complete (and update registers) out of program order, so
//! this baseline machine has *imprecise* interrupts, exactly like the
//! CRAY-1 scalar unit it models.

use ruu_exec::{ArchState, Memory};
use ruu_isa::{semantics, FuClass, Program, NUM_REGS};
use ruu_sim_core::{
    DCache, FuPool, MachineConfig, NullObserver, PipelineObserver, RunResult, RunStats,
    SlotReservation, StallReason,
};

use crate::common::{charge_frontend_stall, end_cycle, FetchSlot, Frontend, Operand, Tag};
use crate::SimError;

/// The in-order, blocking-issue baseline simulator.
#[derive(Debug, Clone)]
pub struct SimpleIssue {
    config: MachineConfig,
}

impl SimpleIssue {
    /// Creates a baseline simulator with the given machine configuration.
    #[must_use]
    pub fn new(config: MachineConfig) -> Self {
        SimpleIssue { config }
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Runs `program` to completion from zeroed registers.
    ///
    /// # Errors
    /// Returns [`SimError::InstLimit`] if more than `limit` dynamic
    /// instructions issue (infinite-loop guard).
    pub fn run(&self, program: &Program, mem: Memory, limit: u64) -> Result<RunResult, SimError> {
        self.run_from(ArchState::new(), mem, program, limit)
    }

    /// Runs `program` from an explicit architectural state (used by
    /// restart tests).
    ///
    /// # Errors
    /// Returns [`SimError::InstLimit`] if more than `limit` dynamic
    /// instructions issue.
    pub fn run_from(
        &self,
        state: ArchState,
        mem: Memory,
        program: &Program,
        limit: u64,
    ) -> Result<RunResult, SimError> {
        self.run_observed(state, mem, program, limit, &mut NullObserver)
    }

    /// Runs `program` from an explicit architectural state, reporting
    /// every pipeline event to `obs`.
    ///
    /// # Errors
    /// Returns [`SimError::InstLimit`] if more than `limit` dynamic
    /// instructions issue.
    pub fn run_observed(
        &self,
        state: ArchState,
        mut mem: Memory,
        program: &Program,
        limit: u64,
        obs: &mut dyn PipelineObserver,
    ) -> Result<RunResult, SimError> {
        let cfg = &self.config;
        let mut state = state;
        let mut frontend = Frontend::new(state.pc);
        let mut reg_ready = [0u64; NUM_REGS];
        let mut fus = FuPool::new();
        let mut bus = SlotReservation::new(cfg.result_buses);
        let mut dcache = DCache::new(
            &cfg.dcache,
            cfg.fu_latency(FuClass::Memory),
            mem.len() as u64,
        );
        let mut stats = RunStats::default();
        let mut cycle: u64 = 0;
        let mut issued: u64 = 0;
        let mut last_write: u64 = 0;
        // (completion cycle, sequence number) of every in-flight operation;
        // the in-flight count doubles as the machine's "occupancy".
        let mut inflight: Vec<(u64, u64)> = Vec::new();

        loop {
            inflight.retain(|&(done_at, seq)| {
                if done_at <= cycle {
                    obs.complete(cycle, seq);
                    false
                } else {
                    true
                }
            });
            let occ = inflight.len() as u32;
            match frontend.peek(cycle, program) {
                FetchSlot::Halted => {
                    // The frontend is empty, but issued operations may
                    // still be in the pipeline: attribute the drain tail
                    // instead of dropping it, so that every cycle of the
                    // final count is accounted for.
                    if cycle >= last_write {
                        break;
                    }
                    stats.stall(StallReason::Drained);
                    obs.stall(cycle, StallReason::Drained);
                    end_cycle(obs, &mut stats, &mut cycle, occ);
                }
                slot @ (FetchSlot::Dead | FetchSlot::BranchParked) => {
                    if let FetchSlot::BranchParked = slot {
                        // Re-check the parked branch's condition register.
                        let pb = *frontend.pending_branch().expect("branch is parked");
                        let cond_reg = pb.inst.src1;
                        let ready = cond_reg.is_none_or(|r| reg_ready[r.index()] <= cycle);
                        if ready {
                            let v = cond_reg.map_or(0, |r| state.reg(r));
                            frontend.resolve_branch(cycle, &pb.inst, v, cfg, &mut stats);
                            obs.issue(cycle, issued);
                            issued += 1;
                            stats.issue_cycles += 1;
                            end_cycle(obs, &mut stats, &mut cycle, occ);
                            continue;
                        }
                    }
                    if let Some(reason) = charge_frontend_stall(&slot, &mut stats) {
                        obs.stall(cycle, reason);
                    }
                    end_cycle(obs, &mut stats, &mut cycle, occ);
                }
                FetchSlot::Inst(pc, inst) => {
                    if issued >= limit {
                        return Err(SimError::InstLimit { limit });
                    }
                    obs.fetch(cycle, pc);
                    if inst.is_branch() {
                        let cond_reg = inst.src1;
                        let ready = cond_reg.is_none_or(|r| reg_ready[r.index()] <= cycle);
                        if ready {
                            let v = cond_reg.map_or(0, |r| state.reg(r));
                            frontend.resolve_branch(cycle, &inst, v, cfg, &mut stats);
                            obs.issue(cycle, issued);
                            issued += 1;
                            stats.issue_cycles += 1;
                        } else {
                            frontend.park_branch(
                                pc,
                                inst,
                                Operand::Waiting(Tag {
                                    reg: cond_reg.expect("waiting branch reads a register"),
                                    instance: 0,
                                }),
                            );
                            stats.stall(StallReason::BranchWait);
                            obs.stall(cycle, StallReason::BranchWait);
                        }
                        end_cycle(obs, &mut stats, &mut cycle, occ);
                        continue;
                    }

                    // Nop: issues unconditionally, touches nothing.
                    if inst.fu_class().is_none() {
                        obs.issue(cycle, issued);
                        issued += 1;
                        stats.issue_cycles += 1;
                        frontend.advance();
                        end_cycle(obs, &mut stats, &mut cycle, occ);
                        continue;
                    }

                    // (i) source registers not busy
                    if inst.sources().any(|r| reg_ready[r.index()] > cycle) {
                        stats.stall(StallReason::OperandsNotReady);
                        obs.stall(cycle, StallReason::OperandsNotReady);
                        end_cycle(obs, &mut stats, &mut cycle, occ);
                        continue;
                    }
                    // (ii) destination register not busy (results return
                    // directly to the register file, so WAW must block)
                    if let Some(d) = inst.dst {
                        if reg_ready[d.index()] > cycle {
                            stats.stall(StallReason::DestinationBusy);
                            obs.stall(cycle, StallReason::DestinationBusy);
                            end_cycle(obs, &mut stats, &mut cycle, occ);
                            continue;
                        }
                    }
                    let fu = inst.fu_class().expect("non-branch has a unit");
                    // (iii) functional unit free
                    if !fus.can_accept(fu, cycle) {
                        stats.stall(StallReason::FuBusy);
                        obs.stall(cycle, StallReason::FuBusy);
                        end_cycle(obs, &mut stats, &mut cycle, occ);
                        continue;
                    }
                    // (iv) a load's port and latency come from the data
                    // cache (the perfect cache answers with the fixed
                    // memory-unit latency); everything else runs at its
                    // unit's fixed latency
                    let mut lat = cfg.fu_latency(fu);
                    let mut load_ea = None;
                    if inst.is_load() {
                        let s1 = inst.src1.map_or(0, |r| state.reg(r));
                        let ea = mem.canonicalize(semantics::effective_address(s1, inst.imm));
                        let Some(l) = dcache.plan(ea, cycle).latency() else {
                            // every outstanding-miss register busy: the
                            // blocking decode stage stalls in place
                            stats.stall(StallReason::MemStall);
                            obs.stall(cycle, StallReason::MemStall);
                            end_cycle(obs, &mut stats, &mut cycle, occ);
                            continue;
                        };
                        lat = l;
                        load_ea = Some(ea);
                    }
                    let needs_bus = inst.dst.is_some();
                    if needs_bus && !bus.available(cycle + lat) {
                        stats.stall(StallReason::BusConflict);
                        obs.stall(cycle, StallReason::BusConflict);
                        end_cycle(obs, &mut stats, &mut cycle, occ);
                        continue;
                    }

                    // Issue: timing
                    fus.accept(fu, cycle);
                    if needs_bus {
                        bus.try_reserve(cycle + lat);
                    }
                    if let Some(ea) = load_ea {
                        if dcache.is_finite() {
                            let plan = dcache.access(ea, cycle);
                            obs.mem_access(cycle, ea, plan.is_hit(), lat);
                        }
                    }
                    if let Some(d) = inst.dst {
                        reg_ready[d.index()] = cycle + lat;
                    }
                    last_write = last_write.max(cycle + lat);
                    obs.issue(cycle, issued);
                    obs.dispatch(cycle, issued, fu, cycle + lat);
                    inflight.push((cycle + lat, issued));

                    // Issue: function (in-order issue with ready operands
                    // makes eager architectural update safe)
                    let s1 = inst.src1.map_or(0, |r| state.reg(r));
                    let s2 = inst.src2.map_or(0, |r| state.reg(r));
                    if inst.is_load() {
                        let ea = semantics::effective_address(s1, inst.imm);
                        state.set_reg(inst.dst.expect("load writes a register"), mem.read(ea));
                    } else if inst.is_store() {
                        let ea = semantics::effective_address(s1, inst.imm);
                        mem.write(ea, s2);
                    } else if let Some(d) = inst.dst {
                        state.set_reg(d, semantics::alu_result(inst.opcode, s1, s2, inst.imm));
                    }

                    issued += 1;
                    stats.issue_cycles += 1;
                    frontend.advance();
                    end_cycle(obs, &mut stats, &mut cycle, occ);
                }
            }
        }

        state.pc = frontend.pc();
        debug_assert_eq!(cycle, cycle.max(last_write));
        let cs = dcache.stats();
        stats.dcache_accesses = cs.accesses;
        stats.dcache_hits = cs.hits;
        stats.dcache_misses = cs.misses;
        Ok(RunResult {
            cycles: cycle,
            instructions: issued,
            state,
            memory: mem,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruu_isa::{Asm, Reg};

    fn run(asm: Asm) -> RunResult {
        let p = asm.assemble().unwrap();
        SimpleIssue::new(MachineConfig::paper())
            .run(&p, Memory::new(1 << 12), 100_000)
            .unwrap()
    }

    #[test]
    fn independent_instructions_issue_every_cycle() {
        let mut a = Asm::new("t");
        a.a_imm(Reg::a(1), 1);
        a.a_imm(Reg::a(2), 2);
        a.a_imm(Reg::a(3), 3);
        a.halt();
        let r = run(a);
        assert_eq!(r.instructions, 3);
        // issue cycles 0,1,2; transfers complete at 1,2,3
        assert_eq!(r.cycles, 3);
        assert_eq!(r.state.reg(Reg::a(3)), 3);
    }

    #[test]
    fn raw_dependence_blocks_issue() {
        let mut a = Asm::new("t");
        a.a_imm(Reg::a(1), 5); // issues @0, A1 ready @1
        a.a_add(Reg::a(2), Reg::a(1), Reg::a(1)); // issues @1, A2 ready @3
        a.a_add(Reg::a(3), Reg::a(2), Reg::a(2)); // waits: issues @3, ready @5
        a.halt();
        let r = run(a);
        assert_eq!(r.state.reg(Reg::a(3)), 20);
        assert_eq!(r.cycles, 5);
        assert_eq!(r.stats.stalls(StallReason::OperandsNotReady), 1);
    }

    #[test]
    fn waw_blocks_issue() {
        let mut a = Asm::new("t");
        a.f_add(Reg::s(1), Reg::s(0), Reg::s(0)); // @0, S1 ready @6
        a.a_imm(Reg::a(1), 1); // @1, independent
        a.s_imm(Reg::s(1), 7); // WAW on S1: must wait until @6
        a.halt();
        let r = run(a);
        assert!(r.stats.stalls(StallReason::DestinationBusy) > 0);
        assert_eq!(r.state.reg(Reg::s(1)), 7);
    }

    #[test]
    fn result_bus_conflict_delays_issue() {
        // Two ops that would complete in the same cycle on one bus:
        // f.add (lat 6) @0 completes @6; s.add (lat 3) would complete @6
        // if issued @3.
        let mut a = Asm::new("t");
        a.f_add(Reg::s(1), Reg::s(0), Reg::s(0));
        a.a_imm(Reg::a(1), 1);
        a.a_imm(Reg::a(2), 2);
        a.s_add(Reg::s(2), Reg::s(3), Reg::s(4)); // would issue @3 → completes @6: conflict
        a.halt();
        let r = run(a);
        assert_eq!(r.stats.stalls(StallReason::BusConflict), 1);
    }

    #[test]
    fn taken_branch_costs_dead_cycles() {
        // A 2-iteration loop; measure that dead cycles appear.
        let mut a = Asm::new("t");
        let top = a.new_label();
        a.a_imm(Reg::a(0), 2);
        a.bind(top);
        a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
        a.br_an(top);
        a.halt();
        let r = run(a);
        assert_eq!(r.instructions, 5);
        assert_eq!(r.stats.branches, 2);
        assert_eq!(r.stats.taken_branches, 1);
        assert!(
            r.stats.stalls(StallReason::DeadCycle) >= MachineConfig::paper().branch_taken_penalty
        );
    }

    #[test]
    fn branch_waits_for_condition() {
        let mut a = Asm::new("t");
        let out = a.new_label();
        a.ld_a(Reg::a(0), Reg::a(1), 0); // A0 ready @11
        a.br_az(out); // must wait for the load
        a.nop();
        a.bind(out);
        a.halt();
        let r = run(a);
        assert!(r.stats.stalls(StallReason::BranchWait) >= 9);
    }

    #[test]
    fn memory_roundtrip_and_final_state() {
        let mut a = Asm::new("t");
        a.a_imm(Reg::a(1), 64);
        a.s_imm(Reg::s(1), 9);
        a.st_s(Reg::s(1), Reg::a(1), 0);
        a.ld_s(Reg::s(2), Reg::a(1), 0);
        a.halt();
        let r = run(a);
        assert_eq!(r.state.reg(Reg::s(2)), 9);
        assert_eq!(r.memory.read(64), 9);
    }

    #[test]
    fn matches_golden_interpreter() {
        // A small loop with loads, stores, floats and branches.
        let mut a = Asm::new("t");
        let top = a.new_label();
        a.a_imm(Reg::a(0), 8);
        a.a_imm(Reg::a(1), 128);
        a.s_imm(Reg::s(1), 3);
        a.bind(top);
        a.st_s(Reg::s(1), Reg::a(1), 0);
        a.ld_s(Reg::s(2), Reg::a(1), 0);
        a.s_add(Reg::s(1), Reg::s(1), Reg::s(2));
        a.a_add_imm(Reg::a(1), Reg::a(1), 1);
        a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
        a.br_an(top);
        a.halt();
        let p = a.assemble().unwrap();

        let golden = ruu_exec::Trace::capture(&p, Memory::new(1 << 12), 100_000).unwrap();
        let r = SimpleIssue::new(MachineConfig::paper())
            .run(&p, Memory::new(1 << 12), 100_000)
            .unwrap();
        assert_eq!(r.instructions, golden.len() as u64);
        assert_eq!(&r.state, golden.final_state());
        assert_eq!(&r.memory, golden.final_memory());
    }
}
