//! Machinery shared by the issue-mechanism simulators: register-instance
//! tags, reservation-station operands, the fetch frontend with branch dead
//! cycles, and per-cycle broadcast records.

use ruu_isa::{semantics, Inst, Opcode, Program, Reg};
use ruu_sim_core::{MachineConfig, PipelineObserver, RunStats, StallReason};

/// A register-instance tag: names one in-flight producer of a register.
///
/// In the RUU the tag is the register number appended with the LI counter
/// (paper §5.1: an 11-bit tag = 8-bit register number + 3-bit instance).
/// The associative mechanisms (Tomasulo/RSTU) use a unique producer id; we
/// represent both with the producer's dynamic sequence number plus the
/// register, which subsumes either encoding (equality is what matters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag {
    /// The destination register.
    pub reg: Reg,
    /// Instance discriminator: the LI counter value (RUU) or the
    /// producer's dynamic sequence number (associative mechanisms).
    pub instance: u64,
}

/// A reservation-station source-operand field (paper §3.1: ready bit, tag
/// sub-field, content sub-field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// The operand value is available.
    Ready(u64),
    /// Waiting for `Tag` to appear on a monitored bus.
    Waiting(Tag),
}

impl Operand {
    /// `true` once the value is available.
    #[must_use]
    pub fn is_ready(&self) -> bool {
        matches!(self, Operand::Ready(_))
    }

    /// The value.
    ///
    /// # Panics
    /// Panics if the operand is still waiting.
    #[must_use]
    pub fn value(&self) -> u64 {
        match self {
            Operand::Ready(v) => *v,
            Operand::Waiting(t) => panic!("operand still waiting on {t:?}"),
        }
    }

    /// Gates in a broadcast: if waiting on `tag`, becomes ready with
    /// `value`. Returns `true` if the operand matched.
    pub fn gate(&mut self, tag: Tag, value: u64) -> bool {
        if let Operand::Waiting(t) = self {
            if *t == tag {
                *self = Operand::Ready(value);
                return true;
            }
        }
        false
    }
}

/// The (tag, value) pairs broadcast during the current cycle, across all
/// monitored buses (result bus and, for the RUU, the RUU→register-file
/// bus). Waiting stations and a waiting branch consult this.
#[derive(Debug, Clone, Default)]
pub struct Broadcasts {
    items: Vec<(Tag, u64)>,
}

impl Broadcasts {
    /// Clears the record at the start of a cycle.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Records a broadcast.
    pub fn push(&mut self, tag: Tag, value: u64) {
        self.items.push((tag, value));
    }

    /// The value broadcast for `tag` this cycle, if any.
    #[must_use]
    pub fn lookup(&self, tag: Tag) -> Option<u64> {
        self.items.iter().find(|(t, _)| *t == tag).map(|(_, v)| *v)
    }
}

/// A conditional branch parked in the decode/issue stage waiting for its
/// condition register (paper §6.3: "The branch instruction has to wait in
/// the decode and issue unit until the value of A0 appears on a bus").
#[derive(Debug, Clone, Copy)]
pub struct PendingBranch {
    /// The branch instruction.
    pub inst: Inst,
    /// Its program counter.
    pub pc: u32,
    /// How the condition value will arrive.
    pub cond: Operand,
}

/// The instruction-fetch frontend: tracks the program counter, the dead
/// cycles after branches, and program termination.
///
/// All non-speculative mechanisms share this behaviour (paper §2.2): one
/// instruction may enter decode/issue per cycle; after a branch resolves,
/// fetch redirect costs `branch_taken_penalty` (or
/// `branch_untaken_penalty`) dead cycles.
#[derive(Debug, Clone)]
pub struct Frontend {
    pc: u32,
    next_fetch_cycle: u64,
    halted: bool,
    pending_branch: Option<PendingBranch>,
}

/// What the frontend offers the decode/issue stage this cycle.
#[derive(Debug, Clone, Copy)]
pub enum FetchSlot {
    /// A fetched instruction at this pc, ready to decode.
    Inst(u32, Inst),
    /// Dead cycle following a branch.
    Dead,
    /// A parked conditional branch is waiting for its condition.
    BranchParked,
    /// The program has halted; nothing more will be fetched.
    Halted,
}

impl Frontend {
    /// A frontend starting at `pc = start`.
    #[must_use]
    pub fn new(start: u32) -> Self {
        Frontend {
            pc: start,
            next_fetch_cycle: 0,
            halted: true, // overwritten below; placate clippy about field init
            pending_branch: None,
        }
        .with_halted(false)
    }

    fn with_halted(mut self, h: bool) -> Self {
        self.halted = h;
        self
    }

    /// Current program counter (next instruction to decode).
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// `true` once `Halt` has been decoded.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// The parked branch, if any.
    #[must_use]
    pub fn pending_branch(&self) -> Option<&PendingBranch> {
        self.pending_branch.as_ref()
    }

    /// Mutable access to the parked branch's condition operand (for bus
    /// gating).
    pub fn pending_branch_mut(&mut self) -> Option<&mut PendingBranch> {
        self.pending_branch.as_mut()
    }

    /// What decode/issue sees at `cycle`.
    #[must_use]
    pub fn peek(&self, cycle: u64, program: &Program) -> FetchSlot {
        if self.halted {
            return FetchSlot::Halted;
        }
        if self.pending_branch.is_some() {
            return FetchSlot::BranchParked;
        }
        if cycle < self.next_fetch_cycle {
            return FetchSlot::Dead;
        }
        match program.get(self.pc) {
            Some(i) if i.is_halt() => FetchSlot::Halted,
            Some(i) => FetchSlot::Inst(self.pc, *i),
            None => FetchSlot::Halted, // running off the end halts; the
                                       // golden interpreter flags it as an
                                       // error so equivalence tests catch it
        }
    }

    /// Notes that decode consumed the instruction at the current pc
    /// (non-branch): advances to the next sequential instruction.
    pub fn advance(&mut self) {
        self.pc += 1;
    }

    /// Marks the program as halted (decode saw `Halt`).
    pub fn set_halted(&mut self) {
        self.halted = true;
    }

    /// Parks a conditional branch whose condition is not yet available.
    pub fn park_branch(&mut self, pc: u32, inst: Inst, cond: Operand) {
        debug_assert!(self.pending_branch.is_none(), "branch already parked");
        self.pending_branch = Some(PendingBranch { inst, pc, cond });
    }

    /// Resolves a branch at `cycle`: redirects the pc and charges the dead
    /// cycles. Clears any parked branch. Returns whether it was taken.
    pub fn resolve_branch(
        &mut self,
        cycle: u64,
        inst: &Inst,
        cond_value: u64,
        config: &MachineConfig,
        stats: &mut RunStats,
    ) -> bool {
        let taken = if inst.opcode == Opcode::Jump {
            true
        } else {
            semantics::branch_taken(inst.opcode, cond_value)
        };
        stats.branches += 1;
        let penalty = if taken {
            stats.taken_branches += 1;
            self.pc = inst.target.expect("branch has a target");
            config.branch_taken_penalty
        } else {
            self.pc += 1;
            config.branch_untaken_penalty
        };
        self.next_fetch_cycle = cycle + 1 + penalty;
        self.pending_branch = None;
        taken
    }
}

/// Observes the end of one simulated cycle and advances the clock: the
/// occupancy statistics and the observer's `cycle_end` hook fire exactly
/// once per simulated cycle (the in-order machines report their in-flight
/// count as occupancy).
pub(crate) fn end_cycle(
    obs: &mut dyn PipelineObserver,
    stats: &mut RunStats,
    cycle: &mut u64,
    occ: u32,
) {
    stats.observe_occupancy(occ);
    obs.cycle_end(*cycle, occ);
    *cycle += 1;
}

/// Charges a stall to `stats` for the non-issuing cycle described by
/// `slot` (dead cycle vs parked branch), returning the reason charged so
/// callers can mirror it to a pipeline observer.
pub fn charge_frontend_stall(slot: &FetchSlot, stats: &mut RunStats) -> Option<StallReason> {
    let reason = match slot {
        FetchSlot::Dead => StallReason::DeadCycle,
        FetchSlot::BranchParked => StallReason::BranchWait,
        FetchSlot::Halted => StallReason::Drained,
        FetchSlot::Inst(..) => return None,
    };
    stats.stall(reason);
    Some(reason)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruu_isa::Asm;

    fn prog() -> Program {
        let mut a = Asm::new("t");
        let top = a.new_label();
        a.bind(top);
        a.a_imm(Reg::a(0), 0);
        a.br_an(top);
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn operand_gating() {
        let t = Tag {
            reg: Reg::s(1),
            instance: 3,
        };
        let mut op = Operand::Waiting(t);
        assert!(!op.is_ready());
        assert!(!op.gate(
            Tag {
                reg: Reg::s(1),
                instance: 4
            },
            9
        ));
        assert!(op.gate(t, 9));
        assert_eq!(op.value(), 9);
        // Ready operands ignore further broadcasts.
        assert!(!op.gate(t, 10));
        assert_eq!(op.value(), 9);
    }

    #[test]
    fn broadcasts_lookup() {
        let mut b = Broadcasts::default();
        let t = Tag {
            reg: Reg::a(2),
            instance: 1,
        };
        assert_eq!(b.lookup(t), None);
        b.push(t, 5);
        assert_eq!(b.lookup(t), Some(5));
        b.clear();
        assert_eq!(b.lookup(t), None);
    }

    #[test]
    fn frontend_sequences_and_halts() {
        let p = prog();
        let mut f = Frontend::new(0);
        let FetchSlot::Inst(pc, i) = f.peek(0, &p) else {
            panic!("expected an instruction");
        };
        assert_eq!(pc, 0);
        assert_eq!(i.opcode, Opcode::AImm);
        f.advance();
        // Now at the branch
        let FetchSlot::Inst(_, br) = f.peek(1, &p) else {
            panic!("expected branch");
        };
        assert!(br.is_branch());
    }

    #[test]
    fn branch_resolution_charges_dead_cycles() {
        let p = prog();
        let cfg = MachineConfig::paper();
        let mut stats = RunStats::default();
        let mut f = Frontend::new(1);
        let br = p[1];
        // not taken (A0 == 0 means BrAN falls through)
        let taken = f.resolve_branch(10, &br, 0, &cfg, &mut stats);
        assert!(!taken);
        assert_eq!(f.pc(), 2);
        // dead until 10 + 1 + untaken penalty
        for c in 11..11 + cfg.branch_untaken_penalty {
            assert!(matches!(f.peek(c, &p), FetchSlot::Dead));
        }
        assert!(matches!(
            f.peek(11 + cfg.branch_untaken_penalty, &p),
            FetchSlot::Halted // pc 2 is Halt
        ));
        assert_eq!(stats.branches, 1);
        assert_eq!(stats.taken_branches, 0);
    }

    #[test]
    fn taken_branch_redirects() {
        let p = prog();
        let cfg = MachineConfig::paper();
        let mut stats = RunStats::default();
        let mut f = Frontend::new(1);
        let br = p[1];
        let taken = f.resolve_branch(5, &br, 1, &cfg, &mut stats);
        assert!(taken);
        assert_eq!(f.pc(), 0);
        assert!(matches!(f.peek(6, &p), FetchSlot::Dead));
        assert!(matches!(
            f.peek(6 + cfg.branch_taken_penalty, &p),
            FetchSlot::Inst(0, _)
        ));
    }

    #[test]
    fn parked_branch_blocks_fetch() {
        let p = prog();
        let mut f = Frontend::new(1);
        let br = p[1];
        f.park_branch(
            1,
            br,
            Operand::Waiting(Tag {
                reg: Reg::a(0),
                instance: 0,
            }),
        );
        assert!(matches!(f.peek(3, &p), FetchSlot::BranchParked));
    }
}
