//! A register-transfer-level model of the **Tag Unit** (paper §3.2.1,
//! Figure 3).
//!
//! The Tag Unit consolidates tags from all *currently active* destination
//! registers into one small structure, so tag-matching hardware is paid
//! for only per in-flight instruction rather than per architectural
//! register (144 in this machine). Each entry holds:
//!
//! | Tag number | Register number | Tag free | Latest copy |
//! |---|---|---|---|
//!
//! This model is didactic — the timing simulators in
//! [`crate::tagged`] implement the same bookkeeping inline — and exists to
//! reproduce the paper's Figure 3 walkthrough exactly (see the
//! `figure3` bench target and `examples/tag_unit_walkthrough.rs`).

use std::fmt;

use ruu_isa::Reg;

/// One Tag Unit entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuEntry {
    /// The register this tag names, or `None` if the tag is free
    /// (rendered `NIL` as in the paper's Figure 3).
    pub register: Option<Reg>,
    /// `true` if the tag is available for use by the issue logic.
    pub free: bool,
    /// `true` if this tag is the latest tag for its register (the holder
    /// has the *key* to *unlock* — clear the busy bit of — the register).
    pub latest: bool,
}

impl TuEntry {
    fn free_entry() -> Self {
        TuEntry {
            register: None,
            free: true,
            latest: true,
        }
    }
}

/// The result of a tag arriving back at the Tag Unit with its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagRetirement {
    /// Which register the value should be forwarded to.
    pub register: Reg,
    /// Whether this tag was the latest copy — only then may the register's
    /// busy bit be cleared ("unlocked").
    pub unlock: bool,
}

/// The Tag Unit: a pool of tags for currently active destination
/// registers.
///
/// # Example (the paper's Figure 3)
///
/// ```
/// use ruu_isa::Reg;
/// use ruu_issue::TagUnitModel;
///
/// let mut tu = TagUnitModel::figure3();
/// // Issue I1: S4 <- S0 + S7 (S0 busy, S7 free).
/// let dst = tu.acquire_dest(Reg::s(4)).expect("a tag is free");
/// assert_eq!(dst, 3);                              // gets free tag 3
/// assert_eq!(tu.source_tag(Reg::s(0)), Some(2));   // latest tag for S0
/// assert_eq!(tu.source_tag(Reg::s(7)), None);      // S7 not busy
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TagUnitModel {
    entries: Vec<TuEntry>,
}

impl TagUnitModel {
    /// A Tag Unit with `n` tags, all free.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "the tag unit needs at least one tag");
        TagUnitModel {
            entries: vec![TuEntry::free_entry(); n],
        }
    }

    /// The exact initial state of the paper's Figure 3: six tags, with
    /// tag 1 = A0 (latest), tag 2 = S0 (latest), tag 3 free, tag 4 = S4
    /// (latest), tag 5 = S0 (not latest), tag 6 = S3 (latest).
    #[must_use]
    pub fn figure3() -> Self {
        let e = |reg: Reg, latest: bool| TuEntry {
            register: Some(reg),
            free: false,
            latest,
        };
        TagUnitModel {
            entries: vec![
                e(Reg::a(0), true),
                e(Reg::s(0), true),
                TuEntry::free_entry(),
                e(Reg::s(4), true),
                e(Reg::s(0), false),
                e(Reg::s(3), true),
            ],
        }
    }

    /// Number of tags.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the unit holds no tags (never: size is validated > 0).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The entry for tag number `tag` (1-based, as in the paper).
    ///
    /// # Panics
    /// Panics if `tag` is out of range.
    #[must_use]
    pub fn entry(&self, tag: usize) -> TuEntry {
        self.entries[tag - 1]
    }

    /// `true` if `reg` is busy, i.e. some live tag names it. (A register
    /// "must be free if it does not have an entry in the TU".)
    #[must_use]
    pub fn is_busy(&self, reg: Reg) -> bool {
        self.entries
            .iter()
            .any(|e| !e.free && e.register == Some(reg))
    }

    /// The latest tag (1-based) for a busy source register, or `None` if
    /// the register is not busy (its value can be read from the register
    /// file).
    #[must_use]
    pub fn source_tag(&self, reg: Reg) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| !e.free && e.latest && e.register == Some(reg))
            .map(|i| i + 1)
    }

    /// Acquires a new tag (1-based) for destination register `reg`. If
    /// the register already has a latest tag, that tag is informed it "may
    /// update the register but may not unlock it" (its latest-copy bit
    /// clears). Returns `None` — issue blocks — if the unit is full.
    pub fn acquire_dest(&mut self, reg: Reg) -> Option<usize> {
        let slot = self.entries.iter().position(|e| e.free)?;
        if let Some(old) = self.source_tag(reg) {
            self.entries[old - 1].latest = false;
        }
        self.entries[slot] = TuEntry {
            register: Some(reg),
            free: false,
            latest: true,
        };
        Some(slot + 1)
    }

    /// A result bearing `tag` (1-based) arrived at the Tag Unit: the tag
    /// is released and the unit says where to forward the value and
    /// whether the register may be unlocked.
    ///
    /// # Panics
    /// Panics if `tag` is free or out of range (a protocol violation).
    pub fn retire(&mut self, tag: usize) -> TagRetirement {
        let e = self.entries[tag - 1];
        assert!(!e.free, "tag {tag} retired while free");
        let register = e.register.expect("busy tag names a register");
        self.entries[tag - 1] = TuEntry::free_entry();
        TagRetirement {
            register,
            unlock: e.latest,
        }
    }

    /// Number of free tags.
    #[must_use]
    pub fn free_tags(&self) -> usize {
        self.entries.iter().filter(|e| e.free).count()
    }
}

impl fmt::Display for TagUnitModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "| Tag | Register | Tag Free | Latest Copy |")?;
        writeln!(f, "|-----|----------|----------|-------------|")?;
        for (i, e) in self.entries.iter().enumerate() {
            let reg = e
                .register
                .map_or_else(|| "NIL".to_string(), |r| r.to_string());
            writeln!(
                f,
                "| {:>3} | {:>8} | {:>8} | {:>11} |",
                i + 1,
                reg,
                if e.free { "Y" } else { "N" },
                if e.latest { "Y" } else { "N" },
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The complete Figure 3 walkthrough from paper §3.2.1.1.
    #[test]
    fn figure3_walkthrough() {
        let mut tu = TagUnitModel::figure3();

        // Initial state sanity.
        assert!(tu.is_busy(Reg::a(0)));
        assert!(tu.is_busy(Reg::s(0)));
        assert!(tu.is_busy(Reg::s(4)));
        assert!(!tu.is_busy(Reg::s(7)), "S7 has no entry, so it is free");
        assert_eq!(tu.free_tags(), 1);

        // Decode I1: S4 <- S0 + S7.
        // "it attempts to get a new tag for the destination register S4
        //  from the TU and obtains tag 3"
        let dst = tu.acquire_dest(Reg::s(4)).unwrap();
        assert_eq!(dst, 3);
        // "the old tag (4) is updated to indicate that it no longer
        //  represents the latest copy"
        assert!(!tu.entry(4).latest);
        assert!(!tu.entry(4).free);
        // "the latest tag for S0 (tag 2) must be obtained from the TU"
        assert_eq!(tu.source_tag(Reg::s(0)), Some(2));
        // S7's contents are read from the register file directly.
        assert_eq!(tu.source_tag(Reg::s(7)), None);

        // I1 completes: result forwarded to all RS with tag 3 and to the
        // TU; tag 3 is the latest tag for S4, so S4's busy bit resets.
        let ret = tu.retire(3);
        assert_eq!(ret.register, Reg::s(4));
        assert!(ret.unlock);
        // "Tag 3 is then marked free and is available for reuse"
        assert!(tu.entry(3).free);
    }

    #[test]
    fn second_instance_does_not_unlock() {
        let mut tu = TagUnitModel::new(4);
        let t1 = tu.acquire_dest(Reg::s(1)).unwrap();
        let t2 = tu.acquire_dest(Reg::s(1)).unwrap();
        assert_ne!(t1, t2);
        assert_eq!(tu.source_tag(Reg::s(1)), Some(t2));
        // Old instance completes first: may update but not unlock.
        let r1 = tu.retire(t1);
        assert!(!r1.unlock);
        assert!(tu.is_busy(Reg::s(1)));
        // Latest completes: unlock.
        let r2 = tu.retire(t2);
        assert!(r2.unlock);
        assert!(!tu.is_busy(Reg::s(1)));
    }

    #[test]
    fn blocks_when_full() {
        let mut tu = TagUnitModel::new(2);
        assert!(tu.acquire_dest(Reg::a(1)).is_some());
        assert!(tu.acquire_dest(Reg::a(2)).is_some());
        assert_eq!(tu.acquire_dest(Reg::a(3)), None);
        tu.retire(1);
        assert!(tu.acquire_dest(Reg::a(3)).is_some());
    }

    #[test]
    fn display_renders_nil_for_free_tags() {
        let tu = TagUnitModel::figure3();
        let s = tu.to_string();
        assert!(s.contains("NIL"));
        assert!(s.contains("S4"));
    }

    #[test]
    #[should_panic(expected = "retired while free")]
    fn retiring_free_tag_panics() {
        let mut tu = TagUnitModel::new(2);
        tu.retire(1);
    }
}
