//! # ruu-issue — the instruction-issue mechanisms of the RUU paper
//!
//! Cycle-level, execution-driven simulators of every issue mechanism the
//! paper discusses:
//!
//! | Mechanism | Paper | Type |
//! |---|---|---|
//! | Simple in-order, blocking issue | §2.2, Table 1 | [`SimpleIssue`] |
//!
//! All simulators share the [`ruu_sim_core::MachineConfig`] machine model
//! and compute real operand values in their reservation stations
//! (execution-driven), so each one's final architectural state is checked
//! against the golden interpreter.

use std::fmt;

pub mod common;
pub mod mechanism;
pub mod predict;
pub mod reorder;
pub mod ruu;
pub mod simple;
pub mod simulator;
pub mod spec_ruu;
pub mod tag_unit;
pub mod tagged;

pub use common::{Broadcasts, FetchSlot, Frontend, Operand, PendingBranch, Tag};
pub use mechanism::Mechanism;
pub use predict::{
    AlwaysTaken, Bimodal, Btfn, Gshare, LocalPag, PredictError, Predictor, PredictorConfig,
    TageLite, TwoBit,
};
pub use reorder::{InOrderPrecise, PreciseScheme};
pub use ruu::{Bypass, CycleRecord, CycleTrace, InterruptFrame, RunOutcome, Ruu};
pub use simple::SimpleIssue;
pub use simulator::IssueSimulator;
pub use spec_ruu::{SpecRunResult, SpecRuu, SpecStats};
pub use tag_unit::{TagRetirement, TagUnitModel, TuEntry};
pub use tagged::{TaggedSim, WindowKind};

/// Errors from the timing simulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// More than `limit` dynamic instructions issued (infinite-loop
    /// guard).
    InstLimit {
        /// The limit that was exceeded.
        limit: u64,
    },
    /// The simulator made no forward progress for an implausible number of
    /// cycles (internal deadlock guard; indicates a simulator bug).
    Deadlock {
        /// Cycle at which progress stopped.
        cycle: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InstLimit { limit } => {
                write!(f, "dynamic instruction limit {limit} exceeded")
            }
            SimError::Deadlock { cycle } => {
                write!(f, "no forward progress near cycle {cycle} (simulator bug)")
            }
        }
    }
}

impl std::error::Error for SimError {}
