//! A uniform front-end over every issue mechanism, for sweeps and
//! comparisons.

use std::fmt;

use ruu_exec::Memory;
use ruu_isa::Program;
use ruu_sim_core::{MachineConfig, RunResult};

use crate::predict::PredictorConfig;
use crate::reorder::{InOrderPrecise, PreciseScheme};
use crate::ruu::{Bypass, Ruu};
use crate::simple::SimpleIssue;
use crate::simulator::IssueSimulator;
use crate::spec_ruu::SpecRuu;
use crate::tagged::{TaggedSim, WindowKind};
use crate::SimError;

/// Any of the paper's issue mechanisms, with its sizing parameters.
///
/// # Example
///
/// ```
/// use ruu_exec::Memory;
/// use ruu_isa::{Asm, Reg};
/// use ruu_issue::{Bypass, Mechanism};
/// use ruu_sim_core::MachineConfig;
///
/// let mut a = Asm::new("t");
/// a.a_imm(Reg::a(1), 3);
/// a.a_add(Reg::a(2), Reg::a(1), Reg::a(1));
/// a.halt();
/// let p = a.assemble()?;
///
/// let m = Mechanism::Ruu { entries: 10, bypass: Bypass::Full };
/// let r = m.run(&MachineConfig::paper(), &p, Memory::new(1 << 10), 10_000)?;
/// assert_eq!(r.state.reg(Reg::a(2)), 6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// In-order blocking issue (paper Table 1 baseline).
    Simple,
    /// Classic Tomasulo: distributed reservation stations, per-register
    /// tags (paper §3.1).
    Tomasulo {
        /// Reservation stations per functional unit.
        rs_per_fu: usize,
    },
    /// Tag Unit + distributed reservation stations (paper §3.2.1).
    TagUnitDistributed {
        /// Reservation stations per functional unit.
        rs_per_fu: usize,
        /// Tag Unit capacity.
        tags: usize,
    },
    /// Tag Unit + merged reservation-station pool (paper §3.2.2).
    RsPool {
        /// Stations in the merged pool.
        rs: usize,
        /// Tag Unit capacity.
        tags: usize,
    },
    /// The RSTU (paper §3.2.3, Tables 2–3).
    Rstu {
        /// RSTU entries.
        entries: usize,
    },
    /// The RUU (paper §5–6, Tables 4–6).
    Ruu {
        /// RUU entries.
        entries: usize,
        /// Bypass policy.
        bypass: Bypass,
    },
    /// A Smith & Pleszkun in-order-issue precise machine (paper §4).
    InOrderPrecise {
        /// Precision scheme.
        scheme: PreciseScheme,
        /// Buffer entries.
        entries: usize,
    },
    /// The speculative RUU (paper §7): RUU plus branch prediction and
    /// conditional execution.
    SpecRuu {
        /// RUU entries.
        entries: usize,
        /// Bypass policy.
        bypass: Bypass,
        /// Branch predictor.
        predictor: PredictorConfig,
    },
}

impl Mechanism {
    /// Builds a ready-to-run simulator for this mechanism — the factory
    /// behind every uniform driver (sweep engines, the CLI, tests).
    ///
    /// The returned trait object is `Send`, so it can be handed to a
    /// worker thread; construction is configuration-only and cheap.
    #[must_use]
    pub fn build(&self, config: &MachineConfig) -> Box<dyn IssueSimulator> {
        match *self {
            Mechanism::Simple => Box::new(SimpleIssue::new(config.clone())),
            Mechanism::Tomasulo { rs_per_fu } => Box::new(TaggedSim::new(
                config.clone(),
                WindowKind::Distributed { rs_per_fu },
            )),
            Mechanism::TagUnitDistributed { rs_per_fu, tags } => Box::new(TaggedSim::new(
                config.clone(),
                WindowKind::TagUnitDistributed { rs_per_fu, tags },
            )),
            Mechanism::RsPool { rs, tags } => Box::new(TaggedSim::new(
                config.clone(),
                WindowKind::Pooled { rs, tags },
            )),
            Mechanism::Rstu { entries } => Box::new(TaggedSim::new(
                config.clone(),
                WindowKind::Merged { entries },
            )),
            Mechanism::Ruu { entries, bypass } => {
                Box::new(Ruu::new(config.clone(), entries, bypass))
            }
            Mechanism::InOrderPrecise { scheme, entries } => {
                Box::new(InOrderPrecise::new(config.clone(), scheme, entries))
            }
            Mechanism::SpecRuu {
                entries,
                bypass,
                predictor,
            } => Box::new(SpecRuu::with_predictor(
                config.clone(),
                entries,
                bypass,
                predictor,
            )),
        }
    }

    /// Runs `program` under this mechanism — a convenience wrapper over
    /// [`Mechanism::build`] for one-shot runs.
    ///
    /// # Errors
    /// Propagates the simulator's [`SimError`].
    pub fn run(
        &self,
        config: &MachineConfig,
        program: &Program,
        mem: Memory,
        limit: u64,
    ) -> Result<RunResult, SimError> {
        self.build(config).run(program, mem, limit)
    }

    /// The mechanism's primary window-sizing parameter, when it has one
    /// (RSTU/RUU/reorder-buffer entries, RS-pool stations). Sweep
    /// reports key rows by this value.
    #[must_use]
    pub fn window_entries(&self) -> Option<usize> {
        match *self {
            Mechanism::Simple
            | Mechanism::Tomasulo { .. }
            | Mechanism::TagUnitDistributed { .. } => None,
            Mechanism::RsPool { rs, .. } => Some(rs),
            Mechanism::Rstu { entries }
            | Mechanism::Ruu { entries, .. }
            | Mechanism::InOrderPrecise { entries, .. }
            | Mechanism::SpecRuu { entries, .. } => Some(entries),
        }
    }

    /// Whether this mechanism implements precise interrupts.
    #[must_use]
    pub fn is_precise(&self) -> bool {
        matches!(
            self,
            Mechanism::Ruu { .. } | Mechanism::InOrderPrecise { .. } | Mechanism::SpecRuu { .. }
        )
    }

    /// The branch predictor this mechanism speculates with, when it
    /// speculates at all.
    #[must_use]
    pub fn predictor(&self) -> Option<PredictorConfig> {
        match *self {
            Mechanism::SpecRuu { predictor, .. } => Some(predictor),
            _ => None,
        }
    }
}

impl fmt::Display for Mechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Mechanism::Simple => write!(f, "simple"),
            Mechanism::Tomasulo { rs_per_fu } => write!(f, "tomasulo(rs/fu={rs_per_fu})"),
            Mechanism::TagUnitDistributed { rs_per_fu, tags } => {
                write!(f, "tag-unit(rs/fu={rs_per_fu},tags={tags})")
            }
            Mechanism::RsPool { rs, tags } => write!(f, "rs-pool(rs={rs},tags={tags})"),
            Mechanism::Rstu { entries } => write!(f, "rstu({entries})"),
            Mechanism::Ruu { entries, bypass } => {
                let b = match bypass {
                    Bypass::Full => "bypass",
                    Bypass::None => "no-bypass",
                    Bypass::LimitedA => "limited-bypass",
                };
                write!(f, "ruu({entries},{b})")
            }
            Mechanism::InOrderPrecise { scheme, entries } => {
                write!(f, "{}({entries})", scheme.name())
            }
            Mechanism::SpecRuu {
                entries,
                bypass,
                predictor,
            } => {
                let b = match bypass {
                    Bypass::Full => "bypass",
                    Bypass::None => "no-bypass",
                    Bypass::LimitedA => "limited-bypass",
                };
                write!(f, "spec-ruu({entries},{b},{predictor})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruu_isa::{Asm, Reg};

    fn all() -> Vec<Mechanism> {
        vec![
            Mechanism::Simple,
            Mechanism::Tomasulo { rs_per_fu: 2 },
            Mechanism::TagUnitDistributed {
                rs_per_fu: 2,
                tags: 8,
            },
            Mechanism::RsPool { rs: 6, tags: 8 },
            Mechanism::Rstu { entries: 8 },
            Mechanism::Ruu {
                entries: 8,
                bypass: Bypass::Full,
            },
            Mechanism::Ruu {
                entries: 8,
                bypass: Bypass::None,
            },
            Mechanism::Ruu {
                entries: 8,
                bypass: Bypass::LimitedA,
            },
            Mechanism::InOrderPrecise {
                scheme: PreciseScheme::ReorderBuffer,
                entries: 8,
            },
            Mechanism::InOrderPrecise {
                scheme: PreciseScheme::FutureFile,
                entries: 8,
            },
            Mechanism::SpecRuu {
                entries: 8,
                bypass: Bypass::Full,
                predictor: PredictorConfig::default(),
            },
            Mechanism::SpecRuu {
                entries: 8,
                bypass: Bypass::Full,
                predictor: PredictorConfig::Gshare { entries: 1024 },
            },
        ]
    }

    #[test]
    fn every_mechanism_agrees_with_golden() {
        let mut a = Asm::new("t");
        let top = a.new_label();
        a.a_imm(Reg::a(0), 5);
        a.a_imm(Reg::a(1), 50);
        a.bind(top);
        a.ld_s(Reg::s(1), Reg::a(1), 0);
        a.f_add(Reg::s(2), Reg::s(1), Reg::s(2));
        a.st_s(Reg::s(2), Reg::a(1), 0);
        a.a_add_imm(Reg::a(1), Reg::a(1), 1);
        a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
        a.br_an(top);
        a.halt();
        let p = a.assemble().unwrap();
        let g = ruu_exec::Trace::capture(&p, Memory::new(1 << 10), 100_000).unwrap();
        for m in all() {
            let r = m
                .run(&MachineConfig::paper(), &p, Memory::new(1 << 10), 100_000)
                .unwrap();
            assert_eq!(&r.state, g.final_state(), "{m}");
            assert_eq!(&r.memory, g.final_memory(), "{m}");
            assert_eq!(r.instructions, g.len() as u64, "{m}");
        }
    }

    #[test]
    fn display_names_are_distinct() {
        let names: Vec<String> = all().iter().map(ToString::to_string).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn precision_classification() {
        assert!(Mechanism::Ruu {
            entries: 4,
            bypass: Bypass::Full
        }
        .is_precise());
        assert!(!Mechanism::Rstu { entries: 4 }.is_precise());
        assert!(!Mechanism::Simple.is_precise());
    }
}
