//! Branch predictors for the §7 extension — now a compatibility shim.
//!
//! The predictors moved to the standalone [`ruu_predict`] crate (the
//! trait, the classic static/counter predictors, the zoo, the BTB and
//! the CBP replay harness). Everything this module used to define is
//! re-exported here so existing `ruu_issue::predict::…` paths keep
//! compiling.

pub use ruu_predict::{
    AlwaysTaken, Bimodal, Btb, Btfn, Gshare, LocalPag, PredictError, Predictor, PredictorConfig,
    TageLite, TwoBit,
};
