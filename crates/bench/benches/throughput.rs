//! Host simulation throughput (criterion): how fast each cycle-level
//! simulator executes guest instructions on this machine. Not a paper
//! experiment — an engineering benchmark for the simulators themselves.
//!
//! Run with `cargo bench -p ruu-bench --bench throughput`.

use criterion::{criterion_group, criterion_main, Criterion};
use ruu_issue::{Bypass, Mechanism};
use ruu_sim_core::MachineConfig;
use ruu_workloads::livermore;

fn sim_throughput(c: &mut Criterion) {
    let cfg = MachineConfig::paper();
    let w = livermore::lll7();
    let mut group = c.benchmark_group("simulate-lll7");
    for (name, m) in [
        ("simple", Mechanism::Simple),
        ("rstu-15", Mechanism::Rstu { entries: 15 }),
        (
            "ruu-15-bypass",
            Mechanism::Ruu {
                entries: 15,
                bypass: Bypass::Full,
            },
        ),
        (
            "ruu-15-nobypass",
            Mechanism::Ruu {
                entries: 15,
                bypass: Bypass::None,
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                m.run(&cfg, &w.program, w.memory.clone(), w.inst_limit)
                    .expect("kernel runs")
            })
        });
    }
    group.finish();
}

fn golden_throughput(c: &mut Criterion) {
    let w = livermore::lll7();
    c.bench_function("golden-interpreter-lll7", |b| {
        b.iter(|| {
            ruu_exec::Trace::capture(&w.program, w.memory.clone(), w.inst_limit)
                .expect("kernel runs")
        })
    });
}

criterion_group!(benches, sim_throughput, golden_throughput);
criterion_main!(benches);
