//! Regenerates **Table 6** of the paper: the RUU with **limited bypass**
//! — a future file shadowing the 8 A registers, no other bypass.
//!
//! Run with `cargo bench -p ruu-bench --bench table6`.

use ruu_bench::{harness, paper, report};
use ruu_issue::{Bypass, Mechanism};
use ruu_sim_core::MachineConfig;

fn main() {
    let cfg = MachineConfig::paper();
    let entries: Vec<usize> = paper::TABLE6.iter().map(|&(e, ..)| e).collect();
    let (pts, stats) = harness::try_sweep_report(&cfg, &entries, |entries| Mechanism::Ruu {
        entries,
        bypass: Bypass::LimitedA,
    })
    .unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    print!(
        "{}",
        report::format_sweep(
            "Table 6 — RUU with limited bypass (A-register future file)",
            &pts,
            &paper::TABLE6
        )
    );
    println!();
    println!("{}", report::format_engine_stats(&stats));
}
