//! Regenerates **Table 5** of the paper: the RUU **without bypass logic**
//! (reservation stations monitor the result bus and the RUU→register-file
//! bus only).
//!
//! Run with `cargo bench -p ruu-bench --bench table5`.

use ruu_bench::{paper, report, sweep};
use ruu_issue::{Bypass, Mechanism};
use ruu_sim_core::MachineConfig;

fn main() {
    let cfg = MachineConfig::paper();
    let entries: Vec<usize> = paper::TABLE5.iter().map(|&(e, ..)| e).collect();
    let pts = sweep(&cfg, &entries, |entries| Mechanism::Ruu {
        entries,
        bypass: Bypass::None,
    });
    print!(
        "{}",
        report::format_sweep(
            "Table 5 — RUU without bypass logic",
            &pts,
            &paper::TABLE5
        )
    );
}
