//! Regenerates **Table 5** of the paper: the RUU **without bypass logic**
//! (reservation stations monitor the result bus and the RUU→register-file
//! bus only).
//!
//! Run with `cargo bench -p ruu-bench --bench table5`.

use ruu_bench::{harness, paper, report};
use ruu_issue::{Bypass, Mechanism};
use ruu_sim_core::MachineConfig;

fn main() {
    let cfg = MachineConfig::paper();
    let entries: Vec<usize> = paper::TABLE5.iter().map(|&(e, ..)| e).collect();
    let (pts, stats) = harness::try_sweep_report(&cfg, &entries, |entries| Mechanism::Ruu {
        entries,
        bypass: Bypass::None,
    })
    .unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    print!(
        "{}",
        report::format_sweep("Table 5 — RUU without bypass logic", &pts, &paper::TABLE5)
    );
    println!();
    println!("{}", report::format_engine_stats(&stats));
}
