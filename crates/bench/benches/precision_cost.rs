//! Extension A6: the price of precision. The RSTU commits out of order
//! (imprecise); the RUU is the same hardware constrained to in-order
//! commit (precise). Their gap, per window size and bypass policy, is
//! what precise interrupts cost on this machine.
//!
//! Run with `cargo bench -p ruu-bench --bench precision_cost`.

use ruu_bench::sweep;
use ruu_issue::{Bypass, Mechanism};
use ruu_sim_core::MachineConfig;

fn main() {
    let cfg = MachineConfig::paper();
    let sizes = [4usize, 8, 10, 15, 20, 30];
    let rstu = sweep(&cfg, &sizes, |entries| Mechanism::Rstu { entries });
    let ruu = sweep(&cfg, &sizes, |entries| Mechanism::Ruu {
        entries,
        bypass: Bypass::Full,
    });
    let ruu_none = sweep(&cfg, &sizes, |entries| Mechanism::Ruu {
        entries,
        bypass: Bypass::None,
    });

    println!("### Extension A6 — the cost of precise interrupts");
    println!("| entries | RSTU speedup | RUU (bypass) | precision cost | RUU (no bypass) |");
    println!("|---:|---:|---:|---:|---:|");
    for i in 0..sizes.len() {
        let cost = 100.0 * (1.0 - ruu[i].speedup / rstu[i].speedup);
        println!(
            "| {} | {:.3} | {:.3} | {:.1}% | {:.3} |",
            sizes[i], rstu[i].speedup, ruu[i].speedup, cost, ruu_none[i].speedup
        );
    }
    println!();
    println!(
        "Expectation (paper §6.1): with bypass logic and a reasonable window, the \
         RUU approaches the unconstrained RSTU — precision is nearly free; without \
         bypass the aggravated dependencies cost much more."
    );
}
