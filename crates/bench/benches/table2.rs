//! Regenerates **Table 2** of the paper: relative speedup and issue rate
//! of the RSTU (one dispatch path) vs. the number of RSTU entries.
//!
//! Run with `cargo bench -p ruu-bench --bench table2`.

use ruu_bench::{harness, paper, report};
use ruu_issue::Mechanism;
use ruu_sim_core::MachineConfig;

fn main() {
    let cfg = MachineConfig::paper();
    let entries: Vec<usize> = paper::TABLE2.iter().map(|&(e, ..)| e).collect();
    let (pts, stats) =
        harness::try_sweep_report(&cfg, &entries, |entries| Mechanism::Rstu { entries })
            .unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            });
    print!(
        "{}",
        report::format_sweep(
            "Table 2 — relative speedup and issue rate with a RSTU",
            &pts,
            &paper::TABLE2
        )
    );
    println!();
    println!("{}", report::format_engine_stats(&stats));
}
