//! Regenerates **Table 2** of the paper: relative speedup and issue rate
//! of the RSTU (one dispatch path) vs. the number of RSTU entries.
//!
//! Run with `cargo bench -p ruu-bench --bench table2`.

use ruu_bench::{paper, report, sweep};
use ruu_issue::Mechanism;
use ruu_sim_core::MachineConfig;

fn main() {
    let cfg = MachineConfig::paper();
    let entries: Vec<usize> = paper::TABLE2.iter().map(|&(e, ..)| e).collect();
    let pts = sweep(&cfg, &entries, |entries| Mechanism::Rstu { entries });
    print!(
        "{}",
        report::format_sweep(
            "Table 2 — relative speedup and issue rate with a RSTU",
            &pts,
            &paper::TABLE2
        )
    );
}
