//! Regenerates **Table 1** of the paper: per-loop statistics of the simple
//! issue mechanism on the Lawrence Livermore loops.
//!
//! Run with `cargo bench -p ruu-bench --bench table1`.

use ruu_bench::{baseline_rows, predictor_ablation, report, stall_breakdown};
use ruu_issue::Mechanism;
use ruu_sim_core::MachineConfig;

fn main() {
    let cfg = MachineConfig::paper();
    let rows = baseline_rows(&cfg);
    println!("## Table 1 — statistics for the benchmark programs (simple issue)");
    println!();
    print!("{}", report::format_table1(&rows));
    println!();
    let stalls = stall_breakdown(&cfg, Mechanism::Simple);
    print!(
        "{}",
        report::format_stall_table("Where the cycles go (simple issue)", &stalls)
    );
    println!();
    let ablation = predictor_ablation(&cfg, 15);
    print!(
        "{}",
        report::format_predictor_ablation(
            "Predictor ablation — speculative RUU (15 entries), suite totals",
            &ablation
        )
    );
    println!();
    println!(
        "Note: 'ours' runs hand-compiled kernels (DESIGN.md §1); absolute counts differ \
         from the paper's CFT-compiled code, shapes are compared in tests/shape_checks.rs."
    );
}
