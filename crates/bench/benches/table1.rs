//! Regenerates **Table 1** of the paper: per-loop statistics of the simple
//! issue mechanism on the Lawrence Livermore loops.
//!
//! Run with `cargo bench -p ruu-bench --bench table1`.

use ruu_bench::{baseline_rows, cache_ablation, predictor_ablation, report, stall_breakdown};
use ruu_issue::{Bypass, Mechanism, PredictorConfig};
use ruu_sim_core::{DCacheConfig, MachineConfig};

fn main() {
    let cfg = MachineConfig::paper();
    let rows = baseline_rows(&cfg);
    println!("## Table 1 — statistics for the benchmark programs (simple issue)");
    println!();
    print!("{}", report::format_table1(&rows));
    println!();
    let stalls = stall_breakdown(&cfg, Mechanism::Simple);
    print!(
        "{}",
        report::format_stall_table("Where the cycles go (simple issue)", &stalls)
    );
    println!();
    let ablation = predictor_ablation(&cfg, 15);
    print!(
        "{}",
        report::format_predictor_ablation(
            "Predictor ablation — speculative RUU (15 entries), suite totals",
            &ablation
        )
    );
    println!();
    let mechanisms = [
        Mechanism::Simple,
        Mechanism::InOrderPrecise {
            scheme: ruu_issue::PreciseScheme::ReorderBufferBypass,
            entries: 15,
        },
        Mechanism::Rstu { entries: 15 },
        Mechanism::Ruu {
            entries: 15,
            bypass: Bypass::Full,
        },
        Mechanism::SpecRuu {
            entries: 15,
            bypass: Bypass::Full,
            predictor: PredictorConfig::default(),
        },
    ];
    let dcaches: Vec<DCacheConfig> = ["64x2x4:5:1:4", "64x2x4:20:1:4"]
        .iter()
        .map(|s| DCacheConfig::parse(s).expect("ablation geometry"))
        .collect();
    let cache_rows = cache_ablation(&cfg, &mechanisms, &dcaches);
    print!(
        "{}",
        report::format_cache_ablation(
            "Data-cache ablation — suite totals, miss latency 5 vs 20 cycles",
            &cache_rows
        )
    );
    // The paper's motivating claim on a real memory path: sensitivity to
    // miss latency (cycles at 20 over cycles at 5), lower is better.
    let sensitivity: Vec<String> = cache_rows
        .chunks(3)
        .map(|g| {
            format!(
                "{} {:.3}x",
                g[0].mechanism,
                g[2].cycles as f64 / g[1].cycles as f64
            )
        })
        .collect();
    println!("miss-latency sensitivity: {}", sensitivity.join(", "));
    println!();
    println!(
        "Note: 'ours' runs hand-compiled kernels (DESIGN.md §1); absolute counts differ \
         from the paper's CFT-compiled code, shapes are compared in tests/shape_checks.rs."
    );
}
