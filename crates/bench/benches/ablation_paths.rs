//! Ablation A1: how many RSTU/RUU→functional-unit data paths are worth
//! having? The paper measures 1 vs 2 for the RSTU (Tables 2–3) and argues
//! from instruction flow that more than one path barely helps when decode
//! fills the window at one instruction per cycle (§3.2.3.1). This sweep
//! extends the experiment to the RUU and to 4 paths.
//!
//! Run with `cargo bench -p ruu-bench --bench ablation_paths`.

use ruu_bench::{harness, report};
use ruu_issue::{Bypass, Mechanism};
use ruu_sim_core::MachineConfig;

fn main() {
    let mut rows = Vec::new();
    for paths in [1u32, 2, 4] {
        let cfg = MachineConfig::paper().with_dispatch_paths(paths);
        for (label, m) in [
            (format!("RSTU(10), {paths} path(s)"), Mechanism::Rstu { entries: 10 }),
            (
                format!("RUU(10, bypass), {paths} path(s)"),
                Mechanism::Ruu {
                    entries: 10,
                    bypass: Bypass::Full,
                },
            ),
        ] {
            let pts = harness::sweep(&cfg, &[10], |_| m);
            rows.push((label, pts[0].speedup, pts[0].issue_rate));
        }
    }
    print!(
        "{}",
        report::format_plain_sweep(
            "Ablation A1 — dispatch paths to the functional units",
            "configuration",
            &rows
        )
    );
    println!();
    println!(
        "Expectation (paper §3.2.3.1): the decode stage fills the window at ≤1 \
         instruction/cycle, so extra drain paths help only marginally."
    );
}
