//! Ablation A1: how many RSTU/RUU→functional-unit data paths are worth
//! having? The paper measures 1 vs 2 for the RSTU (Tables 2–3) and argues
//! from instruction flow that more than one path barely helps when decode
//! fills the window at one instruction per cycle (§3.2.3.1). This sweep
//! extends the experiment to the RUU and to 4 paths.
//!
//! The whole (paths × mechanism) grid goes through one engine
//! [`ruu_engine::SweepEngine::run_grid`] call, so every cell runs in
//! parallel and each path count's simple-issue baseline is computed once.
//!
//! Run with `cargo bench -p ruu-bench --bench ablation_paths`.

use ruu_bench::{harness, report};
use ruu_engine::Job;
use ruu_issue::{Bypass, Mechanism};
use ruu_sim_core::MachineConfig;

fn main() {
    let mut jobs = Vec::new();
    for paths in [1u32, 2, 4] {
        let cfg = MachineConfig::paper().with_dispatch_paths(paths);
        jobs.push(
            Job::new(Mechanism::Rstu { entries: 10 }, cfg.clone())
                .with_label(format!("RSTU(10), {paths} path(s)")),
        );
        jobs.push(
            Job::new(
                Mechanism::Ruu {
                    entries: 10,
                    bypass: Bypass::Full,
                },
                cfg,
            )
            .with_label(format!("RUU(10, bypass), {paths} path(s)")),
        );
    }
    let grid = harness::engine().run_grid(&jobs).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let rows: Vec<(String, f64, f64)> = grid
        .jobs
        .iter()
        .map(|j| (j.label.clone(), j.speedup, j.issue_rate))
        .collect();
    print!(
        "{}",
        report::format_plain_sweep(
            "Ablation A1 — dispatch paths to the functional units",
            "configuration",
            &rows
        )
    );
    println!();
    println!(
        "Expectation (paper §3.2.3.1): the decode stage fills the window at ≤1 \
         instruction/cycle, so extra drain paths help only marginally."
    );
    println!("{}", report::format_engine_stats(&grid.stats));
}
