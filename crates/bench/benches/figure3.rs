//! Regenerates **Figure 3** of the paper: the Tag Unit worked example of
//! §3.2.1.1 — issuing `I1: S4 ← S0 + S7` against the six-entry Tag Unit.
//!
//! Run with `cargo bench -p ruu-bench --bench figure3`.

use ruu_isa::Reg;
use ruu_issue::TagUnitModel;

fn main() {
    let mut tu = TagUnitModel::figure3();
    println!("## Figure 3 — a Tag Unit (initial state)");
    println!();
    println!("{tu}");

    println!("Issue I1: S4 <- S0 + S7");
    let dst = tu.acquire_dest(Reg::s(4)).expect("a free tag exists");
    println!("  - new destination tag for S4: {dst} (the free tag)");
    println!(
        "  - old tag 4 loses its latest-copy bit: latest = {}",
        if tu.entry(4).latest { "Y" } else { "N" }
    );
    let s0 = tu.source_tag(Reg::s(0)).expect("S0 is busy");
    println!("  - source S0 is busy: forwarded tag {s0} to the reservation station");
    println!(
        "  - source S7 is {} -> its contents are read from the register file",
        if tu.is_busy(Reg::s(7)) {
            "busy"
        } else {
            "free"
        }
    );
    println!();
    println!("State after issue:");
    println!();
    println!("{tu}");

    println!("I1 completes: the result (tag {dst}) returns to the Tag Unit");
    let ret = tu.retire(dst);
    println!(
        "  - forwarded to register {}; latest copy, so the busy bit is cleared (unlock = {})",
        ret.register, ret.unlock
    );
    println!();
    println!("Final state:");
    println!();
    println!("{tu}");
}
