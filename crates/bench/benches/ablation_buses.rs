//! Ablation A4: result-bus count. The model architecture has a single
//! result bus (§2) where the real CRAY-1 had separate address/scalar
//! result paths — this sweep quantifies what the single bus costs.
//!
//! Run with `cargo bench -p ruu-bench --bench ablation_buses`.

use ruu_bench::{harness, report};
use ruu_issue::{Bypass, Mechanism};
use ruu_sim_core::MachineConfig;

fn main() {
    let mut rows = Vec::new();
    for buses in [1u32, 2, 3] {
        let cfg = MachineConfig::paper().with_result_buses(buses);
        for (label, m) in [
            (format!("simple, {buses} bus(es)"), Mechanism::Simple),
            (
                format!("RUU(15, bypass), {buses} bus(es)"),
                Mechanism::Ruu {
                    entries: 15,
                    bypass: Bypass::Full,
                },
            ),
        ] {
            let pts = harness::sweep(&cfg, &[15], |_| m);
            rows.push((label, pts[0].speedup, pts[0].issue_rate));
        }
    }
    print!(
        "{}",
        report::format_plain_sweep("Ablation A4 — result buses", "configuration", &rows)
    );
    println!();
    println!(
        "Note: speedups are relative to the 1-bus simple baseline within each bus count's \
         own sweep; compare issue rates across rows."
    );
}
