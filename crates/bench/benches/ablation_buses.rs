//! Ablation A4: result-bus count. The model architecture has a single
//! result bus (§2) where the real CRAY-1 had separate address/scalar
//! result paths — this sweep quantifies what the single bus costs.
//!
//! The whole (bus count × mechanism) grid goes through one engine
//! [`ruu_engine::SweepEngine::run_grid`] call, so every cell runs in
//! parallel and each bus count's simple-issue baseline is computed once.
//!
//! Run with `cargo bench -p ruu-bench --bench ablation_buses`.

use ruu_bench::{harness, report};
use ruu_engine::Job;
use ruu_issue::{Bypass, Mechanism};
use ruu_sim_core::MachineConfig;

fn main() {
    let mut jobs = Vec::new();
    for buses in [1u32, 2, 3] {
        let cfg = MachineConfig::paper().with_result_buses(buses);
        jobs.push(
            Job::new(Mechanism::Simple, cfg.clone()).with_label(format!("simple, {buses} bus(es)")),
        );
        jobs.push(
            Job::new(
                Mechanism::Ruu {
                    entries: 15,
                    bypass: Bypass::Full,
                },
                cfg,
            )
            .with_label(format!("RUU(15, bypass), {buses} bus(es)")),
        );
    }
    let grid = harness::engine().run_grid(&jobs).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let rows: Vec<(String, f64, f64)> = grid
        .jobs
        .iter()
        .map(|j| (j.label.clone(), j.speedup, j.issue_rate))
        .collect();
    print!(
        "{}",
        report::format_plain_sweep("Ablation A4 — result buses", "configuration", &rows)
    );
    println!();
    println!(
        "Note: speedups are relative to the 1-bus simple baseline within each bus count's \
         own sweep; compare issue rates across rows."
    );
    println!("{}", report::format_engine_stats(&grid.stats));
}
