//! The full §3 design walk: Tomasulo → Tag Unit + distributed RS →
//! merged RS pool → RSTU → RUU, at matched hardware budgets. This is the
//! paper's §3 narrative as one table.
//!
//! Run with `cargo bench -p ruu-bench --bench mechanism_spectrum`.

use ruu_bench::{harness, report};
use ruu_issue::{Bypass, Mechanism};
use ruu_sim_core::MachineConfig;

fn main() {
    let cfg = MachineConfig::paper();
    let mechanisms = [
        ("simple issue (Table 1 baseline)", Mechanism::Simple),
        (
            "Tomasulo, 2 RS/unit (§3.1)",
            Mechanism::Tomasulo { rs_per_fu: 2 },
        ),
        (
            "Tag Unit + distributed RS (§3.2.1)",
            Mechanism::TagUnitDistributed {
                rs_per_fu: 2,
                tags: 15,
            },
        ),
        (
            "Tag Unit + RS pool (§3.2.2)",
            Mechanism::RsPool { rs: 10, tags: 15 },
        ),
        ("RSTU, 15 entries (§3.2.3)", Mechanism::Rstu { entries: 15 }),
        (
            "RUU, 15 entries, bypass (§5)",
            Mechanism::Ruu {
                entries: 15,
                bypass: Bypass::Full,
            },
        ),
        (
            "RUU, 15 entries, no bypass (§6.2)",
            Mechanism::Ruu {
                entries: 15,
                bypass: Bypass::None,
            },
        ),
        (
            "RUU, 15 entries, limited bypass (§6.3)",
            Mechanism::Ruu {
                entries: 15,
                bypass: Bypass::LimitedA,
            },
        ),
    ];
    let mut rows = Vec::new();
    for (label, m) in mechanisms {
        let pts = harness::sweep(&cfg, &[15], |_| m);
        rows.push((label.to_string(), pts[0].speedup, pts[0].issue_rate));
    }
    print!(
        "{}",
        report::format_plain_sweep(
            "The §3→§5 design spectrum on the Livermore suite",
            "mechanism",
            &rows
        )
    );
}
