//! Extension A5 (paper §7, future work): conditional execution of
//! predicted paths in the RUU. Compares the blocking RUU (branches wait
//! in decode for their condition) against the speculative RUU with three
//! predictors, across window sizes.
//!
//! Run with `cargo bench -p ruu-bench --bench speculation`.

use ruu_issue::{AlwaysTaken, Btfn, Bypass, Mechanism, Predictor, SpecRuu, TwoBit};
use ruu_sim_core::MachineConfig;
use ruu_workloads::livermore;

fn main() {
    let cfg = MachineConfig::paper();
    let suite = livermore::all();
    let baseline = {
        let mut c = 0;
        for w in &suite {
            c += Mechanism::Simple
                .run(&cfg, &w.program, w.memory.clone(), w.inst_limit)
                .expect("baseline runs")
                .cycles;
        }
        c
    };

    println!("### Extension A5 — speculative (conditional-mode) execution in the RUU");
    println!("| RUU entries | machine | speedup | issue rate | mispredict % | nullified |");
    println!("|---:|---|---:|---:|---:|---:|");
    for entries in [10usize, 20, 30] {
        // Blocking (paper) RUU reference point.
        let mut cycles = 0;
        let mut insts = 0;
        for w in &suite {
            let r = Mechanism::Ruu {
                entries,
                bypass: Bypass::Full,
            }
            .run(&cfg, &w.program, w.memory.clone(), w.inst_limit)
            .expect("RUU runs");
            cycles += r.cycles;
            insts += r.instructions;
        }
        println!(
            "| {entries} | blocking RUU | {:.3} | {:.3} | — | — |",
            baseline as f64 / cycles as f64,
            insts as f64 / cycles as f64
        );

        let mk: Vec<Box<dyn Fn() -> Box<dyn Predictor>>> = vec![
            Box::new(|| Box::new(AlwaysTaken)),
            Box::new(|| Box::new(Btfn)),
            Box::new(|| Box::new(TwoBit::default())),
        ];
        for make in &mk {
            let mut cycles = 0;
            let mut insts = 0;
            let mut predicted = 0;
            let mut mispredicted = 0;
            let mut nullified = 0;
            let mut name = "";
            for w in &suite {
                let mut p = make();
                let r = SpecRuu::new(cfg.clone(), entries, Bypass::Full)
                    .run(&w.program, w.memory.clone(), w.inst_limit, p.as_mut())
                    .expect("speculative RUU runs");
                w.verify(&r.run.memory)
                    .expect("speculative result verifies");
                cycles += r.run.cycles;
                insts += r.run.instructions;
                predicted += r.spec.predicted;
                mispredicted += r.spec.mispredicted;
                nullified += r.spec.nullified;
                name = p.name();
            }
            let mp = if predicted == 0 {
                0.0
            } else {
                100.0 * mispredicted as f64 / predicted as f64
            };
            println!(
                "| {entries} | spec RUU ({name}) | {:.3} | {:.3} | {mp:.1} | {nullified} |",
                baseline as f64 / cycles as f64,
                insts as f64 / cycles as f64
            );
        }
    }
    println!();
    println!(
        "Expectation (paper §7): prediction removes branch-condition waits; the RUU's \
         nullification makes recovery cheap, so speculation lifts the issue rate toward \
         the dead-cycle-only limit."
    );
}
