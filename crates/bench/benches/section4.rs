//! Extension A7 (paper §4): the Smith & Pleszkun in-order-issue precise
//! machines next to the imprecise baseline and the RUU. The §4 narrative
//! in one table:
//!
//! * the plain reorder buffer aggravates dependencies;
//! * bypass / history buffer / future file recover them (identical
//!   timing, different hardware);
//! * none of them issue out of order — the RUU does both at once (§5).
//!
//! Run with `cargo bench -p ruu-bench --bench section4`.

use ruu_bench::{harness, report};
use ruu_issue::{Bypass, Mechanism, PreciseScheme};
use ruu_sim_core::MachineConfig;

fn main() {
    let cfg = MachineConfig::paper();
    let entries = 12;
    let rows: Vec<(String, Mechanism)> = vec![
        ("simple issue (imprecise)".into(), Mechanism::Simple),
        (
            format!("reorder buffer({entries}) — §4"),
            Mechanism::InOrderPrecise {
                scheme: PreciseScheme::ReorderBuffer,
                entries,
            },
        ),
        (
            format!("reorder buffer({entries}) + bypass — §4"),
            Mechanism::InOrderPrecise {
                scheme: PreciseScheme::ReorderBufferBypass,
                entries,
            },
        ),
        (
            format!("history buffer({entries}) — §4"),
            Mechanism::InOrderPrecise {
                scheme: PreciseScheme::HistoryBuffer,
                entries,
            },
        ),
        (
            format!("future file({entries}) — §4"),
            Mechanism::InOrderPrecise {
                scheme: PreciseScheme::FutureFile,
                entries,
            },
        ),
        (
            format!("RUU({entries}), bypass — §5"),
            Mechanism::Ruu {
                entries,
                bypass: Bypass::Full,
            },
        ),
    ];
    let mut out = Vec::new();
    for (label, m) in rows {
        let pts = harness::sweep(&cfg, &[entries], |_| m);
        out.push((label, pts[0].speedup, pts[0].issue_rate));
    }
    print!(
        "{}",
        report::format_plain_sweep(
            "Extension A7 — §4 precise-interrupt schemes vs. the RUU",
            "machine",
            &out
        )
    );
    println!();
    println!(
        "Expectation: plain reorder buffer < 1.0 (aggravated dependencies); \
         bypass = history = future file ≈ 1.0 (precision without out-of-order \
         issue gains nothing on its own); RUU well above 1.0 (both at once)."
    );
}
