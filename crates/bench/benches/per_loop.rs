//! Per-loop breakdown of the headline comparison (the paper reports only
//! suite totals for Tables 2–6; this target shows where each mechanism's
//! win comes from — and where it cannot win).
//!
//! Run with `cargo bench -p ruu-bench --bench per_loop`.

use ruu_issue::{Bypass, Mechanism};
use ruu_sim_core::MachineConfig;
use ruu_workloads::livermore;

fn main() {
    let cfg = MachineConfig::paper();
    let mechanisms = [
        ("RSTU(15)", Mechanism::Rstu { entries: 15 }),
        (
            "RUU(15)",
            Mechanism::Ruu {
                entries: 15,
                bypass: Bypass::Full,
            },
        ),
        (
            "RUU(15) no-byp",
            Mechanism::Ruu {
                entries: 15,
                bypass: Bypass::None,
            },
        ),
        (
            "RUU(15) ltd",
            Mechanism::Ruu {
                entries: 15,
                bypass: Bypass::LimitedA,
            },
        ),
    ];

    println!("### Per-loop speedups over the simple baseline (window = 15)");
    print!("| loop | base IPC |");
    for (n, _) in &mechanisms {
        print!(" {n} |");
    }
    println!();
    print!("|---|---:|");
    for _ in &mechanisms {
        print!("---:|");
    }
    println!();

    for w in livermore::all() {
        let base = Mechanism::Simple
            .run(&cfg, &w.program, w.memory.clone(), w.inst_limit)
            .expect("baseline runs");
        print!("| {} | {:.3} |", w.name, base.issue_rate());
        for (_, m) in &mechanisms {
            let r = m
                .run(&cfg, &w.program, w.memory.clone(), w.inst_limit)
                .expect("mechanism runs");
            w.verify(&r.memory).expect("results verify");
            print!(" {:.2} |", base.cycles as f64 / r.cycles as f64);
        }
        println!();
    }
    println!();
    println!(
        "Expectation: the independent-iteration loops (LLL1, 7, 12) gain the most; \
         the tight recurrences (LLL5, 11) are latency-bound and gain the least — \
         dependency structure, not the mechanism, sets their ceiling."
    );
}
