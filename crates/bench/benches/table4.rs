//! Regenerates **Table 4** of the paper: the RUU **with bypass logic**.
//!
//! Run with `cargo bench -p ruu-bench --bench table4`.

use ruu_bench::{paper, report, sweep};
use ruu_issue::{Bypass, Mechanism};
use ruu_sim_core::MachineConfig;

fn main() {
    let cfg = MachineConfig::paper();
    let entries: Vec<usize> = paper::TABLE4.iter().map(|&(e, ..)| e).collect();
    let pts = sweep(&cfg, &entries, |entries| Mechanism::Ruu {
        entries,
        bypass: Bypass::Full,
    });
    print!(
        "{}",
        report::format_sweep(
            "Table 4 — RUU with bypass logic (precise interrupts)",
            &pts,
            &paper::TABLE4
        )
    );
}
