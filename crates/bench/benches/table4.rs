//! Regenerates **Table 4** of the paper: the RUU **with bypass logic**.
//!
//! Run with `cargo bench -p ruu-bench --bench table4`.

use ruu_bench::{harness, paper, report};
use ruu_issue::{Bypass, Mechanism};
use ruu_sim_core::MachineConfig;

fn main() {
    let cfg = MachineConfig::paper();
    let entries: Vec<usize> = paper::TABLE4.iter().map(|&(e, ..)| e).collect();
    let (pts, stats) = harness::try_sweep_report(&cfg, &entries, |entries| Mechanism::Ruu {
        entries,
        bypass: Bypass::Full,
    })
    .unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    print!(
        "{}",
        report::format_sweep(
            "Table 4 — RUU with bypass logic (precise interrupts)",
            &pts,
            &paper::TABLE4
        )
    );
    println!();
    println!("{}", report::format_engine_stats(&stats));
}
