//! Regenerates **Table 3** of the paper: the RSTU with two data paths to
//! the functional units.
//!
//! Run with `cargo bench -p ruu-bench --bench table3`.

use ruu_bench::{harness, paper, report};
use ruu_issue::Mechanism;
use ruu_sim_core::MachineConfig;

fn main() {
    let cfg = MachineConfig::paper().with_dispatch_paths(2);
    let entries: Vec<usize> = paper::TABLE3.iter().map(|&(e, ..)| e).collect();
    let (pts, stats) =
        harness::try_sweep_report(&cfg, &entries, |entries| Mechanism::Rstu { entries })
            .unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            });
    print!(
        "{}",
        report::format_sweep(
            "Table 3 — RSTU with 2 data paths to the functional units",
            &pts,
            &paper::TABLE3
        )
    );
    println!();
    println!("{}", report::format_engine_stats(&stats));
}
