//! Regenerates **Table 3** of the paper: the RSTU with two data paths to
//! the functional units.
//!
//! Run with `cargo bench -p ruu-bench --bench table3`.

use ruu_bench::{paper, report, sweep};
use ruu_issue::Mechanism;
use ruu_sim_core::MachineConfig;

fn main() {
    let cfg = MachineConfig::paper().with_dispatch_paths(2);
    let entries: Vec<usize> = paper::TABLE3.iter().map(|&(e, ..)| e).collect();
    let pts = sweep(&cfg, &entries, |entries| Mechanism::Rstu { entries });
    print!(
        "{}",
        report::format_sweep(
            "Table 3 — RSTU with 2 data paths to the functional units",
            &pts,
            &paper::TABLE3
        )
    );
}
