//! Ablation A3: width of the per-register NI/LI instance counters. The
//! paper used 3 bits (up to 7 in-flight instances of one register) and
//! reports that issue never blocked on an unavailable instance (§5.1).
//!
//! Run with `cargo bench -p ruu-bench --bench ablation_counters`.

use ruu_bench::{harness, report};
use ruu_issue::{Bypass, Mechanism};
use ruu_sim_core::MachineConfig;

fn main() {
    let mut rows = Vec::new();
    for bits in [1u32, 2, 3, 4] {
        let cfg = MachineConfig::paper().with_counter_bits(bits);
        let pts = harness::sweep(&cfg, &[20], |entries| Mechanism::Ruu {
            entries,
            bypass: Bypass::Full,
        });
        rows.push((
            format!("{bits}-bit counters (max {} instances)", (1u32 << bits) - 1),
            pts[0].speedup,
            pts[0].issue_rate,
        ));
    }
    print!(
        "{}",
        report::format_plain_sweep(
            "Ablation A3 — NI/LI counter width (RUU, 20 entries, full bypass)",
            "configuration",
            &rows
        )
    );
    println!();
    println!("Expectation (paper §5.1): 3 bits never block; 1 bit serialises same-register writes.");
}
