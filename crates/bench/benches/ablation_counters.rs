//! Ablation A3: width of the per-register NI/LI instance counters. The
//! paper used 3 bits (up to 7 in-flight instances of one register) and
//! reports that issue never blocked on an unavailable instance (§5.1).
//!
//! The whole counter-width grid goes through one engine
//! [`ruu_engine::SweepEngine::run_grid`] call, so every configuration's
//! suite runs in parallel.
//!
//! Run with `cargo bench -p ruu-bench --bench ablation_counters`.

use ruu_bench::{harness, report};
use ruu_engine::Job;
use ruu_issue::{Bypass, Mechanism};
use ruu_sim_core::MachineConfig;

fn main() {
    let jobs: Vec<Job> = [1u32, 2, 3, 4]
        .iter()
        .map(|&bits| {
            Job::new(
                Mechanism::Ruu {
                    entries: 20,
                    bypass: Bypass::Full,
                },
                MachineConfig::paper().with_counter_bits(bits),
            )
            .with_label(format!(
                "{bits}-bit counters (max {} instances)",
                (1u32 << bits) - 1
            ))
        })
        .collect();
    let grid = harness::engine().run_grid(&jobs).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let rows: Vec<(String, f64, f64)> = grid
        .jobs
        .iter()
        .map(|j| (j.label.clone(), j.speedup, j.issue_rate))
        .collect();
    print!(
        "{}",
        report::format_plain_sweep(
            "Ablation A3 — NI/LI counter width (RUU, 20 entries, full bypass)",
            "configuration",
            &rows
        )
    );
    println!();
    println!(
        "Expectation (paper §5.1): 3 bits never block; 1 bit serialises same-register writes."
    );
    println!("{}", report::format_engine_stats(&grid.stats));
}
