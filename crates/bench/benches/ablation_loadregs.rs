//! Ablation A2: number of load registers. The paper used 6 and remarks
//! that 4 were sufficient for most cases (§5.1).
//!
//! The whole load-register grid goes through one engine
//! [`ruu_engine::SweepEngine::run_grid`] call, so every configuration's
//! suite runs in parallel.
//!
//! Run with `cargo bench -p ruu-bench --bench ablation_loadregs`.

use ruu_bench::{harness, report};
use ruu_engine::Job;
use ruu_issue::{Bypass, Mechanism};
use ruu_sim_core::MachineConfig;

fn main() {
    let jobs: Vec<Job> = [1usize, 2, 3, 4, 6, 8, 12]
        .iter()
        .map(|&lrs| {
            Job::new(
                Mechanism::Ruu {
                    entries: 15,
                    bypass: Bypass::Full,
                },
                MachineConfig::paper().with_load_registers(lrs),
            )
            .with_label(format!("{lrs} load registers"))
        })
        .collect();
    let grid = harness::engine().run_grid(&jobs).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let rows: Vec<(String, f64, f64)> = grid
        .jobs
        .iter()
        .map(|j| (j.label.clone(), j.speedup, j.issue_rate))
        .collect();
    print!(
        "{}",
        report::format_plain_sweep(
            "Ablation A2 — load registers (RUU, 15 entries, full bypass)",
            "configuration",
            &rows
        )
    );
    println!();
    println!("Expectation (paper §5.1): ~4 registers suffice; 6 never block issue.");
    println!("{}", report::format_engine_stats(&grid.stats));
}
