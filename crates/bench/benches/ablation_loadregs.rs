//! Ablation A2: number of load registers. The paper used 6 and remarks
//! that 4 were sufficient for most cases (§5.1).
//!
//! Run with `cargo bench -p ruu-bench --bench ablation_loadregs`.

use ruu_bench::{harness, report};
use ruu_issue::{Bypass, Mechanism};
use ruu_sim_core::MachineConfig;

fn main() {
    let mut rows = Vec::new();
    for lrs in [1usize, 2, 3, 4, 6, 8, 12] {
        let cfg = MachineConfig::paper().with_load_registers(lrs);
        let pts = harness::sweep(&cfg, &[15], |entries| Mechanism::Ruu {
            entries,
            bypass: Bypass::Full,
        });
        rows.push((format!("{lrs} load registers"), pts[0].speedup, pts[0].issue_rate));
    }
    print!(
        "{}",
        report::format_plain_sweep(
            "Ablation A2 — load registers (RUU, 15 entries, full bypass)",
            "configuration",
            &rows
        )
    );
    println!();
    println!("Expectation (paper §5.1): ~4 registers suffice; 6 never block issue.");
}
