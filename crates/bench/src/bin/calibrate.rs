//! Quick calibration snapshot: baseline Table 1 plus small sweeps of every
//! mechanism, for eyeballing the machine model against the paper.

use ruu_bench::{baseline_rows, harness, paper, report, sweep};
use ruu_issue::{Bypass, Mechanism};
use ruu_sim_core::MachineConfig;

fn main() {
    let cfg = MachineConfig::paper();
    println!("== Table 1 (baseline) ==");
    print!("{}", report::format_table1(&baseline_rows(&cfg)));
    println!(
        "baseline total cycles: {}",
        harness::baseline_total_cycles(&cfg)
    );

    let sizes = [3, 4, 6, 8, 10, 15, 20, 30, 50];
    let rstu = sweep(&cfg, &sizes, |entries| Mechanism::Rstu { entries });
    print!("{}", report::format_sweep("RSTU", &rstu, &paper::TABLE2));
    for (name, bypass, table) in [
        ("RUU full bypass", Bypass::Full, &paper::TABLE4),
        ("RUU no bypass", Bypass::None, &paper::TABLE5),
        ("RUU limited bypass", Bypass::LimitedA, &paper::TABLE6),
    ] {
        let pts = sweep(&cfg, &sizes, |entries| Mechanism::Ruu { entries, bypass });
        print!("{}", report::format_sweep(name, &pts, table));
    }
}
