//! The numbers published in the paper, for side-by-side comparison.
//!
//! Absolute agreement is not expected — the paper ran CFT-compiled code,
//! we run hand-compiled kernels — but the *shapes* (ordering, saturation,
//! crossovers) are asserted by `tests/shape_checks.rs` at the repo root.

/// Paper Table 1: per-loop baseline statistics.
/// `(name, instructions, cycles, issue rate)`.
pub const TABLE1: [(&str, u64, u64, f64); 15] = [
    ("LLL1", 7217, 17234, 0.419),
    ("LLL2", 8448, 17102, 0.494),
    ("LLL3", 14015, 36023, 0.389),
    ("LLL4", 9783, 20643, 0.474),
    ("LLL5", 8347, 20696, 0.403),
    ("LLL6", 9350, 22034, 0.424),
    ("LLL7", 4573, 10231, 0.447),
    ("LLL8", 4031, 8026, 0.502),
    ("LLL9", 4918, 10134, 0.485),
    ("LLL10", 4412, 9420, 0.468),
    ("LLL11", 12002, 28002, 0.429),
    ("LLL12", 11999, 27991, 0.429),
    ("LLL13", 8846, 17814, 0.497),
    ("LLL14", 9915, 23573, 0.421),
    ("Total", 117_856, 268_923, 0.438),
];

/// Paper Table 2: RSTU, 1 data path — `(entries, speedup, issue rate)`.
pub const TABLE2: [(usize, f64, f64); 12] = [
    (3, 0.965, 0.423),
    (4, 1.140, 0.499),
    (5, 1.294, 0.567),
    (6, 1.424, 0.624),
    (7, 1.479, 0.648),
    (8, 1.553, 0.681),
    (9, 1.587, 0.696),
    (10, 1.642, 0.720),
    (15, 1.763, 0.773),
    (20, 1.798, 0.788),
    (25, 1.820, 0.798),
    (30, 1.821, 0.798),
];

/// Paper Table 3: RSTU, 2 data paths — `(entries, speedup, issue rate)`.
pub const TABLE3: [(usize, f64, f64); 12] = [
    (3, 0.976, 0.428),
    (4, 1.155, 0.506),
    (5, 1.310, 0.574),
    (6, 1.442, 0.632),
    (7, 1.515, 0.664),
    (8, 1.586, 0.695),
    (9, 1.634, 0.716),
    (10, 1.667, 0.730),
    (15, 1.796, 0.787),
    (20, 1.832, 0.803),
    (25, 1.843, 0.808),
    (30, 1.845, 0.809),
];

/// Paper Table 4: RUU with bypass — `(entries, speedup, issue rate)`.
pub const TABLE4: [(usize, f64, f64); 12] = [
    (3, 0.853, 0.374),
    (4, 0.937, 0.411),
    (6, 1.077, 0.472),
    (8, 1.246, 0.546),
    (10, 1.378, 0.604),
    (12, 1.502, 0.658),
    (15, 1.597, 0.700),
    (20, 1.668, 0.731),
    (25, 1.713, 0.751),
    (30, 1.755, 0.769),
    (40, 1.780, 0.780),
    (50, 1.786, 0.783),
];

/// Paper Table 5: RUU without bypass — `(entries, speedup, issue rate)`.
pub const TABLE5: [(usize, f64, f64); 12] = [
    (3, 0.825, 0.361),
    (4, 0.906, 0.397),
    (6, 1.030, 0.451),
    (8, 1.070, 0.469),
    (10, 1.102, 0.483),
    (12, 1.190, 0.522),
    (15, 1.212, 0.531),
    (20, 1.291, 0.566),
    (25, 1.337, 0.586),
    (30, 1.365, 0.598),
    (40, 1.447, 0.634),
    (50, 1.475, 0.646),
];

/// Paper Table 6: RUU with limited bypass — `(entries, speedup, issue
/// rate)`.
pub const TABLE6: [(usize, f64, f64); 12] = [
    (3, 0.846, 0.371),
    (4, 0.928, 0.407),
    (6, 1.064, 0.466),
    (8, 1.115, 0.489),
    (10, 1.266, 0.555),
    (12, 1.303, 0.571),
    (15, 1.420, 0.622),
    (20, 1.448, 0.635),
    (25, 1.484, 0.651),
    (30, 1.505, 0.660),
    (40, 1.518, 0.665),
    (50, 1.547, 0.678),
];

/// Paper value for a sweep table at a given entry count, if listed.
#[must_use]
pub fn lookup(table: &[(usize, f64, f64)], entries: usize) -> Option<(f64, f64)> {
    table
        .iter()
        .find(|(e, _, _)| *e == entries)
        .map(|&(_, s, r)| (s, r))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_monotone_in_entries() {
        for t in [&TABLE2, &TABLE3, &TABLE4, &TABLE5, &TABLE6] {
            for w in t.windows(2) {
                assert!(w[1].0 > w[0].0);
                assert!(w[1].1 >= w[0].1, "speedup monotone");
            }
        }
    }

    #[test]
    fn paper_orderings_hold_internally() {
        // RSTU(2 paths) >= RSTU >= RUU-bypass >= limited >= none at 30.
        let at = |t: &[(usize, f64, f64)]| lookup(t, 30).unwrap().0;
        assert!(at(&TABLE3) >= at(&TABLE2));
        assert!(at(&TABLE2) >= at(&TABLE4));
        assert!(at(&TABLE4) >= at(&TABLE6));
        assert!(at(&TABLE6) >= at(&TABLE5));
    }

    #[test]
    fn table1_total_is_consistent() {
        let (insts, cycles): (u64, u64) = TABLE1[..14]
            .iter()
            .fold((0, 0), |(i, c), r| (i + r.1, c + r.2));
        assert_eq!(insts, TABLE1[14].1);
        assert_eq!(cycles, TABLE1[14].2);
    }
}
