//! # ruu-bench — the paper's experiments, regenerated
//!
//! One bench target per table/figure of the paper (run with
//! `cargo bench -p ruu-bench --bench <name>`):
//!
//! | Target | Paper content |
//! |---|---|
//! | `table1` | baseline statistics per Livermore loop |
//! | `table2` | RSTU sweep, 1 dispatch path |
//! | `table3` | RSTU sweep, 2 dispatch paths |
//! | `table4` | RUU sweep, full bypass |
//! | `table5` | RUU sweep, no bypass |
//! | `table6` | RUU sweep, limited (A future file) bypass |
//! | `figure3` | Tag Unit walkthrough |
//! | `ablation_*`, `speculation`, `precision_cost` | extension experiments |
//! | `throughput` | host simulation speed (criterion) |
//!
//! The library half holds the harness (workload sweeps), the paper's
//! published numbers ([`paper`]), and table formatting, so integration
//! tests can assert the *shape* of each reproduced result.
//!
//! Sweeps execute on the shared parallel [`ruu_engine::SweepEngine`]
//! (see [`harness::engine`]); set `RUU_BENCH_JOBS=1` to force serial
//! execution. Results are bit-identical for any worker count.

pub mod harness;
pub mod paper;
pub mod report;

pub use harness::{
    baseline_rows, baseline_total_cycles, cache_ablation, engine, predictor_ablation,
    stall_breakdown, sweep, sweep_serial, try_baseline_rows, try_baseline_total_cycles,
    try_cache_ablation, try_predictor_ablation, try_stall_breakdown, try_sweep, try_sweep_report,
    BaselineRow, CacheAblationRow, HarnessError, PredictorAblationRow, StallBreakdownRow,
    SweepPoint,
};
