//! Table formatting for the bench targets: measured values printed next
//! to the paper's published numbers.

use crate::harness::{
    BaselineRow, CacheAblationRow, PredictorAblationRow, StallBreakdownRow, SweepPoint,
};
use crate::paper;
use ruu_sim_core::{StallHistogram, StallReason};

/// Formats a Table-1-style report (per-loop baseline statistics) with the
/// paper's numbers alongside.
#[must_use]
pub fn format_table1(rows: &[BaselineRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| Loop   | insts (ours) | cycles (ours) | rate (ours) | dflow bound | % of limit | insts (paper) | cycles (paper) | rate (paper) |"
    );
    let _ = writeln!(
        out,
        "|--------|-------------:|--------------:|------------:|------------:|-----------:|--------------:|---------------:|-------------:|"
    );
    for row in rows {
        let p = paper::TABLE1.iter().find(|(n, ..)| *n == row.name);
        let (pi, pc, pr) = p.map_or((0, 0, 0.0), |&(_, i, c, r)| (i, c, r));
        let _ = writeln!(
            out,
            "| {:<6} | {:>12} | {:>13} | {:>11.3} | {:>11} | {:>9.1}% | {:>13} | {:>14} | {:>12.3} |",
            row.name,
            row.instructions,
            row.cycles,
            row.issue_rate(),
            row.dataflow_bound,
            row.pct_of_limit().unwrap_or(0.0),
            pi,
            pc,
            pr,
        );
    }
    out
}

/// Formats a sweep table (Tables 2–6 style) with the paper's numbers
/// alongside.
#[must_use]
pub fn format_sweep(
    title: &str,
    points: &[SweepPoint],
    paper_table: &[(usize, f64, f64)],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "### {title}");
    let _ = writeln!(
        out,
        "| Entries | speedup (ours) | rate (ours) | speedup (paper) | rate (paper) |"
    );
    let _ = writeln!(
        out,
        "|--------:|---------------:|------------:|----------------:|-------------:|"
    );
    for p in points {
        let (ps, pr) = paper::lookup(paper_table, p.entries).unwrap_or((f64::NAN, f64::NAN));
        let _ = writeln!(
            out,
            "| {:>7} | {:>14.3} | {:>11.3} | {:>15.3} | {:>12.3} |",
            p.entries, p.speedup, p.issue_rate, ps, pr,
        );
    }
    out
}

/// Formats the speculative-RUU predictor-ablation table: CBP-replay
/// mispredictions next to the pipeline's prediction counts, repair
/// cycles, and the resulting cycles/speedup, one row per zoo predictor.
#[must_use]
pub fn format_predictor_ablation(title: &str, rows: &[PredictorAblationRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "### {title}");
    let _ = writeln!(
        out,
        "| Predictor | CBP miss | predicts | mispredicts | repair cycles | cycles | speedup |"
    );
    let _ = writeln!(
        out,
        "|-----------|---------:|---------:|------------:|--------------:|-------:|--------:|"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "| {:<9} | {:>8} | {:>8} | {:>11} | {:>13} | {:>6} | {:>7.3} |",
            r.predictor,
            r.cbp_mispredicts,
            r.predicts,
            r.mispredicts,
            r.flush_cycles,
            r.cycles,
            r.speedup,
        );
    }
    out
}

/// Formats the data-cache ablation table: per mechanism, the perfect
/// memory followed by each finite cache model, with the cycle price
/// (`slowdown`) each mechanism pays for the real memory path.
#[must_use]
pub fn format_cache_ablation(title: &str, rows: &[CacheAblationRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "### {title}");
    let _ = writeln!(
        out,
        "| Mechanism | dcache | cycles | slowdown | speedup | hit rate | MPKI |"
    );
    let _ = writeln!(
        out,
        "|-----------|--------|-------:|---------:|--------:|---------:|-----:|"
    );
    let mut last = "";
    for r in rows {
        let label = if r.mechanism == last {
            ""
        } else {
            &r.mechanism
        };
        last = &r.mechanism;
        let (hit_rate, mpki) = r.cache.map_or_else(
            || ("-".to_string(), "-".to_string()),
            |c| {
                (
                    format!("{:.1}%", 100.0 * c.hit_rate()),
                    format!("{:.1}", c.mpki(r.instructions.max(1))),
                )
            },
        );
        let _ = writeln!(
            out,
            "| {:<18} | {:<14} | {:>7} | {:>7.3}x | {:>7.3} | {hit_rate:>8} | {mpki:>4} |",
            label, r.dcache, r.cycles, r.slowdown, r.speedup,
        );
    }
    out
}

/// Formats a per-workload stall-breakdown table for one mechanism: one
/// column per stall reason that occurs anywhere in the suite, plus a
/// `Total` row. Cycle counts, not percentages, so rows can be checked
/// against `cycles == issue + Σ stalls` by eye.
#[must_use]
pub fn format_stall_table(title: &str, rows: &[StallBreakdownRow]) -> String {
    use std::fmt::Write as _;
    let reasons: Vec<StallReason> = StallReason::ALL
        .into_iter()
        .filter(|&r| rows.iter().any(|row| row.hist.stalls(r) > 0))
        .collect();
    let mut out = String::new();
    let _ = writeln!(out, "### {title}");
    let _ = write!(out, "| Loop   | cycles | issue |");
    for r in &reasons {
        let _ = write!(out, " {r} |");
    }
    let _ = writeln!(out, " mean occ |");
    let _ = write!(out, "|--------|-------:|------:|");
    for r in &reasons {
        let _ = write!(out, "{:-<width$}:|", "", width = r.to_string().len());
    }
    let _ = writeln!(out, "---------:|");
    let mut total = StallHistogram::default();
    let mut total_cycles = 0u64;
    for row in rows {
        total.absorb(&row.hist);
        total_cycles += row.cycles;
        let _ = write!(
            out,
            "| {:<6} | {:>6} | {:>5} |",
            row.name,
            row.cycles,
            row.hist.issue_cycles()
        );
        for r in &reasons {
            let _ = write!(
                out,
                " {:>width$} |",
                row.hist.stalls(*r),
                width = r.to_string().len()
            );
        }
        let _ = writeln!(out, " {:>8.2} |", row.hist.mean_occupancy().unwrap_or(0.0));
    }
    let _ = write!(
        out,
        "| {:<6} | {:>6} | {:>5} |",
        "Total",
        total_cycles,
        total.issue_cycles()
    );
    for r in &reasons {
        let _ = write!(
            out,
            " {:>width$} |",
            total.stalls(*r),
            width = r.to_string().len()
        );
    }
    let _ = writeln!(out, " {:>8.2} |", total.mean_occupancy().unwrap_or(0.0));
    out
}

/// Formats the engine's execution statistics for a sweep footer.
#[must_use]
pub fn format_engine_stats(stats: &ruu_engine::EngineStats) -> String {
    format!(
        "engine: {} jobs ({} units) on {} workers in {:.1?} ({:.1} jobs/s, {:.1} units/s)",
        stats.jobs, stats.units, stats.workers, stats.wall, stats.jobs_per_sec, stats.units_per_sec,
    )
}

/// Formats a plain sweep table with no paper reference (ablations).
#[must_use]
pub fn format_plain_sweep(title: &str, header: &str, rows: &[(String, f64, f64)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "### {title}");
    let _ = writeln!(out, "| {header} | speedup | issue rate |");
    let _ = writeln!(out, "|---|---:|---:|");
    for (label, speedup, rate) in rows {
        let _ = writeln!(out, "| {label} | {speedup:.3} | {rate:.3} |");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_formatting_includes_paper_columns() {
        let rows = vec![BaselineRow {
            name: "LLL1",
            instructions: 100,
            cycles: 250,
            dataflow_bound: 125,
        }];
        let s = format_table1(&rows);
        assert!(s.contains("LLL1"));
        assert!(s.contains("7217")); // paper column
        assert!(s.contains("0.400")); // our rate
        assert!(s.contains("% of limit"));
        assert!(s.contains("50.0%")); // 125 / 250 of the dataflow limit
    }

    #[test]
    fn stall_table_lists_active_reasons_and_total() {
        let rows = crate::harness::stall_breakdown(
            &ruu_sim_core::MachineConfig::paper(),
            ruu_issue::Mechanism::Simple,
        );
        let s = format_stall_table("Where the cycles go", &rows);
        assert!(s.contains("operands-not-ready"));
        assert!(s.contains("drained"));
        assert!(s.contains("| Total"));
        assert!(s.contains("mean occ"));
    }

    #[test]
    fn sweep_formatting_includes_paper_lookup() {
        let pts = vec![SweepPoint {
            entries: 10,
            cycles: 1000,
            instructions: 700,
            speedup: 1.5,
            issue_rate: 0.7,
        }];
        let s = format_sweep("Table 2", &pts, &paper::TABLE2);
        assert!(s.contains("1.642")); // paper speedup at 10 entries
        assert!(s.contains("1.500"));
    }
}
