//! Sweep harness: runs the Livermore suite under any mechanism and
//! aggregates the paper's metrics.
//!
//! Since the `ruu-engine` rewire, all sweeps execute on a shared
//! [`SweepEngine`]: the Livermore suite is assembled once per process,
//! jobs fan out across a scoped worker pool, and simple-issue baseline
//! cycles are memoized per machine configuration. Worker count defaults
//! to the host's hardware threads and can be pinned with the
//! `RUU_BENCH_JOBS` environment variable (`1` recovers serial
//! execution). Numbers are bit-identical for any worker count.
//!
//! Every entry point comes in two flavours: a `try_*` function returning
//! `Result<_, HarnessError>` (workload-verification failures and
//! simulator errors are typed, not panics) and a thin panicking shim
//! with the legacy name, kept for the existing bench targets.

use std::fmt;
use std::sync::OnceLock;

use ruu_engine::{EngineError, EngineStats, Job, SweepEngine};
use ruu_exec::{ArchState, ExecError};
use ruu_issue::{Mechanism, SimError};
use ruu_sim_core::{DCacheConfig, MachineConfig, StallHistogram};
use ruu_workloads::{livermore, VerifyError};

/// A typed failure from a harness run.
#[derive(Debug, Clone)]
pub enum HarnessError {
    /// The simulator failed (instruction limit, deadlock guard).
    Sim {
        /// Mechanism (job label) that failed.
        mechanism: String,
        /// Workload the failure occurred on.
        workload: &'static str,
        /// The underlying simulator error.
        err: SimError,
    },
    /// A simulation completed but its memory image failed the workload's
    /// mirror verification.
    Verify {
        /// Mechanism (job label) that failed.
        mechanism: String,
        /// Workload the failure occurred on.
        workload: &'static str,
        /// The underlying verification error.
        err: VerifyError,
    },
    /// The golden interpreter failed while capturing the trace the
    /// dataflow-limit bound is derived from.
    Golden {
        /// Workload the failure occurred on.
        workload: &'static str,
        /// The underlying interpreter error.
        err: ExecError,
    },
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Sim {
                mechanism,
                workload,
                err,
            } => write!(f, "{mechanism} failed on {workload}: {err}"),
            HarnessError::Verify {
                mechanism,
                workload,
                err,
            } => write!(f, "{mechanism} wrong result on {workload}: {err}"),
            HarnessError::Golden { workload, err } => {
                write!(f, "golden trace for {workload} failed: {err}")
            }
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<EngineError> for HarnessError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::Sim { job, workload, err } => HarnessError::Sim {
                mechanism: job,
                workload,
                err,
            },
            EngineError::Verify { job, workload, err } => HarnessError::Verify {
                mechanism: job,
                workload,
                err,
            },
            EngineError::Golden { workload, err } => HarnessError::Golden { workload, err },
        }
    }
}

/// The process-wide sweep engine: Livermore suite assembled once,
/// baseline cycles memoized across every table and ablation target.
pub fn engine() -> &'static SweepEngine {
    static ENGINE: OnceLock<SweepEngine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let workers = std::env::var("RUU_BENCH_JOBS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        SweepEngine::livermore().with_workers(workers)
    })
}

/// One row of a Table-1-style baseline report.
#[derive(Debug, Clone)]
pub struct BaselineRow {
    /// Loop name.
    pub name: &'static str,
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Clock cycles to execute.
    pub cycles: u64,
    /// Static dataflow-limit lower bound on cycles
    /// (`ruu_analysis::dataflow_bound` over the golden trace).
    pub dataflow_bound: u64,
}

impl BaselineRow {
    /// Instructions per cycle, or `None` for a zero-cycle row.
    #[must_use]
    pub fn try_issue_rate(&self) -> Option<f64> {
        if self.cycles == 0 {
            None
        } else {
            Some(self.instructions as f64 / self.cycles as f64)
        }
    }

    /// Instructions per cycle. A zero-cycle row reports `0.0` (never
    /// NaN); use [`BaselineRow::try_issue_rate`] to distinguish that
    /// sentinel from a genuine rate.
    #[must_use]
    pub fn issue_rate(&self) -> f64 {
        self.try_issue_rate().unwrap_or(0.0)
    }

    /// Percentage of the dataflow limit this run achieved
    /// (`100 * dataflow_bound / cycles`), or `None` for a zero-cycle
    /// row. 100% means the machine ran at the dependence-imposed limit.
    #[must_use]
    pub fn pct_of_limit(&self) -> Option<f64> {
        if self.cycles == 0 {
            None
        } else {
            Some(100.0 * self.dataflow_bound as f64 / self.cycles as f64)
        }
    }
}

/// One point of a mechanism sweep (Tables 2–6 style).
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Window entries.
    pub entries: usize,
    /// Total cycles over the suite.
    pub cycles: u64,
    /// Total instructions over the suite.
    pub instructions: u64,
    /// Speedup relative to the baseline suite cycles.
    pub speedup: f64,
    /// Aggregate instructions per cycle.
    pub issue_rate: f64,
}

/// Per-workload stall breakdown for one mechanism: where the decode/
/// issue stage spent every non-issuing cycle.
#[derive(Debug, Clone)]
pub struct StallBreakdownRow {
    /// Workload name.
    pub name: &'static str,
    /// Cycles to execute it.
    pub cycles: u64,
    /// The run's stall histogram (issue cycles, per-reason stalls,
    /// mean occupancy).
    pub hist: StallHistogram,
}

/// Runs `mechanism` over the Livermore suite with a [`StallHistogram`]
/// attached, returning one breakdown row per workload (suite order).
///
/// # Errors
/// Propagates the first failing workload as a [`HarnessError`].
pub fn try_stall_breakdown(
    config: &MachineConfig,
    mechanism: Mechanism,
) -> Result<Vec<StallBreakdownRow>, HarnessError> {
    let label = mechanism.to_string();
    let sim = mechanism.build(config);
    let mut rows = Vec::new();
    for w in engine().suite() {
        let mut hist = StallHistogram::default();
        let r = sim
            .run_observed(
                ArchState::new(),
                w.memory.clone(),
                &w.program,
                w.inst_limit,
                &mut hist,
            )
            .map_err(|err| HarnessError::Sim {
                mechanism: label.clone(),
                workload: w.name,
                err,
            })?;
        w.verify(&r.memory).map_err(|err| HarnessError::Verify {
            mechanism: label.clone(),
            workload: w.name,
            err,
        })?;
        rows.push(StallBreakdownRow {
            name: w.name,
            cycles: r.cycles,
            hist,
        });
    }
    Ok(rows)
}

/// Panicking shim over [`try_stall_breakdown`] for bench targets.
///
/// # Panics
/// Panics on any simulator or verification failure.
#[must_use]
pub fn stall_breakdown(config: &MachineConfig, mechanism: Mechanism) -> Vec<StallBreakdownRow> {
    try_stall_breakdown(config, mechanism).unwrap_or_else(|e| panic!("{e}"))
}

/// Runs the baseline (simple issue) over the full Livermore suite,
/// returning per-loop rows plus a `Total` row (paper Table 1).
///
/// # Errors
/// Propagates the first failing loop as a [`HarnessError`].
pub fn try_baseline_rows(config: &MachineConfig) -> Result<Vec<BaselineRow>, HarnessError> {
    let mut rows: Vec<BaselineRow> = engine()
        .workload_rows(Mechanism::Simple, config)?
        .into_iter()
        .map(|r| BaselineRow {
            name: r.name,
            instructions: r.instructions,
            cycles: r.cycles,
            dataflow_bound: r.dataflow_bound,
        })
        .collect();
    let total_i = rows.iter().map(|r| r.instructions).sum();
    let total_c = rows.iter().map(|r| r.cycles).sum();
    let total_b = rows.iter().map(|r| r.dataflow_bound).sum();
    rows.push(BaselineRow {
        name: "Total",
        instructions: total_i,
        cycles: total_c,
        dataflow_bound: total_b,
    });
    Ok(rows)
}

/// Panicking shim over [`try_baseline_rows`] for bench targets.
///
/// # Panics
/// Panics on any simulator or verification failure.
#[must_use]
pub fn baseline_rows(config: &MachineConfig) -> Vec<BaselineRow> {
    try_baseline_rows(config).unwrap_or_else(|e| panic!("{e}"))
}

/// Total baseline cycles over the suite (the denominator of every
/// "relative speedup" in the paper), memoized per configuration.
///
/// # Errors
/// Propagates the first failing loop as a [`HarnessError`].
pub fn try_baseline_total_cycles(config: &MachineConfig) -> Result<u64, HarnessError> {
    Ok(engine().baseline_cycles(config)?)
}

/// Panicking shim over [`try_baseline_total_cycles`].
///
/// # Panics
/// Panics on any simulator or verification failure.
#[must_use]
pub fn baseline_total_cycles(config: &MachineConfig) -> u64 {
    try_baseline_total_cycles(config).unwrap_or_else(|e| panic!("{e}"))
}

/// Sweeps a mechanism over window sizes on the shared engine, also
/// returning the engine's execution stats (wall clock, units/sec).
///
/// # Errors
/// Propagates the first failing (mechanism, workload) unit.
pub fn try_sweep_report(
    config: &MachineConfig,
    entries_list: &[usize],
    make: impl Fn(usize) -> Mechanism,
) -> Result<(Vec<SweepPoint>, EngineStats), HarnessError> {
    let jobs: Vec<Job> = entries_list
        .iter()
        .map(|&entries| Job::new(make(entries), config.clone()))
        .collect();
    let report = engine().run_grid(&jobs)?;
    let points = entries_list
        .iter()
        .zip(&report.jobs)
        .map(|(&entries, j)| SweepPoint {
            entries,
            cycles: j.cycles,
            instructions: j.instructions,
            speedup: j.speedup,
            issue_rate: j.issue_rate,
        })
        .collect();
    Ok((points, report.stats))
}

/// Sweeps a mechanism over window sizes, reporting paper-style speedup
/// (vs. the simple-issue baseline) and aggregate issue rate.
///
/// # Errors
/// Propagates the first failing (mechanism, workload) unit.
pub fn try_sweep(
    config: &MachineConfig,
    entries_list: &[usize],
    make: impl Fn(usize) -> Mechanism,
) -> Result<Vec<SweepPoint>, HarnessError> {
    try_sweep_report(config, entries_list, make).map(|(points, _)| points)
}

/// Panicking shim over [`try_sweep`] for bench targets.
///
/// # Panics
/// Panics on any simulator or verification failure.
#[must_use]
pub fn sweep(
    config: &MachineConfig,
    entries_list: &[usize],
    make: impl Fn(usize) -> Mechanism,
) -> Vec<SweepPoint> {
    try_sweep(config, entries_list, make).unwrap_or_else(|e| panic!("{e}"))
}

/// The legacy serial sweep: a plain loop over `Mechanism::run`, with its
/// own baseline pass and no engine, no pool, and no caches. Kept as the
/// independent reference the `engine_determinism` integration test
/// compares the parallel engine against bit-for-bit.
///
/// # Panics
/// Panics on any simulator or verification failure (the historical
/// behaviour).
#[must_use]
pub fn sweep_serial(
    config: &MachineConfig,
    entries_list: &[usize],
    make: impl Fn(usize) -> Mechanism,
) -> Vec<SweepPoint> {
    fn run_suite(
        mechanism: Mechanism,
        config: &MachineConfig,
        suite: &[ruu_workloads::Workload],
    ) -> (u64, u64) {
        let mut cycles = 0;
        let mut insts = 0;
        for w in suite {
            let r = mechanism
                .run(config, &w.program, w.memory.clone(), w.inst_limit)
                .unwrap_or_else(|e| panic!("{} failed on {}: {e}", mechanism, w.name));
            w.verify(&r.memory)
                .unwrap_or_else(|e| panic!("{} wrong result on {}: {e}", mechanism, w.name));
            cycles += r.cycles;
            insts += r.instructions;
        }
        (cycles, insts)
    }

    let suite = livermore::all();
    let (baseline, _) = run_suite(Mechanism::Simple, config, &suite);
    entries_list
        .iter()
        .map(|&entries| {
            let (cycles, instructions) = run_suite(make(entries), config, &suite);
            SweepPoint {
                entries,
                cycles,
                instructions,
                speedup: baseline as f64 / cycles as f64,
                issue_rate: instructions as f64 / cycles as f64,
            }
        })
        .collect()
}

/// One row of the speculative-RUU predictor-ablation table: the same
/// machine, swept across the predictor zoo. `cbp_mispredicts` comes from
/// the trace-driven CBP replay (every conditional branch, no pipeline);
/// the remaining columns are the pipeline's own numbers, where only
/// branches whose condition was still unresolved at issue consult the
/// predictor.
#[derive(Debug, Clone)]
pub struct PredictorAblationRow {
    /// Canonical predictor label (`NAME[:size]`).
    pub predictor: String,
    /// Total CBP-replay mispredictions over the 14 loops.
    pub cbp_mispredicts: u64,
    /// Pipeline predictions actually consulted.
    pub predicts: u64,
    /// Pipeline mispredictions (each one a flush).
    pub mispredicts: u64,
    /// Cycles spent in mispredict-repair stalls.
    pub flush_cycles: u64,
    /// Total cycles over the suite.
    pub cycles: u64,
    /// Total instructions over the suite.
    pub instructions: u64,
    /// Speedup over the simple-issue baseline.
    pub speedup: f64,
}

/// Sweeps the speculative RUU (at `entries` window entries) across the
/// whole predictor zoo.
///
/// # Errors
/// Propagates simulator, verification, and golden-trace failures.
pub fn try_predictor_ablation(
    config: &MachineConfig,
    entries: usize,
) -> Result<Vec<PredictorAblationRow>, HarnessError> {
    use ruu_predict::cbp::{evaluate, BranchStream};
    use ruu_predict::PredictorConfig;

    let zoo = PredictorConfig::zoo();
    let jobs: Vec<Job> = zoo
        .iter()
        .map(|&predictor| {
            Job::new(
                Mechanism::SpecRuu {
                    entries,
                    bypass: ruu_issue::Bypass::Full,
                    predictor,
                },
                config.clone(),
            )
        })
        .collect();
    let report = engine().run_grid(&jobs)?;

    let mut streams = Vec::new();
    for w in livermore::all() {
        let trace = w.golden_trace().map_err(|err| HarnessError::Golden {
            workload: w.name,
            err,
        })?;
        streams.push(BranchStream::from_trace(&trace));
    }

    Ok(zoo
        .iter()
        .zip(&report.jobs)
        .map(|(&p, j)| {
            let cbp_mispredicts = streams
                .iter()
                .map(|s| {
                    // Fresh predictor per loop, the CBP convention.
                    let mut pred = p.build();
                    evaluate(s, pred.as_mut()).mispredicts
                })
                .sum();
            let b = j.branch.unwrap_or_default();
            PredictorAblationRow {
                predictor: p.to_string(),
                cbp_mispredicts,
                predicts: b.predicts,
                mispredicts: b.mispredicts,
                flush_cycles: b.flush_cycles,
                cycles: j.cycles,
                instructions: j.instructions,
                speedup: j.speedup,
            }
        })
        .collect())
}

/// Panicking shim over [`try_predictor_ablation`].
#[must_use]
pub fn predictor_ablation(config: &MachineConfig, entries: usize) -> Vec<PredictorAblationRow> {
    try_predictor_ablation(config, entries).unwrap_or_else(|e| panic!("{e}"))
}

/// One row of the data-cache ablation table: one mechanism under one
/// data-cache timing model, suite totals.
#[derive(Debug, Clone)]
pub struct CacheAblationRow {
    /// Mechanism label.
    pub mechanism: String,
    /// Cache model label (`perfect` or the canonical geometry spec).
    pub dcache: String,
    /// Total cycles over the suite.
    pub cycles: u64,
    /// Total instructions over the suite (the MPKI denominator).
    pub instructions: u64,
    /// Cycle ratio vs. the same mechanism under the perfect memory — the
    /// price this mechanism pays for the real memory path.
    pub slowdown: f64,
    /// Speedup vs. the simple-issue baseline *under the same memory
    /// model* (the engine memoizes the baseline per configuration).
    pub speedup: f64,
    /// Aggregate cache counters (`None` under the perfect memory).
    pub cache: Option<ruu_engine::CacheSummary>,
}

/// Runs every `mechanism` under the perfect memory and then each finite
/// cache model in `dcaches`, in one engine grid. Rows come back grouped
/// by mechanism, perfect first, so each group's `slowdown` column reads
/// as a degradation curve.
///
/// # Errors
/// Propagates the first failing (mechanism, workload) unit.
pub fn try_cache_ablation(
    config: &MachineConfig,
    mechanisms: &[Mechanism],
    dcaches: &[DCacheConfig],
) -> Result<Vec<CacheAblationRow>, HarnessError> {
    let mut variants = vec![DCacheConfig::Perfect];
    variants.extend(dcaches.iter().copied());
    let jobs: Vec<Job> = mechanisms
        .iter()
        .flat_map(|&m| {
            variants
                .iter()
                .map(move |&dc| Job::new(m, config.clone().with_dcache(dc)))
        })
        .collect();
    let report = engine().run_grid(&jobs)?;
    let mut rows = Vec::new();
    for (mi, m) in mechanisms.iter().enumerate() {
        let base = report.jobs[mi * variants.len()].cycles;
        for (vi, dc) in variants.iter().enumerate() {
            let j = &report.jobs[mi * variants.len() + vi];
            rows.push(CacheAblationRow {
                mechanism: m.to_string(),
                dcache: dc.to_string(),
                cycles: j.cycles,
                instructions: j.instructions,
                slowdown: j.cycles as f64 / base as f64,
                speedup: j.speedup,
                cache: j.cache,
            });
        }
    }
    Ok(rows)
}

/// Panicking shim over [`try_cache_ablation`].
#[must_use]
pub fn cache_ablation(
    config: &MachineConfig,
    mechanisms: &[Mechanism],
    dcaches: &[DCacheConfig],
) -> Vec<CacheAblationRow> {
    try_cache_ablation(config, mechanisms, dcaches).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruu_issue::Bypass;

    #[test]
    fn baseline_rows_cover_all_loops() {
        let rows = baseline_rows(&MachineConfig::paper());
        assert_eq!(rows.len(), 15);
        assert_eq!(rows[14].name, "Total");
        let sum: u64 = rows[..14].iter().map(|r| r.instructions).sum();
        assert_eq!(sum, rows[14].instructions);
        // Every row respects the dataflow-limit sandwich:
        // instructions <= bound <= cycles.
        for r in &rows {
            assert!(r.dataflow_bound >= r.instructions, "{}", r.name);
            assert!(r.cycles >= r.dataflow_bound, "{}", r.name);
            let pct = r.pct_of_limit().expect("nonzero cycles");
            assert!(pct > 0.0 && pct <= 100.0, "{}: {pct}", r.name);
        }
    }

    #[test]
    fn predictor_ablation_reflects_cbp_wins_in_cycles() {
        let cfg = MachineConfig::paper();
        let rows = predictor_ablation(&cfg, 15);
        assert_eq!(rows.len(), 7, "one row per zoo predictor");
        let find = |name: &str| {
            rows.iter()
                .find(|r| r.predictor.starts_with(name))
                .unwrap_or_else(|| panic!("{name} row exists"))
        };
        let twobit = find("twobit:64");
        let tage = find("tage");
        // The zoo's headline: TAGE-lite beats the calibrated default both
        // in trace-replay mispredictions and in actual pipeline cycles.
        assert!(tage.cbp_mispredicts < twobit.cbp_mispredicts);
        assert!(tage.cycles < twobit.cycles);
        for r in &rows {
            assert!(r.predicts > 0, "{}: predictor consulted", r.predictor);
            assert_eq!(
                r.flush_cycles,
                r.mispredicts * (cfg.mispredict_penalty + 1),
                "{}: every flush charges penalty+1 repair cycles",
                r.predictor
            );
        }
    }

    #[test]
    fn sweep_reports_relative_speedup() {
        let cfg = MachineConfig::paper();
        let pts = sweep(&cfg, &[10], |entries| Mechanism::Ruu {
            entries,
            bypass: Bypass::Full,
        });
        assert_eq!(pts.len(), 1);
        assert!(pts[0].speedup > 0.5 && pts[0].speedup < 3.0);
    }

    #[test]
    fn try_sweep_surfaces_errors_instead_of_panicking() {
        // An impossible mechanism size: a 0-entry RSTU deadlocks issue
        // immediately, which the simulator reports as an error the
        // harness must surface (not panic on).
        let cfg = MachineConfig::paper();
        let result = try_sweep(&cfg, &[0], |entries| Mechanism::Rstu { entries });
        assert!(matches!(result, Err(HarnessError::Sim { .. })));
    }

    #[test]
    fn baseline_total_matches_rows() {
        let cfg = MachineConfig::paper();
        let rows = baseline_rows(&cfg);
        assert_eq!(baseline_total_cycles(&cfg), rows[14].cycles);
    }

    #[test]
    fn zero_cycle_row_has_no_rate() {
        let row = BaselineRow {
            name: "empty",
            instructions: 0,
            cycles: 0,
            dataflow_bound: 0,
        };
        assert_eq!(row.try_issue_rate(), None);
        assert_eq!(row.issue_rate(), 0.0); // documented sentinel, not NaN
        assert_eq!(row.pct_of_limit(), None);
    }

    #[test]
    fn stall_breakdown_accounts_for_every_cycle() {
        let cfg = MachineConfig::paper();
        let rows = stall_breakdown(
            &cfg,
            Mechanism::Ruu {
                entries: 10,
                bypass: Bypass::Full,
            },
        );
        assert_eq!(rows.len(), engine().suite().len());
        for row in &rows {
            assert_eq!(
                row.cycles,
                row.hist.issue_cycles() + row.hist.total_stalls(),
                "cycle accounting on {}",
                row.name
            );
            assert_eq!(
                row.hist.cycles(),
                row.cycles,
                "cycle_end count {}",
                row.name
            );
        }
    }
}
