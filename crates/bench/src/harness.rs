//! Sweep harness: runs the Livermore suite under any mechanism and
//! aggregates the paper's metrics.

use ruu_issue::Mechanism;
use ruu_sim_core::MachineConfig;
use ruu_workloads::{livermore, Workload};

/// One row of a Table-1-style baseline report.
#[derive(Debug, Clone)]
pub struct BaselineRow {
    /// Loop name.
    pub name: &'static str,
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Clock cycles to execute.
    pub cycles: u64,
}

impl BaselineRow {
    /// Instructions per cycle.
    #[must_use]
    pub fn issue_rate(&self) -> f64 {
        self.instructions as f64 / self.cycles as f64
    }
}

/// One point of a mechanism sweep (Tables 2–6 style).
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Window entries.
    pub entries: usize,
    /// Total cycles over the suite.
    pub cycles: u64,
    /// Total instructions over the suite.
    pub instructions: u64,
    /// Speedup relative to the baseline suite cycles.
    pub speedup: f64,
    /// Aggregate instructions per cycle.
    pub issue_rate: f64,
}

fn run_suite(mechanism: Mechanism, config: &MachineConfig, suite: &[Workload]) -> (u64, u64) {
    let mut cycles = 0;
    let mut insts = 0;
    for w in suite {
        let r = mechanism
            .run(config, &w.program, w.memory.clone(), w.inst_limit)
            .unwrap_or_else(|e| panic!("{} failed on {}: {e}", mechanism, w.name));
        w.verify(&r.memory)
            .unwrap_or_else(|e| panic!("{} wrong result on {}: {e}", mechanism, w.name));
        cycles += r.cycles;
        insts += r.instructions;
    }
    (cycles, insts)
}

/// Runs the baseline (simple issue) over the full Livermore suite,
/// returning per-loop rows plus a `Total` row (paper Table 1).
#[must_use]
pub fn baseline_rows(config: &MachineConfig) -> Vec<BaselineRow> {
    let mut rows = Vec::new();
    let mut total_i = 0;
    let mut total_c = 0;
    for w in livermore::all() {
        let r = Mechanism::Simple
            .run(config, &w.program, w.memory.clone(), w.inst_limit)
            .unwrap_or_else(|e| panic!("baseline failed on {}: {e}", w.name));
        w.verify(&r.memory)
            .unwrap_or_else(|e| panic!("baseline wrong result on {}: {e}", w.name));
        total_i += r.instructions;
        total_c += r.cycles;
        rows.push(BaselineRow {
            name: w.name,
            instructions: r.instructions,
            cycles: r.cycles,
        });
    }
    rows.push(BaselineRow {
        name: "Total",
        instructions: total_i,
        cycles: total_c,
    });
    rows
}

/// Total baseline cycles over the suite (the denominator of every
/// "relative speedup" in the paper).
#[must_use]
pub fn baseline_total_cycles(config: &MachineConfig) -> u64 {
    baseline_rows(config)
        .last()
        .expect("total row is always present")
        .cycles
}

/// Sweeps a mechanism over window sizes, reporting paper-style speedup
/// (vs. the simple-issue baseline) and aggregate issue rate.
#[must_use]
pub fn sweep(
    config: &MachineConfig,
    entries_list: &[usize],
    make: impl Fn(usize) -> Mechanism,
) -> Vec<SweepPoint> {
    let suite = livermore::all();
    let baseline = {
        let (c, _) = run_suite(Mechanism::Simple, config, &suite);
        c
    };
    entries_list
        .iter()
        .map(|&entries| {
            let (cycles, instructions) = run_suite(make(entries), config, &suite);
            SweepPoint {
                entries,
                cycles,
                instructions,
                speedup: baseline as f64 / cycles as f64,
                issue_rate: instructions as f64 / cycles as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruu_issue::Bypass;

    #[test]
    fn baseline_rows_cover_all_loops() {
        let rows = baseline_rows(&MachineConfig::paper());
        assert_eq!(rows.len(), 15);
        assert_eq!(rows[14].name, "Total");
        let sum: u64 = rows[..14].iter().map(|r| r.instructions).sum();
        assert_eq!(sum, rows[14].instructions);
    }

    #[test]
    fn sweep_reports_relative_speedup() {
        let cfg = MachineConfig::paper();
        let pts = sweep(&cfg, &[10], |entries| Mechanism::Ruu {
            entries,
            bypass: Bypass::Full,
        });
        assert_eq!(pts.len(), 1);
        assert!(pts[0].speedup > 0.5 && pts[0].speedup < 3.0);
    }
}
