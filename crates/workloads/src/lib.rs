//! # ruu-workloads — the benchmark programs of the RUU paper
//!
//! The paper evaluates every issue mechanism on the first 14 Lawrence
//! Livermore loops (paper §2.1), compiled for the CRAY-1 scalar unit by
//! CFT and traced on a CRAY-1 simulator. We do not have CFT or its traces,
//! so each kernel is **hand-compiled** here to the `ruu-isa` machine in
//! the style of late-1980s compiled scalar code: loop counters in `A0`
//! (branches test `A0`, as the paper notes), array pointers in A
//! registers, loop-invariant scalars held in S registers and spilled
//! to/restored from the B/T backup files, one fused induction pointer
//! with constant displacements for same-index arrays.
//!
//! Each kernel carries a *mirror*: the same computation written directly
//! in Rust, evaluated at build time to produce expected memory contents.
//! [`Workload::verify`] checks a simulator's final memory bit-exactly
//! against the mirror, independently of the golden interpreter.
//!
//! The dynamic instruction counts are sized to land near the paper's
//! Table 1 (a few thousand to ~10k instructions per loop; ~100k total).
//!
//! Two kernels need a substitution (documented in DESIGN.md): LLL13/LLL14
//! are particle-in-cell codes whose original form relies on float→int
//! conversions the CRAY scalar ISA subset here does not model; they are
//! implemented with integer particle coordinates, preserving the
//! data-dependent gather/scatter structure that stresses the load
//! registers.
//!
//! ## Example
//!
//! ```
//! use ruu_workloads::livermore;
//!
//! let w = livermore::lll3();
//! assert_eq!(w.name, "LLL3");
//! let trace = w.golden_trace().expect("kernel executes");
//! w.verify(trace.final_memory()).expect("mirror agrees");
//! ```

pub mod layout;
pub mod livermore;
pub mod synth;
mod workload;

pub use workload::{VerifyError, Workload};
