//! LLL7 — equation of state fragment:
//!
//! ```text
//! x[k] = u[k] + r*( z[k] + r*y[k] )
//!             + t*( u[k+3] + r*( u[k+2] + r*u[k+1] )
//!             + t*( u[k+6] + r*( u[k+5] + r*u[k+4] ) ) )
//! ```
//!
//! Independent iterations with a wide expression tree — lots of ILP and
//! heavy use of the float units.

use ruu_isa::{Asm, Reg};

use crate::layout::{checks_f64, fill_f64, fresh_memory, Lcg};
use crate::Workload;

const CONST: i64 = 0x0800; // r, t
const X: i64 = 0x1000;
const Y: i64 = 0x2000;
const Z: i64 = 0x3000;
const U: i64 = 0x4000;

/// Builds the kernel for `n` elements.
#[must_use]
pub fn build(n: u32) -> Workload {
    let n_us = n as usize;
    let mut mem = fresh_memory();
    let mut rng = Lcg::new(0x77);
    let r = rng.next_f64(0.1, 1.0);
    let t = rng.next_f64(0.1, 1.0);
    mem.write_f64(CONST as u64, r);
    mem.write_f64(CONST as u64 + 1, t);
    let y = fill_f64(&mut mem, Y as u64, n_us, &mut rng);
    let z = fill_f64(&mut mem, Z as u64, n_us, &mut rng);
    let u = fill_f64(&mut mem, U as u64, n_us + 6, &mut rng);

    // Mirror (same association order as the assembly).
    let mut x = vec![0.0f64; n_us];
    for k in 0..n_us {
        let inner2 = u[k + 6] + r * (u[k + 5] + r * u[k + 4]);
        let inner1 = u[k + 3] + r * (u[k + 2] + r * u[k + 1]) + t * inner2;
        x[k] = u[k] + r * (z[k] + r * y[k]) + t * inner1;
    }

    let mut a = Asm::new("LLL7");
    let top = a.new_label();
    a.a_imm(Reg::a(6), CONST);
    a.ld_s(Reg::s(5), Reg::a(6), 0); // r
    a.ld_s(Reg::s(6), Reg::a(6), 1); // t
    a.a_imm(Reg::a(1), 0);
    a.a_imm(Reg::a(0), i64::from(n));
    a.bind(top);
    // CFT-style schedule: early trip decrement, loads clustered ahead of
    // each sub-expression.
    a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
    // inner2 = u[k+6] + r*(u[k+5] + r*u[k+4])
    a.ld_s(Reg::s(1), Reg::a(1), U + 4);
    a.ld_s(Reg::s(2), Reg::a(1), U + 5);
    a.ld_s(Reg::s(3), Reg::a(1), U + 6);
    a.f_mul(Reg::s(1), Reg::s(5), Reg::s(1));
    a.f_add(Reg::s(1), Reg::s(2), Reg::s(1));
    a.f_mul(Reg::s(1), Reg::s(5), Reg::s(1));
    a.f_add(Reg::s(2), Reg::s(3), Reg::s(1)); // inner2
                                              // inner1 = u[k+3] + r*(u[k+2] + r*u[k+1]) + t*inner2
    a.ld_s(Reg::s(1), Reg::a(1), U + 1);
    a.ld_s(Reg::s(3), Reg::a(1), U + 2);
    a.ld_s(Reg::s(4), Reg::a(1), U + 3);
    a.f_mul(Reg::s(1), Reg::s(5), Reg::s(1));
    a.f_add(Reg::s(1), Reg::s(3), Reg::s(1));
    a.f_mul(Reg::s(1), Reg::s(5), Reg::s(1));
    a.f_add(Reg::s(3), Reg::s(4), Reg::s(1)); // u[k+3] + ...
    a.f_mul(Reg::s(2), Reg::s(6), Reg::s(2)); // t*inner2
    a.f_add(Reg::s(3), Reg::s(3), Reg::s(2)); // inner1
                                              // x[k] = u[k] + r*(z[k] + r*y[k]) + t*inner1
    a.ld_s(Reg::s(1), Reg::a(1), Y);
    a.ld_s(Reg::s(2), Reg::a(1), Z);
    a.ld_s(Reg::s(4), Reg::a(1), U);
    a.f_mul(Reg::s(1), Reg::s(5), Reg::s(1));
    a.f_add(Reg::s(1), Reg::s(2), Reg::s(1));
    a.f_mul(Reg::s(1), Reg::s(5), Reg::s(1));
    a.f_add(Reg::s(1), Reg::s(4), Reg::s(1));
    a.f_mul(Reg::s(3), Reg::s(6), Reg::s(3)); // t*inner1
    a.f_add(Reg::s(1), Reg::s(1), Reg::s(3));
    a.st_s(Reg::s(1), Reg::a(1), X);
    a.a_add_imm(Reg::a(1), Reg::a(1), 1);
    a.br_an(top);
    a.halt();

    Workload {
        name: "LLL7",
        description: "equation of state fragment: wide expression tree, high ILP",
        program: a.assemble().expect("LLL7 assembles"),
        memory: mem,
        checks: checks_f64(X as u64, &x),
        inst_limit: 60 * u64::from(n) + 1_000,
        lint_waivers: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_matches_golden_execution() {
        let w = build(25);
        let t = w.golden_trace().unwrap();
        w.verify(t.final_memory()).unwrap();
    }

    #[test]
    fn sixteen_flops_per_iteration() {
        let w = build(10);
        let t = w.golden_trace().unwrap();
        let flops = t.mix().fu_count(ruu_isa::FuClass::FloatAdd)
            + t.mix().fu_count(ruu_isa::FuClass::FloatMul);
        assert_eq!(flops, 160);
    }
}
