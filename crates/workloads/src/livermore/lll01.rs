//! LLL1 — hydro fragment:
//! `x[k] = q + y[k] * (r*z[k+10] + t*z[k+11])`.
//!
//! Fully independent iterations: the classic high-ILP vectorisable loop.

use ruu_analysis::{LintKind, Waiver};
use ruu_isa::{Asm, Reg};

use crate::layout::{checks_f64, fill_f64, fresh_memory, Lcg};
use crate::Workload;

const CONST: i64 = 0x0800; // q, r, t
const X: i64 = 0x1000;
const Y: i64 = 0x2000;
const Z: i64 = 0x3000;

/// Builds the kernel for `n` elements.
#[must_use]
pub fn build(n: u32) -> Workload {
    let n_us = n as usize;
    let mut mem = fresh_memory();
    let mut rng = Lcg::new(0x11);
    let q = rng.next_f64(0.1, 1.0);
    let r = rng.next_f64(0.1, 1.0);
    let t = rng.next_f64(0.1, 1.0);
    mem.write_f64(CONST as u64, q);
    mem.write_f64(CONST as u64 + 1, r);
    mem.write_f64(CONST as u64 + 2, t);
    let y = fill_f64(&mut mem, Y as u64, n_us, &mut rng);
    let z = fill_f64(&mut mem, Z as u64, n_us + 11, &mut rng);

    // Mirror (operation order matches the assembly below).
    let mut x = vec![0.0f64; n_us];
    for k in 0..n_us {
        let rz = r * z[k + 10];
        let tz = t * z[k + 11];
        x[k] = q + y[k] * (rz + tz);
    }

    let mut a = Asm::new("LLL1");
    let top = a.new_label();
    // Prologue: constants into S registers, pointers/counter into A.
    a.a_imm(Reg::a(6), CONST);
    a.ld_s(Reg::s(5), Reg::a(6), 0); // q
    a.ld_s(Reg::s(6), Reg::a(6), 1); // r
    a.ld_s(Reg::s(7), Reg::a(6), 2); // t
                                     // CFT-style loop control: one pointer per array, trip count kept in
                                     // A7, with the branch test value computed into A0 each iteration.
    a.a_imm(Reg::a(1), 0); // &x[k]
    a.a_imm(Reg::a(2), 0); // &y[k]
    a.a_imm(Reg::a(3), 0); // &z[k]
    a.a_imm(Reg::a(7), i64::from(n)); // trip count
    a.a_imm(Reg::a(0), i64::from(n));
    a.bind(top);
    // Decrement the trip count first (so the closing branch never waits)
    // and hoist the loads ahead of their consumers.
    a.a_sub_imm(Reg::a(7), Reg::a(7), 1);
    a.a_add_imm(Reg::a(0), Reg::a(7), 0); // branch test value
    a.ld_s(Reg::s(1), Reg::a(3), Z + 10); // z[k+10]
    a.ld_s(Reg::s(2), Reg::a(3), Z + 11); // z[k+11]
    a.ld_s(Reg::s(3), Reg::a(2), Y); // y[k]
    a.f_mul(Reg::s(1), Reg::s(6), Reg::s(1)); // r*z[k+10]
    a.f_mul(Reg::s(2), Reg::s(7), Reg::s(2)); // t*z[k+11]
    a.f_add(Reg::s(1), Reg::s(1), Reg::s(2));
    a.f_mul(Reg::s(1), Reg::s(3), Reg::s(1)); // y[k]*(...)
    a.f_add(Reg::s(1), Reg::s(5), Reg::s(1)); // q + ...
    a.st_s(Reg::s(1), Reg::a(1), X); // x[k]
    a.a_add_imm(Reg::a(1), Reg::a(1), 1);
    a.a_add_imm(Reg::a(2), Reg::a(2), 1);
    a.a_add_imm(Reg::a(3), Reg::a(3), 1);
    a.br_an(top);
    a.halt();

    Workload {
        name: "LLL1",
        description: "hydro fragment: x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])",
        program: a.assemble().expect("LLL1 assembles"),
        memory: mem,
        checks: checks_f64(X as u64, &x),
        inst_limit: 40 * u64::from(n) + 1_000,
        lint_waivers: vec![Waiver::at(
            LintKind::DeadWrite,
            8,
            "the hand compilation pre-seeds the branch condition register A0 \
             alongside the trip count; the in-loop copy makes it architecturally \
             dead, but it is kept to preserve the calibrated cycle counts",
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_matches_golden_execution() {
        let w = build(40);
        let t = w.golden_trace().unwrap();
        w.verify(t.final_memory()).unwrap();
    }

    #[test]
    fn dynamic_count_scales_with_n() {
        let small = build(10).golden_trace().unwrap().len();
        let big = build(20).golden_trace().unwrap().len();
        assert!(big > small);
        // 12-instruction body
        assert_eq!(big - small, 10 * 15);
    }
}
