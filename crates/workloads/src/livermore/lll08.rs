//! LLL8 — ADI (alternating-direction implicit) integration.
//!
//! Three coupled 2-D fields `u1,u2,u3` are advanced from plane `nl1` to
//! plane `nl2`:
//!
//! ```text
//! for kx in 2..=3 {
//!   for ky in 2..=n {
//!     du1 = u1[nl1][kx][ky+1] - u1[nl1][kx][ky-1]   (du2, du3 alike)
//!     u1[nl2][kx][ky] = u1[nl1][kx][ky] + a11*du1 + a12*du2 + a13*du3
//!        + sig*(u1[nl1][kx+1][ky] - 2*u1[nl1][kx][ky] + u1[nl1][kx-1][ky])
//!     (u2, u3 alike with a2x / a3x)
//!   }
//! }
//! ```
//!
//! Ten loop-invariant coefficients exceed the S file, so they are held in
//! the **T file** and fetched with `t_to_s` inside the body — exactly the
//! backup-register traffic the paper's 144-register tag problem is about.

use ruu_isa::{Asm, Reg};

use crate::layout::{fill_f64, fresh_memory, Lcg};
use crate::Workload;

const CONST: i64 = 0x0800;
const U1: i64 = 0x1000;
const U2: i64 = 0x3000;
const U3: i64 = 0x5000;
/// ky stride (row length).
const DIM: i64 = 64;
/// plane stride (5 kx rows).
const PLANE: i64 = 5 * DIM;

fn idx(plane: i64, kx: i64, ky: usize) -> usize {
    (plane * PLANE + kx * DIM) as usize + ky
}

/// Builds the kernel for `n` (ky runs 2..=n; kx runs 2..=3).
#[must_use]
pub fn build(n: u32) -> Workload {
    let n_us = n as usize;
    assert!(n_us + 2 < DIM as usize, "ky range must fit the row");
    let mut mem = fresh_memory();
    let mut rng = Lcg::new(0x88);
    let coef: Vec<f64> = (0..10).map(|_| rng.next_f64(0.01, 0.2)).collect();
    for (i, c) in coef.iter().enumerate() {
        mem.write_f64(CONST as u64 + i as u64, *c);
    }
    let len = (2 * PLANE) as usize;
    let u1v = fill_f64(&mut mem, U1 as u64, len, &mut rng);
    let u2v = fill_f64(&mut mem, U2 as u64, len, &mut rng);
    let u3v = fill_f64(&mut mem, U3 as u64, len, &mut rng);

    // Mirror.
    let mut u1 = u1v;
    let mut u2 = u2v;
    let mut u3 = u3v;
    let sig = coef[9];
    let line = |u: &[f64], a1: f64, a2: f64, a3: f64, du: [f64; 3], kx: i64, ky: usize| {
        let c = u[idx(0, kx, ky)];
        let mut acc = c + a1 * du[0];
        acc += a2 * du[1];
        acc += a3 * du[2];
        let t = ((u[idx(0, kx + 1, ky)] - c) - c) + u[idx(0, kx - 1, ky)];
        acc + sig * t
    };
    for kx in 2..=3i64 {
        for ky in 2..=n_us {
            let du = [
                u1[idx(0, kx, ky + 1)] - u1[idx(0, kx, ky - 1)],
                u2[idx(0, kx, ky + 1)] - u2[idx(0, kx, ky - 1)],
                u3[idx(0, kx, ky + 1)] - u3[idx(0, kx, ky - 1)],
            ];
            let n1 = line(&u1, coef[0], coef[1], coef[2], du, kx, ky);
            let n2 = line(&u2, coef[3], coef[4], coef[5], du, kx, ky);
            let n3 = line(&u3, coef[6], coef[7], coef[8], du, kx, ky);
            u1[idx(1, kx, ky)] = n1;
            u2[idx(1, kx, ky)] = n2;
            u3[idx(1, kx, ky)] = n3;
        }
    }

    let mut a = Asm::new("LLL8");
    // Prologue: coefficients into T0..T9 via S1.
    a.a_imm(Reg::a(6), CONST);
    for i in 0..10u8 {
        a.ld_s(Reg::s(1), Reg::a(6), i64::from(i));
        a.s_to_t(Reg::t(i), Reg::s(1));
    }
    // One unrolled copy of the body per kx (kx is a compile-time constant
    // in the displacement, as CFT would generate for a trip-2 loop).
    for kx in 2..=3i64 {
        let top = a.new_label();
        a.a_imm(Reg::a(1), 2); // ky
        a.a_imm(Reg::a(0), i64::from(n) - 1); // trips: ky = 2..=n
        a.bind(top);
        a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
        let d = |plane: i64, kxx: i64, base: i64, off: i64| base + plane * PLANE + kxx * DIM + off;
        // du1..du3 into S2..S4
        for (s, base) in [(2u8, U1), (3, U2), (4, U3)] {
            a.ld_s(Reg::s(1), Reg::a(1), d(0, kx, base, 1));
            a.ld_s(Reg::s(6), Reg::a(1), d(0, kx, base, -1));
            a.f_sub(Reg::s(s), Reg::s(1), Reg::s(6));
        }
        // field updates (loads hoisted ahead of the coefficient chain;
        // the sig neighbourhood term is computed first, added last,
        // preserving the mirror's association order)
        for (fi, base) in [(0u8, U1), (1, U2), (2, U3)] {
            a.ld_s(Reg::s(1), Reg::a(1), d(0, kx, base, 0)); // center
            a.ld_s(Reg::s(6), Reg::a(1), d(0, kx + 1, base, 0));
            a.ld_s(Reg::s(7), Reg::a(1), d(0, kx - 1, base, 0));
            a.f_sub(Reg::s(6), Reg::s(6), Reg::s(1));
            a.f_sub(Reg::s(6), Reg::s(6), Reg::s(1));
            a.f_add(Reg::s(6), Reg::s(6), Reg::s(7));
            a.t_to_s(Reg::s(7), Reg::t(9)); // sig
            a.f_mul(Reg::s(6), Reg::s(7), Reg::s(6)); // sig part, in S6
            for (j, s_du) in [(0u8, 2u8), (1, 3), (2, 4)] {
                a.t_to_s(Reg::s(7), Reg::t(fi * 3 + j)); // a(fi,j)
                a.f_mul(Reg::s(7), Reg::s(7), Reg::s(s_du));
                if j == 0 {
                    a.f_add(Reg::s(5), Reg::s(1), Reg::s(7));
                } else {
                    a.f_add(Reg::s(5), Reg::s(5), Reg::s(7));
                }
            }
            a.f_add(Reg::s(5), Reg::s(5), Reg::s(6));
            a.st_s(Reg::s(5), Reg::a(1), d(1, kx, base, 0));
        }
        a.a_add_imm(Reg::a(1), Reg::a(1), 1);
        a.br_an(top);
    }
    a.halt();

    // Check the written plane-1 interior of all three fields.
    let mut checks = Vec::new();
    for kx in 2..=3i64 {
        for ky in 2..=n_us {
            checks.push((
                U1 as u64 + idx(1, kx, ky) as u64,
                u1[idx(1, kx, ky)].to_bits(),
            ));
            checks.push((
                U2 as u64 + idx(1, kx, ky) as u64,
                u2[idx(1, kx, ky)].to_bits(),
            ));
            checks.push((
                U3 as u64 + idx(1, kx, ky) as u64,
                u3[idx(1, kx, ky)].to_bits(),
            ));
        }
    }

    Workload {
        name: "LLL8",
        description: "ADI integration: 3 coupled 2-D fields, coefficients in the T file",
        program: a.assemble().expect("LLL8 assembles"),
        memory: mem,
        checks,
        inst_limit: 200 * u64::from(n) + 10_000,
        lint_waivers: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_matches_golden_execution() {
        let w = build(10);
        let t = w.golden_trace().unwrap();
        w.verify(t.final_memory()).unwrap();
    }

    #[test]
    fn uses_the_t_file() {
        let w = build(5);
        let transfers = w
            .program
            .iter()
            .filter(|i| i.opcode == ruu_isa::Opcode::TtoS)
            .count();
        assert!(transfers >= 10, "T-file fetches in the body");
    }
}
