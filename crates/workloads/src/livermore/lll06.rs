//! LLL6 — general linear recurrence equations:
//!
//! ```text
//! for i in 1..n {
//!     w[i] = 0.0100;
//!     for k in 0..i {
//!         w[i] += b[k][i] * w[i-k-1];
//!     }
//! }
//! ```
//!
//! A triangular doubly nested loop: the inner reduction walks `w`
//! backwards while striding `b` by rows, and each outer iteration depends
//! on all previous ones.

use ruu_isa::{Asm, Reg};

use crate::layout::{checks_f64, fill_f64, fresh_memory, Lcg};
use crate::Workload;

const W: i64 = 0x1000;
const B: i64 = 0x2000; // b[k][i] at B + k*n + i
const CONST: i64 = 0x0800;

/// Builds the kernel for order `n` (inner iterations total n(n-1)/2).
#[must_use]
pub fn build(n: u32) -> Workload {
    let n_us = n as usize;
    let n_i = i64::from(n);
    let mut mem = fresh_memory();
    let mut rng = Lcg::new(0x66);
    let mut w = fill_f64(&mut mem, W as u64, n_us, &mut rng);
    let b = fill_f64(&mut mem, B as u64, n_us * n_us, &mut rng);
    mem.write_f64(CONST as u64, 0.0100);

    // Mirror.
    for i in 1..n_us {
        w[i] = 0.0100;
        for k in 0..i {
            w[i] += b[k * n_us + i] * w[i - k - 1];
        }
    }

    let mut a = Asm::new("LLL6");
    let outer = a.new_label();
    let inner = a.new_label();
    a.a_imm(Reg::a(5), CONST);
    a.ld_s(Reg::s(5), Reg::a(5), 0); // 0.0100
    a.a_imm(Reg::a(2), 1); // i
    a.a_imm(Reg::a(7), n_i - 1); // outer trips
    a.bind(outer);
    // S1 = w[i] accumulator, A3 = &b[k][i] walker, A4 = i-1-k walker.
    a.s_or(Reg::s(1), Reg::s(5), Reg::s(5)); // w[i] = 0.0100 (register move)
    a.a_add_imm(Reg::a(3), Reg::a(2), 0); // b index starts at i
    a.a_sub_imm(Reg::a(4), Reg::a(2), 1); // w index starts at i-1
    a.a_add_imm(Reg::a(0), Reg::a(2), 0); // inner trips = i
    a.bind(inner);
    a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
    a.ld_s(Reg::s(2), Reg::a(3), B); // b[k][i]
    a.ld_s(Reg::s(3), Reg::a(4), W); // w[i-k-1]
    a.f_mul(Reg::s(2), Reg::s(2), Reg::s(3));
    a.f_add(Reg::s(1), Reg::s(1), Reg::s(2));
    a.a_add_imm(Reg::a(3), Reg::a(3), n_i); // next row
    a.a_sub_imm(Reg::a(4), Reg::a(4), 1);
    a.br_an(inner);
    a.st_s(Reg::s(1), Reg::a(2), W); // w[i]
    a.a_add_imm(Reg::a(2), Reg::a(2), 1);
    a.a_sub_imm(Reg::a(7), Reg::a(7), 1);
    a.a_add_imm(Reg::a(0), Reg::a(7), 0);
    a.br_an(outer);
    a.halt();

    Workload {
        name: "LLL6",
        description: "general linear recurrence: triangular double loop",
        program: a.assemble().expect("LLL6 assembles"),
        memory: mem,
        checks: checks_f64(W as u64, &w),
        inst_limit: 20 * u64::from(n) * u64::from(n) + 10_000,
        lint_waivers: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_matches_golden_execution() {
        let w = build(12);
        let t = w.golden_trace().unwrap();
        w.verify(t.final_memory()).unwrap();
    }

    #[test]
    fn triangular_iteration_count() {
        let w = build(10);
        let t = w.golden_trace().unwrap();
        // 9 outer stores; inner muls = 9*10/2 = 45
        assert_eq!(t.mix().stores, 9);
        assert_eq!(t.mix().fu_count(ruu_isa::FuClass::FloatMul), 45);
    }
}
