//! LLL3 — inner product: `q = Σ z[k] * x[k]`.
//!
//! A serial reduction: every iteration's add depends on the previous
//! one, so the floating-add latency bounds throughput regardless of
//! window size — a deliberately ILP-poor kernel.

use ruu_analysis::{LintKind, Waiver};
use ruu_isa::{Asm, Reg};

use crate::layout::{fill_f64, fresh_memory, Lcg};
use crate::Workload;

const X: i64 = 0x1000;
const Z: i64 = 0x2000;
const Q: i64 = 0x0800; // result cell

/// Builds the kernel for `n` elements.
#[must_use]
pub fn build(n: u32) -> Workload {
    let n_us = n as usize;
    let mut mem = fresh_memory();
    let mut rng = Lcg::new(0x33);
    let x = fill_f64(&mut mem, X as u64, n_us, &mut rng);
    let z = fill_f64(&mut mem, Z as u64, n_us, &mut rng);

    // Mirror.
    let mut q = 0.0f64;
    for k in 0..n_us {
        q += z[k] * x[k];
    }

    let mut a = Asm::new("LLL3");
    let top = a.new_label();
    // CFT-style loop control: separate pointers, count in A7 with the
    // branch value computed into A0, and the running sum staged through
    // the T file each iteration (backup-register management).
    a.s_imm(Reg::s(1), 0); // q accumulator (0.0 bit pattern)
    a.s_to_t(Reg::t(1), Reg::s(1));
    a.a_imm(Reg::a(1), 0); // &z[k]
    a.a_imm(Reg::a(2), 0); // &x[k]
    a.a_imm(Reg::a(7), i64::from(n));
    a.a_imm(Reg::a(0), i64::from(n));
    a.bind(top);
    a.a_sub_imm(Reg::a(7), Reg::a(7), 1);
    a.a_add_imm(Reg::a(0), Reg::a(7), 0);
    a.ld_s(Reg::s(2), Reg::a(1), Z);
    a.ld_s(Reg::s(3), Reg::a(2), X);
    a.t_to_s(Reg::s(1), Reg::t(1)); // restore sum
    a.f_mul(Reg::s(2), Reg::s(2), Reg::s(3));
    a.f_add(Reg::s(1), Reg::s(1), Reg::s(2));
    a.s_to_t(Reg::t(1), Reg::s(1)); // bank sum
    a.a_add_imm(Reg::a(1), Reg::a(1), 1);
    a.a_add_imm(Reg::a(2), Reg::a(2), 1);
    a.br_an(top);
    a.a_imm(Reg::a(2), Q);
    a.st_s(Reg::s(1), Reg::a(2), 0);
    a.halt();

    Workload {
        name: "LLL3",
        description: "inner product: q = sum z[k]*x[k] (serial reduction)",
        program: a.assemble().expect("LLL3 assembles"),
        memory: mem,
        checks: vec![(Q as u64, q.to_bits())],
        inst_limit: 20 * u64::from(n) + 1_000,
        lint_waivers: vec![Waiver::at(
            LintKind::DeadWrite,
            5,
            "the hand compilation pre-seeds the branch condition register A0 \
             alongside the trip count; the in-loop copy makes it architecturally \
             dead, but it is kept to preserve the calibrated cycle counts",
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_matches_golden_execution() {
        let w = build(100);
        let t = w.golden_trace().unwrap();
        w.verify(t.final_memory()).unwrap();
    }

    #[test]
    fn body_is_eleven_instructions() {
        let a = build(10).golden_trace().unwrap().len();
        let b = build(11).golden_trace().unwrap().len();
        assert_eq!(b - a, 11);
    }
}
