//! LLL4 — banded linear equations:
//!
//! ```text
//! m = (n - 7) / 2
//! for k in [6, 6+m, 6+2m] {
//!     lw = k - 6;
//!     temp = x[k-1];
//!     for j in (4..n).step_by(5) {
//!         temp -= xz[lw] * y[j];
//!         lw += 1;
//!     }
//!     x[k-1] = y[4] * temp;
//! }
//! ```
//!
//! A strided serial reduction inside a short outer loop; outer-loop
//! pointers are staged through the B file.

use ruu_isa::{Asm, Reg};

use crate::layout::{checks_f64, fill_f64, fresh_memory, Lcg};
use crate::Workload;

const X: i64 = 0x1000;
const Y: i64 = 0x2000;
const XZ: i64 = 0x3000;

/// Builds the kernel for span `n` (the paper-scale size is 1001).
#[must_use]
pub fn build(n: u32) -> Workload {
    let n_us = n as usize;
    assert!(n_us >= 20, "LLL4 needs n >= 20");
    let mut mem = fresh_memory();
    let mut rng = Lcg::new(0x44);
    let mut x = fill_f64(&mut mem, X as u64, n_us, &mut rng);
    let y = fill_f64(&mut mem, Y as u64, n_us, &mut rng);
    let xz = fill_f64(&mut mem, XZ as u64, n_us + n_us / 5 + 8, &mut rng);

    // Mirror.
    let m = (n_us - 7) / 2;
    for k in [6, 6 + m, 6 + 2 * m] {
        let mut lw = k - 6;
        let mut temp = x[k - 1];
        let mut j = 4;
        while j < n_us {
            temp -= xz[lw] * y[j];
            lw += 1;
            j += 5;
        }
        x[k - 1] = y[4] * temp;
    }

    let inner_trips = (n_us - 4).div_ceil(5) as i64;
    let m_i = m as i64;

    let mut a = Asm::new("LLL4");
    let outer = a.new_label();
    let inner = a.new_label();
    // B1 holds k across the outer loop; A7 counts outer trips.
    a.a_imm(Reg::a(2), 6); // k = 6
    a.a_to_b(Reg::b(1), Reg::a(2));
    a.a_imm(Reg::a(7), 3); // outer trip count
    a.bind(outer);
    a.b_to_a(Reg::a(2), Reg::b(1)); // k
    a.a_sub_imm(Reg::a(3), Reg::a(2), 6); // lw = k - 6
    a.ld_s(Reg::s(1), Reg::a(2), X - 1); // temp = x[k-1]
    a.a_imm(Reg::a(1), 4); // j
    a.a_imm(Reg::a(0), inner_trips);
    a.bind(inner);
    a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
    a.ld_s(Reg::s(2), Reg::a(3), XZ); // xz[lw]
    a.ld_s(Reg::s(3), Reg::a(1), Y); // y[j]
    a.f_mul(Reg::s(2), Reg::s(2), Reg::s(3));
    a.f_sub(Reg::s(1), Reg::s(1), Reg::s(2));
    a.a_add_imm(Reg::a(3), Reg::a(3), 1); // lw += 1
    a.a_add_imm(Reg::a(1), Reg::a(1), 5); // j += 5
    a.br_an(inner);
    // x[k-1] = y[4] * temp
    a.a_imm(Reg::a(4), 4);
    a.ld_s(Reg::s(4), Reg::a(4), Y); // y[4]
    a.f_mul(Reg::s(1), Reg::s(4), Reg::s(1));
    a.st_s(Reg::s(1), Reg::a(2), X - 1);
    // k += m, loop 3 times
    a.a_add_imm(Reg::a(2), Reg::a(2), m_i);
    a.a_to_b(Reg::b(1), Reg::a(2));
    a.a_sub_imm(Reg::a(7), Reg::a(7), 1);
    a.a_add_imm(Reg::a(0), Reg::a(7), 0);
    a.br_an(outer);
    a.halt();

    Workload {
        name: "LLL4",
        description: "banded linear equations: strided dot inside short outer loop",
        program: a.assemble().expect("LLL4 assembles"),
        memory: mem,
        checks: checks_f64(X as u64, &x),
        inst_limit: 40 * u64::from(n) + 10_000,
        lint_waivers: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_matches_golden_execution() {
        let w = build(101);
        let t = w.golden_trace().unwrap();
        w.verify(t.final_memory()).unwrap();
    }

    #[test]
    fn three_outer_iterations() {
        let w = build(101);
        let t = w.golden_trace().unwrap();
        assert_eq!(t.mix().stores, 3);
    }
}
