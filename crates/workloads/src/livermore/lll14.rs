//! LLL14 — 1-D particle-in-cell.
//!
//! Same substitution as [`super::lll13`] (integer particle coordinates;
//! see DESIGN.md): data-dependent field gathers and a two-point charge
//! scatter with potential address collisions between neighbouring
//! particles.
//!
//! ```text
//! ix = vx[ip] & 127;
//! vy[ip] += ex[ix];
//! xx[ip] += vy[ip];
//! ir = xx[ip] & 127;
//! rh[ir]   += 1;
//! rh[ir+1] += 1;
//! ```

use ruu_isa::{Asm, Reg};

use crate::layout::{checks_u64, fresh_memory, Lcg};
use crate::Workload;

const VX: i64 = 0x1000;
const VY: i64 = 0x1800;
const XX: i64 = 0x2000;
const EX: i64 = 0x3000; // 128
const RH: i64 = 0x3100; // 129

/// Builds the kernel for `n` particles.
#[must_use]
pub fn build(n: u32) -> Workload {
    let n_us = n as usize;
    let mut mem = fresh_memory();
    let mut rng = Lcg::new(0xEE);
    let mut fill_ints = |base: i64, len: usize, bound: u64| -> Vec<u64> {
        let mut v = Vec::with_capacity(len);
        for i in 0..len {
            let val = rng.next_below(bound);
            mem.write(base as u64 + i as u64, val);
            v.push(val);
        }
        v
    };
    let vx = fill_ints(VX, n_us, 1 << 16);
    let mut vy = fill_ints(VY, n_us, 64);
    let mut xx = fill_ints(XX, n_us, 1 << 16);
    let ex = fill_ints(EX, 128, 16);
    let mut rh = vec![0u64; 129];

    // Mirror.
    for ip in 0..n_us {
        let ix = (vx[ip] & 127) as usize;
        vy[ip] = vy[ip].wrapping_add(ex[ix]);
        xx[ip] = xx[ip].wrapping_add(vy[ip]);
        let ir = (xx[ip] & 127) as usize;
        rh[ir] = rh[ir].wrapping_add(1);
        rh[ir + 1] = rh[ir + 1].wrapping_add(1);
    }

    let mut a = Asm::new("LLL14");
    let top = a.new_label();
    a.s_imm(Reg::s(7), 127); // grid mask
    a.s_imm(Reg::s(6), 1); // charge increment
    a.a_imm(Reg::a(1), 0); // ip
    a.a_imm(Reg::a(0), i64::from(n));
    a.bind(top);
    a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
    a.ld_s(Reg::s(1), Reg::a(1), VX);
    a.s_and(Reg::s(2), Reg::s(1), Reg::s(7)); // ix
    a.s_to_a(Reg::a(2), Reg::s(2));
    a.ld_s(Reg::s(3), Reg::a(2), EX); // ex[ix] (gather)
    a.ld_s(Reg::s(4), Reg::a(1), VY);
    a.s_add(Reg::s(4), Reg::s(4), Reg::s(3));
    a.st_s(Reg::s(4), Reg::a(1), VY);
    a.ld_s(Reg::s(5), Reg::a(1), XX);
    a.s_add(Reg::s(5), Reg::s(5), Reg::s(4));
    a.st_s(Reg::s(5), Reg::a(1), XX);
    a.s_and(Reg::s(2), Reg::s(5), Reg::s(7)); // ir
    a.s_to_a(Reg::a(3), Reg::s(2));
    a.ld_s(Reg::s(3), Reg::a(3), RH); // rh[ir]
    a.s_add(Reg::s(3), Reg::s(3), Reg::s(6));
    a.st_s(Reg::s(3), Reg::a(3), RH);
    a.ld_s(Reg::s(3), Reg::a(3), RH + 1); // rh[ir+1]
    a.s_add(Reg::s(3), Reg::s(3), Reg::s(6));
    a.st_s(Reg::s(3), Reg::a(3), RH + 1);
    a.a_add_imm(Reg::a(1), Reg::a(1), 1);
    a.br_an(top);
    a.halt();

    let mut checks = checks_u64(VY as u64, &vy);
    checks.extend(checks_u64(XX as u64, &xx));
    checks.extend(checks_u64(RH as u64, &rh));

    Workload {
        name: "LLL14",
        description: "1-D particle-in-cell (integer coordinates): gathers + charge scatter",
        program: a.assemble().expect("LLL14 assembles"),
        memory: mem,
        checks,
        inst_limit: 60 * u64::from(n) + 2_000,
        lint_waivers: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_matches_golden_execution() {
        let w = build(60);
        let t = w.golden_trace().unwrap();
        w.verify(t.final_memory()).unwrap();
    }

    #[test]
    fn charge_conservation() {
        let w = build(40);
        let t = w.golden_trace().unwrap();
        let total: u64 = (0..129).map(|i| t.final_memory().read(RH as u64 + i)).sum();
        assert_eq!(total, 80); // 2 increments per particle
    }
}
