//! LLL11 — first sum (prefix sum): `x[k] = x[k-1] + y[k]`.
//!
//! The tightest serial recurrence in the suite: one floating add per
//! iteration, each depending on the last. No issue mechanism can beat the
//! adder latency here; the interesting question is how little overhead
//! each mechanism adds around it.

use ruu_analysis::{LintKind, Waiver};
use ruu_isa::{Asm, Reg};

use crate::layout::{checks_f64, fill_f64, fresh_memory, Lcg};
use crate::Workload;

const X: i64 = 0x1000;
const Y: i64 = 0x3000;

/// Builds the kernel for `n` elements.
#[must_use]
pub fn build(n: u32) -> Workload {
    let n_us = n as usize;
    let mut mem = fresh_memory();
    let mut rng = Lcg::new(0xBB);
    let y = fill_f64(&mut mem, Y as u64, n_us, &mut rng);

    // Mirror: x[0] = y[0]; x[k] = x[k-1] + y[k].
    let mut x = vec![0.0f64; n_us];
    x[0] = y[0];
    for k in 1..n_us {
        x[k] = x[k - 1] + y[k];
    }

    let mut a = Asm::new("LLL11");
    let top = a.new_label();
    // CFT-style code: the recurrence value is re-read from x[k-1] every
    // iteration (store→load traffic the load registers must forward),
    // with the trip count in A7 and the branch value computed into A0.
    a.a_imm(Reg::a(1), 0);
    a.ld_s(Reg::s(1), Reg::a(1), Y); // x[0] = y[0]
    a.st_s(Reg::s(1), Reg::a(1), X);
    a.a_imm(Reg::a(1), 1);
    a.a_imm(Reg::a(7), i64::from(n) - 1);
    a.a_imm(Reg::a(0), i64::from(n) - 1);
    a.bind(top);
    a.a_sub_imm(Reg::a(7), Reg::a(7), 1);
    a.a_add_imm(Reg::a(0), Reg::a(7), 0);
    a.ld_s(Reg::s(2), Reg::a(1), Y);
    a.ld_s(Reg::s(1), Reg::a(1), X - 1); // reload x[k-1]
    a.f_add(Reg::s(1), Reg::s(1), Reg::s(2));
    a.st_s(Reg::s(1), Reg::a(1), X);
    a.a_add_imm(Reg::a(1), Reg::a(1), 1);
    a.br_an(top);
    a.halt();

    Workload {
        name: "LLL11",
        description: "first sum: x[k] = x[k-1] + y[k] (tightest recurrence)",
        program: a.assemble().expect("LLL11 assembles"),
        memory: mem,
        checks: checks_f64(X as u64, &x),
        inst_limit: 20 * u64::from(n) + 1_000,
        lint_waivers: vec![Waiver::at(
            LintKind::DeadWrite,
            5,
            "the hand compilation pre-seeds the branch condition register A0 \
             alongside the trip count; the in-loop copy makes it architecturally \
             dead, but it is kept to preserve the calibrated cycle counts",
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_matches_golden_execution() {
        let w = build(64);
        let t = w.golden_trace().unwrap();
        w.verify(t.final_memory()).unwrap();
    }

    #[test]
    fn body_is_six_instructions() {
        let a = build(10).golden_trace().unwrap().len();
        let b = build(11).golden_trace().unwrap().len();
        assert_eq!(b - a, 8);
    }
}
