//! LLL9 — integrate predictors:
//!
//! ```text
//! px[0][i] = dm28*px[12][i] + dm27*px[11][i] + dm26*px[10][i]
//!          + dm25*px[9][i]  + dm24*px[8][i]  + dm23*px[7][i]
//!          + dm22*px[6][i]  + c0*(px[4][i] + px[5][i]) + px[2][i]
//! ```
//!
//! Independent iterations over a 13-row predictor table; eight
//! coefficients split between the S and T files.

use ruu_isa::{Asm, Reg};

use crate::layout::{fill_f64, fresh_memory, Lcg};
use crate::Workload;

const CONST: i64 = 0x0800; // dm22..dm28, c0
const PX: i64 = 0x1000; // px[row][i] at PX + row*STRIDE + i
const STRIDE: i64 = 256;

/// Builds the kernel for `n` columns.
#[must_use]
pub fn build(n: u32) -> Workload {
    let n_us = n as usize;
    assert!(n_us <= STRIDE as usize, "columns must fit the row stride");
    let mut mem = fresh_memory();
    let mut rng = Lcg::new(0x99);
    let dm: Vec<f64> = (0..7).map(|_| rng.next_f64(0.1, 0.5)).collect(); // dm22..dm28
    let c0 = rng.next_f64(0.1, 0.5);
    for (i, c) in dm.iter().enumerate() {
        mem.write_f64(CONST as u64 + i as u64, *c);
    }
    mem.write_f64(CONST as u64 + 7, c0);
    let px0 = fill_f64(&mut mem, PX as u64, 13 * STRIDE as usize, &mut rng);

    // Mirror (associating left-to-right like the assembly).
    let mut px = px0;
    let row = |r: usize, i: usize| r * STRIDE as usize + i;
    for i in 0..n_us {
        let mut acc = dm[6] * px[row(12, i)]; // dm28
        acc += dm[5] * px[row(11, i)];
        acc += dm[4] * px[row(10, i)];
        acc += dm[3] * px[row(9, i)];
        acc += dm[2] * px[row(8, i)];
        acc += dm[1] * px[row(7, i)];
        acc += dm[0] * px[row(6, i)];
        acc += c0 * (px[row(4, i)] + px[row(5, i)]);
        acc += px[row(2, i)];
        px[row(0, i)] = acc;
    }

    let mut a = Asm::new("LLL9");
    let top = a.new_label();
    a.a_imm(Reg::a(6), CONST);
    // dm24..dm28 in S3..S7; dm22, dm23, c0 spill to T0..T2.
    for (i, s) in (2..7u8).zip(3..8u8) {
        a.ld_s(Reg::s(s), Reg::a(6), i64::from(i)); // dm24..dm28
    }
    for (i, t) in [0u8, 1, 7].into_iter().zip(0..3u8) {
        a.ld_s(Reg::s(1), Reg::a(6), i64::from(i));
        a.s_to_t(Reg::t(t), Reg::s(1)); // dm22, dm23, c0
    }
    a.a_imm(Reg::a(1), 0);
    a.a_imm(Reg::a(0), i64::from(n));
    a.bind(top);
    // CFT-style schedule: early trip decrement; loads run two ahead of
    // their consuming multiplies (double-buffered through S0/S1).
    a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
    let r = |k: i64| PX + k * STRIDE;
    a.ld_s(Reg::s(1), Reg::a(1), r(12));
    a.ld_s(Reg::s(0), Reg::a(1), r(11));
    a.f_mul(Reg::s(2), Reg::s(7), Reg::s(1)); // dm28*px12
    a.ld_s(Reg::s(1), Reg::a(1), r(10));
    a.f_mul(Reg::s(0), Reg::s(6), Reg::s(0)); // dm27*px11
    a.f_add(Reg::s(2), Reg::s(2), Reg::s(0));
    a.ld_s(Reg::s(0), Reg::a(1), r(9));
    a.f_mul(Reg::s(1), Reg::s(5), Reg::s(1)); // dm26*px10
    a.f_add(Reg::s(2), Reg::s(2), Reg::s(1));
    a.ld_s(Reg::s(1), Reg::a(1), r(8));
    a.f_mul(Reg::s(0), Reg::s(4), Reg::s(0)); // dm25*px9
    a.f_add(Reg::s(2), Reg::s(2), Reg::s(0));
    a.ld_s(Reg::s(0), Reg::a(1), r(7));
    a.f_mul(Reg::s(1), Reg::s(3), Reg::s(1)); // dm24*px8
    a.f_add(Reg::s(2), Reg::s(2), Reg::s(1));
    // dm23, dm22 from the T file
    a.t_to_s(Reg::s(1), Reg::t(1));
    a.f_mul(Reg::s(1), Reg::s(1), Reg::s(0)); // dm23*px7
    a.f_add(Reg::s(2), Reg::s(2), Reg::s(1));
    a.ld_s(Reg::s(0), Reg::a(1), r(6));
    a.t_to_s(Reg::s(1), Reg::t(0));
    a.f_mul(Reg::s(1), Reg::s(1), Reg::s(0)); // dm22*px6
    a.f_add(Reg::s(2), Reg::s(2), Reg::s(1));
    // c0*(px4 + px5)
    a.ld_s(Reg::s(1), Reg::a(1), r(4));
    a.ld_s(Reg::s(0), Reg::a(1), r(5));
    a.f_add(Reg::s(1), Reg::s(1), Reg::s(0));
    a.t_to_s(Reg::s(0), Reg::t(2));
    a.f_mul(Reg::s(1), Reg::s(0), Reg::s(1));
    a.f_add(Reg::s(2), Reg::s(2), Reg::s(1));
    // + px2
    a.ld_s(Reg::s(1), Reg::a(1), r(2));
    a.f_add(Reg::s(2), Reg::s(2), Reg::s(1));
    a.st_s(Reg::s(2), Reg::a(1), r(0));
    a.a_add_imm(Reg::a(1), Reg::a(1), 1);
    a.br_an(top);
    a.halt();

    let checks = (0..n_us)
        .map(|i| (PX as u64 + i as u64, px[row(0, i)].to_bits()))
        .collect();

    Workload {
        name: "LLL9",
        description: "integrate predictors: 13-row predictor table, coefficients in S+T",
        program: a.assemble().expect("LLL9 assembles"),
        memory: mem,
        checks,
        inst_limit: 80 * u64::from(n) + 2_000,
        lint_waivers: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_matches_golden_execution() {
        let w = build(30);
        let t = w.golden_trace().unwrap();
        w.verify(t.final_memory()).unwrap();
    }

    #[test]
    fn uses_s0_as_scratch_without_branching_on_it() {
        // S0 is used as an operand temp here; the loop branch tests A0.
        let w = build(5);
        assert!(w
            .program
            .iter()
            .filter(|i| i.is_branch())
            .all(|i| i.src1 == Some(Reg::a(0))));
    }
}
