//! LLL5 — tridiagonal elimination, below diagonal:
//! `x[i] = z[i] * (y[i] - x[i-1])`.
//!
//! A first-order linear recurrence: the carried value `x[i-1]` lives in a
//! register, so every iteration is a serial subtract→multiply chain — the
//! paper's canonical dependency-bound loop.

use ruu_isa::{Asm, Reg};

use crate::layout::{checks_f64, fill_f64, fresh_memory, Lcg};
use crate::Workload;

const X: i64 = 0x1000;
const Y: i64 = 0x2000;
const Z: i64 = 0x3000;

/// Builds the kernel for `n` recurrence steps.
#[must_use]
pub fn build(n: u32) -> Workload {
    let n_us = n as usize;
    let mut mem = fresh_memory();
    let mut rng = Lcg::new(0x55);
    let mut x = fill_f64(&mut mem, X as u64, n_us + 1, &mut rng);
    let y = fill_f64(&mut mem, Y as u64, n_us + 1, &mut rng);
    let z = fill_f64(&mut mem, Z as u64, n_us + 1, &mut rng);

    // Mirror: i = 1..=n.
    for i in 1..=n_us {
        x[i] = z[i] * (y[i] - x[i - 1]);
    }

    let mut a = Asm::new("LLL5");
    let top = a.new_label();
    a.a_imm(Reg::a(1), 1); // i
    a.a_imm(Reg::a(2), 0);
    a.ld_s(Reg::s(1), Reg::a(2), X); // carried x[0]
    a.a_imm(Reg::a(0), i64::from(n));
    a.bind(top);
    a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
    a.ld_s(Reg::s(2), Reg::a(1), Y); // y[i]
    a.ld_s(Reg::s(3), Reg::a(1), Z); // z[i]
    a.f_sub(Reg::s(2), Reg::s(2), Reg::s(1)); // y[i] - x[i-1]
    a.f_mul(Reg::s(1), Reg::s(3), Reg::s(2)); // new carried x[i]
    a.st_s(Reg::s(1), Reg::a(1), X);
    a.a_add_imm(Reg::a(1), Reg::a(1), 1);
    a.br_an(top);
    a.halt();

    Workload {
        name: "LLL5",
        description: "tridiagonal elimination: x[i] = z[i]*(y[i] - x[i-1]) (recurrence)",
        program: a.assemble().expect("LLL5 assembles"),
        memory: mem,
        checks: checks_f64(X as u64, &x),
        inst_limit: 20 * u64::from(n) + 1_000,
        lint_waivers: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_matches_golden_execution() {
        let w = build(100);
        let t = w.golden_trace().unwrap();
        w.verify(t.final_memory()).unwrap();
    }

    #[test]
    fn body_is_eight_instructions() {
        let a = build(10).golden_trace().unwrap().len();
        let b = build(11).golden_trace().unwrap().len();
        assert_eq!(b - a, 8);
    }
}
