//! LLL13 — 2-D particle-in-cell.
//!
//! **Substitution** (documented in DESIGN.md): the original kernel
//! converts float particle coordinates to integer grid indices; this ISA
//! subset has no float→int conversion, so particle state is kept in
//! integers. The architecturally interesting structure is preserved
//! exactly: *data-dependent gathers* (field lookups at computed indices),
//! read-modify-write particle updates, and a *scatter* with potential
//! address collisions — the load registers' disambiguation workload.
//!
//! ```text
//! i1 = p1[ip] & 63;  j1 = p2[ip] & 63;
//! p3[ip] += b[i1*64 + j1];
//! p4[ip] += c[i1*64 + j1];
//! p1[ip] += p3[ip];  p2[ip] += p4[ip];
//! i2 = p1[ip] & 63;  j2 = p2[ip] & 63;
//! p1[ip] += y[i2 + 32];  p2[ip] += z[j2 + 32];
//! h[i2*64 + j2] += 1;
//! ```

use ruu_isa::{Asm, Reg};

use crate::layout::{checks_u64, fresh_memory, Lcg};
use crate::Workload;

const P1: i64 = 0x1000;
const P2: i64 = 0x1800;
const P3: i64 = 0x2000;
const P4: i64 = 0x2800;
const B: i64 = 0x3000; // 64x64
const C: i64 = 0x4000; // 64x64
const Y: i64 = 0x5000; // 128
const Z: i64 = 0x5100; // 128
const H: i64 = 0x6000; // 64x64

/// Builds the kernel for `n` particles.
#[must_use]
pub fn build(n: u32) -> Workload {
    let n_us = n as usize;
    let mut mem = fresh_memory();
    let mut rng = Lcg::new(0xDD);
    let mut fill_ints = |base: i64, len: usize, bound: u64| -> Vec<u64> {
        let mut v = Vec::with_capacity(len);
        for i in 0..len {
            let val = rng.next_below(bound);
            mem.write(base as u64 + i as u64, val);
            v.push(val);
        }
        v
    };
    let mut p1 = fill_ints(P1, n_us, 1 << 20);
    let mut p2 = fill_ints(P2, n_us, 1 << 20);
    let mut p3 = fill_ints(P3, n_us, 16);
    let mut p4 = fill_ints(P4, n_us, 16);
    let b = fill_ints(B, 64 * 64, 8);
    let c = fill_ints(C, 64 * 64, 8);
    let y = fill_ints(Y, 128, 8);
    let z = fill_ints(Z, 128, 8);
    let mut h = vec![0u64; 64 * 64];

    // Mirror.
    for ip in 0..n_us {
        let i1 = (p1[ip] & 63) as usize;
        let j1 = (p2[ip] & 63) as usize;
        p3[ip] = p3[ip].wrapping_add(b[i1 * 64 + j1]);
        p4[ip] = p4[ip].wrapping_add(c[i1 * 64 + j1]);
        p1[ip] = p1[ip].wrapping_add(p3[ip]);
        p2[ip] = p2[ip].wrapping_add(p4[ip]);
        let i2 = (p1[ip] & 63) as usize;
        let j2 = (p2[ip] & 63) as usize;
        p1[ip] = p1[ip].wrapping_add(y[i2 + 32]);
        p2[ip] = p2[ip].wrapping_add(z[j2 + 32]);
        h[i2 * 64 + j2] = h[i2 * 64 + j2].wrapping_add(1);
    }

    let mut a = Asm::new("LLL13");
    let top = a.new_label();
    a.s_imm(Reg::s(7), 63); // grid mask
    a.s_imm(Reg::s(6), 1); // histogram increment
    a.a_imm(Reg::a(1), 0); // ip
    a.a_imm(Reg::a(0), i64::from(n));
    a.bind(top);
    a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
    a.ld_s(Reg::s(1), Reg::a(1), P1);
    a.ld_s(Reg::s(2), Reg::a(1), P2);
    a.s_and(Reg::s(3), Reg::s(1), Reg::s(7)); // i1
    a.s_and(Reg::s(4), Reg::s(2), Reg::s(7)); // j1
    a.s_shl(Reg::s(3), Reg::s(3), 6);
    a.s_add(Reg::s(3), Reg::s(3), Reg::s(4)); // idx1
    a.s_to_a(Reg::a(2), Reg::s(3));
    a.ld_s(Reg::s(4), Reg::a(2), B); // b[idx1] (gather)
    a.ld_s(Reg::s(5), Reg::a(1), P3);
    a.s_add(Reg::s(5), Reg::s(5), Reg::s(4)); // p3'
    a.st_s(Reg::s(5), Reg::a(1), P3);
    a.ld_s(Reg::s(4), Reg::a(2), C); // c[idx1] (gather)
    a.ld_s(Reg::s(3), Reg::a(1), P4);
    a.s_add(Reg::s(3), Reg::s(3), Reg::s(4)); // p4'
    a.st_s(Reg::s(3), Reg::a(1), P4);
    a.s_add(Reg::s(1), Reg::s(1), Reg::s(5)); // p1 += p3'
    a.s_add(Reg::s(2), Reg::s(2), Reg::s(3)); // p2 += p4'
    a.s_and(Reg::s(4), Reg::s(1), Reg::s(7)); // i2
    a.s_and(Reg::s(5), Reg::s(2), Reg::s(7)); // j2
    a.s_to_a(Reg::a(3), Reg::s(4));
    a.ld_s(Reg::s(3), Reg::a(3), Y + 32); // y[i2+32]
    a.s_add(Reg::s(1), Reg::s(1), Reg::s(3));
    a.st_s(Reg::s(1), Reg::a(1), P1);
    a.s_to_a(Reg::a(4), Reg::s(5));
    a.ld_s(Reg::s(3), Reg::a(4), Z + 32); // z[j2+32]
    a.s_add(Reg::s(2), Reg::s(2), Reg::s(3));
    a.st_s(Reg::s(2), Reg::a(1), P2);
    a.s_shl(Reg::s(4), Reg::s(4), 6);
    a.s_add(Reg::s(4), Reg::s(4), Reg::s(5)); // idx2
    a.s_to_a(Reg::a(5), Reg::s(4));
    a.ld_s(Reg::s(3), Reg::a(5), H); // h scatter: read
    a.s_add(Reg::s(3), Reg::s(3), Reg::s(6));
    a.st_s(Reg::s(3), Reg::a(5), H); // h scatter: write
    a.a_add_imm(Reg::a(1), Reg::a(1), 1);
    a.br_an(top);
    a.halt();

    let mut checks = checks_u64(P1 as u64, &p1);
    checks.extend(checks_u64(P2 as u64, &p2));
    checks.extend(checks_u64(P3 as u64, &p3));
    checks.extend(checks_u64(P4 as u64, &p4));
    checks.extend(checks_u64(H as u64, &h));

    Workload {
        name: "LLL13",
        description: "2-D particle-in-cell (integer coordinates): gathers + histogram scatter",
        program: a.assemble().expect("LLL13 assembles"),
        memory: mem,
        checks,
        inst_limit: 80 * u64::from(n) + 2_000,
        lint_waivers: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_matches_golden_execution() {
        let w = build(50);
        let t = w.golden_trace().unwrap();
        w.verify(t.final_memory()).unwrap();
    }

    #[test]
    fn histogram_counts_particles() {
        let w = build(32);
        let t = w.golden_trace().unwrap();
        let total: u64 = (0..64 * 64)
            .map(|i| t.final_memory().read(H as u64 + i))
            .sum();
        assert_eq!(total, 32);
    }
}
