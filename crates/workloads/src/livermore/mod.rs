//! The first 14 Lawrence Livermore loops, hand-compiled to the model
//! architecture (paper §2.1).
//!
//! Each module builds one kernel: the assembly, the initial data, and a
//! Rust *mirror* of the computation whose results become the workload's
//! bit-exact memory checks. The default sizes (`lll1()` .. `lll14()`) are
//! chosen so dynamic instruction counts land near the paper's Table 1.
//!
//! Conventions (CFT-flavoured scalar code):
//! * the loop trip count lives in `A0` and loops close with `br_an` —
//!   branches test `A0`, matching the paper's observation that "most
//!   branch instructions tested the value of A0";
//! * one fused induction pointer (usually `A1`) serves all same-index
//!   arrays via constant displacements;
//! * loop-invariant floats live in S registers, with overflow spilled to
//!   the T file (fetched by `t_to_s` inside the body) and loop-invariant
//!   addresses restored from the B file — the register-file traffic the
//!   RSTU/RUU must handle for all 144 registers.

mod lll01;
mod lll02;
mod lll03;
mod lll04;
mod lll05;
mod lll06;
mod lll07;
mod lll08;
mod lll09;
mod lll10;
mod lll11;
mod lll12;
mod lll13;
mod lll14;

use crate::Workload;

/// LLL1 — hydro fragment (default size).
#[must_use]
pub fn lll1() -> Workload {
    lll01::build(400)
}

/// LLL2 — incomplete Cholesky conjugate gradient (default size).
#[must_use]
pub fn lll2() -> Workload {
    lll02::build(500)
}

/// LLL3 — inner product (default size).
#[must_use]
pub fn lll3() -> Workload {
    lll03::build(1001)
}

/// LLL4 — banded linear equations (default size).
#[must_use]
pub fn lll4() -> Workload {
    lll04::build(1001)
}

/// LLL5 — tridiagonal elimination, below diagonal (default size).
#[must_use]
pub fn lll5() -> Workload {
    lll05::build(995)
}

/// LLL6 — general linear recurrence equations (default size).
#[must_use]
pub fn lll6() -> Workload {
    lll06::build(50)
}

/// LLL7 — equation of state fragment (default size).
#[must_use]
pub fn lll7() -> Workload {
    lll07::build(150)
}

/// LLL8 — ADI integration (default size).
#[must_use]
pub fn lll8() -> Workload {
    lll08::build(40)
}

/// LLL9 — integrate predictors (default size).
#[must_use]
pub fn lll9() -> Workload {
    lll09::build(150)
}

/// LLL10 — difference predictors (default size).
#[must_use]
pub fn lll10() -> Workload {
    lll10::build(130)
}

/// LLL11 — first sum (default size).
#[must_use]
pub fn lll11() -> Workload {
    lll11::build(1300)
}

/// LLL12 — first difference (default size).
#[must_use]
pub fn lll12() -> Workload {
    lll12::build(1300)
}

/// LLL13 — 2-D particle-in-cell (integer-coordinate substitution,
/// default size).
#[must_use]
pub fn lll13() -> Workload {
    lll13::build(280)
}

/// LLL14 — 1-D particle-in-cell (integer-coordinate substitution,
/// default size).
#[must_use]
pub fn lll14() -> Workload {
    lll14::build(380)
}

/// All 14 loops at their default sizes, in order.
#[must_use]
pub fn all() -> Vec<Workload> {
    vec![
        lll1(),
        lll2(),
        lll3(),
        lll4(),
        lll5(),
        lll6(),
        lll7(),
        lll8(),
        lll9(),
        lll10(),
        lll11(),
        lll12(),
        lll13(),
        lll14(),
    ]
}

/// Looks a loop up by name (`"LLL1"`..`"LLL14"`, case-insensitive).
#[must_use]
pub fn by_name(name: &str) -> Option<Workload> {
    let lower = name.to_ascii_lowercase();
    all()
        .into_iter()
        .find(|w| w.name.to_ascii_lowercase() == lower)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every kernel must execute on the golden interpreter and reproduce
    /// its Rust mirror bit-exactly.
    #[test]
    fn all_kernels_execute_and_verify() {
        for w in all() {
            let t = w
                .golden_trace()
                .unwrap_or_else(|e| panic!("{} failed to execute: {e}", w.name));
            w.verify(t.final_memory())
                .unwrap_or_else(|e| panic!("{} mirror mismatch: {e}", w.name));
            assert!(!w.checks.is_empty(), "{} has no checks", w.name);
        }
    }

    /// Dynamic sizes should land in the neighbourhood of the paper's
    /// Table 1 (thousands of instructions per loop, ~100k total).
    #[test]
    fn dynamic_sizes_are_in_paper_range() {
        let mut total = 0;
        for w in all() {
            let t = w.golden_trace().unwrap();
            let n = t.len() as u64;
            assert!(
                (2_000..20_000).contains(&n),
                "{}: {n} dynamic instructions out of expected range",
                w.name
            );
            total += n;
        }
        assert!(
            (60_000..200_000).contains(&total),
            "total {total} out of range"
        );
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("lll7").unwrap().name, "LLL7");
        assert_eq!(by_name("LLL14").unwrap().name, "LLL14");
        assert!(by_name("LLL15").is_none());
    }

    /// Loops must use branches that test A0 (the paper's observation) and
    /// must contain memory traffic.
    #[test]
    fn kernels_look_like_cft_output() {
        for w in all() {
            let branches = w.program.iter().filter(|i| i.is_branch()).count();
            let mems = w.program.iter().filter(|i| i.is_mem()).count();
            assert!(branches >= 1, "{} has no loop branch", w.name);
            assert!(mems >= 1, "{} has no memory traffic", w.name);
        }
    }
}
