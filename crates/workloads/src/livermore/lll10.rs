//! LLL10 — difference predictors:
//!
//! ```text
//! ar = cx[4][i];
//! br = ar - px[4][i];  px[4][i] = ar;
//! cr = br - px[5][i];  px[5][i] = br;
//! ...                                  (nine difference stages)
//! px[13][i] = last difference
//! ```
//!
//! A pure load/subtract/store chain — memory-port and
//! store→load-adjacent traffic with a serial dependence down each column.

use ruu_isa::{Asm, Reg};

use crate::layout::{fill_f64, fresh_memory, Lcg};
use crate::Workload;

const PX: i64 = 0x1000;
const CX: i64 = 0x6000;
const STRIDE: i64 = 256;

/// Builds the kernel for `n` columns.
#[must_use]
pub fn build(n: u32) -> Workload {
    let n_us = n as usize;
    let mut mem = fresh_memory();
    let mut rng = Lcg::new(0xAA);
    let px0 = fill_f64(&mut mem, PX as u64, 14 * STRIDE as usize, &mut rng);
    let cx = fill_f64(&mut mem, CX as u64, 5 * STRIDE as usize, &mut rng);

    // Mirror.
    let mut px = px0;
    let row = |r: usize, i: usize| r * STRIDE as usize + i;
    for i in 0..n_us {
        let mut cur = cx[row(4, i)];
        for r in 4..13 {
            let next = cur - px[row(r, i)];
            px[row(r, i)] = cur;
            cur = next;
        }
        px[row(13, i)] = cur;
    }

    let mut a = Asm::new("LLL10");
    let top = a.new_label();
    a.a_imm(Reg::a(1), 0);
    a.a_imm(Reg::a(0), i64::from(n));
    a.bind(top);
    // CFT-style schedule: early trip decrement; each stage's px load is
    // issued one stage ahead (S2/S4 double buffer).
    a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
    a.ld_s(Reg::s(1), Reg::a(1), CX + 4 * STRIDE); // cur = cx[4][i]
    a.ld_s(Reg::s(2), Reg::a(1), PX + 4 * STRIDE); // px[4][i]
    for r in 4..13i64 {
        if r < 12 {
            a.ld_s(Reg::s(4), Reg::a(1), PX + (r + 1) * STRIDE); // prefetch
        }
        a.f_sub(Reg::s(3), Reg::s(1), Reg::s(2)); // next
        a.st_s(Reg::s(1), Reg::a(1), PX + r * STRIDE); // px[r][i] = cur
        a.s_or(Reg::s(1), Reg::s(3), Reg::s(3)); // cur = next
        if r < 12 {
            a.s_or(Reg::s(2), Reg::s(4), Reg::s(4)); // shift buffer
        }
    }
    a.st_s(Reg::s(1), Reg::a(1), PX + 13 * STRIDE);
    a.a_add_imm(Reg::a(1), Reg::a(1), 1);
    a.br_an(top);
    a.halt();

    let mut checks = Vec::new();
    for r in 4..14usize {
        for i in 0..n_us {
            checks.push((
                PX as u64 + (r as u64) * STRIDE as u64 + i as u64,
                px[row(r, i)].to_bits(),
            ));
        }
    }

    Workload {
        name: "LLL10",
        description: "difference predictors: nine-stage load/subtract/store chain",
        program: a.assemble().expect("LLL10 assembles"),
        memory: mem,
        checks,
        inst_limit: 80 * u64::from(n) + 2_000,
        lint_waivers: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_matches_golden_execution() {
        let w = build(20);
        let t = w.golden_trace().unwrap();
        w.verify(t.final_memory()).unwrap();
    }

    #[test]
    fn ten_stores_per_column() {
        let w = build(8);
        let t = w.golden_trace().unwrap();
        assert_eq!(t.mix().stores, 80);
    }
}
