//! LLL2 — excerpt from an incomplete Cholesky conjugate-gradient solver:
//! a log-depth reduction with strided access and an outer control loop.
//!
//! ```text
//! ii = n; ipntp = 0;
//! loop {
//!     ipnt = ipntp; ipntp += ii; ii /= 2; i = ipntp;
//!     for k in (ipnt+1 .. ipntp).step_by(2) {
//!         i += 1;
//!         x[i] = x[k] - v[k]*x[k-1] - v[k+1]*x[k+1];
//!     }
//!     if ii <= 1 { break }
//! }
//! ```
//!
//! The outer loop exercises integer/address computation (including the
//! halving of `ii` through an S-register shift) and pointer
//! re-initialisation from the B file.

use ruu_isa::{Asm, Reg};

use crate::layout::{checks_f64, fill_f64, fresh_memory, Lcg};
use crate::Workload;

const X: i64 = 0x1000;
const V: i64 = 0x3000;

/// Builds the kernel for initial span `n` (arrays sized `2n + 4`).
#[must_use]
pub fn build(n: u32) -> Workload {
    let n_us = n as usize;
    let size = 2 * n_us + 4;
    let mut mem = fresh_memory();
    let mut rng = Lcg::new(0x22);
    let x0 = fill_f64(&mut mem, X as u64, size, &mut rng);
    let v = fill_f64(&mut mem, V as u64, size, &mut rng);

    // Mirror.
    let mut x = x0;
    let mut ii = n_us;
    let mut ipntp = 0usize;
    loop {
        let ipnt = ipntp;
        ipntp += ii;
        ii /= 2;
        let mut i = ipntp;
        let mut k = ipnt + 1;
        while k < ipntp {
            i += 1;
            x[i] = x[k] - v[k] * x[k - 1] - v[k + 1] * x[k + 1];
            k += 2;
        }
        if ii <= 1 {
            break;
        }
    }

    let mut a = Asm::new("LLL2");
    let outer = a.new_label();
    let inner = a.new_label();
    let skip = a.new_label();
    let done = a.new_label();
    // A3 = ii, A4 = ipntp, A5 = ipnt, A1 = k pointer, A2 = i pointer.
    a.a_imm(Reg::a(3), i64::from(n));
    a.a_imm(Reg::a(4), 0);
    a.bind(outer);
    // ipnt = ipntp; ipntp += ii; ii >>= 1 (shift via the S file).
    a.a_add_imm(Reg::a(5), Reg::a(4), 0); // ipnt = ipntp
    a.a_add(Reg::a(4), Reg::a(4), Reg::a(3)); // ipntp += ii
    a.a_to_s(Reg::s(1), Reg::a(3));
    a.s_shr(Reg::s(1), Reg::s(1), 1);
    a.s_to_a(Reg::a(3), Reg::s(1)); // ii /= 2
    a.a_add_imm(Reg::a(2), Reg::a(4), 0); // i = ipntp
    a.a_add_imm(Reg::a(1), Reg::a(5), 1); // k = ipnt + 1
                                          // trip = ii (the halved value equals floor(old_ii/2) = iteration count)
    a.a_add_imm(Reg::a(0), Reg::a(3), 0);
    a.br_az(skip); // empty pass guard
    a.bind(inner);
    // CFT-style schedule: all loads up front, early trip decrement.
    a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
    a.ld_s(Reg::s(1), Reg::a(1), V); // v[k]
    a.ld_s(Reg::s(2), Reg::a(1), X - 1); // x[k-1]
    a.ld_s(Reg::s(4), Reg::a(1), X); // x[k]
    a.ld_s(Reg::s(5), Reg::a(1), V + 1); // v[k+1]
    a.ld_s(Reg::s(6), Reg::a(1), X + 1); // x[k+1]
    a.f_mul(Reg::s(3), Reg::s(1), Reg::s(2));
    a.f_sub(Reg::s(4), Reg::s(4), Reg::s(3));
    a.f_mul(Reg::s(3), Reg::s(5), Reg::s(6));
    a.f_sub(Reg::s(4), Reg::s(4), Reg::s(3));
    a.a_add_imm(Reg::a(2), Reg::a(2), 1); // i += 1
    a.st_s(Reg::s(4), Reg::a(2), X); // x[i]
    a.a_add_imm(Reg::a(1), Reg::a(1), 2); // k += 2
    a.br_an(inner);
    a.bind(skip);
    // continue while ii > 1
    a.a_sub_imm(Reg::a(0), Reg::a(3), 1); // A0 = ii - 1
    a.br_az(done);
    a.jump(outer);
    a.bind(done);
    a.halt();

    Workload {
        name: "LLL2",
        description: "ICCG excerpt: log-depth strided reduction",
        program: a.assemble().expect("LLL2 assembles"),
        memory: mem,
        checks: checks_f64(X as u64, &x),
        inst_limit: 60 * u64::from(n) + 10_000,
        lint_waivers: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_matches_golden_execution() {
        let w = build(64);
        let t = w.golden_trace().unwrap();
        w.verify(t.final_memory()).unwrap();
    }

    #[test]
    fn total_inner_iterations_near_n() {
        // sum of floor(ii/2) over passes ≈ n
        let w = build(128);
        let t = w.golden_trace().unwrap();
        let stores = t.mix().stores;
        assert!((100..=128).contains(&stores), "stores = {stores}");
    }
}
