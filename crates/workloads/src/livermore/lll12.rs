//! LLL12 — first difference: `x[k] = y[k+1] - y[k]`.
//!
//! Fully independent iterations, two loads and one subtract each: the
//! memory port and the result bus are the only contended resources.

use ruu_analysis::{LintKind, Waiver};
use ruu_isa::{Asm, Reg};

use crate::layout::{checks_f64, fill_f64, fresh_memory, Lcg};
use crate::Workload;

const X: i64 = 0x1000;
const Y: i64 = 0x3000;

/// Builds the kernel for `n` elements.
#[must_use]
pub fn build(n: u32) -> Workload {
    let n_us = n as usize;
    let mut mem = fresh_memory();
    let mut rng = Lcg::new(0xCC);
    let y = fill_f64(&mut mem, Y as u64, n_us + 1, &mut rng);

    // Mirror.
    let mut x = vec![0.0f64; n_us];
    for k in 0..n_us {
        x[k] = y[k + 1] - y[k];
    }

    let mut a = Asm::new("LLL12");
    let top = a.new_label();
    // CFT-style loop control: one pointer per array, count in A7 with the
    // branch value computed into A0.
    a.a_imm(Reg::a(1), 0); // &y[k]
    a.a_imm(Reg::a(2), 0); // &x[k]
    a.a_imm(Reg::a(7), i64::from(n));
    a.a_imm(Reg::a(0), i64::from(n));
    a.bind(top);
    a.a_sub_imm(Reg::a(7), Reg::a(7), 1);
    a.a_add_imm(Reg::a(0), Reg::a(7), 0);
    a.ld_s(Reg::s(1), Reg::a(1), Y + 1);
    a.ld_s(Reg::s(2), Reg::a(1), Y);
    a.f_sub(Reg::s(1), Reg::s(1), Reg::s(2));
    a.st_s(Reg::s(1), Reg::a(2), X);
    a.a_add_imm(Reg::a(1), Reg::a(1), 1);
    a.a_add_imm(Reg::a(2), Reg::a(2), 1);
    a.br_an(top);
    a.halt();

    Workload {
        name: "LLL12",
        description: "first difference: x[k] = y[k+1] - y[k] (independent iterations)",
        program: a.assemble().expect("LLL12 assembles"),
        memory: mem,
        checks: checks_f64(X as u64, &x),
        inst_limit: 20 * u64::from(n) + 1_000,
        lint_waivers: vec![Waiver::at(
            LintKind::DeadWrite,
            3,
            "the hand compilation pre-seeds the branch condition register A0 \
             alongside the trip count; the in-loop copy makes it architecturally \
             dead, but it is kept to preserve the calibrated cycle counts",
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_matches_golden_execution() {
        let w = build(64);
        let t = w.golden_trace().unwrap();
        w.verify(t.final_memory()).unwrap();
    }

    #[test]
    fn two_loads_per_iteration() {
        let w = build(10);
        let t = w.golden_trace().unwrap();
        assert_eq!(t.mix().loads, 20);
        assert_eq!(t.mix().stores, 10);
    }
}
