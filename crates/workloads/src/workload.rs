//! The [`Workload`] record: a program, its initial memory, and its
//! expected results.

use std::fmt;

use ruu_analysis::Waiver;
use ruu_exec::{ExecError, Memory, Trace};
use ruu_isa::Program;

/// A check failure from [`Workload::verify`].
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// A checked memory word differs from the mirror computation.
    Mismatch {
        /// The memory word address.
        addr: u64,
        /// Expected bit pattern (from the Rust mirror).
        expected: u64,
        /// Observed bit pattern.
        got: u64,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Mismatch {
                addr,
                expected,
                got,
            } => write!(
                f,
                "memory[{addr}] = {got:#x} ({}), mirror expected {expected:#x} ({})",
                f64::from_bits(*got),
                f64::from_bits(*expected)
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

/// A benchmark kernel: program, initial data, and expected outputs.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name, e.g. `"LLL3"`.
    pub name: &'static str,
    /// One-line description of the kernel.
    pub description: &'static str,
    /// The assembled program.
    pub program: Program,
    /// Initial memory (array data).
    pub memory: Memory,
    /// `(address, expected bit pattern)` checks computed by the Rust
    /// mirror of the kernel — every checked word of the result arrays.
    pub checks: Vec<(u64, u64)>,
    /// A generous dynamic-instruction bound for simulator runs.
    pub inst_limit: u64,
    /// Inline acknowledgements of intentional `ruu-analysis` lint
    /// findings, declared next to the kernel code they waive. A shipped
    /// workload must be lint-clean modulo these.
    pub lint_waivers: Vec<Waiver>,
}

impl Workload {
    /// Verifies a final memory image against the mirror computation.
    ///
    /// # Errors
    /// Returns the first [`VerifyError::Mismatch`] found.
    pub fn verify(&self, mem: &Memory) -> Result<(), VerifyError> {
        for &(addr, expected) in &self.checks {
            let got = mem.read(addr);
            if got != expected {
                return Err(VerifyError::Mismatch {
                    addr,
                    expected,
                    got,
                });
            }
        }
        Ok(())
    }

    /// Runs the kernel on the golden interpreter and returns its trace.
    ///
    /// # Errors
    /// Propagates interpreter errors.
    pub fn golden_trace(&self) -> Result<Trace, ExecError> {
        Trace::capture(&self.program, self.memory.clone(), self.inst_limit)
    }
}
