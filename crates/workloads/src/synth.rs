//! Synthetic program generators: random (but always-terminating) programs
//! for property tests, and dependency-chain microkernels for ablation
//! benches.

use ruu_exec::Memory;
use ruu_isa::{Asm, Program, Reg, RegFile};

use crate::layout::Lcg;

/// Parameters for [`random_program`].
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of segments (straight-line blocks or counted loops).
    pub segments: usize,
    /// Instructions per block / loop body.
    pub block_len: usize,
    /// Maximum loop trip count.
    pub max_trips: u32,
    /// Whether to include loads and stores.
    pub mem_ops: bool,
    /// Concentrate all memory traffic on a handful of addresses (a fixed
    /// base register and tiny displacements), maximising load-register
    /// matches, forwarding chains and write-after-read hazards.
    pub hot_addresses: bool,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            segments: 6,
            block_len: 12,
            max_trips: 6,
            mem_ops: true,
            hot_addresses: false,
        }
    }
}

// `A0` is reserved for loop counters and `S0` is left alone so generated
// branch behaviour stays comprehensible.
fn a_reg(rng: &mut Lcg) -> Reg {
    Reg::a(1 + rng.next_below(7) as u8)
}

fn s_reg(rng: &mut Lcg) -> Reg {
    Reg::s(1 + rng.next_below(7) as u8)
}

/// Tracks pending (written-but-not-yet-read) register values during
/// generation so every program is `ruu_analysis::lint`-clean by
/// construction: a destination whose pending value would be silently
/// overwritten (a dead write) is read as a source first, `B`/`T`
/// registers are only read after being written, and [`drain`] stores
/// every still-pending value to memory before `halt` so nothing is left
/// unread at exit. Asserted over random seeds by this module's proptest.
#[derive(Debug, Default, Clone, Copy)]
struct Pending {
    a: u8,
    s: u8,
    b: u8,
    t: u8,
    b_written: u8,
    t_written: u8,
}

impl Pending {
    fn mask(&self, file: RegFile) -> u8 {
        match file {
            RegFile::A => self.a,
            RegFile::S => self.s,
            RegFile::B => self.b,
            RegFile::T => self.t,
        }
    }

    fn is_pending(&self, r: Reg) -> bool {
        self.mask(r.file()) & (1 << r.num()) != 0
    }

    fn read(&mut self, r: Reg) {
        let clear = !(1u8 << r.num());
        match r.file() {
            RegFile::A => self.a &= clear,
            RegFile::S => self.s &= clear,
            RegFile::B => self.b &= clear,
            RegFile::T => self.t &= clear,
        }
    }

    fn write(&mut self, r: Reg) {
        let bit = 1u8 << r.num();
        match r.file() {
            RegFile::A => self.a |= bit,
            RegFile::S => self.s |= bit,
            RegFile::B => {
                self.b |= bit;
                self.b_written |= bit;
            }
            RegFile::T => {
                self.t |= bit;
                self.t_written |= bit;
            }
        }
    }
}

/// Picks a register number in `lo..8` whose bit in `mask` is clear,
/// scanning from a random start so the choice stays varied. `None` when
/// every candidate is pending.
fn pick_clean(rng: &mut Lcg, mask: u8, lo: u8) -> Option<u8> {
    let span = 8 - lo;
    let start = rng.next_below(u64::from(span)) as u8;
    (0..span)
        .map(|k| lo + (start + k) % span)
        .find(|&n| mask & (1 << n) == 0)
}

/// Picks a random set bit of `mask` (which must be nonzero).
fn pick_set(rng: &mut Lcg, mask: u8) -> u8 {
    let start = rng.next_below(8) as u8;
    (0..8u8)
        .map(|k| (start + k) % 8)
        .find(|&n| mask & (1 << n) != 0)
        .expect("pick_set on nonzero mask")
}

/// Memory operand: in hot mode everything goes through `A7` with 4 word
/// addresses; otherwise any base register with a 32-word window.
fn mem_operand(rng: &mut Lcg, cfg: &SynthConfig) -> (Reg, i64) {
    if cfg.hot_addresses {
        (Reg::a(7), rng.next_below(4) as i64)
    } else {
        (a_reg(rng), rng.next_below(32) as i64)
    }
}

/// Fallback A-file op when a clean destination is required but none is
/// available: a three-operand add that reads its own destination first,
/// so no pending value is lost.
fn fallback_a(a: &mut Asm, rng: &mut Lcg, p: &mut Pending) {
    let (d, k) = (a_reg(rng), a_reg(rng));
    p.read(d);
    p.read(k);
    a.a_add(d, d, k);
    p.write(d);
}

/// S-file counterpart of [`fallback_a`].
fn fallback_s(a: &mut Asm, rng: &mut Lcg, p: &mut Pending) {
    let (d, k) = (s_reg(rng), s_reg(rng));
    p.read(d);
    p.read(k);
    a.s_add(d, d, k);
    p.write(d);
}

/// Reads a written `B` register (preferring a pending one) back into a
/// clean `A` register, or falls back to plain arithmetic.
fn b_to_a_or_fallback(a: &mut Asm, rng: &mut Lcg, p: &mut Pending) {
    if p.b_written == 0 {
        return fallback_a(a, rng, p);
    }
    let Some(ad) = pick_clean(rng, p.a, 1) else {
        return fallback_a(a, rng, p);
    };
    let bs = pick_set(rng, if p.b != 0 { p.b } else { p.b_written });
    p.read(Reg::b(bs));
    a.b_to_a(Reg::a(ad), Reg::b(bs));
    p.write(Reg::a(ad));
}

/// `T`-file counterpart of [`b_to_a_or_fallback`].
fn t_to_s_or_fallback(a: &mut Asm, rng: &mut Lcg, p: &mut Pending) {
    if p.t_written == 0 {
        return fallback_s(a, rng, p);
    }
    let Some(sd) = pick_clean(rng, p.s, 1) else {
        return fallback_s(a, rng, p);
    };
    let ts = pick_set(rng, if p.t != 0 { p.t } else { p.t_written });
    p.read(Reg::t(ts));
    a.t_to_s(Reg::s(sd), Reg::t(ts));
    p.write(Reg::s(sd));
}

/// Emits one random non-branch instruction, keeping the pending-value
/// invariants (see [`Pending`]).
fn random_inst(a: &mut Asm, rng: &mut Lcg, cfg: &SynthConfig, p: &mut Pending) {
    let choices = if cfg.mem_ops { 16 } else { 14 };
    match rng.next_below(choices) {
        op @ (0 | 1 | 3) => {
            let (d, mut j, k) = (a_reg(rng), a_reg(rng), a_reg(rng));
            if p.is_pending(d) {
                j = d; // use the pending value instead of killing it
            }
            p.read(j);
            p.read(k);
            match op {
                0 => a.a_add(d, j, k),
                1 => a.a_sub(d, j, k),
                _ => a.a_mul(d, j, k),
            };
            p.write(d);
        }
        2 => {
            let (d, mut j) = (a_reg(rng), a_reg(rng));
            if p.is_pending(d) {
                j = d;
            }
            p.read(j);
            a.a_add_imm(d, j, rng.next_below(64) as i64);
            p.write(d);
        }
        4 => {
            // Immediate loads read nothing, so they need a clean dest.
            let imm = rng.next_below(1 << 12) as i64;
            match pick_clean(rng, p.a, 1) {
                Some(d) => {
                    a.a_imm(Reg::a(d), imm);
                    p.write(Reg::a(d));
                }
                None => {
                    let d = a_reg(rng);
                    p.read(d);
                    a.a_add_imm(d, d, imm & 63);
                    p.write(d);
                }
            }
        }
        op @ (5 | 6 | 9) => {
            let (d, mut j, k) = (s_reg(rng), s_reg(rng), s_reg(rng));
            if p.is_pending(d) {
                j = d;
            }
            p.read(j);
            p.read(k);
            match (op, rng.next_below(3)) {
                (5, _) => a.s_add(d, j, k),
                (6, _) => a.s_sub(d, j, k),
                (_, 0) => a.f_add(d, j, k),
                (_, 1) => a.f_sub(d, j, k),
                _ => a.f_mul(d, j, k),
            };
            p.write(d);
        }
        7 => {
            let (d, mut j, k) = (s_reg(rng), s_reg(rng), s_reg(rng));
            if p.is_pending(d) {
                j = d;
            }
            p.read(j);
            p.read(k);
            match rng.next_below(3) {
                0 => a.s_and(d, j, k),
                1 => a.s_or(d, j, k),
                _ => a.s_xor(d, j, k),
            };
            p.write(d);
        }
        8 => {
            let (d, mut j) = (s_reg(rng), s_reg(rng));
            if p.is_pending(d) {
                j = d;
            }
            p.read(j);
            let sh = rng.next_below(16) as i64;
            if rng.next_below(2) == 0 {
                a.s_shl(d, j, sh);
            } else {
                a.s_shr(d, j, sh);
            }
            p.write(d);
        }
        10 => {
            let imm = rng.next_below(1 << 16) as i64;
            match pick_clean(rng, p.s, 1) {
                Some(d) => {
                    a.s_imm(Reg::s(d), imm);
                    p.write(Reg::s(d));
                }
                None => fallback_s(a, rng, p),
            }
        }
        11 => {
            // transfers to/from the backup files
            match rng.next_below(4) {
                0 => match pick_clean(rng, p.b, 0) {
                    Some(bd) => {
                        let s = a_reg(rng);
                        p.read(s);
                        a.a_to_b(Reg::b(bd), s);
                        p.write(Reg::b(bd));
                    }
                    None => b_to_a_or_fallback(a, rng, p),
                },
                1 => b_to_a_or_fallback(a, rng, p),
                2 => match pick_clean(rng, p.t, 0) {
                    Some(td) => {
                        let s = s_reg(rng);
                        p.read(s);
                        a.s_to_t(Reg::t(td), s);
                        p.write(Reg::t(td));
                    }
                    None => t_to_s_or_fallback(a, rng, p),
                },
                _ => t_to_s_or_fallback(a, rng, p),
            }
        }
        12 => match pick_clean(rng, p.s, 1) {
            Some(sd) => {
                let s = a_reg(rng);
                p.read(s);
                a.a_to_s(Reg::s(sd), s);
                p.write(Reg::s(sd));
            }
            None => fallback_s(a, rng, p),
        },
        13 => match pick_clean(rng, p.a, 1) {
            Some(ad) => {
                let s = s_reg(rng);
                p.read(s);
                a.s_to_a(Reg::a(ad), s);
                p.write(Reg::a(ad));
            }
            None => fallback_a(a, rng, p),
        },
        14 => {
            let (base, disp) = mem_operand(rng, cfg);
            match pick_clean(rng, p.s, 1) {
                Some(d) => {
                    p.read(base);
                    a.ld_s(Reg::s(d), base, disp);
                    p.write(Reg::s(d));
                }
                None => {
                    // Store instead: no destination needed.
                    let src = s_reg(rng);
                    p.read(src);
                    p.read(base);
                    a.st_s(src, base, disp);
                }
            }
        }
        _ => {
            let src = s_reg(rng);
            let (base, disp) = mem_operand(rng, cfg);
            p.read(src);
            p.read(base);
            a.st_s(src, base, disp);
        }
    }
}

/// Reads back every still-pending register value through stores, so no
/// write is dead or unread at halt. Memory is wrapping scratch for
/// synthetic programs — these stores exist purely to *use* the values.
fn drain(a: &mut Asm, rng: &mut Lcg, cfg: &SynthConfig, p: &mut Pending) {
    // Pending S values go straight to memory.
    for n in 0..8u8 {
        if p.s & (1 << n) != 0 {
            let (base, disp) = mem_operand(rng, cfg);
            p.read(Reg::s(n));
            p.read(base);
            a.st_s(Reg::s(n), base, disp);
        }
    }
    // Pending T values come back through S1 (clean after the pass
    // above), then go to memory.
    for n in 0..8u8 {
        if p.t & (1 << n) != 0 {
            p.read(Reg::t(n));
            a.t_to_s(Reg::s(1), Reg::t(n));
            p.write(Reg::s(1));
            let (base, disp) = mem_operand(rng, cfg);
            p.read(Reg::s(1));
            p.read(base);
            a.st_s(Reg::s(1), base, disp);
        }
    }
    // Pending A values pass through S1 so the store base can stay in
    // the configured address window.
    for n in 0..8u8 {
        if p.a & (1 << n) != 0 {
            p.read(Reg::a(n));
            a.a_to_s(Reg::s(1), Reg::a(n));
            p.write(Reg::s(1));
            let (base, disp) = mem_operand(rng, cfg);
            p.read(Reg::s(1));
            p.read(base);
            a.st_s(Reg::s(1), base, disp);
        }
    }
    // Pending B values come back through A0 (always clean between
    // segments), then through S1 to memory.
    for n in 0..8u8 {
        if p.b & (1 << n) != 0 {
            p.read(Reg::b(n));
            a.b_to_a(Reg::a(0), Reg::b(n));
            p.write(Reg::a(0));
            p.read(Reg::a(0));
            a.a_to_s(Reg::s(1), Reg::a(0));
            p.write(Reg::s(1));
            let (base, disp) = mem_operand(rng, cfg);
            p.read(Reg::s(1));
            p.read(base);
            a.st_s(Reg::s(1), base, disp);
        }
    }
    debug_assert_eq!((p.a, p.s, p.b, p.t), (0, 0, 0, 0));
}

/// Generates a random, always-terminating program plus an initial memory.
///
/// Structure: a sequence of segments, each either a straight-line block
/// or a counted loop (`A0` counter, body free of writes to `A0` and of
/// inner branches), so every generated program halts. Generation tracks
/// pending register values (see [`Pending`]) and drains them before
/// `halt`, so the output is `ruu_analysis::lint`-clean by construction.
#[must_use]
pub fn random_program(seed: u64, cfg: &SynthConfig) -> (Program, Memory) {
    let mut rng = Lcg::new(seed);
    let mut a = Asm::new(format!("synth-{seed:#x}"));
    let mut p = Pending::default();
    let mut mem = Memory::new(1 << 12);
    for i in 0..256 {
        mem.write(i, rng.next_u64() >> 8);
    }
    // Seed some registers so arithmetic has varied inputs. In hot mode
    // `A7` is pinned instead, so every memory op lands in one tiny
    // window.
    for i in 1..8u8 {
        if cfg.hot_addresses && i == 7 {
            a.a_imm(Reg::a(7), 64);
        } else {
            a.a_imm(Reg::a(i), rng.next_below(1 << 10) as i64);
        }
        p.write(Reg::a(i));
        a.s_imm(Reg::s(i), rng.next_below(1 << 20) as i64);
        p.write(Reg::s(i));
    }
    for _ in 0..cfg.segments {
        if rng.next_below(2) == 0 {
            for _ in 0..cfg.block_len {
                random_inst(&mut a, &mut rng, cfg, &mut p);
            }
        } else {
            let trips = 1 + rng.next_below(u64::from(cfg.max_trips)) as i64;
            let top = a.new_label();
            // A0 is clean here: the previous loop's closing branch read
            // it, and nothing else touches it.
            a.a_imm(Reg::a(0), trips);
            p.write(Reg::a(0));
            a.bind(top);
            for _ in 0..cfg.block_len {
                random_inst(&mut a, &mut rng, cfg, &mut p);
            }
            p.read(Reg::a(0));
            a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
            p.write(Reg::a(0));
            a.br_an(top);
            p.read(Reg::a(0));
        }
    }
    drain(&mut a, &mut rng, cfg, &mut p);
    a.halt();
    (a.assemble().expect("synthetic programs assemble"), mem)
}

/// A serial dependency chain of `n` operations on one functional unit —
/// the ILP-free worst case for any issue mechanism.
#[must_use]
pub fn dependency_chain(n: usize) -> (Program, Memory) {
    let mut a = Asm::new("chain");
    a.s_imm(Reg::s(1), 3);
    for _ in 0..n {
        a.s_add(Reg::s(1), Reg::s(1), Reg::s(1));
    }
    a.halt();
    (a.assemble().expect("chain assembles"), Memory::new(1 << 8))
}

/// `n` fully independent operations spread across registers — the
/// maximal-ILP best case.
#[must_use]
pub fn independent_ops(n: usize) -> (Program, Memory) {
    let mut a = Asm::new("independent");
    for i in 0..n {
        let d = Reg::s(1 + (i % 7) as u8);
        a.s_imm(d, i as i64);
    }
    a.halt();
    (
        a.assemble().expect("independent ops assemble"),
        Memory::new(1 << 8),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use ruu_analysis::{lint, LintOptions};
    use ruu_exec::Trace;

    #[test]
    fn random_programs_terminate_on_golden() {
        for seed in 0..20 {
            let (p, mem) = random_program(seed, &SynthConfig::default());
            let t =
                Trace::capture(&p, mem, 1_000_000).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(!t.is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (p1, _) = random_program(7, &SynthConfig::default());
        let (p2, _) = random_program(7, &SynthConfig::default());
        assert_eq!(p1, p2);
    }

    #[test]
    fn hot_addresses_collide() {
        let cfg = SynthConfig {
            hot_addresses: true,
            ..SynthConfig::default()
        };
        let (p, mem) = random_program(11, &cfg);
        let t = Trace::capture(&p, mem, 1_000_000).unwrap();
        // nearly all memory traffic lands in a handful of words
        use std::collections::HashMap;
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for ev in t.events() {
            if let Some(ea) = ev.ea {
                *counts.entry(ea).or_default() += 1;
            }
        }
        if !counts.is_empty() {
            let top4: u64 = {
                let mut v: Vec<u64> = counts.values().copied().collect();
                v.sort_unstable_by(|a, b| b.cmp(a));
                v.iter().take(4).sum()
            };
            let total: u64 = counts.values().sum();
            assert!(top4 * 2 >= total, "hot addresses should dominate");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Satellite guarantee: generated programs are lint-clean by
        /// construction. Default [`LintOptions`] (no memory bound —
        /// synthetic programs use memory as wrapping scratch, so the
        /// footprint check does not apply).
        #[test]
        fn random_programs_are_lint_clean(
            seed in 0u64..1_000_000,
            hot in proptest::bool::ANY,
            mem_ops in proptest::bool::ANY,
        ) {
            let cfg = SynthConfig {
                hot_addresses: hot,
                mem_ops,
                ..SynthConfig::default()
            };
            let (p, _) = random_program(seed, &cfg);
            let findings = lint(&p, &LintOptions::default());
            prop_assert!(
                findings.is_empty(),
                "seed {seed} (hot={hot}, mem_ops={mem_ops}): {findings:?}"
            );
        }
    }

    #[test]
    fn chain_and_independent_shapes() {
        let (chain, m1) = dependency_chain(10);
        let (ind, m2) = independent_ops(10);
        let tc = Trace::capture(&chain, m1, 10_000).unwrap();
        let ti = Trace::capture(&ind, m2, 10_000).unwrap();
        assert_eq!(tc.len(), 11);
        assert_eq!(ti.len(), 10);
    }
}
