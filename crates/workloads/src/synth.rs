//! Synthetic program generators: random (but always-terminating) programs
//! for property tests, and dependency-chain microkernels for ablation
//! benches.

use ruu_exec::Memory;
use ruu_isa::{Asm, Program, Reg};

use crate::layout::Lcg;

/// Parameters for [`random_program`].
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of segments (straight-line blocks or counted loops).
    pub segments: usize,
    /// Instructions per block / loop body.
    pub block_len: usize,
    /// Maximum loop trip count.
    pub max_trips: u32,
    /// Whether to include loads and stores.
    pub mem_ops: bool,
    /// Concentrate all memory traffic on a handful of addresses (a fixed
    /// base register and tiny displacements), maximising load-register
    /// matches, forwarding chains and write-after-read hazards.
    pub hot_addresses: bool,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            segments: 6,
            block_len: 12,
            max_trips: 6,
            mem_ops: true,
            hot_addresses: false,
        }
    }
}

// `A0` is reserved for loop counters and `S0` is left alone so generated
// branch behaviour stays comprehensible.
fn a_reg(rng: &mut Lcg) -> Reg {
    Reg::a(1 + rng.next_below(7) as u8)
}

fn s_reg(rng: &mut Lcg) -> Reg {
    Reg::s(1 + rng.next_below(7) as u8)
}

/// Memory operand: in hot mode everything goes through `A7` with 4 word
/// addresses; otherwise any base register with a 32-word window.
fn mem_operand(rng: &mut Lcg, cfg: &SynthConfig) -> (Reg, i64) {
    if cfg.hot_addresses {
        (Reg::a(7), rng.next_below(4) as i64)
    } else {
        (a_reg(rng), rng.next_below(32) as i64)
    }
}

/// Emits one random non-branch instruction.
fn random_inst(a: &mut Asm, rng: &mut Lcg, cfg: &SynthConfig) {
    let mem_ops = cfg.mem_ops;
    let choices = if mem_ops { 16 } else { 14 };
    match rng.next_below(choices) {
        0 => {
            let (d, j, k) = (a_reg(rng), a_reg(rng), a_reg(rng));
            a.a_add(d, j, k);
        }
        1 => {
            let (d, j, k) = (a_reg(rng), a_reg(rng), a_reg(rng));
            a.a_sub(d, j, k);
        }
        2 => {
            let (d, j) = (a_reg(rng), a_reg(rng));
            a.a_add_imm(d, j, rng.next_below(64) as i64);
        }
        3 => {
            let (d, j, k) = (a_reg(rng), a_reg(rng), a_reg(rng));
            a.a_mul(d, j, k);
        }
        4 => {
            let d = a_reg(rng);
            a.a_imm(d, rng.next_below(1 << 12) as i64);
        }
        5 => {
            let (d, j, k) = (s_reg(rng), s_reg(rng), s_reg(rng));
            a.s_add(d, j, k);
        }
        6 => {
            let (d, j, k) = (s_reg(rng), s_reg(rng), s_reg(rng));
            a.s_sub(d, j, k);
        }
        7 => {
            let (d, j, k) = (s_reg(rng), s_reg(rng), s_reg(rng));
            match rng.next_below(3) {
                0 => a.s_and(d, j, k),
                1 => a.s_or(d, j, k),
                _ => a.s_xor(d, j, k),
            };
        }
        8 => {
            let (d, j) = (s_reg(rng), s_reg(rng));
            let sh = rng.next_below(16) as i64;
            if rng.next_below(2) == 0 {
                a.s_shl(d, j, sh);
            } else {
                a.s_shr(d, j, sh);
            }
        }
        9 => {
            let (d, j, k) = (s_reg(rng), s_reg(rng), s_reg(rng));
            match rng.next_below(3) {
                0 => a.f_add(d, j, k),
                1 => a.f_sub(d, j, k),
                _ => a.f_mul(d, j, k),
            };
        }
        10 => {
            let d = s_reg(rng);
            a.s_imm(d, rng.next_below(1 << 16) as i64);
        }
        11 => {
            // transfers to/from the backup files
            match rng.next_below(4) {
                0 => {
                    let (d, s) = (Reg::b(rng.next_below(8) as u8), a_reg(rng));
                    a.a_to_b(d, s);
                }
                1 => {
                    let (d, s) = (a_reg(rng), Reg::b(rng.next_below(8) as u8));
                    a.b_to_a(d, s);
                }
                2 => {
                    let (d, s) = (Reg::t(rng.next_below(8) as u8), s_reg(rng));
                    a.s_to_t(d, s);
                }
                _ => {
                    let (d, s) = (s_reg(rng), Reg::t(rng.next_below(8) as u8));
                    a.t_to_s(d, s);
                }
            };
        }
        12 => {
            let (d, s) = (s_reg(rng), a_reg(rng));
            a.a_to_s(d, s);
        }
        13 => {
            let (d, s) = (a_reg(rng), s_reg(rng));
            a.s_to_a(d, s);
        }
        14 => {
            let d = s_reg(rng);
            let (base, disp) = mem_operand(rng, cfg);
            a.ld_s(d, base, disp);
        }
        _ => {
            let src = s_reg(rng);
            let (base, disp) = mem_operand(rng, cfg);
            a.st_s(src, base, disp);
        }
    }
}

/// Generates a random, always-terminating program plus an initial memory.
///
/// Structure: a sequence of segments, each either a straight-line block
/// or a counted loop (`A0` counter, body free of writes to `A0` and of
/// inner branches), so every generated program halts.
#[must_use]
pub fn random_program(seed: u64, cfg: &SynthConfig) -> (Program, Memory) {
    let mut rng = Lcg::new(seed);
    let mut a = Asm::new(format!("synth-{seed:#x}"));
    let mut mem = Memory::new(1 << 12);
    for i in 0..256 {
        mem.write(i, rng.next_u64() >> 8);
    }
    // Seed some registers so arithmetic has varied inputs.
    for i in 1..8u8 {
        a.a_imm(Reg::a(i), rng.next_below(1 << 10) as i64);
        a.s_imm(Reg::s(i), rng.next_below(1 << 20) as i64);
    }
    if cfg.hot_addresses {
        // Pin the hot base so every memory op lands in one tiny window.
        a.a_imm(Reg::a(7), 64);
    }
    for _ in 0..cfg.segments {
        if rng.next_below(2) == 0 {
            for _ in 0..cfg.block_len {
                random_inst(&mut a, &mut rng, cfg);
            }
        } else {
            let trips = 1 + rng.next_below(u64::from(cfg.max_trips)) as i64;
            let top = a.new_label();
            a.a_imm(Reg::a(0), trips);
            a.bind(top);
            for _ in 0..cfg.block_len {
                random_inst(&mut a, &mut rng, cfg);
            }
            a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
            a.br_an(top);
        }
    }
    a.halt();
    (a.assemble().expect("synthetic programs assemble"), mem)
}

/// A serial dependency chain of `n` operations on one functional unit —
/// the ILP-free worst case for any issue mechanism.
#[must_use]
pub fn dependency_chain(n: usize) -> (Program, Memory) {
    let mut a = Asm::new("chain");
    a.s_imm(Reg::s(1), 3);
    for _ in 0..n {
        a.s_add(Reg::s(1), Reg::s(1), Reg::s(1));
    }
    a.halt();
    (a.assemble().expect("chain assembles"), Memory::new(1 << 8))
}

/// `n` fully independent operations spread across registers — the
/// maximal-ILP best case.
#[must_use]
pub fn independent_ops(n: usize) -> (Program, Memory) {
    let mut a = Asm::new("independent");
    for i in 0..n {
        let d = Reg::s(1 + (i % 7) as u8);
        a.s_imm(d, i as i64);
    }
    a.halt();
    (
        a.assemble().expect("independent ops assemble"),
        Memory::new(1 << 8),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruu_exec::Trace;

    #[test]
    fn random_programs_terminate_on_golden() {
        for seed in 0..20 {
            let (p, mem) = random_program(seed, &SynthConfig::default());
            let t =
                Trace::capture(&p, mem, 1_000_000).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(!t.is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (p1, _) = random_program(7, &SynthConfig::default());
        let (p2, _) = random_program(7, &SynthConfig::default());
        assert_eq!(p1, p2);
    }

    #[test]
    fn hot_addresses_collide() {
        let cfg = SynthConfig {
            hot_addresses: true,
            ..SynthConfig::default()
        };
        let (p, mem) = random_program(11, &cfg);
        let t = Trace::capture(&p, mem, 1_000_000).unwrap();
        // nearly all memory traffic lands in a handful of words
        use std::collections::HashMap;
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for ev in t.events() {
            if let Some(ea) = ev.ea {
                *counts.entry(ea).or_default() += 1;
            }
        }
        if !counts.is_empty() {
            let top4: u64 = {
                let mut v: Vec<u64> = counts.values().copied().collect();
                v.sort_unstable_by(|a, b| b.cmp(a));
                v.iter().take(4).sum()
            };
            let total: u64 = counts.values().sum();
            assert!(top4 * 2 >= total, "hot addresses should dominate");
        }
    }

    #[test]
    fn chain_and_independent_shapes() {
        let (chain, m1) = dependency_chain(10);
        let (ind, m2) = independent_ops(10);
        let tc = Trace::capture(&chain, m1, 10_000).unwrap();
        let ti = Trace::capture(&ind, m2, 10_000).unwrap();
        assert_eq!(tc.len(), 11);
        assert_eq!(ti.len(), 10);
    }
}
