//! Memory layout helpers and deterministic data generation for the
//! kernels.
//!
//! Every kernel lays its arrays out at fixed word addresses inside a
//! 64Ki-word memory. Array data comes from a small deterministic linear
//! congruential generator so runs are reproducible without depending on
//! any external RNG's value stability.

use ruu_exec::Memory;

/// Size of the kernel data memory, in 64-bit words.
pub const MEM_WORDS: usize = 1 << 16;

/// A tiny deterministic LCG (Numerical Recipes constants) used to fill
/// benchmark arrays.
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Creates a generator with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Lcg {
            state: seed
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // xorshift the high bits down for better low-bit quality
        let x = self.state;
        (x >> 29) ^ x
    }

    /// A float uniform in `(lo, hi)`, well away from overflow/underflow.
    pub fn next_f64(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + u * (hi - lo)
    }

    /// An integer uniform in `0..bound`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }
}

/// A fresh kernel memory.
#[must_use]
pub fn fresh_memory() -> Memory {
    Memory::new(MEM_WORDS)
}

/// Fills `len` words at `base` with floats in `(0.1, 1.0)` from `rng`,
/// returning the values written (for the mirror computation).
///
/// # Panics
/// Panics if the span runs past the memory's capacity: masked writes
/// would silently wrap and corrupt arrays laid out in low memory, so a
/// kernel layout that outgrows its memory must fail loudly instead.
pub fn fill_f64(mem: &mut Memory, base: u64, len: usize, rng: &mut Lcg) -> Vec<f64> {
    let mut vals = Vec::with_capacity(len);
    mem.try_fill(base, len as u64, |_| {
        let v = rng.next_f64(0.1, 1.0);
        vals.push(v);
        v.to_bits()
    })
    .unwrap_or_else(|e| panic!("kernel array layout: {e}"));
    vals
}

/// Reads back `len` floats from `base` (mirror-side convenience).
#[must_use]
pub fn read_f64s(mem: &Memory, base: u64, len: usize) -> Vec<f64> {
    (0..len).map(|i| mem.read_f64(base + i as u64)).collect()
}

/// Builds `(address, bits)` checks for a float array.
#[must_use]
pub fn checks_f64(base: u64, vals: &[f64]) -> Vec<(u64, u64)> {
    vals.iter()
        .enumerate()
        .map(|(i, v)| (base + i as u64, v.to_bits()))
        .collect()
}

/// Builds `(address, bits)` checks for an integer array.
#[must_use]
pub fn checks_u64(base: u64, vals: &[u64]) -> Vec<(u64, u64)> {
    vals.iter()
        .enumerate()
        .map(|(i, &v)| (base + i as u64, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic() {
        let mut a = Lcg::new(42);
        let mut b = Lcg::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn floats_in_range() {
        let mut r = Lcg::new(7);
        for _ in 0..1000 {
            let v = r.next_f64(0.1, 1.0);
            assert!((0.1..1.0).contains(&v));
        }
    }

    #[test]
    fn fill_roundtrip() {
        let mut mem = fresh_memory();
        let mut r = Lcg::new(1);
        let vals = fill_f64(&mut mem, 100, 16, &mut r);
        assert_eq!(read_f64s(&mem, 100, 16), vals);
        let checks = checks_f64(100, &vals);
        assert_eq!(checks.len(), 16);
        assert_eq!(checks[3].0, 103);
    }

    #[test]
    #[should_panic(expected = "kernel array layout")]
    fn fill_past_capacity_fails_loudly() {
        let mut mem = fresh_memory();
        let mut r = Lcg::new(1);
        // One word past the end: would silently wrap onto address 0 and
        // corrupt whatever kernel array lives there.
        let _ = fill_f64(&mut mem, (MEM_WORDS - 8) as u64, 9, &mut r);
    }

    #[test]
    fn next_below_bound() {
        let mut r = Lcg::new(3);
        for _ in 0..500 {
            assert!(r.next_below(7) < 7);
        }
    }
}
