//! A minimal hand-rolled JSON writer (std-only; the workspace builds
//! without crates.io access, so serde is not an option).
//!
//! Only what [`crate::SweepReport`] serialization needs: objects,
//! arrays, strings, integers, and finite floats. Floats are written with
//! Rust's shortest round-trip formatting, so parsing the output
//! recovers bit-identical values.

use std::fmt::Write;

/// Escapes `s` as the *contents* of a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// An incremental JSON value writer with explicit begin/end nesting.
///
/// The caller is responsible for well-formedness (matching `begin_*` /
/// `end_*` calls); commas between siblings are inserted automatically.
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    /// Whether the current nesting level already holds a value (and thus
    /// needs a comma before the next one).
    need_comma: Vec<bool>,
}

impl JsonWriter {
    /// A fresh writer.
    #[must_use]
    pub fn new() -> Self {
        JsonWriter::default()
    }

    fn pre_value(&mut self) {
        if let Some(last) = self.need_comma.last_mut() {
            if *last {
                self.buf.push(',');
            }
            *last = true;
        }
    }

    /// Writes an object key (inside an object).
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.pre_value();
        self.buf.push('"');
        escape_into(&mut self.buf, k);
        self.buf.push_str("\":");
        // The upcoming value belongs to this key: suppress its comma.
        if let Some(last) = self.need_comma.last_mut() {
            *last = false;
        }
        self
    }

    /// Opens an object value.
    pub fn begin_object(&mut self) -> &mut Self {
        self.pre_value();
        self.buf.push('{');
        self.need_comma.push(false);
        self
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) -> &mut Self {
        self.need_comma.pop();
        self.buf.push('}');
        if let Some(last) = self.need_comma.last_mut() {
            *last = true;
        }
        self
    }

    /// Opens an array value.
    pub fn begin_array(&mut self) -> &mut Self {
        self.pre_value();
        self.buf.push('[');
        self.need_comma.push(false);
        self
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) -> &mut Self {
        self.need_comma.pop();
        self.buf.push(']');
        if let Some(last) = self.need_comma.last_mut() {
            *last = true;
        }
        self
    }

    /// Writes a string value.
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.pre_value();
        self.buf.push('"');
        escape_into(&mut self.buf, s);
        self.buf.push('"');
        self
    }

    /// Writes an unsigned integer value.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.pre_value();
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Writes a float value (`null` for non-finite inputs, which JSON
    /// cannot represent).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.pre_value();
        if v.is_finite() {
            let _ = write!(self.buf, "{v}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Consumes the writer, returning the JSON text.
    #[must_use]
    pub fn finish(self) -> String {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_structure_renders() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("name").string("a \"b\"\n");
        w.key("n").u64(3);
        w.key("xs").begin_array();
        w.u64(1).u64(2);
        w.begin_object().key("y").f64(1.5).end_object();
        w.end_array();
        w.key("bad").f64(f64::NAN);
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"name":"a \"b\"\n","n":3,"xs":[1,2,{"y":1.5}],"bad":null}"#
        );
    }

    #[test]
    fn floats_round_trip_shortest() {
        let mut w = JsonWriter::new();
        w.f64(0.1 + 0.2);
        let s = w.finish();
        assert_eq!(s.parse::<f64>().unwrap(), 0.1 + 0.2);
    }
}
