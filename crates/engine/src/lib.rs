//! # ruu-engine — the parallel batch-simulation engine
//!
//! Every paper table and ablation is a *grid* of independent simulations:
//! (mechanism, machine configuration, workload) triples whose results are
//! aggregated into speedup/issue-rate rows. The legacy
//! `ruu_bench::harness::sweep` ran that grid serially, re-assembling the
//! Livermore suite and re-running the simple-issue baseline on every
//! call. This crate turns the grid into an explicit job list executed by
//! a [`SweepEngine`]:
//!
//! * the workload suite is assembled **once** and shared via
//!   `Arc<[Workload]>`;
//! * independent (job × workload) units run across a
//!   `std::thread::scope` worker pool (work-stealing over an atomic
//!   counter — no external dependencies);
//! * baseline (simple-issue) cycles are **memoized per configuration**
//!   in a [`MachineConfig`]-keyed cache, so repeated sweeps over the
//!   same machine never pay for the baseline twice;
//! * per-workload **dataflow-limit lower bounds**
//!   (`ruu_analysis::dataflow_bound` over each golden trace) are
//!   memoized the same way, so every [`JobResult`] reports how close
//!   the mechanism came to the best any issue logic could do;
//! * results come back as a [`SweepReport`]: per-job cycles,
//!   instructions, and speedup plus wall-clock and throughput engine
//!   stats, serializable to JSON with a hand-rolled std-only writer.
//!
//! Determinism is a hard guarantee: per-job numbers are aggregated in
//! workload order from per-unit integer results, so a run with 8 workers
//! is **bit-identical** to a run with 1 (asserted by the workspace's
//! `engine_determinism` test). Only the wall-clock stats vary.
//!
//! The enabling API is `ruu_issue`'s [`IssueSimulator`] trait:
//! [`Mechanism::build`] yields a `Box<dyn IssueSimulator>` (`Send`), so
//! one worker loop drives every mechanism uniformly.
//!
//! ```
//! use ruu_engine::{Job, SweepEngine};
//! use ruu_issue::{Bypass, Mechanism};
//! use ruu_sim_core::MachineConfig;
//!
//! let engine = SweepEngine::livermore().with_workers(2);
//! let jobs: Vec<Job> = [4, 8]
//!     .iter()
//!     .map(|&entries| {
//!         Job::new(
//!             Mechanism::Ruu { entries, bypass: Bypass::Full },
//!             MachineConfig::paper(),
//!         )
//!     })
//!     .collect();
//! let report = engine.run_grid(&jobs)?;
//! assert_eq!(report.jobs.len(), 2);
//! assert!(report.jobs[1].speedup >= report.jobs[0].speedup);
//! # Ok::<(), ruu_engine::EngineError>(())
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ruu_analysis::dataflow_bound;
use ruu_exec::{ArchState, ExecError};
use ruu_issue::{Mechanism, SimError};
use ruu_sim_core::{MachineConfig, StallHistogram, StallReason};
use ruu_workloads::{livermore, VerifyError, Workload};

pub mod json;

use json::JsonWriter;

/// A failure while executing one (job × workload) simulation unit.
#[derive(Debug, Clone)]
pub enum EngineError {
    /// The simulator itself failed (instruction limit, deadlock guard).
    Sim {
        /// Label of the failing job.
        job: String,
        /// Workload the failure occurred on.
        workload: &'static str,
        /// The underlying simulator error.
        err: SimError,
    },
    /// The simulation completed but produced wrong architectural results.
    Verify {
        /// Label of the failing job.
        job: String,
        /// Workload the failure occurred on.
        workload: &'static str,
        /// The underlying verification error.
        err: VerifyError,
    },
    /// The golden interpreter failed while capturing the trace that the
    /// dataflow-limit bound is computed from.
    Golden {
        /// Workload the failure occurred on.
        workload: &'static str,
        /// The underlying interpreter error.
        err: ExecError,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Sim { job, workload, err } => {
                write!(f, "job {job} failed on {workload}: {err}")
            }
            EngineError::Verify { job, workload, err } => {
                write!(f, "job {job} wrong result on {workload}: {err}")
            }
            EngineError::Golden { workload, err } => {
                write!(f, "golden trace for {workload} failed: {err}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// One point of a batch grid: a mechanism under a machine configuration,
/// run over the engine's whole workload suite.
#[derive(Debug, Clone)]
pub struct Job {
    /// Display label (defaults to the mechanism's `Display` form).
    pub label: String,
    /// The issue mechanism to simulate.
    pub mechanism: Mechanism,
    /// The machine configuration to simulate it under.
    pub config: MachineConfig,
}

impl Job {
    /// A job labelled with the mechanism's display name.
    #[must_use]
    pub fn new(mechanism: Mechanism, config: MachineConfig) -> Self {
        Job {
            label: mechanism.to_string(),
            mechanism,
            config,
        }
    }

    /// Replaces the display label.
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

/// Branch-prediction totals for one speculative job over the suite.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchSummary {
    /// Conditional branches whose direction was predicted.
    pub predicts: u64,
    /// Predictions that resolved wrong and forced a squash.
    pub mispredicts: u64,
    /// Fetch cycles lost to misprediction repair
    /// ([`StallReason::MispredictRepair`]).
    pub flush_cycles: u64,
}

impl BranchSummary {
    /// Mispredictions per 1000 instructions.
    #[must_use]
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.mispredicts as f64 * 1000.0 / instructions as f64
        }
    }
}

/// Data-cache totals for one job over the suite.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSummary {
    /// Loads that consulted the cache.
    pub accesses: u64,
    /// Accesses satisfied by a resident line (including merges into an
    /// outstanding fill).
    pub hits: u64,
    /// Accesses that started a fresh line fill.
    pub misses: u64,
}

impl CacheSummary {
    /// Misses per 1000 instructions.
    #[must_use]
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / instructions as f64
        }
    }

    /// Fraction of accesses that hit (`0.0` for an idle cache).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// Aggregated results of one [`Job`] over the suite.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's label.
    pub label: String,
    /// The mechanism's display form.
    pub mechanism: String,
    /// The mechanism's window-entry count, when it has one.
    pub entries: Option<usize>,
    /// Total cycles over the suite.
    pub cycles: u64,
    /// Total dynamic instructions over the suite.
    pub instructions: u64,
    /// Simple-issue baseline cycles under the same configuration.
    pub baseline_cycles: u64,
    /// Speedup relative to the baseline (paper-style).
    pub speedup: f64,
    /// Aggregate instructions per cycle.
    pub issue_rate: f64,
    /// Total dataflow-limit lower bound over the suite: the fewest
    /// cycles any issue mechanism could take under this configuration's
    /// latencies, from `ruu_analysis::dataflow_bound` over each
    /// workload's golden trace.
    pub dataflow_bound: u64,
    /// Fraction of the dataflow limit achieved
    /// (`dataflow_bound / cycles`, in `(0, 1]`).
    pub efficiency: f64,
    /// Decode/issue stall cycles over the suite: the nonzero
    /// [`StallReason`] counters, in `StallReason::ALL` order. Together
    /// with the issue cycles these account for every simulated cycle
    /// (`cycles == instructions + Σ stalls` for the non-speculative
    /// mechanisms the engine runs).
    pub stalls: Vec<(StallReason, u64)>,
    /// Branch-prediction totals, for jobs whose mechanism speculates
    /// (`None` for every non-speculative mechanism).
    pub branch: Option<BranchSummary>,
    /// Data-cache totals, for jobs whose configuration carries a finite
    /// `DCacheConfig` (`None` under the perfect default, whose loads
    /// never consult a cache).
    pub cache: Option<CacheSummary>,
}

impl JobResult {
    /// Total stall cycles across all reasons.
    #[must_use]
    pub fn total_stalls(&self) -> u64 {
        self.stalls.iter().map(|&(_, n)| n).sum()
    }
}

/// Engine-side execution statistics for one grid run.
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// Worker threads used.
    pub workers: usize,
    /// Jobs in the grid.
    pub jobs: usize,
    /// (job × workload) units executed, including baseline fills.
    pub units: usize,
    /// Wall-clock time for the whole grid.
    pub wall: Duration,
    /// Jobs completed per wall-clock second.
    pub jobs_per_sec: f64,
    /// Simulation units completed per wall-clock second.
    pub units_per_sec: f64,
}

/// Everything a grid run produced: per-job results plus engine stats.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// One entry per input job, in input order.
    pub jobs: Vec<JobResult>,
    /// Execution statistics (wall-clock dependent; excluded from
    /// determinism comparisons).
    pub stats: EngineStats,
}

impl SweepReport {
    /// Serializes the report to JSON (hand-rolled, std-only writer).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("engine").begin_object();
        w.key("workers").u64(self.stats.workers as u64);
        w.key("jobs").u64(self.stats.jobs as u64);
        w.key("units").u64(self.stats.units as u64);
        w.key("wall_ms").f64(self.stats.wall.as_secs_f64() * 1e3);
        w.key("jobs_per_sec").f64(self.stats.jobs_per_sec);
        w.key("units_per_sec").f64(self.stats.units_per_sec);
        w.end_object();
        w.key("jobs").begin_array();
        for j in &self.jobs {
            w.begin_object();
            w.key("label").string(&j.label);
            w.key("mechanism").string(&j.mechanism);
            match j.entries {
                Some(e) => w.key("entries").u64(e as u64),
                None => w.key("entries").f64(f64::NAN), // renders as null
            };
            w.key("cycles").u64(j.cycles);
            w.key("instructions").u64(j.instructions);
            w.key("baseline_cycles").u64(j.baseline_cycles);
            w.key("speedup").f64(j.speedup);
            w.key("issue_rate").f64(j.issue_rate);
            w.key("dataflow_bound").u64(j.dataflow_bound);
            w.key("efficiency").f64(j.efficiency);
            w.key("stalls").begin_object();
            for &(reason, n) in &j.stalls {
                w.key(&reason.to_string()).u64(n);
            }
            w.end_object();
            if let Some(b) = j.branch {
                w.key("branch").begin_object();
                w.key("predicts").u64(b.predicts);
                w.key("mispredicts").u64(b.mispredicts);
                w.key("mpki").f64(b.mpki(j.instructions));
                w.key("flush_cycles").u64(b.flush_cycles);
                w.end_object();
            }
            if let Some(c) = j.cache {
                w.key("cache").begin_object();
                w.key("accesses").u64(c.accesses);
                w.key("hits").u64(c.hits);
                w.key("misses").u64(c.misses);
                w.key("hit_rate").f64(c.hit_rate());
                w.key("mpki").f64(c.mpki(j.instructions));
                w.end_object();
            }
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

/// Per-workload numbers for one (mechanism, config) pair — the shape of
/// the paper's Table 1.
#[derive(Debug, Clone)]
pub struct WorkloadRow {
    /// The workload's name.
    pub name: &'static str,
    /// Cycles to execute it.
    pub cycles: u64,
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Dataflow-limit lower bound on cycles under the run's
    /// configuration (see `ruu_analysis::dataflow_bound`).
    pub dataflow_bound: u64,
}

/// The parallel batch-simulation engine. See the crate docs.
#[derive(Debug)]
pub struct SweepEngine {
    suite: Arc<[Workload]>,
    workers: usize,
    baseline_cache: Mutex<HashMap<MachineConfig, u64>>,
    bound_cache: Mutex<HashMap<MachineConfig, Arc<Vec<u64>>>>,
}

impl SweepEngine {
    /// An engine over an explicit workload suite, with one worker per
    /// available hardware thread.
    #[must_use]
    pub fn new(suite: impl Into<Arc<[Workload]>>) -> Self {
        SweepEngine {
            suite: suite.into(),
            workers: default_workers(),
            baseline_cache: Mutex::new(HashMap::new()),
            bound_cache: Mutex::new(HashMap::new()),
        }
    }

    /// An engine over the full 14-loop Livermore suite (assembled once,
    /// shared by every job).
    #[must_use]
    pub fn livermore() -> Self {
        SweepEngine::new(livermore::all())
    }

    /// Sets the worker-thread count (`0` = one per hardware thread).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = if workers == 0 {
            default_workers()
        } else {
            workers
        };
        self
    }

    /// The shared workload suite.
    #[must_use]
    pub fn suite(&self) -> &[Workload] {
        &self.suite
    }

    /// The configured worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `n_units` independent units of `f` across the worker pool,
    /// returning results in unit order regardless of scheduling.
    fn run_pool<T, F>(&self, n_units: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.workers.min(n_units).max(1);
        if workers == 1 {
            return (0..n_units).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..n_units).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_units {
                        break;
                    }
                    let out = f(i);
                    *slots[i].lock().expect("result slot lock") = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot lock")
                    .expect("every unit index was claimed and completed")
            })
            .collect()
    }

    /// Runs one (mechanism, config, workload) triple and verifies the
    /// result against the workload's mirror computation. Returns cycles,
    /// instructions, the run's per-reason stall histogram and its branch
    /// summary (integer counters, so aggregation stays worker-count
    /// independent).
    fn run_unit(
        label: &str,
        mechanism: Mechanism,
        config: &MachineConfig,
        w: &Workload,
    ) -> Result<(u64, u64, StallHistogram, BranchSummary, CacheSummary), EngineError> {
        let sim = mechanism.build(config);
        let mut hist = StallHistogram::default();
        let r = sim
            .run_observed(
                ArchState::new(),
                w.memory.clone(),
                &w.program,
                w.inst_limit,
                &mut hist,
            )
            .map_err(|err| EngineError::Sim {
                job: label.to_string(),
                workload: w.name,
                err,
            })?;
        w.verify(&r.memory).map_err(|err| EngineError::Verify {
            job: label.to_string(),
            workload: w.name,
            err,
        })?;
        let branch = BranchSummary {
            predicts: r.stats.predicted_branches,
            mispredicts: r.stats.mispredicted_branches,
            flush_cycles: r.stats.stalls(StallReason::MispredictRepair),
        };
        let cache = CacheSummary {
            accesses: r.stats.dcache_accesses,
            hits: r.stats.dcache_hits,
            misses: r.stats.dcache_misses,
        };
        Ok((r.cycles, r.instructions, hist, branch, cache))
    }

    /// Fills the baseline cache for every configuration in `configs`
    /// (one pooled pass over all missing config × workload units).
    /// Returns the number of units it had to execute.
    fn ensure_baselines(&self, configs: &[&MachineConfig]) -> Result<usize, EngineError> {
        let missing: Vec<&MachineConfig> = {
            let cache = self.baseline_cache.lock().expect("baseline cache lock");
            let mut seen: Vec<&MachineConfig> = Vec::new();
            for &c in configs {
                if !cache.contains_key(c) && !seen.contains(&c) {
                    seen.push(c);
                }
            }
            seen
        };
        if missing.is_empty() {
            return Ok(0);
        }
        let per_cfg = self.suite.len();
        let n_units = missing.len() * per_cfg;
        let outs = self.run_pool(n_units, |i| {
            let cfg = missing[i / per_cfg];
            let w = &self.suite[i % per_cfg];
            Self::run_unit("baseline(simple)", Mechanism::Simple, cfg, w)
        });
        let mut cache = self.baseline_cache.lock().expect("baseline cache lock");
        for (ci, &cfg) in missing.iter().enumerate() {
            let mut cycles = 0u64;
            for out in &outs[ci * per_cfg..(ci + 1) * per_cfg] {
                cycles += out.as_ref().map_err(Clone::clone)?.0;
            }
            cache.insert(cfg.clone(), cycles);
        }
        Ok(n_units)
    }

    /// Fills the dataflow-bound cache for every configuration in
    /// `configs`. Bounds are static analysis over each workload's
    /// golden trace, not simulation units, so fills are **not** counted
    /// in [`EngineStats::units`].
    fn ensure_bounds(&self, configs: &[&MachineConfig]) -> Result<(), EngineError> {
        let missing: Vec<&MachineConfig> = {
            let cache = self.bound_cache.lock().expect("bound cache lock");
            let mut seen: Vec<&MachineConfig> = Vec::new();
            for &c in configs {
                if !cache.contains_key(c) && !seen.contains(&c) {
                    seen.push(c);
                }
            }
            seen
        };
        if missing.is_empty() {
            return Ok(());
        }
        let per_cfg = self.suite.len();
        let outs = self.run_pool(missing.len() * per_cfg, |i| {
            let cfg = missing[i / per_cfg];
            let w = &self.suite[i % per_cfg];
            w.golden_trace()
                .map(|t| dataflow_bound(&t, cfg).bound)
                .map_err(|err| EngineError::Golden {
                    workload: w.name,
                    err,
                })
        });
        let mut cache = self.bound_cache.lock().expect("bound cache lock");
        for (ci, &cfg) in missing.iter().enumerate() {
            let mut bounds = Vec::with_capacity(per_cfg);
            for out in &outs[ci * per_cfg..(ci + 1) * per_cfg] {
                bounds.push(*out.as_ref().map_err(Clone::clone)?);
            }
            cache.insert(cfg.clone(), Arc::new(bounds));
        }
        Ok(())
    }

    /// Per-workload dataflow-limit lower bounds (suite order) under
    /// `config` — the fewest cycles *any* issue mechanism could take,
    /// limited only by true RAW dependences and functional-unit
    /// latencies. Memoized per configuration for the engine's lifetime.
    ///
    /// # Errors
    /// Propagates a golden-interpreter failure as
    /// [`EngineError::Golden`].
    pub fn dataflow_bounds(&self, config: &MachineConfig) -> Result<Arc<Vec<u64>>, EngineError> {
        self.ensure_bounds(&[config])?;
        let cache = self.bound_cache.lock().expect("bound cache lock");
        Ok(Arc::clone(
            cache.get(config).expect("ensure_bounds filled this key"),
        ))
    }

    /// Total simple-issue cycles over the suite under `config` — the
    /// denominator of every paper-style speedup. Memoized per
    /// configuration for the engine's lifetime.
    ///
    /// # Errors
    /// Propagates the first failing unit's [`EngineError`].
    pub fn baseline_cycles(&self, config: &MachineConfig) -> Result<u64, EngineError> {
        self.ensure_baselines(&[config])?;
        let cache = self.baseline_cache.lock().expect("baseline cache lock");
        Ok(*cache.get(config).expect("ensure_baselines filled this key"))
    }

    /// Executes a job grid across the worker pool.
    ///
    /// Results are aggregated per job in workload order from integer
    /// per-unit results, so the numbers are identical for any worker
    /// count; only [`SweepReport::stats`] is timing-dependent.
    ///
    /// # Errors
    /// The first failing unit (in deterministic unit order) aborts the
    /// report with its [`EngineError`].
    pub fn run_grid(&self, jobs: &[Job]) -> Result<SweepReport, EngineError> {
        let start = Instant::now();
        let configs: Vec<&MachineConfig> = jobs.iter().map(|j| &j.config).collect();
        let baseline_units = self.ensure_baselines(&configs)?;
        self.ensure_bounds(&configs)?;

        let per_job = self.suite.len();
        let n_units = jobs.len() * per_job;
        let outs = self.run_pool(n_units, |i| {
            let job = &jobs[i / per_job];
            let w = &self.suite[i % per_job];
            Self::run_unit(&job.label, job.mechanism, &job.config, w)
        });

        let cache = self.baseline_cache.lock().expect("baseline cache lock");
        let bound_cache = self.bound_cache.lock().expect("bound cache lock");
        let mut results = Vec::with_capacity(jobs.len());
        for (ji, job) in jobs.iter().enumerate() {
            let mut cycles = 0u64;
            let mut instructions = 0u64;
            let mut stalls = StallHistogram::default();
            let mut branch = BranchSummary::default();
            let mut dcache = CacheSummary::default();
            for out in &outs[ji * per_job..(ji + 1) * per_job] {
                let (c, n, h, b, dc) = out.as_ref().map_err(Clone::clone)?;
                cycles += c;
                instructions += n;
                stalls.absorb(h);
                branch.predicts += b.predicts;
                branch.mispredicts += b.mispredicts;
                branch.flush_cycles += b.flush_cycles;
                dcache.accesses += dc.accesses;
                dcache.hits += dc.hits;
                dcache.misses += dc.misses;
            }
            let baseline_cycles = *cache
                .get(&job.config)
                .expect("ensure_baselines covered every job config");
            let dataflow_bound: u64 = bound_cache
                .get(&job.config)
                .expect("ensure_bounds covered every job config")
                .iter()
                .sum();
            results.push(JobResult {
                label: job.label.clone(),
                mechanism: job.mechanism.to_string(),
                entries: job.mechanism.window_entries(),
                cycles,
                instructions,
                baseline_cycles,
                speedup: baseline_cycles as f64 / cycles as f64,
                issue_rate: instructions as f64 / cycles as f64,
                dataflow_bound,
                efficiency: dataflow_bound as f64 / cycles as f64,
                stalls: stalls.rows(),
                branch: job.mechanism.predictor().map(|_| branch),
                cache: (!job.config.dcache.is_perfect()).then_some(dcache),
            });
        }
        drop(cache);
        drop(bound_cache);

        let wall = start.elapsed();
        let units = n_units + baseline_units;
        let secs = wall.as_secs_f64();
        Ok(SweepReport {
            jobs: results,
            stats: EngineStats {
                workers: self.workers,
                jobs: jobs.len(),
                units,
                wall,
                jobs_per_sec: if secs > 0.0 {
                    jobs.len() as f64 / secs
                } else {
                    0.0
                },
                units_per_sec: if secs > 0.0 { units as f64 / secs } else { 0.0 },
            },
        })
    }

    /// Runs one (mechanism, config) pair over the suite, returning
    /// per-workload rows (paper Table-1 shape), computed in parallel.
    ///
    /// # Errors
    /// The first failing workload (in suite order) aborts with its
    /// [`EngineError`].
    pub fn workload_rows(
        &self,
        mechanism: Mechanism,
        config: &MachineConfig,
    ) -> Result<Vec<WorkloadRow>, EngineError> {
        let label = mechanism.to_string();
        let bounds = self.dataflow_bounds(config)?;
        let outs = self.run_pool(self.suite.len(), |i| {
            let w = &self.suite[i];
            Self::run_unit(&label, mechanism, config, w).map(|(c, n, _, _, _)| (w.name, c, n))
        });
        outs.into_iter()
            .zip(bounds.iter())
            .map(|(out, &dataflow_bound)| {
                out.map(|(name, cycles, instructions)| WorkloadRow {
                    name,
                    cycles,
                    instructions,
                    dataflow_bound,
                })
            })
            .collect()
    }
}

/// One worker per available hardware thread (1 if unknown).
fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruu_exec::Memory;
    use ruu_isa::{Asm, Reg};
    use ruu_issue::Bypass;

    /// A tiny two-workload suite so tests stay fast.
    fn mini_suite() -> Vec<Workload> {
        let mut suite = Vec::new();
        for (name, trips) in [("mini1", 4u64), ("mini2", 7u64)] {
            let mut a = Asm::new(name);
            let top = a.new_label();
            a.a_imm(Reg::a(0), trips as i64);
            a.a_imm(Reg::a(1), 64);
            a.bind(top);
            a.ld_s(Reg::s(1), Reg::a(1), 0);
            a.f_add(Reg::s(2), Reg::s(1), Reg::s(2));
            a.st_s(Reg::s(2), Reg::a(1), 1);
            a.a_add_imm(Reg::a(1), Reg::a(1), 2);
            a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
            a.br_an(top);
            a.halt();
            let program = a.assemble().expect("mini kernel assembles");
            let memory = Memory::new(1 << 12);
            let trace =
                ruu_exec::Trace::capture(&program, memory.clone(), 10_000).expect("golden runs");
            let checks: Vec<(u64, u64)> = (0..trips)
                .map(|i| {
                    let addr = 64 + 2 * i + 1;
                    (addr, trace.final_memory().read(addr))
                })
                .collect();
            suite.push(Workload {
                name,
                description: "engine test kernel",
                program,
                memory,
                checks,
                inst_limit: 10_000,
                lint_waivers: Vec::new(),
            });
        }
        suite
    }

    fn ruu_job(entries: usize) -> Job {
        Job::new(
            Mechanism::Ruu {
                entries,
                bypass: Bypass::Full,
            },
            MachineConfig::paper(),
        )
    }

    #[test]
    fn grid_results_match_serial_reference() {
        let engine = SweepEngine::new(mini_suite()).with_workers(4);
        let jobs = vec![
            ruu_job(4),
            ruu_job(8),
            Job::new(Mechanism::Simple, MachineConfig::paper()),
        ];
        let report = engine.run_grid(&jobs).expect("grid runs");

        // Serial reference: straight loop over the same triples.
        let suite = mini_suite();
        for (job, res) in jobs.iter().zip(&report.jobs) {
            let mut cycles = 0;
            let mut insts = 0;
            for w in &suite {
                let r = job
                    .mechanism
                    .run(&job.config, &w.program, w.memory.clone(), w.inst_limit)
                    .expect("reference run");
                cycles += r.cycles;
                insts += r.instructions;
            }
            assert_eq!(res.cycles, cycles, "{}", job.label);
            assert_eq!(res.instructions, insts, "{}", job.label);
        }
        // The simple-issue job is its own baseline.
        assert_eq!(report.jobs[2].speedup.to_bits(), 1f64.to_bits());
    }

    #[test]
    fn baseline_cache_is_memoized() {
        let engine = SweepEngine::new(mini_suite()).with_workers(2);
        let cfg = MachineConfig::paper();
        let a = engine.baseline_cycles(&cfg).expect("baseline");
        let b = engine.baseline_cycles(&cfg).expect("baseline (cached)");
        assert_eq!(a, b);
        // Second grid over the same config schedules no baseline units.
        let r1 = engine.run_grid(&[ruu_job(4)]).expect("grid");
        assert_eq!(r1.stats.units, engine.suite().len());
        // A new config forces a baseline fill.
        let other = cfg.clone().with_result_buses(2);
        let r2 = engine
            .run_grid(&[Job::new(Mechanism::Rstu { entries: 4 }, other)])
            .expect("grid");
        assert_eq!(r2.stats.units, 2 * engine.suite().len());
    }

    #[test]
    fn worker_count_does_not_change_numbers() {
        let jobs = vec![ruu_job(3), ruu_job(6), ruu_job(12)];
        let serial = SweepEngine::new(mini_suite())
            .with_workers(1)
            .run_grid(&jobs)
            .expect("serial grid");
        let parallel = SweepEngine::new(mini_suite())
            .with_workers(4)
            .run_grid(&jobs)
            .expect("parallel grid");
        for (a, b) in serial.jobs.iter().zip(&parallel.jobs) {
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.instructions, b.instructions);
            assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
            assert_eq!(a.issue_rate.to_bits(), b.issue_rate.to_bits());
            assert_eq!(a.stalls, b.stalls);
        }
    }

    #[test]
    fn job_stalls_account_for_every_cycle() {
        // Each issue cycle issues exactly one instruction, so per job
        // cycles == instructions + Σ stall_cycles — the same identity the
        // CycleAccountant enforces per run, here over the aggregate.
        let engine = SweepEngine::new(mini_suite()).with_workers(4);
        let jobs = vec![
            Job::new(Mechanism::Simple, MachineConfig::paper()),
            ruu_job(4),
            Job::new(Mechanism::Rstu { entries: 6 }, MachineConfig::paper()),
        ];
        let report = engine.run_grid(&jobs).expect("grid runs");
        for j in &report.jobs {
            assert_eq!(
                j.cycles,
                j.instructions + j.total_stalls(),
                "cycle accounting for {}",
                j.label
            );
            assert!(!j.stalls.is_empty(), "{} reports no stalls", j.label);
            assert!(j.stalls.iter().all(|&(_, n)| n > 0));
            assert!(j.stalls.len() <= StallReason::ALL.len());
        }
    }

    #[test]
    fn speculative_jobs_report_branch_stats() {
        use ruu_issue::PredictorConfig;
        let engine = SweepEngine::new(mini_suite()).with_workers(2);
        let cfg = MachineConfig::paper();
        let jobs = vec![
            ruu_job(8),
            Job::new(
                Mechanism::SpecRuu {
                    entries: 8,
                    bypass: Bypass::Full,
                    predictor: PredictorConfig::default(),
                },
                cfg.clone(),
            ),
        ];
        let report = engine.run_grid(&jobs).expect("grid");
        assert!(
            report.jobs[0].branch.is_none(),
            "non-speculative jobs carry no branch stats"
        );
        let b = report.jobs[1]
            .branch
            .expect("speculative job has branch stats");
        // The mini kernels' loop condition is computed right before the
        // branch, so the speculative machine must actually predict, and
        // the two-bit counter misses each loop exit.
        assert!(b.predicts > 0);
        assert!(b.mispredicts > 0 && b.mispredicts <= b.predicts);
        assert_eq!(
            b.flush_cycles,
            b.mispredicts * (cfg.mispredict_penalty + 1),
            "every flush costs exactly one redirect window"
        );
        assert!(b.mpki(report.jobs[1].instructions) > 0.0);

        // The JSON report carries the `branch` object for the
        // speculative job only.
        let json = report.to_json();
        for key in [
            "\"branch\":",
            "\"predicts\":",
            "\"mispredicts\":",
            "\"mpki\":",
            "\"flush_cycles\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches("\"branch\":").count(), 1);
    }

    #[test]
    fn finite_dcache_jobs_report_cache_stats() {
        use ruu_sim_core::DCacheConfig;
        let engine = SweepEngine::new(mini_suite()).with_workers(2);
        let finite = MachineConfig::paper()
            .with_dcache(DCacheConfig::parse("16x2x2:20").expect("geometry parses"));
        let jobs = vec![ruu_job(8), Job::new(Mechanism::Simple, finite)];
        let report = engine.run_grid(&jobs).expect("grid");
        assert!(
            report.jobs[0].cache.is_none(),
            "perfect-memory jobs carry no cache stats"
        );
        let c = report.jobs[1].cache.expect("finite-dcache job has stats");
        assert!(c.accesses > 0, "the mini kernels load every iteration");
        assert_eq!(c.hits + c.misses, c.accesses);
        assert!(c.misses > 0, "a cold cache must miss at least once");
        assert!((0.0..=1.0).contains(&c.hit_rate()));
        assert!(c.mpki(report.jobs[1].instructions) > 0.0);

        // The JSON report carries the `cache` object for the finite job
        // only.
        let json = report.to_json();
        for key in [
            "\"cache\":",
            "\"accesses\":",
            "\"hits\":",
            "\"misses\":",
            "\"hit_rate\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches("\"cache\":").count(), 1);
    }

    #[test]
    fn report_serializes_to_json() {
        let engine = SweepEngine::new(mini_suite()).with_workers(2);
        let report = engine.run_grid(&[ruu_job(4)]).expect("grid");
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"engine\":",
            "\"workers\":",
            "\"wall_ms\":",
            "\"jobs_per_sec\":",
            "\"label\":",
            "\"cycles\":",
            "\"speedup\":",
            "\"dataflow_bound\":",
            "\"efficiency\":",
            "\"entries\":4",
            "\"stalls\":",
            "\"drained\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn workload_rows_cover_the_suite_in_order() {
        let engine = SweepEngine::new(mini_suite()).with_workers(4);
        let rows = engine
            .workload_rows(Mechanism::Simple, &MachineConfig::paper())
            .expect("rows");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "mini1");
        assert_eq!(rows[1].name, "mini2");
        let total: u64 = rows.iter().map(|r| r.cycles).sum();
        assert_eq!(
            total,
            engine
                .baseline_cycles(&MachineConfig::paper())
                .expect("baseline")
        );
    }

    #[test]
    fn cycles_never_beat_the_dataflow_bound() {
        let engine = SweepEngine::new(mini_suite()).with_workers(2);
        let jobs = vec![
            Job::new(Mechanism::Simple, MachineConfig::paper()),
            ruu_job(8),
        ];
        let report = engine.run_grid(&jobs).expect("grid");
        for j in &report.jobs {
            assert!(
                j.cycles >= j.dataflow_bound,
                "{} beat the dataflow limit: {} < {}",
                j.label,
                j.cycles,
                j.dataflow_bound
            );
            assert!(j.efficiency > 0.0 && j.efficiency <= 1.0, "{}", j.label);
        }
        // The bound is mechanism-independent, so the larger window can
        // only close the gap, never widen it past the limit.
        assert_eq!(report.jobs[0].dataflow_bound, report.jobs[1].dataflow_bound);

        // Per-workload rows carry the same per-config bounds, and the
        // bound is at least the dynamic instruction count (decode is
        // one per cycle).
        let rows = engine
            .workload_rows(Mechanism::Simple, &MachineConfig::paper())
            .expect("rows");
        let total: u64 = rows.iter().map(|r| r.dataflow_bound).sum();
        assert_eq!(total, report.jobs[0].dataflow_bound);
        for r in &rows {
            assert!(r.cycles >= r.dataflow_bound, "{}", r.name);
            assert!(r.dataflow_bound >= r.instructions, "{}", r.name);
        }
    }

    #[test]
    fn errors_carry_job_and_workload() {
        let mut suite = mini_suite();
        // An absurdly low instruction limit forces SimError::InstLimit.
        suite[1].inst_limit = 1;
        let engine = SweepEngine::new(suite).with_workers(2);
        let err = engine.run_grid(&[ruu_job(4)]).expect_err("limit trips");
        match err {
            EngineError::Sim { workload, .. } => assert_eq!(workload, "mini2"),
            other => panic!("unexpected error {other}"),
        }
    }
}
