//! Dynamic instruction traces and instruction-mix statistics.

use std::fmt;

use ruu_isa::{FuClass, Inst, Program};

use crate::executor::{ExecError, Executor, StepOutcome};
use crate::memory::Memory;
use crate::state::ArchState;

/// One dynamically executed instruction, as recorded by the golden
/// interpreter.
///
/// The paper's methodology is trace-driven (§2.1: CRAY-1 simulator traces
/// fed to issue-logic simulators); our timing simulators are
/// execution-driven, but traces remain useful for instruction-mix
/// statistics and for cross-checking the committed instruction streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Dynamic instruction index (0-based).
    pub index: u64,
    /// Program counter.
    pub pc: u32,
    /// The instruction.
    pub inst: Inst,
    /// Result value written to the destination register, if any.
    pub result: Option<u64>,
    /// Effective address, for memory operations.
    pub ea: Option<u64>,
    /// Branch outcome, for branches.
    pub taken: Option<bool>,
    /// Value stored to memory, for stores.
    pub store_value: Option<u64>,
}

/// Instruction-mix statistics over a trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstMix {
    /// Dynamic instruction count per functional-unit class.
    pub per_fu: [u64; FuClass::ALL.len()],
    /// Number of branch instructions.
    pub branches: u64,
    /// Number of taken branches.
    pub taken_branches: u64,
    /// Number of loads.
    pub loads: u64,
    /// Number of stores.
    pub stores: u64,
    /// Total dynamic instructions.
    pub total: u64,
}

impl InstMix {
    /// Records one dynamic instruction.
    pub fn record(&mut self, ev: &TraceEvent) {
        self.total += 1;
        if let Some(fu) = ev.inst.fu_class() {
            self.per_fu[fu.index()] += 1;
        }
        if ev.inst.is_branch() {
            self.branches += 1;
            if ev.taken == Some(true) {
                self.taken_branches += 1;
            }
        }
        if ev.inst.is_load() {
            self.loads += 1;
        }
        if ev.inst.is_store() {
            self.stores += 1;
        }
    }

    /// Dynamic count for a functional-unit class.
    #[must_use]
    pub fn fu_count(&self, fu: FuClass) -> u64 {
        self.per_fu[fu.index()]
    }
}

impl fmt::Display for InstMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "total {:>8}", self.total)?;
        for fu in FuClass::ALL {
            let n = self.fu_count(fu);
            if n > 0 {
                writeln!(f, "  {fu:<15} {n:>8}")?;
            }
        }
        writeln!(
            f,
            "  {:<15} {:>8} ({} taken)",
            "branches", self.branches, self.taken_branches
        )
    }
}

/// A complete dynamic trace of a program run, with the final golden state.
#[derive(Debug, Clone)]
pub struct Trace {
    events: Vec<TraceEvent>,
    mix: InstMix,
    final_state: ArchState,
    final_memory: Memory,
}

impl Trace {
    /// Runs `program` on the golden interpreter, recording every dynamic
    /// instruction, up to `limit` instructions.
    ///
    /// # Errors
    /// Propagates interpreter errors ([`ExecError`]).
    pub fn capture(program: &Program, mem: Memory, limit: u64) -> Result<Self, ExecError> {
        let mut ex = Executor::new(mem);
        let mut events = Vec::new();
        let mut mix = InstMix::default();
        loop {
            if ex.executed() >= limit {
                return Err(ExecError::InstLimit { limit });
            }
            match ex.step(program)? {
                StepOutcome::Executed(ev) => {
                    mix.record(&ev);
                    events.push(ev);
                }
                StepOutcome::Halted => break,
            }
        }
        Ok(Trace {
            events,
            mix,
            final_state: ex.state().clone(),
            final_memory: ex.memory().clone(),
        })
    }

    /// The dynamic instruction events, in program order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of dynamic instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if no instructions executed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Instruction-mix statistics.
    #[must_use]
    pub fn mix(&self) -> &InstMix {
        &self.mix
    }

    /// Final architectural state.
    #[must_use]
    pub fn final_state(&self) -> &ArchState {
        &self.final_state
    }

    /// Final memory contents.
    #[must_use]
    pub fn final_memory(&self) -> &Memory {
        &self.final_memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruu_isa::{Asm, Reg};

    #[test]
    fn capture_records_mix_and_final_state() {
        let mut a = Asm::new("t");
        let top = a.new_label();
        a.a_imm(Reg::a(0), 3);
        a.a_imm(Reg::a(2), 100);
        a.bind(top);
        a.ld_s(Reg::s(1), Reg::a(2), 0);
        a.f_add(Reg::s(2), Reg::s(2), Reg::s(1));
        a.st_s(Reg::s(2), Reg::a(2), 1);
        a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
        a.br_an(top);
        a.halt();
        let p = a.assemble().unwrap();
        let t = Trace::capture(&p, Memory::new(1 << 10), 10_000).unwrap();
        assert_eq!(t.len(), 2 + 3 * 5);
        assert_eq!(t.mix().loads, 3);
        assert_eq!(t.mix().stores, 3);
        assert_eq!(t.mix().branches, 3);
        assert_eq!(t.mix().taken_branches, 2);
        assert_eq!(t.mix().fu_count(FuClass::FloatAdd), 3);
        assert_eq!(t.final_state().reg(Reg::a(0)), 0);
    }

    #[test]
    fn events_are_indexed_sequentially() {
        let mut a = Asm::new("t");
        a.nop();
        a.nop();
        a.halt();
        let p = a.assemble().unwrap();
        let t = Trace::capture(&p, Memory::new(8), 100).unwrap();
        let idx: Vec<u64> = t.events().iter().map(|e| e.index).collect();
        assert_eq!(idx, vec![0, 1]);
    }

    #[test]
    fn display_mix_nonempty() {
        let mut a = Asm::new("t");
        a.a_imm(Reg::a(1), 1);
        a.halt();
        let p = a.assemble().unwrap();
        let t = Trace::capture(&p, Memory::new(8), 100).unwrap();
        assert!(t.mix().to_string().contains("total"));
    }
}
