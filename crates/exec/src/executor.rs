//! The golden interpreter.

use std::fmt;

use ruu_isa::{semantics, Inst, Program};

use crate::memory::Memory;
use crate::state::ArchState;
use crate::trace::TraceEvent;

/// Errors from [`Executor::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The program counter ran past the end of the program without
    /// reaching a `Halt`.
    PcOutOfRange {
        /// The out-of-range program counter.
        pc: u32,
    },
    /// The dynamic instruction limit was exceeded (infinite-loop guard).
    InstLimit {
        /// The limit that was exceeded.
        limit: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::PcOutOfRange { pc } => {
                write!(f, "program counter {pc} ran past program end without halt")
            }
            ExecError::InstLimit { limit } => {
                write!(f, "dynamic instruction limit {limit} exceeded")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Result of a completed [`Executor::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecSummary {
    /// Dynamic instructions executed (the `Halt` itself is not counted,
    /// matching the paper's instruction counts which exclude machine
    /// idle/exchange overhead).
    pub instructions: u64,
}

/// Outcome of a single [`Executor::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// An instruction executed; the event describes it.
    Executed(TraceEvent),
    /// The program reached `Halt`.
    Halted,
}

/// The golden architectural interpreter.
///
/// Executes instructions one at a time, strictly in program order, applying
/// the pure [`ruu_isa::semantics`] and updating an [`ArchState`] and a
/// [`Memory`]. Every timing simulator must converge to exactly the state
/// this interpreter computes.
#[derive(Debug, Clone)]
pub struct Executor {
    state: ArchState,
    mem: Memory,
    executed: u64,
    halted: bool,
}

impl Executor {
    /// Creates an interpreter with zeroed registers, `pc = 0`, and the
    /// given initial memory (workload data).
    #[must_use]
    pub fn new(mem: Memory) -> Self {
        Executor {
            state: ArchState::new(),
            mem,
            executed: 0,
            halted: false,
        }
    }

    /// Creates an interpreter resuming from an explicit state (used by the
    /// precise-interrupt restart tests).
    #[must_use]
    pub fn from_state(state: ArchState, mem: Memory) -> Self {
        Executor {
            state,
            mem,
            executed: 0,
            halted: false,
        }
    }

    /// Current architectural state.
    #[must_use]
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// Current memory contents.
    #[must_use]
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Dynamic instructions executed so far.
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// `true` once `Halt` has been reached.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Executes one instruction.
    ///
    /// # Errors
    /// Returns [`ExecError::PcOutOfRange`] if `pc` points past the end of
    /// the program.
    pub fn step(&mut self, program: &Program) -> Result<StepOutcome, ExecError> {
        if self.halted {
            return Ok(StepOutcome::Halted);
        }
        let pc = self.state.pc;
        let inst = *program.get(pc).ok_or(ExecError::PcOutOfRange { pc })?;
        if inst.is_halt() {
            self.halted = true;
            return Ok(StepOutcome::Halted);
        }
        let event = self.execute(pc, &inst);
        self.executed += 1;
        Ok(StepOutcome::Executed(event))
    }

    /// Executes `inst` (not `Halt`) at `pc`, updating state, and returns
    /// the trace event.
    fn execute(&mut self, pc: u32, inst: &Inst) -> TraceEvent {
        let s1 = inst.src1.map_or(0, |r| self.state.reg(r));
        let s2 = inst.src2.map_or(0, |r| self.state.reg(r));

        let mut event = TraceEvent {
            index: self.executed,
            pc,
            inst: *inst,
            result: None,
            ea: None,
            taken: None,
            store_value: None,
        };

        let mut next_pc = pc + 1;
        if inst.is_branch() {
            let taken = semantics::branch_taken(inst.opcode, s1);
            event.taken = Some(taken);
            if taken {
                next_pc = inst.target.expect("branch always has a target");
            }
        } else if inst.is_load() {
            let ea = semantics::effective_address(s1, inst.imm);
            let v = self.mem.read(ea);
            event.ea = Some(ea);
            event.result = Some(v);
            self.state
                .set_reg(inst.dst.expect("load always has a destination"), v);
        } else if inst.is_store() {
            let ea = semantics::effective_address(s1, inst.imm);
            event.ea = Some(ea);
            event.store_value = Some(s2);
            self.mem.write(ea, s2);
        } else if let Some(dst) = inst.dst {
            let v = semantics::alu_result(inst.opcode, s1, s2, inst.imm);
            event.result = Some(v);
            self.state.set_reg(dst, v);
        }
        // `Nop` and result-less cases fall through with no state change.
        self.state.pc = next_pc;
        event
    }

    /// Runs until `Halt` or until `limit` dynamic instructions.
    ///
    /// # Errors
    /// Returns [`ExecError::InstLimit`] if the limit is hit before `Halt`,
    /// or [`ExecError::PcOutOfRange`] if execution falls off the program.
    pub fn run(&mut self, program: &Program, limit: u64) -> Result<ExecSummary, ExecError> {
        while !self.halted {
            if self.executed >= limit {
                return Err(ExecError::InstLimit { limit });
            }
            self.step(program)?;
        }
        Ok(ExecSummary {
            instructions: self.executed,
        })
    }

    /// Runs exactly `n` more instructions (or fewer if `Halt` comes
    /// first); used to compute golden states at dynamic boundaries.
    ///
    /// # Errors
    /// Propagates [`ExecError::PcOutOfRange`].
    pub fn run_steps(&mut self, program: &Program, n: u64) -> Result<(), ExecError> {
        for _ in 0..n {
            if let StepOutcome::Halted = self.step(program)? {
                break;
            }
        }
        Ok(())
    }
}

/// Convenience: the golden architectural state and memory after executing
/// exactly `k` dynamic instructions of `program` from initial memory `mem`.
///
/// # Errors
/// Propagates [`ExecError::PcOutOfRange`].
pub fn golden_state_at(
    program: &Program,
    mem: Memory,
    k: u64,
) -> Result<(ArchState, Memory), ExecError> {
    let mut ex = Executor::new(mem);
    ex.run_steps(program, k)?;
    Ok((ex.state.clone(), ex.mem))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruu_isa::{Asm, Reg};

    fn mem() -> Memory {
        Memory::new(1 << 10)
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut a = Asm::new("t");
        a.a_imm(Reg::a(1), 6);
        a.a_imm(Reg::a(2), 7);
        a.a_mul(Reg::a(3), Reg::a(1), Reg::a(2));
        a.halt();
        let p = a.assemble().unwrap();
        let mut ex = Executor::new(mem());
        let s = ex.run(&p, 100).unwrap();
        assert_eq!(s.instructions, 3);
        assert_eq!(ex.state().reg(Reg::a(3)), 42);
        assert!(ex.halted());
    }

    #[test]
    fn loop_executes_correct_count() {
        // sum k for k in 1..=5 using A1 as accumulator
        let mut a = Asm::new("t");
        let top = a.new_label();
        a.a_imm(Reg::a(0), 5);
        a.a_imm(Reg::a(1), 0);
        a.bind(top);
        a.a_add(Reg::a(1), Reg::a(1), Reg::a(0));
        a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
        a.br_an(top);
        a.halt();
        let p = a.assemble().unwrap();
        let mut ex = Executor::new(mem());
        let s = ex.run(&p, 1000).unwrap();
        assert_eq!(ex.state().reg(Reg::a(1)), 15);
        // 2 setup + 5 iterations * 3
        assert_eq!(s.instructions, 17);
    }

    #[test]
    fn loads_and_stores() {
        let mut m = mem();
        m.write(100, 11);
        m.write(101, 31);
        let mut a = Asm::new("t");
        a.a_imm(Reg::a(2), 100);
        a.ld_s(Reg::s(1), Reg::a(2), 0);
        a.ld_s(Reg::s(2), Reg::a(2), 1);
        a.s_add(Reg::s(3), Reg::s(1), Reg::s(2));
        a.st_s(Reg::s(3), Reg::a(2), 2);
        a.halt();
        let p = a.assemble().unwrap();
        let mut ex = Executor::new(m);
        ex.run(&p, 100).unwrap();
        assert_eq!(ex.memory().read(102), 42);
    }

    #[test]
    fn float_pipeline() {
        let mut m = mem();
        m.write_f64(10, 2.0);
        let mut a = Asm::new("t");
        a.a_imm(Reg::a(1), 10);
        a.ld_s(Reg::s(1), Reg::a(1), 0);
        a.f_recip(Reg::s(2), Reg::s(1));
        a.f_mul(Reg::s(3), Reg::s(2), Reg::s(1)); // = 1.0
        a.st_s(Reg::s(3), Reg::a(1), 1);
        a.halt();
        let p = a.assemble().unwrap();
        let mut ex = Executor::new(m);
        ex.run(&p, 100).unwrap();
        assert_eq!(ex.memory().read_f64(11), 1.0);
    }

    #[test]
    fn falling_off_end_is_error() {
        let mut a = Asm::new("t");
        a.nop();
        let p = a.assemble().unwrap();
        let mut ex = Executor::new(mem());
        let err = ex.run(&p, 100).unwrap_err();
        assert_eq!(err, ExecError::PcOutOfRange { pc: 1 });
    }

    #[test]
    fn infinite_loop_hits_limit() {
        let mut a = Asm::new("t");
        let top = a.new_label();
        a.bind(top);
        a.jump(top);
        let p = a.assemble().unwrap();
        let mut ex = Executor::new(mem());
        let err = ex.run(&p, 10).unwrap_err();
        assert_eq!(err, ExecError::InstLimit { limit: 10 });
    }

    #[test]
    fn golden_state_at_boundary() {
        let mut a = Asm::new("t");
        a.a_imm(Reg::a(1), 1);
        a.a_imm(Reg::a(2), 2);
        a.a_imm(Reg::a(3), 3);
        a.halt();
        let p = a.assemble().unwrap();
        let (st, _) = golden_state_at(&p, mem(), 2).unwrap();
        assert_eq!(st.reg(Reg::a(1)), 1);
        assert_eq!(st.reg(Reg::a(2)), 2);
        assert_eq!(st.reg(Reg::a(3)), 0); // not yet executed
        assert_eq!(st.pc, 2);
    }

    #[test]
    fn step_after_halt_is_stable() {
        let mut a = Asm::new("t");
        a.halt();
        let p = a.assemble().unwrap();
        let mut ex = Executor::new(mem());
        assert_eq!(ex.step(&p).unwrap(), StepOutcome::Halted);
        assert_eq!(ex.step(&p).unwrap(), StepOutcome::Halted);
        assert_eq!(ex.executed(), 0);
    }

    #[test]
    fn branch_event_records_taken() {
        let mut a = Asm::new("t");
        let skip = a.new_label();
        a.a_imm(Reg::a(0), 0);
        a.br_az(skip);
        a.a_imm(Reg::a(1), 99); // skipped
        a.bind(skip);
        a.halt();
        let p = a.assemble().unwrap();
        let mut ex = Executor::new(mem());
        ex.step(&p).unwrap();
        let StepOutcome::Executed(ev) = ex.step(&p).unwrap() else {
            panic!("expected branch execution");
        };
        assert_eq!(ev.taken, Some(true));
        ex.run(&p, 10).unwrap();
        assert_eq!(ex.state().reg(Reg::a(1)), 0);
    }
}
