//! Word-addressed data memory.

use std::fmt;

/// Word-addressed 64-bit data memory.
///
/// The model architecture assumes no memory bank conflicts and instruction
/// fetch that always hits the instruction buffers (paper §2.2), so data
/// memory is a flat array of 64-bit words. The capacity must be a power of
/// two; addresses are masked into range, which keeps memory access total
/// (important for randomly generated programs in property tests) while
/// staying deterministic — the golden interpreter and every simulator mask
/// identically.
#[derive(Clone, PartialEq, Eq)]
pub struct Memory {
    words: Vec<u64>,
    mask: u64,
}

impl Memory {
    /// Creates a zeroed memory of `words` 64-bit words.
    ///
    /// # Panics
    /// Panics if `words` is not a power of two.
    #[must_use]
    pub fn new(words: usize) -> Self {
        assert!(
            words.is_power_of_two(),
            "memory size must be a power of two, got {words}"
        );
        Memory {
            words: vec![0; words],
            mask: (words - 1) as u64,
        }
    }

    /// Capacity in words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` if capacity is zero (never: capacity is a power of two ≥ 1).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The canonical (masked) form of an address: the word every access
    /// to `addr` actually touches. Address-comparison hardware (the load
    /// registers) must compare canonical addresses, or two aliases of one
    /// word would escape disambiguation.
    #[must_use]
    pub fn canonicalize(&self, addr: u64) -> u64 {
        addr & self.mask
    }

    /// Reads the word at `addr` (masked into range).
    #[must_use]
    pub fn read(&self, addr: u64) -> u64 {
        self.words[(addr & self.mask) as usize]
    }

    /// Writes the word at `addr` (masked into range).
    pub fn write(&mut self, addr: u64, value: u64) {
        self.words[(addr & self.mask) as usize] = value;
    }

    /// Writes a floating-point value (bit pattern) at `addr`.
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write(addr, value.to_bits());
    }

    /// Reads a floating-point value (bit pattern) at `addr`.
    #[must_use]
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read(addr))
    }

    /// Fills `len` consecutive words starting at `base` by evaluating `f`
    /// on each index (workload data initialisation).
    ///
    /// Addresses are masked like every other access, so a span that runs
    /// past capacity silently wraps and overwrites low memory. Layout
    /// code should prefer [`Memory::try_fill`], which rejects that.
    pub fn fill_with(&mut self, base: u64, len: u64, mut f: impl FnMut(u64) -> u64) {
        for i in 0..len {
            self.write(base + i, f(i));
        }
    }

    /// Like [`Memory::fill_with`], but refuses a span that would wrap
    /// past capacity and alias earlier words.
    ///
    /// # Errors
    /// Returns [`FillWraps`] — and writes nothing — if `base + len`
    /// exceeds the capacity (including `base` itself out of range, whose
    /// masked writes would land elsewhere).
    pub fn try_fill(
        &mut self,
        base: u64,
        len: u64,
        f: impl FnMut(u64) -> u64,
    ) -> Result<(), FillWraps> {
        let capacity = self.words.len() as u64;
        if base.checked_add(len).is_none_or(|end| end > capacity) {
            return Err(FillWraps {
                base,
                len,
                capacity,
            });
        }
        self.fill_with(base, len, f);
        Ok(())
    }

    /// Iterator over `(address, value)` for all non-zero words — used to
    /// compare memories cheaply in tests.
    pub fn nonzero(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.words
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0)
            .map(|(a, &v)| (a as u64, v))
    }
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let nz = self.nonzero().count();
        write!(f, "Memory({} words, {nz} nonzero)", self.words.len())
    }
}

/// A [`Memory::try_fill`] span wrapped past capacity: writing it with
/// masked addresses would alias earlier words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillWraps {
    /// First word of the rejected span.
    pub base: u64,
    /// Length of the rejected span, in words.
    pub len: u64,
    /// Memory capacity, in words.
    pub capacity: u64,
}

impl fmt::Display for FillWraps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "span of {} words at {} wraps past the {}-word capacity and would alias low memory",
            self.len, self.base, self.capacity
        )
    }
}

impl std::error::Error for FillWraps {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut m = Memory::new(64);
        m.write(10, 42);
        assert_eq!(m.read(10), 42);
        assert_eq!(m.read(11), 0);
    }

    #[test]
    fn addresses_are_masked() {
        let mut m = Memory::new(64);
        m.write(64 + 3, 7);
        assert_eq!(m.read(3), 7);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = Memory::new(100);
    }

    #[test]
    fn f64_roundtrip() {
        let mut m = Memory::new(8);
        m.write_f64(1, 2.75);
        assert_eq!(m.read_f64(1), 2.75);
    }

    #[test]
    fn fill_with_and_nonzero() {
        let mut m = Memory::new(16);
        m.fill_with(4, 3, |i| i + 1);
        let nz: Vec<_> = m.nonzero().collect();
        assert_eq!(nz, vec![(4, 1), (5, 2), (6, 3)]);
    }

    #[test]
    fn try_fill_rejects_wrapping_spans() {
        let mut m = Memory::new(16);
        // In-range span succeeds, including one that ends exactly at
        // capacity.
        assert_eq!(m.try_fill(12, 4, |i| i + 1), Ok(()));
        assert_eq!(m.read(15), 4);
        // A span past capacity is refused and writes nothing...
        let err = m.try_fill(14, 4, |_| 99).unwrap_err();
        assert_eq!(
            err,
            FillWraps {
                base: 14,
                len: 4,
                capacity: 16
            }
        );
        assert!(err.to_string().contains("wraps past the 16-word capacity"));
        assert_eq!(m.read(0), 0, "no wrapped write corrupted low memory");
        assert_eq!(m.read(14), 3, "no partial write before the check");
        // ...as is a base already out of range, and u64 overflow.
        assert!(m.try_fill(16, 1, |_| 1).is_err());
        assert!(m.try_fill(u64::MAX, 2, |_| 1).is_err());
        // `fill_with` keeps its documented wrap-through behaviour.
        m.fill_with(14, 4, |i| 100 + i);
        assert_eq!(m.read(1), 103);
    }

    #[test]
    fn equality_is_by_contents() {
        let mut a = Memory::new(8);
        let mut b = Memory::new(8);
        assert_eq!(a, b);
        a.write(0, 1);
        assert_ne!(a, b);
        b.write(0, 1);
        assert_eq!(a, b);
    }
}
