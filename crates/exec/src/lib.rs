//! # ruu-exec — golden architectural interpreter
//!
//! A simple, obviously-correct interpreter for the `ruu-isa` model
//! architecture. It defines the *architectural* semantics that every timing
//! simulator in `ruu-issue` must reproduce: the golden-equivalence tests
//! run a program both here and on a timing simulator and require identical
//! final register files and memories, and the precise-interrupt tests
//! require a recovered machine state to equal this interpreter's state at
//! the corresponding dynamic-instruction boundary.
//!
//! The crate also produces dynamic instruction [`Trace`]s and
//! instruction-mix statistics, which back Table 1 of the paper.
//!
//! ## Example
//!
//! ```
//! use ruu_exec::{Executor, Memory};
//! use ruu_isa::{Asm, Reg};
//!
//! let mut a = Asm::new("t");
//! a.a_imm(Reg::a(1), 2);
//! a.a_imm(Reg::a(2), 3);
//! a.a_add(Reg::a(3), Reg::a(1), Reg::a(2));
//! a.halt();
//! let p = a.assemble()?;
//!
//! let mut ex = Executor::new(Memory::new(1 << 10));
//! let summary = ex.run(&p, 100)?;
//! assert_eq!(summary.instructions, 3); // halt not counted
//! assert_eq!(ex.state().reg(Reg::a(3)), 5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod executor;
mod memory;
mod state;
mod trace;

pub use executor::{golden_state_at, ExecError, ExecSummary, Executor, StepOutcome};
pub use memory::{FillWraps, Memory};
pub use state::{ArchState, RegValues};
pub use trace::{InstMix, Trace, TraceEvent};
