//! Architectural register state.

use std::fmt;

use ruu_isa::{Reg, NUM_REGS};

/// The values of all 144 architectural registers.
#[derive(Clone, PartialEq, Eq)]
pub struct RegValues {
    vals: [u64; NUM_REGS],
}

impl RegValues {
    /// All-zero register file.
    #[must_use]
    pub fn new() -> Self {
        RegValues {
            vals: [0; NUM_REGS],
        }
    }

    /// The value of register `r`.
    #[must_use]
    pub fn get(&self, r: Reg) -> u64 {
        self.vals[r.index()]
    }

    /// Sets register `r` to `v`.
    pub fn set(&mut self, r: Reg, v: u64) {
        self.vals[r.index()] = v;
    }

    /// Iterator over `(register, value)` for all non-zero registers.
    pub fn nonzero(&self) -> impl Iterator<Item = (Reg, u64)> + '_ {
        self.vals
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0)
            .map(|(i, &v)| (Reg::from_index(i), v))
    }
}

impl Default for RegValues {
    fn default() -> Self {
        RegValues::new()
    }
}

impl fmt::Debug for RegValues {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RegValues {{")?;
        let mut first = true;
        for (r, v) in self.nonzero() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, " {r}={v:#x}")?;
            first = false;
        }
        if first {
            write!(f, " all zero")?;
        }
        write!(f, " }}")
    }
}

/// A precise architectural state: register values plus program counter.
///
/// This is what "precise interrupt" means in the paper (§4): at any
/// interrupt, a state of this form must be recoverable such that all
/// instructions before `pc` have updated it and none after have.
/// (Memory is part of the precise state too; it lives in
/// [`crate::Memory`] and is compared alongside.)
#[derive(Clone, PartialEq, Eq)]
pub struct ArchState {
    /// Register file contents.
    pub regs: RegValues,
    /// Program counter of the next instruction to execute.
    pub pc: u32,
}

impl ArchState {
    /// Initial state: all registers zero, `pc = 0`.
    #[must_use]
    pub fn new() -> Self {
        ArchState {
            regs: RegValues::new(),
            pc: 0,
        }
    }

    /// The value of register `r`.
    #[must_use]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs.get(r)
    }

    /// Sets register `r` to `v`.
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs.set(r, v);
    }
}

impl Default for ArchState {
    fn default() -> Self {
        ArchState::new()
    }
}

impl fmt::Debug for ArchState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ArchState {{ pc: {}, regs: {:?} }}", self.pc, self.regs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let mut rv = RegValues::new();
        for r in Reg::all() {
            assert_eq!(rv.get(r), 0);
        }
        rv.set(Reg::t(63), 99);
        assert_eq!(rv.get(Reg::t(63)), 99);
        assert_eq!(rv.nonzero().count(), 1);
    }

    #[test]
    fn equality_by_contents() {
        let mut a = ArchState::new();
        let b = ArchState::new();
        assert_eq!(a, b);
        a.set_reg(Reg::s(1), 5);
        assert_ne!(a, b);
    }

    #[test]
    fn debug_nonempty() {
        let s = ArchState::new();
        assert!(!format!("{s:?}").is_empty());
    }
}
