//! The pool of pipelined functional units.
//!
//! The model architecture (paper Figure 1) has one unit per
//! [`FuClass`]; every unit is fully pipelined, so a unit accepts at most
//! one new operation per cycle and an operation's result is ready
//! `latency` cycles later (the result-bus slot is booked separately, see
//! [`crate::SlotReservation`]).

use ruu_isa::FuClass;

/// Tracks per-cycle acceptance of the functional units.
#[derive(Debug, Clone)]
pub struct FuPool {
    last_accept: [Option<u64>; FuClass::ALL.len()],
}

impl FuPool {
    /// A pool with all units idle.
    #[must_use]
    pub fn new() -> Self {
        FuPool {
            last_accept: [None; FuClass::ALL.len()],
        }
    }

    /// `true` if unit `fu` can accept an operation at `cycle` (it has not
    /// already accepted one this cycle).
    #[must_use]
    pub fn can_accept(&self, fu: FuClass, cycle: u64) -> bool {
        self.last_accept[fu.index()] != Some(cycle)
    }

    /// Records that unit `fu` accepted an operation at `cycle`.
    ///
    /// # Panics
    /// Panics if the unit already accepted an operation this cycle (caller
    /// must check [`FuPool::can_accept`] first).
    pub fn accept(&mut self, fu: FuClass, cycle: u64) {
        assert!(
            self.can_accept(fu, cycle),
            "functional unit {fu} accepted twice in cycle {cycle}"
        );
        self.last_accept[fu.index()] = Some(cycle);
    }
}

impl Default for FuPool {
    fn default() -> Self {
        FuPool::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_accept_per_cycle_per_unit() {
        let mut p = FuPool::new();
        assert!(p.can_accept(FuClass::FloatAdd, 3));
        p.accept(FuClass::FloatAdd, 3);
        assert!(!p.can_accept(FuClass::FloatAdd, 3));
        // other units unaffected
        assert!(p.can_accept(FuClass::FloatMul, 3));
        // next cycle fine (pipelined)
        assert!(p.can_accept(FuClass::FloatAdd, 4));
    }

    #[test]
    #[should_panic(expected = "accepted twice")]
    fn double_accept_panics() {
        let mut p = FuPool::new();
        p.accept(FuClass::Memory, 1);
        p.accept(FuClass::Memory, 1);
    }
}
