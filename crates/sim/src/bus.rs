//! Future-cycle slot reservation (the result bus).
//!
//! In the model architecture the result bus is reserved *at dispatch time*
//! (paper §3.1, §5.1: "The RUU reserves the result bus when it issues an
//! instruction to the functional units"): an instruction with latency `L`
//! dispatched at cycle `t` books the bus for cycle `t + L`, and dispatch
//! stalls if that future slot is already taken.

use std::collections::BTreeMap;

/// Books up to `capacity` slots per future cycle.
#[derive(Debug, Clone)]
pub struct SlotReservation {
    capacity: u32,
    booked: BTreeMap<u64, u32>,
}

impl SlotReservation {
    /// Creates a reservation table with `capacity` slots per cycle.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "slot capacity must be positive");
        SlotReservation {
            capacity,
            booked: BTreeMap::new(),
        }
    }

    /// Slots per cycle.
    #[must_use]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// `true` if a slot at `cycle` is still available.
    #[must_use]
    pub fn available(&self, cycle: u64) -> bool {
        self.booked.get(&cycle).copied().unwrap_or(0) < self.capacity
    }

    /// Books a slot at `cycle` if one is available.
    pub fn try_reserve(&mut self, cycle: u64) -> bool {
        let e = self.booked.entry(cycle).or_insert(0);
        if *e < self.capacity {
            *e += 1;
            true
        } else {
            false
        }
    }

    /// Discards bookings strictly before `cycle` (bookkeeping only; call
    /// occasionally to keep the table small on long runs).
    pub fn release_before(&mut self, cycle: u64) {
        self.booked = self.booked.split_off(&cycle);
    }

    /// Number of slots booked at `cycle`.
    #[must_use]
    pub fn booked_at(&self, cycle: u64) -> u32 {
        self.booked.get(&cycle).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_capacity_excludes_second_booking() {
        let mut b = SlotReservation::new(1);
        assert!(b.try_reserve(10));
        assert!(!b.try_reserve(10));
        assert!(b.try_reserve(11));
        assert!(!b.available(10));
        assert!(b.available(12));
    }

    #[test]
    fn multi_capacity() {
        let mut b = SlotReservation::new(2);
        assert!(b.try_reserve(5));
        assert!(b.try_reserve(5));
        assert!(!b.try_reserve(5));
        assert_eq!(b.booked_at(5), 2);
    }

    #[test]
    fn release_before_trims_history() {
        let mut b = SlotReservation::new(1);
        b.try_reserve(1);
        b.try_reserve(2);
        b.try_reserve(3);
        b.release_before(3);
        assert_eq!(b.booked_at(1), 0);
        assert_eq!(b.booked_at(3), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = SlotReservation::new(0);
    }
}
