//! A configurable **data-cache timing model** — retiring the paper's
//! perfect-memory idealization.
//!
//! Paper §2.2 assumes "no memory bank conflicts" and a fixed data-memory
//! latency: every simulator charges a constant `mem_latency` for a load
//! that goes to memory. [`DCacheConfig::Perfect`] reproduces exactly that
//! machine — it is the default, and keeps every calibrated cycle count
//! bit-identical. A finite [`DCacheConfig::Cache`] replaces the constant
//! with a set-associative, LRU-replaced cache lookup: hits cost
//! `hit_latency`, misses cost `miss_latency`, and a bounded
//! outstanding-miss tracker (MSHR-style) limits how many fills may be in
//! flight at once.
//!
//! The cache is **timing-only**: architectural values always come from
//! [`Memory`](../../ruu_exec/struct.Memory.html), so golden-trace
//! equivalence is untouched — only *when* a load's value appears changes.
//! Addresses are canonicalized (masked to the memory size) before
//! indexing, so the cache and the load registers agree about aliased
//! addresses.

use std::fmt;

/// Data-cache configuration: the paper's perfect memory, or a finite
/// set-associative cache.
///
/// Parsed from / displayed as a `GEOM` string (see
/// [`DCacheConfig::parse`]), validated like
/// `PredictorConfig` — every geometry parameter must be a power of two.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum DCacheConfig {
    /// The §2.2 idealization: every load that goes to memory costs the
    /// configured memory-unit latency, no state, no conflicts. The
    /// default.
    #[default]
    Perfect,
    /// A finite set-associative cache with LRU replacement and a bounded
    /// outstanding-miss tracker.
    Cache {
        /// Number of sets (power of two).
        sets: usize,
        /// Associativity: lines per set (power of two).
        ways: usize,
        /// Line size in memory words (power of two).
        line_words: usize,
        /// Cycles from dispatch to data on a hit.
        hit_latency: u64,
        /// Cycles from dispatch to data on a miss (≥ `hit_latency`).
        miss_latency: u64,
        /// Outstanding-miss (MSHR) entries; a load that misses while all
        /// are busy cannot start.
        mshrs: usize,
    },
}

/// Why a [`DCacheConfig`] failed to parse or validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DCacheError {
    /// A geometry parameter must be a power of two.
    NotPowerOfTwo {
        /// Which parameter.
        what: &'static str,
        /// The offending value.
        got: usize,
    },
    /// A parameter must be at least one.
    Zero {
        /// Which parameter.
        what: &'static str,
    },
    /// The miss latency may not undercut the hit latency.
    MissFasterThanHit {
        /// Configured hit latency.
        hit: u64,
        /// Configured miss latency.
        miss: u64,
    },
    /// The `GEOM` string is not `perfect` or `SETSxWAYSxLINE[:...]`.
    BadGeometry {
        /// The spec as given.
        spec: String,
    },
    /// A numeric field did not parse.
    BadNumber {
        /// Which field.
        what: &'static str,
        /// The offending text.
        got: String,
    },
}

impl fmt::Display for DCacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DCacheError::NotPowerOfTwo { what, got } => {
                write!(f, "dcache {what} must be a power of two, got {got}")
            }
            DCacheError::Zero { what } => write!(f, "dcache {what} must be at least 1"),
            DCacheError::MissFasterThanHit { hit, miss } => {
                write!(f, "dcache miss latency {miss} must be >= hit latency {hit}")
            }
            DCacheError::BadGeometry { spec } => write!(
                f,
                "bad dcache geometry {spec:?} (want `perfect` or \
                 `SETSxWAYSxLINE[:MISS[:HIT[:MSHRS]]]`, e.g. `64x4x4:20`)"
            ),
            DCacheError::BadNumber { what, got } => {
                write!(f, "bad dcache {what}: {got:?} is not a number")
            }
        }
    }
}

impl std::error::Error for DCacheError {}

impl DCacheConfig {
    /// Default hit latency when the `GEOM` string leaves it out.
    pub const DEFAULT_HIT_LATENCY: u64 = 1;
    /// Default miss latency when the `GEOM` string leaves it out.
    pub const DEFAULT_MISS_LATENCY: u64 = 20;
    /// Default MSHR count when the `GEOM` string leaves it out.
    pub const DEFAULT_MSHRS: usize = 4;

    /// `true` for the perfect-memory idealization.
    #[must_use]
    pub fn is_perfect(&self) -> bool {
        matches!(self, DCacheConfig::Perfect)
    }

    /// Parses a `GEOM` string: `perfect`, or
    /// `SETSxWAYSxLINE[:MISS[:HIT[:MSHRS]]]` (e.g. `64x4x4:20`).
    ///
    /// # Errors
    /// Returns a [`DCacheError`] describing the malformed or invalid
    /// field; a parsed config is always valid.
    pub fn parse(spec: &str) -> Result<Self, DCacheError> {
        let spec = spec.trim();
        if spec.eq_ignore_ascii_case("perfect") {
            return Ok(DCacheConfig::Perfect);
        }
        let mut parts = spec.split(':');
        let geom = parts.next().unwrap_or_default();
        let dims: Vec<&str> = geom.split('x').collect();
        let [s, w, l] = dims.as_slice() else {
            return Err(DCacheError::BadGeometry { spec: spec.into() });
        };
        let dim = |what, text: &str| {
            text.parse::<usize>().map_err(|_| DCacheError::BadNumber {
                what,
                got: text.into(),
            })
        };
        let lat = |what, text: &str| {
            text.parse::<u64>().map_err(|_| DCacheError::BadNumber {
                what,
                got: text.into(),
            })
        };
        let sets = dim("sets", s)?;
        let ways = dim("ways", w)?;
        let line_words = dim("line size", l)?;
        let miss_latency = parts
            .next()
            .map(|t| lat("miss latency", t))
            .transpose()?
            .unwrap_or(Self::DEFAULT_MISS_LATENCY);
        let hit_latency = parts
            .next()
            .map(|t| lat("hit latency", t))
            .transpose()?
            .unwrap_or(Self::DEFAULT_HIT_LATENCY);
        let mshrs = parts
            .next()
            .map(|t| dim("mshrs", t))
            .transpose()?
            .unwrap_or(Self::DEFAULT_MSHRS);
        if parts.next().is_some() {
            return Err(DCacheError::BadGeometry { spec: spec.into() });
        }
        let cfg = DCacheConfig::Cache {
            sets,
            ways,
            line_words,
            hit_latency,
            miss_latency,
            mshrs,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Checks every parameter; [`DCacheConfig::parse`] never returns an
    /// invalid config, but a hand-built one is checked here (and by
    /// [`DCache::new`]).
    ///
    /// # Errors
    /// The first violated constraint.
    pub fn validate(&self) -> Result<(), DCacheError> {
        let DCacheConfig::Cache {
            sets,
            ways,
            line_words,
            hit_latency,
            miss_latency,
            mshrs,
        } = *self
        else {
            return Ok(());
        };
        for (what, got) in [("sets", sets), ("ways", ways), ("line size", line_words)] {
            if got == 0 {
                return Err(DCacheError::Zero { what });
            }
            if !got.is_power_of_two() {
                return Err(DCacheError::NotPowerOfTwo { what, got });
            }
        }
        if mshrs == 0 {
            return Err(DCacheError::Zero { what: "mshrs" });
        }
        if hit_latency == 0 {
            return Err(DCacheError::Zero {
                what: "hit latency",
            });
        }
        if miss_latency < hit_latency {
            return Err(DCacheError::MissFasterThanHit {
                hit: hit_latency,
                miss: miss_latency,
            });
        }
        Ok(())
    }
}

impl fmt::Display for DCacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DCacheConfig::Perfect => write!(f, "perfect"),
            DCacheConfig::Cache {
                sets,
                ways,
                line_words,
                hit_latency,
                miss_latency,
                mshrs,
            } => write!(
                f,
                "{sets}x{ways}x{line_words}:{miss_latency}:{hit_latency}:{mshrs}"
            ),
        }
    }
}

/// Hit/miss counters of one [`DCache`] over one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Loads that consulted the cache.
    pub accesses: u64,
    /// Loads served from a resident, filled line (includes merges into an
    /// in-flight fill, counted separately in `mshr_hits`).
    pub hits: u64,
    /// Loads that started a fresh line fill.
    pub misses: u64,
    /// The subset of `hits` that merged into an outstanding fill.
    pub mshr_hits: u64,
}

/// What one cache lookup would do at a given cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePlan {
    /// The line is resident and filled: data after `latency` cycles.
    Hit {
        /// Cycles until data.
        latency: u64,
    },
    /// The line is being filled by an outstanding miss; this load merges
    /// into it and gets data when the fill lands.
    MshrHit {
        /// Cycles until data.
        latency: u64,
    },
    /// A fresh miss: an MSHR is free, so a fill starts now.
    Miss {
        /// Cycles until data.
        latency: u64,
    },
    /// Every MSHR is busy: the access cannot start this cycle.
    Blocked,
}

impl CachePlan {
    /// Cycles until data, or `None` when [`CachePlan::Blocked`].
    #[must_use]
    pub fn latency(self) -> Option<u64> {
        match self {
            CachePlan::Hit { latency }
            | CachePlan::MshrHit { latency }
            | CachePlan::Miss { latency } => Some(latency),
            CachePlan::Blocked => None,
        }
    }

    /// `true` for a resident line (plain hit or MSHR merge).
    #[must_use]
    pub fn is_hit(self) -> bool {
        matches!(self, CachePlan::Hit { .. } | CachePlan::MshrHit { .. })
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    /// LRU stamp: the access clock when this line was last touched.
    last_use: u64,
    /// Cycle the fill lands; accesses before this merge into the fill.
    ready_at: u64,
}

#[derive(Debug, Clone, Copy)]
struct Geometry {
    sets: usize,
    ways: usize,
    line_words: usize,
    hit_latency: u64,
    miss_latency: u64,
}

/// The runtime data cache: one per simulator run, consulted at the single
/// point each simulator charges its memory latency.
///
/// Under [`DCacheConfig::Perfect`] every call is a fixed-latency hit and
/// no state exists, so the perfect machine's timing is bit-identical to
/// the pre-cache simulators.
#[derive(Debug, Clone)]
pub struct DCache {
    geom: Option<Geometry>,
    perfect_latency: u64,
    word_mask: u64,
    lines: Vec<Line>,
    /// `ready_at` of each outstanding-miss register; an entry is free once
    /// its cycle has passed.
    mshrs: Vec<u64>,
    clock: u64,
    stats: CacheStats,
}

impl DCache {
    /// Builds the runtime cache for one run. `perfect_latency` is the
    /// machine's memory-unit latency (charged verbatim under
    /// [`DCacheConfig::Perfect`]); `memory_words` is the backing memory
    /// size, used to canonicalize addresses exactly like
    /// `Memory::canonicalize`.
    ///
    /// # Panics
    /// Panics if the config fails [`DCacheConfig::validate`] or
    /// `memory_words` is not a power of two.
    #[must_use]
    pub fn new(config: &DCacheConfig, perfect_latency: u64, memory_words: u64) -> Self {
        config.validate().expect("validated dcache config");
        assert!(
            memory_words.is_power_of_two(),
            "memory size must be a power of two"
        );
        let (geom, lines, mshrs) = match *config {
            DCacheConfig::Perfect => (None, Vec::new(), Vec::new()),
            DCacheConfig::Cache {
                sets,
                ways,
                line_words,
                hit_latency,
                miss_latency,
                mshrs,
            } => (
                Some(Geometry {
                    sets,
                    ways,
                    line_words,
                    hit_latency,
                    miss_latency,
                }),
                vec![Line::default(); sets * ways],
                vec![0u64; mshrs],
            ),
        };
        DCache {
            geom,
            perfect_latency,
            word_mask: memory_words - 1,
            lines,
            mshrs,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// `true` when a finite cache is modelled (i.e. not
    /// [`DCacheConfig::Perfect`]).
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.geom.is_some()
    }

    /// This run's hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The set a word address indexes, after canonicalization — `None`
    /// under [`DCacheConfig::Perfect`].
    #[must_use]
    pub fn set_of(&self, addr: u64) -> Option<usize> {
        let g = self.geom?;
        Some((self.line_number(addr, &g) as usize) & (g.sets - 1))
    }

    /// The way currently holding a word address, if resident — `None`
    /// under [`DCacheConfig::Perfect`] or when the line is absent.
    #[must_use]
    pub fn way_of(&self, addr: u64) -> Option<usize> {
        let g = self.geom?;
        let (set, tag) = self.locate(addr, &g);
        (0..g.ways).find(|&w| {
            let line = self.lines[set * g.ways + w];
            line.valid && line.tag == tag
        })
    }

    fn line_number(&self, addr: u64, g: &Geometry) -> u64 {
        // Canonicalize exactly like `Memory::canonicalize`, then drop the
        // offset-in-line bits.
        (addr & self.word_mask) / g.line_words as u64
    }

    fn locate(&self, addr: u64, g: &Geometry) -> (usize, u64) {
        let ln = self.line_number(addr, g);
        let set = (ln as usize) & (g.sets - 1);
        let tag = ln >> g.sets.trailing_zeros();
        (set, tag)
    }

    /// What a load of `addr` dispatched at `cycle` would cost — pure: no
    /// state changes. Call [`DCache::access`] once the load actually
    /// dispatches.
    #[must_use]
    pub fn plan(&self, addr: u64, cycle: u64) -> CachePlan {
        let Some(g) = self.geom else {
            return CachePlan::Hit {
                latency: self.perfect_latency,
            };
        };
        let (set, tag) = self.locate(addr, &g);
        for w in 0..g.ways {
            let line = self.lines[set * g.ways + w];
            if line.valid && line.tag == tag {
                return if line.ready_at > cycle {
                    CachePlan::MshrHit {
                        latency: (line.ready_at - cycle).max(g.hit_latency),
                    }
                } else {
                    CachePlan::Hit {
                        latency: g.hit_latency,
                    }
                };
            }
        }
        if self.mshrs.iter().any(|&busy_until| busy_until <= cycle) {
            CachePlan::Miss {
                latency: g.miss_latency,
            }
        } else {
            CachePlan::Blocked
        }
    }

    /// Performs the load of `addr` at `cycle`: updates LRU state, starts a
    /// fill on a miss, counts statistics. Returns the same plan
    /// [`DCache::plan`] reported for the same arguments.
    pub fn access(&mut self, addr: u64, cycle: u64) -> CachePlan {
        let plan = self.plan(addr, cycle);
        let Some(g) = self.geom else {
            return plan;
        };
        let (set, tag) = self.locate(addr, &g);
        self.clock += 1;
        self.stats.accesses += 1;
        match plan {
            CachePlan::Hit { .. } | CachePlan::MshrHit { .. } => {
                self.stats.hits += 1;
                if matches!(plan, CachePlan::MshrHit { .. }) {
                    self.stats.mshr_hits += 1;
                }
                let way = self
                    .way_of(addr)
                    .expect("a planned hit has a resident line");
                self.lines[set * g.ways + way].last_use = self.clock;
            }
            CachePlan::Miss { .. } => {
                self.stats.misses += 1;
                let slot = self
                    .mshrs
                    .iter()
                    .position(|&busy_until| busy_until <= cycle)
                    .expect("a planned miss has a free MSHR");
                self.mshrs[slot] = cycle + g.miss_latency;
                // Victim: an invalid way if any, else the least recently
                // used (ties broken by way index — deterministic).
                let base = set * g.ways;
                let victim = (0..g.ways)
                    .find(|&w| !self.lines[base + w].valid)
                    .unwrap_or_else(|| {
                        (0..g.ways)
                            .min_by_key(|&w| self.lines[base + w].last_use)
                            .expect("ways >= 1")
                    });
                self.lines[base + victim] = Line {
                    tag,
                    valid: true,
                    last_use: self.clock,
                    ready_at: cycle + g.miss_latency,
                };
            }
            CachePlan::Blocked => {
                // Not an access: the caller must retry. Undo the counters.
                self.clock -= 1;
                self.stats.accesses -= 1;
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(miss: u64) -> DCacheConfig {
        DCacheConfig::Cache {
            sets: 4,
            ways: 2,
            line_words: 4,
            hit_latency: 1,
            miss_latency: miss,
            mshrs: 2,
        }
    }

    #[test]
    fn perfect_is_a_fixed_latency_hit() {
        let mut c = DCache::new(&DCacheConfig::Perfect, 11, 1 << 10);
        for cycle in 0..100 {
            assert_eq!(c.access(cycle * 97, cycle), CachePlan::Hit { latency: 11 });
        }
        assert_eq!(c.stats(), CacheStats::default());
        assert!(!c.is_finite());
    }

    #[test]
    fn miss_then_hit_on_the_same_line() {
        let mut c = DCache::new(&small(20), 11, 1 << 10);
        assert_eq!(c.access(64, 0), CachePlan::Miss { latency: 20 });
        // Same line, after the fill lands: a plain hit.
        assert_eq!(c.access(65, 30), CachePlan::Hit { latency: 1 });
        // Before the fill lands: merges into the outstanding fill.
        let mut c = DCache::new(&small(20), 11, 1 << 10);
        assert_eq!(c.access(64, 0), CachePlan::Miss { latency: 20 });
        assert_eq!(c.access(67, 5), CachePlan::MshrHit { latency: 15 });
        assert_eq!(c.stats().mshr_hits, 1);
    }

    #[test]
    fn bounded_mshrs_block_a_third_concurrent_miss() {
        let mut c = DCache::new(&small(20), 11, 1 << 10);
        assert_eq!(c.access(0, 0), CachePlan::Miss { latency: 20 });
        assert_eq!(c.access(64, 0), CachePlan::Miss { latency: 20 });
        // Two fills in flight, two MSHRs: a third distinct line blocks.
        assert_eq!(c.access(128, 1), CachePlan::Blocked);
        // Blocked attempts are not accesses.
        assert_eq!(c.stats().accesses, 2);
        // Once a fill lands its MSHR frees.
        assert_eq!(c.access(128, 20), CachePlan::Miss { latency: 20 });
    }

    #[test]
    fn lru_evicts_the_least_recently_used_way() {
        // 1 set x 2 ways x 1-word lines: three distinct words thrash.
        let cfg = DCacheConfig::Cache {
            sets: 1,
            ways: 2,
            line_words: 1,
            hit_latency: 1,
            miss_latency: 4,
            mshrs: 4,
        };
        let mut c = DCache::new(&cfg, 11, 1 << 10);
        assert!(matches!(c.access(1, 0), CachePlan::Miss { .. }));
        assert!(matches!(c.access(2, 10), CachePlan::Miss { .. }));
        // Touch 1 so 2 becomes LRU; 3 must evict 2, not 1.
        assert!(matches!(c.access(1, 20), CachePlan::Hit { .. }));
        assert!(matches!(c.access(3, 30), CachePlan::Miss { .. }));
        assert!(matches!(c.access(1, 40), CachePlan::Hit { .. }));
        assert!(matches!(c.access(2, 50), CachePlan::Miss { .. }));
    }

    #[test]
    fn aliased_addresses_index_the_same_set_and_way() {
        let words = 1u64 << 10;
        let mut c = DCache::new(&small(20), 11, words);
        c.access(100, 0);
        assert_eq!(c.set_of(100), c.set_of(100 + words));
        assert_eq!(c.way_of(100), c.way_of(100 + words));
        assert!(c.way_of(100 + words).is_some());
        // The alias is a hit: it is the same memory word.
        assert!(c.plan(100 + words, 40).is_hit());
    }

    #[test]
    fn plan_matches_access() {
        let mut c = DCache::new(&small(7), 11, 1 << 10);
        let mut cycle = 0;
        for i in 0..200u64 {
            let addr = (i * 37) % 48;
            let planned = c.plan(addr, cycle);
            assert_eq!(planned, c.access(addr, cycle));
            cycle += 3;
        }
        let s = c.stats();
        assert_eq!(s.accesses, s.hits + s.misses);
        assert!(s.hits > 0 && s.misses > 0);
    }

    #[test]
    fn parse_roundtrips_display() {
        for spec in ["perfect", "64x4x4:20:1:4", "8x1x2:5:2:1", "16x2x8:20:1:4"] {
            let c = DCacheConfig::parse(spec).unwrap();
            assert_eq!(DCacheConfig::parse(&c.to_string()).unwrap(), c, "{spec}");
        }
        // Shorthand forms fill in defaults.
        assert_eq!(
            DCacheConfig::parse("64x4x4").unwrap(),
            DCacheConfig::Cache {
                sets: 64,
                ways: 4,
                line_words: 4,
                hit_latency: DCacheConfig::DEFAULT_HIT_LATENCY,
                miss_latency: DCacheConfig::DEFAULT_MISS_LATENCY,
                mshrs: DCacheConfig::DEFAULT_MSHRS,
            }
        );
        assert_eq!(
            DCacheConfig::parse("64x4x4:5").unwrap(),
            DCacheConfig::Cache {
                sets: 64,
                ways: 4,
                line_words: 4,
                hit_latency: DCacheConfig::DEFAULT_HIT_LATENCY,
                miss_latency: 5,
                mshrs: DCacheConfig::DEFAULT_MSHRS,
            }
        );
    }

    #[test]
    fn non_power_of_two_is_a_typed_error_not_a_panic() {
        assert_eq!(
            DCacheConfig::parse("3x4x4"),
            Err(DCacheError::NotPowerOfTwo {
                what: "sets",
                got: 3
            })
        );
        assert_eq!(
            DCacheConfig::parse("4x4x6"),
            Err(DCacheError::NotPowerOfTwo {
                what: "line size",
                got: 6
            })
        );
        assert_eq!(
            DCacheConfig::parse("4x0x4"),
            Err(DCacheError::Zero { what: "ways" })
        );
        assert!(matches!(
            DCacheConfig::parse("64x4"),
            Err(DCacheError::BadGeometry { .. })
        ));
        assert!(matches!(
            DCacheConfig::parse("64x4xq"),
            Err(DCacheError::BadNumber { .. })
        ));
        assert_eq!(
            DCacheConfig::parse("4x4x4:1:5"),
            Err(DCacheError::MissFasterThanHit { hit: 5, miss: 1 })
        );
    }

    #[test]
    fn default_is_perfect() {
        assert!(DCacheConfig::default().is_perfect());
        assert_eq!(DCacheConfig::default().to_string(), "perfect");
    }
}
