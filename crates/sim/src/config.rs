//! Machine-wide configuration of the model architecture.

use ruu_isa::FuClass;

use crate::cache::DCacheConfig;

/// Parameters of the model architecture (paper §2, DESIGN.md §3).
///
/// The defaults reproduce the paper's machine: CRAY-1 functional-unit
/// times, a single result bus, one instruction decoded per cycle, six load
/// registers, 3-bit NI/LI instance counters, and branch dead cycles after
/// every branch.
///
/// `MachineConfig` is a plain, public-field record: it is the experiment
/// knob surface, and the sweep harnesses construct many variants of it.
/// Every field also has a chainable `with_*` builder, which is the
/// preferred way to derive variants
/// (`MachineConfig::paper().with_result_buses(2).with_load_registers(4)`);
/// the builders validate their arguments where direct mutation cannot.
///
/// `Hash`/`Eq` let sweep engines key memoization caches (e.g. the
/// per-config baseline-cycles cache in `ruu-engine`) by configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MachineConfig {
    /// Latency (clock periods from dispatch to result-bus appearance) per
    /// functional-unit class, indexed by [`FuClass::index`].
    pub latency: [u64; FuClass::ALL.len()],
    /// Dead cycles after a taken branch before the next instruction can
    /// enter the decode/issue stage.
    pub branch_taken_penalty: u64,
    /// Dead cycles after a not-taken conditional branch.
    pub branch_untaken_penalty: u64,
    /// Number of results the result bus can carry per cycle. The model
    /// architecture has exactly one (paper §2: "only one functional unit
    /// can output data onto the result bus in any clock cycle").
    pub result_buses: u32,
    /// Instructions the window (RSTU/RUU) may send to the functional units
    /// per cycle — the "data paths" of paper Table 3.
    pub dispatch_paths: u32,
    /// Instructions the RUU may commit (retire to the register file) per
    /// cycle over the RUU→register-file bus.
    pub commit_width: u32,
    /// Number of load registers (paper §5.1 uses 6; 4 sufficed).
    pub load_registers: usize,
    /// Width in bits of the per-register NI/LI instance counters
    /// (paper §5.1 uses 3: up to 7 simultaneous instances).
    pub counter_bits: u32,
    /// Cycles from "forwarding data known" to its result-bus broadcast for
    /// loads satisfied from the load registers rather than memory.
    pub forward_latency: u64,
    /// Cycles for a store to be considered executed (address/data handed
    /// to the memory port) once dispatched; the architectural memory write
    /// itself happens at completion (RSTU) or commit (RUU).
    pub store_exec_latency: u64,
    /// Fetch bubble after a predicted-taken branch in the speculative
    /// machine (§7 extension): the cost of redirecting fetch to a
    /// predicted target.
    pub spec_taken_bubble: u64,
    /// Dead cycles charged when a misprediction is repaired (§7
    /// extension).
    pub mispredict_penalty: u64,
    /// Data-memory size in 64-bit words (must be a power of two).
    pub memory_words: usize,
    /// Data-cache timing model. [`DCacheConfig::Perfect`] (the default)
    /// reproduces the paper's §2.2 idealization — a fixed memory latency,
    /// no conflicts — bit-identically; a finite cache makes load latency
    /// depend on locality. Timing-only: architectural values always come
    /// from `Memory`.
    pub dcache: DCacheConfig,
}

impl MachineConfig {
    /// The paper's model architecture.
    #[must_use]
    pub fn paper() -> Self {
        let mut latency = [0; FuClass::ALL.len()];
        for fu in FuClass::ALL {
            latency[fu.index()] = fu.default_latency();
        }
        MachineConfig {
            latency,
            branch_taken_penalty: 3,
            branch_untaken_penalty: 1,
            result_buses: 1,
            dispatch_paths: 1,
            commit_width: 1,
            load_registers: 6,
            counter_bits: 3,
            forward_latency: 1,
            store_exec_latency: 1,
            spec_taken_bubble: 1,
            mispredict_penalty: 3,
            memory_words: 1 << 16,
            dcache: DCacheConfig::Perfect,
        }
    }

    /// Latency of a functional-unit class under this configuration.
    #[must_use]
    pub fn fu_latency(&self, fu: FuClass) -> u64 {
        self.latency[fu.index()]
    }

    /// Maximum simultaneous instances of one destination register the
    /// NI/LI counters allow: `2^counter_bits - 1` (paper §5.1).
    #[must_use]
    pub fn max_instances(&self) -> u32 {
        (1u32 << self.counter_bits) - 1
    }

    /// Returns a copy with a different number of dispatch paths
    /// (paper Table 3 uses 2).
    #[must_use]
    pub fn with_dispatch_paths(mut self, paths: u32) -> Self {
        assert!(paths >= 1, "at least one dispatch path is required");
        self.dispatch_paths = paths;
        self
    }

    /// Returns a copy with a different number of load registers.
    #[must_use]
    pub fn with_load_registers(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one load register is required");
        self.load_registers = n;
        self
    }

    /// Returns a copy with a different NI/LI counter width.
    #[must_use]
    pub fn with_counter_bits(mut self, bits: u32) -> Self {
        assert!(
            (1..=8).contains(&bits),
            "counter width must be 1..=8 bits, got {bits}"
        );
        self.counter_bits = bits;
        self
    }

    /// Returns a copy with a different result-bus count (ablation A4).
    #[must_use]
    pub fn with_result_buses(mut self, n: u32) -> Self {
        assert!(n >= 1, "at least one result bus is required");
        self.result_buses = n;
        self
    }

    /// Returns a copy with a different commit width (RUU→register-file
    /// bus capacity).
    #[must_use]
    pub fn with_commit_width(mut self, n: u32) -> Self {
        assert!(n >= 1, "at least one commit slot is required");
        self.commit_width = n;
        self
    }

    /// Returns a copy with different taken/not-taken branch penalties.
    #[must_use]
    pub fn with_branch_penalties(mut self, taken: u64, untaken: u64) -> Self {
        self.branch_taken_penalty = taken;
        self.branch_untaken_penalty = untaken;
        self
    }

    /// Returns a copy with one functional-unit class's latency replaced.
    #[must_use]
    pub fn with_fu_latency(mut self, fu: FuClass, cycles: u64) -> Self {
        assert!(cycles >= 1, "a functional unit needs at least one cycle");
        self.latency[fu.index()] = cycles;
        self
    }

    /// Returns a copy with a different load-register forward latency.
    #[must_use]
    pub fn with_forward_latency(mut self, cycles: u64) -> Self {
        self.forward_latency = cycles;
        self
    }

    /// Returns a copy with a different data-memory size in words.
    #[must_use]
    pub fn with_memory_words(mut self, words: usize) -> Self {
        assert!(
            words.is_power_of_two(),
            "memory size must be a power of two words, got {words}"
        );
        self.memory_words = words;
        self
    }

    /// Returns a copy with a different data-cache timing model.
    ///
    /// # Panics
    /// Panics if the config fails [`DCacheConfig::validate`] — the
    /// builders validate where direct mutation cannot.
    #[must_use]
    pub fn with_dcache(mut self, dcache: DCacheConfig) -> Self {
        if let Err(e) = dcache.validate() {
            panic!("invalid dcache config: {e}");
        }
        self.dcache = dcache;
        self
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = MachineConfig::paper();
        assert_eq!(c.fu_latency(FuClass::FloatMul), 7);
        assert_eq!(c.result_buses, 1);
        assert_eq!(c.load_registers, 6);
        assert_eq!(c.max_instances(), 7);
    }

    #[test]
    fn builders() {
        let c = MachineConfig::paper()
            .with_dispatch_paths(2)
            .with_load_registers(4)
            .with_counter_bits(2)
            .with_result_buses(2);
        assert_eq!(c.dispatch_paths, 2);
        assert_eq!(c.load_registers, 4);
        assert_eq!(c.max_instances(), 3);
        assert_eq!(c.result_buses, 2);
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn counter_bits_validated() {
        let _ = MachineConfig::paper().with_counter_bits(0);
    }

    #[test]
    fn default_dcache_is_perfect() {
        assert!(MachineConfig::paper().dcache.is_perfect());
    }

    #[test]
    fn with_dcache_swaps_the_model() {
        let dc = DCacheConfig::parse("64x4x4:20").unwrap();
        let c = MachineConfig::paper().with_dcache(dc);
        assert_eq!(c.dcache, dc);
    }

    #[test]
    #[should_panic(expected = "invalid dcache config")]
    fn with_dcache_validates() {
        let _ = MachineConfig::paper().with_dcache(DCacheConfig::Cache {
            sets: 3,
            ways: 1,
            line_words: 1,
            hit_latency: 1,
            miss_latency: 2,
            mshrs: 1,
        });
    }
}
