//! # ruu-sim-core — timing-simulation substrate
//!
//! Shared building blocks for the cycle-level issue-mechanism simulators in
//! `ruu-issue`:
//!
//! * [`MachineConfig`] — latencies, branch penalties, bus widths and other
//!   machine parameters of the model architecture (paper §2, Figure 1);
//! * [`SlotReservation`] — future-cycle slot booking, used for the single
//!   result bus (reserved at dispatch time, paper §3.1/§5.1);
//! * [`FuPool`] — the fully pipelined functional units, each able to accept
//!   one operation per cycle;
//! * [`LoadRegUnit`] — the *load registers* of paper §3.2.1.2: memory
//!   disambiguation by exact address match, with store→load and load→load
//!   data forwarding;
//! * [`DCache`] / [`DCacheConfig`] — the data-cache timing model that
//!   retires the §2.2 perfect-memory idealization: set-associative LRU
//!   lookup with hit/miss latencies and bounded outstanding misses, with
//!   a bit-identical `Perfect` default;
//! * [`RunStats`] / [`RunResult`] — issue-rate accounting and stall
//!   breakdowns common to every simulator;
//! * [`PipelineObserver`] — per-cycle pipeline event hooks (fetch, issue,
//!   dispatch, complete, commit, flush, stall, cycle end) with the
//!   [`CycleAccountant`], [`StallHistogram`] and [`ChromeTraceObserver`]
//!   implementations.

mod bus;
mod cache;
mod config;
mod fu;
mod loadregs;
mod observe;
mod stats;

pub use bus::SlotReservation;
pub use cache::{CachePlan, CacheStats, DCache, DCacheConfig, DCacheError};
pub use config::MachineConfig;
pub use fu::FuPool;
pub use loadregs::{LoadRegUnit, LrOutcome, MemOpKind, OpId};
pub use observe::{
    AccountingViolation, ChromeTraceObserver, CycleAccountant, FlushAccountant, FlushViolation,
    NullObserver, PipelineObserver, StallHistogram, Tee,
};
pub use stats::{RunResult, RunStats, StallReason};
