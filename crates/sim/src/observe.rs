//! Per-cycle pipeline observability.
//!
//! Every issue-mechanism simulator exposes its canonical pipeline events
//! through the [`PipelineObserver`] trait: an observer is handed to
//! `IssueSimulator::run_observed` (in `ruu-issue`) and receives one
//! callback per event as the simulated machine advances. The hooks mirror
//! the paper's cycle accounting: in any cycle the decode/issue stage either
//! issues an instruction or stalls for exactly one [`StallReason`], so
//!
//! ```text
//! cycles == issue_cycles + Σ stall_cycles
//! ```
//!
//! — the invariant [`CycleAccountant`] enforces. Two further observers are
//! provided: [`StallHistogram`] (per-reason stall breakdown for bench
//! tables) and [`ChromeTraceObserver`] (Chrome `trace_event` JSON for
//! `chrome://tracing`, driven by the `ruu-sim trace` subcommand).
//!
//! All hooks have no-op defaults, so an observer implements only what it
//! needs, and the null observer used by the unobserved entry points costs
//! nothing but virtual dispatch.

use std::fmt;

use ruu_isa::FuClass;

use crate::stats::StallReason;

/// Receiver for the canonical pipeline events of one simulation run.
///
/// Cycle numbers are nondecreasing across calls. `seq` is the dynamic
/// instruction sequence number as counted by the emitting simulator
/// (speculative machines number squashed instructions too).
pub trait PipelineObserver {
    /// An instruction was presented to the decode/issue stage this cycle.
    /// Fires at most once per cycle (one instruction decoded per cycle).
    fn fetch(&mut self, _cycle: u64, _pc: u32) {}

    /// The decode/issue stage accepted an instruction (into the window,
    /// or straight to a functional unit in the in-order machines).
    fn issue(&mut self, _cycle: u64, _seq: u64) {}

    /// An instruction left the window for functional unit `fu`; its result
    /// appears on the result bus at `complete_at`.
    fn dispatch(&mut self, _cycle: u64, _seq: u64, _fu: FuClass, _complete_at: u64) {}

    /// A functional-unit result came back over the result bus.
    fn complete(&mut self, _cycle: u64, _seq: u64) {}

    /// An instruction retired its result to the architectural state.
    fn commit(&mut self, _cycle: u64, _seq: u64) {}

    /// Speculative state was squashed (mispredict repair); `squashed` is
    /// the number of in-flight window entries discarded.
    fn flush(&mut self, _cycle: u64, _squashed: u64) {}

    /// The decode/issue stage could not issue this cycle.
    fn stall(&mut self, _cycle: u64, _reason: StallReason) {}

    /// A load consulted a finite data cache (`DCacheConfig::Cache`): the
    /// canonical word address, whether the line was resident, and the
    /// cycles until the data arrives. Never fires under
    /// `DCacheConfig::Perfect`, keeping the perfect machine's event
    /// stream identical to the pre-cache simulators.
    fn mem_access(&mut self, _cycle: u64, _addr: u64, _hit: bool, _latency: u64) {}

    /// A simulated cycle ended with `occupancy` instructions in the
    /// window (in-flight count for the windowless in-order machines).
    /// Fires exactly once per simulated cycle.
    fn cycle_end(&mut self, _cycle: u64, _occupancy: u32) {}
}

/// Observer that ignores every event; used by the unobserved `run` /
/// `run_from` entry points.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl PipelineObserver for NullObserver {}

/// Fans every event out to two observers (e.g. a [`CycleAccountant`]
/// alongside a [`ChromeTraceObserver`]).
pub struct Tee<'a> {
    a: &'a mut dyn PipelineObserver,
    b: &'a mut dyn PipelineObserver,
}

impl<'a> Tee<'a> {
    /// Pairs two observers.
    pub fn new(a: &'a mut dyn PipelineObserver, b: &'a mut dyn PipelineObserver) -> Self {
        Tee { a, b }
    }
}

impl PipelineObserver for Tee<'_> {
    fn fetch(&mut self, cycle: u64, pc: u32) {
        self.a.fetch(cycle, pc);
        self.b.fetch(cycle, pc);
    }
    fn issue(&mut self, cycle: u64, seq: u64) {
        self.a.issue(cycle, seq);
        self.b.issue(cycle, seq);
    }
    fn dispatch(&mut self, cycle: u64, seq: u64, fu: FuClass, complete_at: u64) {
        self.a.dispatch(cycle, seq, fu, complete_at);
        self.b.dispatch(cycle, seq, fu, complete_at);
    }
    fn complete(&mut self, cycle: u64, seq: u64) {
        self.a.complete(cycle, seq);
        self.b.complete(cycle, seq);
    }
    fn commit(&mut self, cycle: u64, seq: u64) {
        self.a.commit(cycle, seq);
        self.b.commit(cycle, seq);
    }
    fn flush(&mut self, cycle: u64, squashed: u64) {
        self.a.flush(cycle, squashed);
        self.b.flush(cycle, squashed);
    }
    fn stall(&mut self, cycle: u64, reason: StallReason) {
        self.a.stall(cycle, reason);
        self.b.stall(cycle, reason);
    }
    fn mem_access(&mut self, cycle: u64, addr: u64, hit: bool, latency: u64) {
        self.a.mem_access(cycle, addr, hit, latency);
        self.b.mem_access(cycle, addr, hit, latency);
    }
    fn cycle_end(&mut self, cycle: u64, occupancy: u32) {
        self.a.cycle_end(cycle, occupancy);
        self.b.cycle_end(cycle, occupancy);
    }
}

/// Cycle-accounting report for a run that violated the identity
/// `cycles == issue_cycles + Σ stall_cycles`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccountingViolation {
    /// Total cycles the run reported.
    pub cycles: u64,
    /// Issue events the accountant observed.
    pub issue_cycles: u64,
    /// Stall events observed, per reason (indexed like
    /// [`StallReason::ALL`]).
    pub stall_cycles: [u64; StallReason::ALL.len()],
    /// `cycle_end` callbacks observed (should equal `cycles`).
    pub cycles_seen: u64,
}

impl AccountingViolation {
    /// Total observed stall events across all reasons.
    #[must_use]
    pub fn total_stalls(&self) -> u64 {
        self.stall_cycles.iter().sum()
    }
}

impl fmt::Display for AccountingViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle accounting violated: cycles={} but issue_cycles={} + stalls={} = {} \
             ({} cycle_end events;",
            self.cycles,
            self.issue_cycles,
            self.total_stalls(),
            self.issue_cycles + self.total_stalls(),
            self.cycles_seen,
        )?;
        for r in StallReason::ALL {
            let n = self.stall_cycles[r.idx()];
            if n > 0 {
                write!(f, " {r}={n}")?;
            }
        }
        write!(f, ")")
    }
}

impl std::error::Error for AccountingViolation {}

/// Observer that enforces the cycle-accounting identity: every simulated
/// cycle must be attributed to exactly one issue or one stall.
///
/// Attach it via `run_observed`, then call [`CycleAccountant::check`] with
/// the run's cycle count: in debug builds a violation panics (so tests and
/// development runs fail loudly); in release builds the structured
/// [`AccountingViolation`] report is returned for the caller to handle.
#[derive(Debug, Default, Clone)]
pub struct CycleAccountant {
    issue_cycles: u64,
    stall_cycles: [u64; StallReason::ALL.len()],
    cycles_seen: u64,
}

impl CycleAccountant {
    /// Issue events observed so far.
    #[must_use]
    pub fn issue_cycles(&self) -> u64 {
        self.issue_cycles
    }

    /// Stall events observed so far, across all reasons.
    #[must_use]
    pub fn total_stalls(&self) -> u64 {
        self.stall_cycles.iter().sum()
    }

    /// `cycle_end` events observed so far.
    #[must_use]
    pub fn cycles_seen(&self) -> u64 {
        self.cycles_seen
    }

    /// Verifies the identity against a run's final cycle count without
    /// panicking; returns the structured report on violation.
    ///
    /// Both equalities must hold: the attributed events must sum to
    /// `cycles`, and the observer must have seen exactly one `cycle_end`
    /// per cycle (catching simulators that drop or double-count cycles).
    pub fn verify(&self, cycles: u64) -> Result<(), AccountingViolation> {
        if self.issue_cycles + self.total_stalls() == cycles && self.cycles_seen == cycles {
            Ok(())
        } else {
            Err(AccountingViolation {
                cycles,
                issue_cycles: self.issue_cycles,
                stall_cycles: self.stall_cycles,
                cycles_seen: self.cycles_seen,
            })
        }
    }

    /// Like [`CycleAccountant::verify`], but panics on violation in debug
    /// builds.
    pub fn check(&self, cycles: u64) -> Result<(), AccountingViolation> {
        match self.verify(cycles) {
            Ok(()) => Ok(()),
            Err(v) => {
                if cfg!(debug_assertions) {
                    panic!("{v}");
                }
                Err(v)
            }
        }
    }
}

impl PipelineObserver for CycleAccountant {
    fn issue(&mut self, _cycle: u64, _seq: u64) {
        self.issue_cycles += 1;
    }
    fn stall(&mut self, _cycle: u64, reason: StallReason) {
        self.stall_cycles[reason.idx()] += 1;
    }
    fn cycle_end(&mut self, _cycle: u64, _occupancy: u32) {
        self.cycles_seen += 1;
    }
}

/// Flush-accounting report for a run whose squashes did not line up with
/// its recorded mispredictions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushViolation {
    /// Flush events observed.
    pub flushes: u64,
    /// Mispredicted branches the run reported.
    pub mispredicted: u64,
    /// `MispredictRepair` stall cycles observed.
    pub repair_stalls: u64,
    /// Repair stalls the misprediction count implies
    /// (`flushes * (penalty + 1)`).
    pub expected_repair_stalls: u64,
}

impl fmt::Display for FlushViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flush accounting violated: {} flushes vs {} recorded mispredictions; \
             {} mispredict-repair stalls vs {} expected",
            self.flushes, self.mispredicted, self.repair_stalls, self.expected_repair_stalls,
        )
    }
}

impl std::error::Error for FlushViolation {}

/// Observer that ties every pipeline flush back to a recorded branch
/// misprediction.
///
/// A speculative machine may only squash state because a predicted branch
/// resolved the other way, and each squash must stall fetch for exactly
/// the redirect window (`mispredict_penalty + 1` cycles, charged as
/// [`StallReason::MispredictRepair`]). [`FlushAccountant::verify`] checks
/// both identities against the run's reported misprediction count:
///
/// ```text
/// flushes       == mispredicted_branches
/// repair_stalls == flushes * (mispredict_penalty + 1)
/// ```
#[derive(Debug, Default, Clone)]
pub struct FlushAccountant {
    flushes: u64,
    squashed: u64,
    repair_stalls: u64,
}

impl FlushAccountant {
    /// Flush events observed so far.
    #[must_use]
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Total window entries squashed across all flushes.
    #[must_use]
    pub fn squashed(&self) -> u64 {
        self.squashed
    }

    /// `MispredictRepair` stall cycles observed so far.
    #[must_use]
    pub fn repair_stalls(&self) -> u64 {
        self.repair_stalls
    }

    /// Verifies that every flush is attributable to a recorded
    /// misprediction and paid for with exactly one redirect window of
    /// repair stalls.
    pub fn verify(&self, mispredicted: u64, mispredict_penalty: u64) -> Result<(), FlushViolation> {
        let expected_repair = self.flushes * (mispredict_penalty + 1);
        if self.flushes == mispredicted && self.repair_stalls == expected_repair {
            Ok(())
        } else {
            Err(FlushViolation {
                flushes: self.flushes,
                mispredicted,
                repair_stalls: self.repair_stalls,
                expected_repair_stalls: expected_repair,
            })
        }
    }
}

impl PipelineObserver for FlushAccountant {
    fn flush(&mut self, _cycle: u64, squashed: u64) {
        self.flushes += 1;
        self.squashed += squashed;
    }
    fn stall(&mut self, _cycle: u64, reason: StallReason) {
        if reason == StallReason::MispredictRepair {
            self.repair_stalls += 1;
        }
    }
}

/// Observer that accumulates a per-reason stall histogram (plus issue
/// cycles and occupancy), for the bench harness's stall-breakdown tables.
#[derive(Debug, Default, Clone)]
pub struct StallHistogram {
    issue_cycles: u64,
    stall_cycles: [u64; StallReason::ALL.len()],
    cycles: u64,
    occupancy_sum: u64,
}

impl StallHistogram {
    /// Issue cycles observed.
    #[must_use]
    pub fn issue_cycles(&self) -> u64 {
        self.issue_cycles
    }

    /// Total cycles observed.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Stall cycles attributed to `reason`.
    #[must_use]
    pub fn stalls(&self, reason: StallReason) -> u64 {
        self.stall_cycles[reason.idx()]
    }

    /// Total stall cycles across all reasons.
    #[must_use]
    pub fn total_stalls(&self) -> u64 {
        self.stall_cycles.iter().sum()
    }

    /// Mean window occupancy over the observed cycles (`None` for an
    /// empty run).
    #[must_use]
    pub fn mean_occupancy(&self) -> Option<f64> {
        if self.cycles == 0 {
            None
        } else {
            Some(self.occupancy_sum as f64 / self.cycles as f64)
        }
    }

    /// Accumulates another histogram into this one (suite totals).
    pub fn absorb(&mut self, other: &StallHistogram) {
        self.issue_cycles += other.issue_cycles;
        self.cycles += other.cycles;
        self.occupancy_sum += other.occupancy_sum;
        for (into, from) in self.stall_cycles.iter_mut().zip(other.stall_cycles) {
            *into += from;
        }
    }

    /// `(reason, cycles)` rows for the nonzero stall reasons, in
    /// [`StallReason::ALL`] order.
    #[must_use]
    pub fn rows(&self) -> Vec<(StallReason, u64)> {
        StallReason::ALL
            .into_iter()
            .filter_map(|r| {
                let n = self.stalls(r);
                (n > 0).then_some((r, n))
            })
            .collect()
    }
}

impl PipelineObserver for StallHistogram {
    fn issue(&mut self, _cycle: u64, _seq: u64) {
        self.issue_cycles += 1;
    }
    fn stall(&mut self, _cycle: u64, reason: StallReason) {
        self.stall_cycles[reason.idx()] += 1;
    }
    fn cycle_end(&mut self, _cycle: u64, occupancy: u32) {
        self.cycles += 1;
        self.occupancy_sum += u64::from(occupancy);
    }
}

/// One buffered Chrome `trace_event`.
#[derive(Debug, Clone)]
enum TraceEvent {
    /// Complete ("X") duration event on a functional-unit track.
    Span {
        ts: u64,
        dur: u64,
        tid: u32,
        name: String,
    },
    /// Instant ("i") event (commits, flushes, stalls).
    Instant { ts: u64, tid: u32, name: String },
    /// Counter ("C") sample of window occupancy.
    Counter { ts: u64, value: u32 },
}

impl TraceEvent {
    fn ts(&self) -> u64 {
        match self {
            TraceEvent::Span { ts, .. }
            | TraceEvent::Instant { ts, .. }
            | TraceEvent::Counter { ts, .. } => *ts,
        }
    }
}

/// Observer that records a Chrome `trace_event` timeline: one track
/// ("thread") per functional-unit class carrying a span per dispatched
/// instruction, instant markers for commits/flushes/stalls, and a counter
/// track sampling window occupancy each cycle.
///
/// [`ChromeTraceObserver::to_json`] serializes the buffered events —
/// sorted by timestamp, one simulated cycle per microsecond — into a JSON
/// document that loads directly in `chrome://tracing` (or any Perfetto
/// viewer). The serialization is self-contained because `ruu-sim-core`
/// sits below the crate that owns the report writer.
#[derive(Debug, Default, Clone)]
pub struct ChromeTraceObserver {
    events: Vec<TraceEvent>,
}

/// Track id for instant commit markers.
const TID_COMMIT: u32 = 90;
/// Track id for flush markers.
const TID_FLUSH: u32 = 91;
/// Track id for stall markers.
const TID_STALL: u32 = 92;

impl ChromeTraceObserver {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        ChromeTraceObserver::default()
    }

    /// Number of buffered trace events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes the trace as Chrome `trace_event` JSON. Events are
    /// emitted in nondecreasing timestamp order; metadata (track names)
    /// precedes them.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut order: Vec<&TraceEvent> = self.events.iter().collect();
        order.sort_by_key(|e| e.ts());

        let mut out = String::with_capacity(64 * order.len() + 1024);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut push = |out: &mut String, ev: String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&ev);
        };

        for fu in FuClass::ALL {
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{},\
                     \"args\":{{\"name\":{}}}}}",
                    fu_tid(fu),
                    json_string(&format!("fu {fu}")),
                ),
            );
        }
        for (tid, name) in [
            (TID_COMMIT, "commit"),
            (TID_FLUSH, "flush"),
            (TID_STALL, "stall"),
        ] {
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{tid},\
                     \"args\":{{\"name\":{}}}}}",
                    json_string(name),
                ),
            );
        }

        for ev in order {
            let rendered = match ev {
                TraceEvent::Span { ts, dur, tid, name } => format!(
                    "{{\"ph\":\"X\",\"name\":{},\"cat\":\"fu\",\"pid\":1,\"tid\":{tid},\
                     \"ts\":{ts},\"dur\":{dur}}}",
                    json_string(name),
                ),
                TraceEvent::Instant { ts, tid, name } => format!(
                    "{{\"ph\":\"i\",\"name\":{},\"cat\":\"pipe\",\"s\":\"t\",\"pid\":1,\
                     \"tid\":{tid},\"ts\":{ts}}}",
                    json_string(name),
                ),
                TraceEvent::Counter { ts, value } => format!(
                    "{{\"ph\":\"C\",\"name\":\"window occupancy\",\"pid\":1,\"tid\":0,\
                     \"ts\":{ts},\"args\":{{\"entries\":{value}}}}}"
                ),
            };
            push(&mut out, rendered);
        }
        out.push_str("]}");
        out
    }
}

fn fu_tid(fu: FuClass) -> u32 {
    fu.index() as u32 + 1
}

/// Renders `s` as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl PipelineObserver for ChromeTraceObserver {
    fn dispatch(&mut self, cycle: u64, seq: u64, fu: FuClass, complete_at: u64) {
        self.events.push(TraceEvent::Span {
            ts: cycle,
            dur: complete_at.saturating_sub(cycle).max(1),
            tid: fu_tid(fu),
            name: format!("#{seq} {fu}"),
        });
    }
    fn commit(&mut self, cycle: u64, seq: u64) {
        self.events.push(TraceEvent::Instant {
            ts: cycle,
            tid: TID_COMMIT,
            name: format!("commit #{seq}"),
        });
    }
    fn flush(&mut self, cycle: u64, squashed: u64) {
        self.events.push(TraceEvent::Instant {
            ts: cycle,
            tid: TID_FLUSH,
            name: format!("flush ({squashed} squashed)"),
        });
    }
    fn stall(&mut self, cycle: u64, reason: StallReason) {
        self.events.push(TraceEvent::Instant {
            ts: cycle,
            tid: TID_STALL,
            name: reason.to_string(),
        });
    }
    fn cycle_end(&mut self, cycle: u64, occupancy: u32) {
        self.events.push(TraceEvent::Counter {
            ts: cycle,
            value: occupancy,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(obs: &mut dyn PipelineObserver) {
        // Cycle 0: issue an instruction that occupies the scalar adder.
        obs.fetch(0, 0);
        obs.issue(0, 0);
        obs.dispatch(0, 0, FuClass::ScalarAdd, 3);
        obs.cycle_end(0, 1);
        // Cycle 1: stall on the busy destination.
        obs.stall(1, StallReason::OperandsNotReady);
        obs.cycle_end(1, 1);
        // Cycle 2: drain.
        obs.complete(2, 0);
        obs.commit(2, 0);
        obs.stall(2, StallReason::Drained);
        obs.cycle_end(2, 0);
    }

    #[test]
    fn accountant_accepts_balanced_runs() {
        let mut acc = CycleAccountant::default();
        drive(&mut acc);
        assert_eq!(acc.issue_cycles(), 1);
        assert_eq!(acc.total_stalls(), 2);
        assert!(acc.verify(3).is_ok());
        assert!(acc.check(3).is_ok());
    }

    #[test]
    fn accountant_reports_unattributed_cycles() {
        let mut acc = CycleAccountant::default();
        drive(&mut acc);
        let v = acc.verify(4).expect_err("one cycle is unattributed");
        assert_eq!(v.cycles, 4);
        assert_eq!(v.issue_cycles + v.total_stalls(), 3);
        assert!(v.to_string().contains("cycle accounting violated"));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "cycle accounting violated")]
    fn accountant_check_panics_in_debug() {
        let mut acc = CycleAccountant::default();
        drive(&mut acc);
        let _ = acc.check(4);
    }

    #[test]
    fn histogram_collects_rows_and_occupancy() {
        let mut h = StallHistogram::default();
        drive(&mut h);
        assert_eq!(h.issue_cycles(), 1);
        assert_eq!(h.cycles(), 3);
        assert_eq!(h.stalls(StallReason::Drained), 1);
        assert_eq!(
            h.rows(),
            vec![
                (StallReason::OperandsNotReady, 1),
                (StallReason::Drained, 1)
            ]
        );
        let mean = h.mean_occupancy().expect("nonzero cycles");
        assert!((mean - 2.0 / 3.0).abs() < 1e-12);

        let mut total = StallHistogram::default();
        total.absorb(&h);
        total.absorb(&h);
        assert_eq!(total.cycles(), 6);
        assert_eq!(total.total_stalls(), 4);
    }

    #[test]
    fn flush_accountant_ties_flushes_to_mispredictions() {
        let mut acc = FlushAccountant::default();
        // One mispredict with penalty 3: the flush plus 4 repair stalls.
        acc.flush(10, 5);
        for c in 10..14 {
            acc.stall(c, StallReason::MispredictRepair);
        }
        acc.stall(14, StallReason::DeadCycle); // unrelated stall, ignored
        assert_eq!(acc.flushes(), 1);
        assert_eq!(acc.squashed(), 5);
        assert_eq!(acc.repair_stalls(), 4);
        assert!(acc.verify(1, 3).is_ok());
        // A flush without a recorded misprediction is a violation.
        let v = acc.verify(0, 3).expect_err("unattributed flush");
        assert!(v.to_string().contains("flush accounting violated"));
        // So is a repair window of the wrong width.
        assert!(acc.verify(1, 2).is_err());
    }

    #[test]
    fn tee_duplicates_events() {
        let mut acc = CycleAccountant::default();
        let mut hist = StallHistogram::default();
        {
            let mut tee = Tee::new(&mut acc, &mut hist);
            drive(&mut tee);
        }
        assert!(acc.verify(3).is_ok());
        assert_eq!(hist.total_stalls(), 2);
    }

    #[test]
    fn chrome_trace_is_sorted_and_balanced() {
        let mut tr = ChromeTraceObserver::new();
        drive(&mut tr);
        assert!(!tr.is_empty());
        let json = tr.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("window occupancy"));
        // Timestamps are emitted in nondecreasing order.
        let mut last = 0u64;
        for part in json.split("\"ts\":").skip(1) {
            let digits: String = part.chars().take_while(char::is_ascii_digit).collect();
            let ts: u64 = digits.parse().expect("ts is an integer");
            assert!(ts >= last, "timestamps must be sorted");
            last = ts;
        }
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("\n"), "\"\\u000a\"");
    }
}
