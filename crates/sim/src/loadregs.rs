//! Load registers: memory disambiguation and forwarding (paper §3.2.1.2).
//!
//! The load registers hold the addresses of "currently active" memory
//! locations. Memory operations present their addresses **in program
//! order** (the caller enforces this: "if the address of a load/store
//! operation is unavailable, subsequent load/store instructions are not
//! allowed to proceed"). Each operation is matched associatively against
//! the load registers:
//!
//! * a **load** that matches a busy entry is *not* submitted to memory —
//!   its data comes from the entry's current *provider* (a pending store's
//!   data, or a pending load's memory response) when that data is known;
//! * a **load** with no match allocates an entry, goes to memory, and
//!   becomes the entry's provider;
//! * a **store** that matches updates the entry's provider to itself; with
//!   no match it allocates an entry;
//! * an operation blocks (and the caller must retry) when no entry is free.
//!
//! An entry is freed when every operation that touched it has retired
//! ("a load register is free if there are no pending load or store
//! instructions to the memory address").

use std::collections::HashMap;

/// Identifier of a dynamic memory operation (the simulators use the
/// dynamic instruction sequence number).
pub type OpId = u64;

/// Whether a memory operation reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOpKind {
    /// A memory read.
    Load,
    /// A memory write.
    Store,
}

/// What the load-register unit decided for a processed operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LrOutcome {
    /// Load: no pending operation on this address — submit to memory.
    /// The load is now the address's provider.
    ToMemory,
    /// Load: the address's current data is already known; forward it.
    Forwarded {
        /// The forwarded data value.
        value: u64,
    },
    /// Load: wait until `provider`'s data is announced via
    /// [`LoadRegUnit::provider_ready`].
    WaitOn {
        /// The operation that will produce this load's data.
        provider: OpId,
    },
    /// Store: recorded; the store is now the address's provider.
    StoreRecorded,
}

#[derive(Debug, Clone)]
struct Entry {
    addr: u64,
    /// Operations (loads and stores) still pending on this address.
    count: u32,
    /// Pending data definers for this address, oldest first; the last is
    /// the current provider. Empty means the architectural memory is
    /// current. A stack (rather than one slot) so that squashing a
    /// speculative store reverts to the still-pending older definer, and
    /// retiring an old definer leaves a newer one in charge.
    providers: Vec<OpId>,
}

#[derive(Debug, Clone, Default)]
struct ProviderState {
    value: Option<u64>,
    waiters: Vec<OpId>,
}

/// The load-register unit (paper §3.2.1.2 and §5.1; 6 entries by default).
#[derive(Debug, Clone)]
pub struct LoadRegUnit {
    entries: Vec<Option<Entry>>,
    providers: HashMap<OpId, ProviderState>,
    op_entry: HashMap<OpId, (usize, MemOpKind)>,
}

impl LoadRegUnit {
    /// Creates a unit with `n` load registers.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "at least one load register is required");
        LoadRegUnit {
            entries: vec![None; n],
            providers: HashMap::new(),
            op_entry: HashMap::new(),
        }
    }

    /// Number of free load registers.
    #[must_use]
    pub fn free_count(&self) -> usize {
        self.entries.iter().filter(|e| e.is_none()).count()
    }

    /// `true` if every load register is busy.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.free_count() == 0
    }

    fn find(&self, addr: u64) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.as_ref().is_some_and(|e| e.addr == addr))
    }

    /// Presents operation `op` (with known effective address `addr`) to
    /// the load registers. Must be called in program order across memory
    /// operations, exactly once per operation.
    ///
    /// Returns `None` if the operation needs a new entry but none is free;
    /// the caller must retry next cycle (issue is blocked, paper
    /// §3.2.1.2).
    ///
    /// # Panics
    /// Panics if `op` was already processed — a duplicate would silently
    /// corrupt the entry's pending-operation count, so the protocol check
    /// is always on, not just in debug builds.
    pub fn process(&mut self, op: OpId, kind: MemOpKind, addr: u64) -> Option<LrOutcome> {
        assert!(
            !self.op_entry.contains_key(&op),
            "op {op} processed twice by the load registers"
        );
        let slot = match self.find(addr) {
            Some(slot) => slot,
            None => {
                let slot = self.entries.iter().position(|e| e.is_none())?;
                self.entries[slot] = Some(Entry {
                    addr,
                    count: 0,
                    providers: Vec::new(),
                });
                slot
            }
        };
        let entry = self.entries[slot].as_mut().expect("slot just ensured");
        entry.count += 1;
        self.op_entry.insert(op, (slot, kind));

        match kind {
            MemOpKind::Store => {
                entry.providers.push(op);
                self.providers.insert(op, ProviderState::default());
                Some(LrOutcome::StoreRecorded)
            }
            MemOpKind::Load => match entry.providers.last().copied() {
                None => {
                    entry.providers.push(op);
                    self.providers.insert(op, ProviderState::default());
                    Some(LrOutcome::ToMemory)
                }
                Some(p) => {
                    let ps = self.providers.get_mut(&p).expect("live provider has state");
                    match ps.value {
                        Some(v) => Some(LrOutcome::Forwarded { value: v }),
                        None => {
                            ps.waiters.push(op);
                            Some(LrOutcome::WaitOn { provider: p })
                        }
                    }
                }
            },
        }
    }

    /// Announces that `provider`'s data value is now known (a store's
    /// operands became ready, or a load's memory response arrived).
    /// Returns the loads that were waiting on it; each receives `value`.
    ///
    /// # Panics
    /// Panics if `provider` is not a live provider, or if its value was
    /// already announced — waiters attached between the two announcements
    /// would observe the wrong one, so the check is always on.
    pub fn provider_ready(&mut self, provider: OpId, value: u64) -> Vec<OpId> {
        let ps = self
            .providers
            .get_mut(&provider)
            .expect("provider_ready called for unknown provider");
        assert!(ps.value.is_none(), "provider {provider} announced twice");
        ps.value = Some(value);
        std::mem::take(&mut ps.waiters)
    }

    /// Removes a *speculative* operation that is being nullified (branch
    /// misprediction squash). Any waiter of `op` is necessarily younger
    /// (providers are assigned in program order) and is being squashed by
    /// the same event — callers must squash in descending sequence order
    /// (youngest first) so waiters disappear before their providers; `op`
    /// is also dropped from other providers' waiter lists. A no-op if
    /// `op` was never processed.
    ///
    /// # Panics
    /// Panics if `op` still has unwoken waiters — squashing a provider
    /// before its (younger) waiters is the out-of-order squash the
    /// contract forbids, and would strand those waiters forever; the
    /// check is always on.
    pub fn squash(&mut self, op: OpId) {
        let Some((slot, _)) = self.op_entry.remove(&op) else {
            return;
        };
        if let Some(ps) = self.providers.remove(&op) {
            assert!(
                ps.waiters.is_empty() || ps.value.is_some(),
                "unwoken waiters of a squashed provider must be squashed too"
            );
        }
        for ps in self.providers.values_mut() {
            ps.waiters.retain(|w| *w != op);
        }
        let entry = self.entries[slot].as_mut().expect("entry is live");
        entry.providers.retain(|p| *p != op);
        entry.count -= 1;
        if entry.count == 0 {
            self.entries[slot] = None;
        }
    }

    /// Marks `op` as finished with the memory system (its broadcast is
    /// done / its memory write is performed). Frees the entry once no
    /// operation is pending on the address.
    ///
    /// # Panics
    /// Panics if `op` was never processed.
    pub fn retire(&mut self, op: OpId) {
        let (slot, kind) = self
            .op_entry
            .remove(&op)
            .expect("retire called for unprocessed op");
        self.providers.remove(&op);
        let entry = self.entries[slot].as_mut().expect("entry is live");
        match kind {
            // A retiring store has written the architectural memory: it
            // leaves the definer stack, and so does everything *older*
            // beneath it — an older pending load's data is now stale with
            // respect to memory and must not be forwarded to new readers.
            // (Its already-attached waiters are older than the store and
            // correctly keep its value.)
            MemOpKind::Store => {
                if let Some(idx) = entry.providers.iter().position(|p| *p == op) {
                    entry.providers.drain(..=idx);
                }
            }
            // A retiring load changed nothing; newer definers (if any)
            // stay in charge.
            MemOpKind::Load => entry.providers.retain(|p| *p != op),
        }
        entry.count -= 1;
        if entry.count == 0 {
            self.entries[slot] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_with_no_match_goes_to_memory() {
        let mut lr = LoadRegUnit::new(2);
        assert_eq!(
            lr.process(1, MemOpKind::Load, 100),
            Some(LrOutcome::ToMemory)
        );
        assert_eq!(lr.free_count(), 1);
        lr.provider_ready(1, 42);
        lr.retire(1);
        assert_eq!(lr.free_count(), 2);
    }

    #[test]
    fn load_after_pending_store_waits_then_forwards() {
        let mut lr = LoadRegUnit::new(2);
        assert_eq!(
            lr.process(1, MemOpKind::Store, 100),
            Some(LrOutcome::StoreRecorded)
        );
        assert_eq!(
            lr.process(2, MemOpKind::Load, 100),
            Some(LrOutcome::WaitOn { provider: 1 })
        );
        let woken = lr.provider_ready(1, 7);
        assert_eq!(woken, vec![2]);
        // a later load sees the value immediately
        assert_eq!(
            lr.process(3, MemOpKind::Load, 100),
            Some(LrOutcome::Forwarded { value: 7 })
        );
        lr.retire(1);
        lr.retire(2);
        lr.retire(3);
        assert!(lr.free_count() == 2);
    }

    #[test]
    fn load_load_sharing() {
        let mut lr = LoadRegUnit::new(1);
        assert_eq!(lr.process(1, MemOpKind::Load, 5), Some(LrOutcome::ToMemory));
        assert_eq!(
            lr.process(2, MemOpKind::Load, 5),
            Some(LrOutcome::WaitOn { provider: 1 })
        );
        assert_eq!(lr.provider_ready(1, 11), vec![2]);
        lr.retire(1);
        lr.retire(2);
    }

    #[test]
    fn newer_store_overrides_provider_without_disturbing_waiters() {
        let mut lr = LoadRegUnit::new(1);
        lr.process(1, MemOpKind::Store, 9); // S1
        assert_eq!(
            lr.process(2, MemOpKind::Load, 9),
            Some(LrOutcome::WaitOn { provider: 1 })
        );
        lr.process(3, MemOpKind::Store, 9); // S2 becomes provider
                                            // L4 must get S2's data, not S1's
        assert_eq!(
            lr.process(4, MemOpKind::Load, 9),
            Some(LrOutcome::WaitOn { provider: 3 })
        );
        // S1 ready: only L2 wakes, with S1's value
        assert_eq!(lr.provider_ready(1, 100), vec![2]);
        // S2 ready: only L4 wakes
        assert_eq!(lr.provider_ready(3, 200), vec![4]);
        for op in [1, 2, 3, 4] {
            lr.retire(op);
        }
        assert_eq!(lr.free_count(), 1);
    }

    #[test]
    fn blocks_when_full() {
        let mut lr = LoadRegUnit::new(1);
        lr.process(1, MemOpKind::Load, 1);
        assert_eq!(lr.process(2, MemOpKind::Load, 2), None); // different addr, no free LR
        assert!(lr.is_full());
        // same address still matches, no new entry needed
        assert_eq!(
            lr.process(3, MemOpKind::Load, 1),
            Some(LrOutcome::WaitOn { provider: 1 })
        );
    }

    #[test]
    fn retired_provider_makes_memory_current() {
        let mut lr = LoadRegUnit::new(1);
        lr.process(1, MemOpKind::Store, 4);
        lr.process(2, MemOpKind::Load, 4); // waits on store
        lr.provider_ready(1, 5);
        lr.retire(1); // store committed; memory now current
                      // entry still busy (load 2 pending) but provider cleared:
        assert_eq!(lr.process(3, MemOpKind::Load, 4), Some(LrOutcome::ToMemory));
        lr.provider_ready(3, 5);
        lr.retire(2);
        lr.retire(3);
        assert_eq!(lr.free_count(), 1);
    }

    #[test]
    fn squash_restores_the_unit() {
        let mut lr = LoadRegUnit::new(2);
        lr.process(1, MemOpKind::Store, 7); // older store, survives
        lr.process(2, MemOpKind::Load, 7); // waits on 1
        lr.process(3, MemOpKind::Store, 7); // speculative, squashed
        lr.process(4, MemOpKind::Load, 7); // waits on 3, squashed
                                           // Squash youngest-first.
        lr.squash(4);
        lr.squash(3);
        // The older store's waiter is intact and provider-ship reverts.
        assert_eq!(lr.provider_ready(1, 9), vec![2]);
        // A new load sees the old store's data, not the squashed one's.
        assert_eq!(
            lr.process(5, MemOpKind::Load, 7),
            Some(LrOutcome::Forwarded { value: 9 })
        );
        lr.retire(1);
        lr.retire(2);
        lr.retire(5);
        assert_eq!(lr.free_count(), 2);
    }

    #[test]
    fn squash_of_sole_op_frees_entry() {
        let mut lr = LoadRegUnit::new(1);
        lr.process(1, MemOpKind::Load, 3);
        assert!(lr.is_full());
        lr.squash(1);
        assert_eq!(lr.free_count(), 1);
        // unknown op squash is a no-op
        lr.squash(99);
    }

    /// Randomized protocol check: drive the unit with arbitrary
    /// interleavings of processing, data arrival, retirement (stores
    /// retiring in program order, as every precise machine does) and
    /// mispredict-style squashes of a youngest suffix of the in-flight
    /// operations, and assert every surviving load observes exactly the
    /// value of the last earlier *non-squashed* store to its address —
    /// or initial memory if there is none.
    #[test]
    fn randomized_protocol_preserves_program_order_semantics() {
        use std::collections::HashMap;

        #[derive(Clone, Copy, PartialEq)]
        enum St {
            NotProcessed,
            /// Data pending from this provider (self for stores and
            /// memory loads, an older op for matched loads).
            WaitingData(OpId),
            HasValue(u64),
            Retired,
            /// Removed by a squash; excluded from program semantics.
            Squashed,
        }
        let mut seed = 0x5eed_u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 33
        };
        for round in 0..300u32 {
            let n_ops = 4 + (next() % 12) as usize;
            let mut lr = LoadRegUnit::new(2 + (next() % 3) as usize);
            // program: (is_store, addr, store value)
            let ops: Vec<(bool, u64, u64)> = (0..n_ops)
                .map(|i| (next() % 2 == 0, next() % 3, 1000 + i as u64))
                .collect();
            let initial = |addr: u64| 500 + addr;
            // the value a load at position i must observe, given which ops
            // have been squashed out of the program so far
            let expected = |i: usize, st: &[St]| -> u64 {
                ops[..i]
                    .iter()
                    .enumerate()
                    .rev()
                    .find(|(j, (is_store, a, _))| {
                        *is_store && *a == ops[i].1 && st[*j] != St::Squashed
                    })
                    .map_or(initial(ops[i].1), |(_, (_, _, v))| *v)
            };
            let mut st = vec![St::NotProcessed; n_ops];
            let mut mem: HashMap<u64, u64> = HashMap::new(); // applied at store retire
            let mut sampled: HashMap<usize, u64> = HashMap::new(); // ToMemory reads
            let mut processed = 0usize;
            let mut guard = 0;
            while st.iter().any(|s| !matches!(s, St::Retired | St::Squashed)) {
                guard += 1;
                assert!(guard < 20_000, "driver wedged in round {round}");
                match next() % 8 {
                    // process the next op in program order
                    0..=2 if processed < n_ops => {
                        let i = processed;
                        let (is_store, addr, _) = ops[i];
                        let kind = if is_store {
                            MemOpKind::Store
                        } else {
                            MemOpKind::Load
                        };
                        let Some(out) = lr.process(i as OpId, kind, addr) else {
                            continue; // unit full; do something else
                        };
                        processed += 1;
                        st[i] = match out {
                            LrOutcome::StoreRecorded => St::WaitingData(i as OpId),
                            LrOutcome::ToMemory => {
                                // No pending store on the address, so all
                                // earlier same-address stores retired: the
                                // memory sample is program-order correct.
                                let v = mem.get(&addr).copied().unwrap_or(initial(addr));
                                assert_eq!(v, expected(i, &st), "ToMemory load {i} round {round}");
                                sampled.insert(i, v);
                                St::WaitingData(i as OpId)
                            }
                            LrOutcome::Forwarded { value } => {
                                assert_eq!(
                                    value,
                                    expected(i, &st),
                                    "forwarded load {i} round {round}"
                                );
                                St::HasValue(value)
                            }
                            LrOutcome::WaitOn { provider } => St::WaitingData(provider),
                        };
                    }
                    0..=2 => continue, // nothing left to process
                    // a self-provider's data becomes known (store operands
                    // ready / memory response back)
                    3 | 4 => {
                        let ready: Vec<usize> = (0..processed)
                            .filter(|&i| st[i] == St::WaitingData(i as OpId))
                            .collect();
                        if ready.is_empty() {
                            continue;
                        }
                        let i = ready[(next() % ready.len() as u64) as usize];
                        let v = if ops[i].0 { ops[i].2 } else { sampled[&i] };
                        for w in lr.provider_ready(i as OpId, v) {
                            let w = w as usize;
                            assert_eq!(v, expected(w, &st), "woken load {w} round {round}");
                            st[w] = St::HasValue(v);
                        }
                        st[i] = St::HasValue(v);
                    }
                    // retire: loads with data any time; stores in program
                    // order once their data is known (squashed stores no
                    // longer gate anything)
                    5 | 6 => {
                        let pick: Vec<usize> = (0..processed)
                            .filter(|&i| matches!(st[i], St::HasValue(_)))
                            .filter(|&i| {
                                !ops[i].0
                                    || ops[..i].iter().enumerate().all(|(j, o)| {
                                        !o.0 || matches!(st[j], St::Retired | St::Squashed)
                                    })
                            })
                            .collect();
                        if pick.is_empty() {
                            continue;
                        }
                        let i = pick[(next() % pick.len() as u64) as usize];
                        lr.retire(i as OpId);
                        if ops[i].0 {
                            mem.insert(ops[i].1, ops[i].2);
                        }
                        st[i] = St::Retired;
                    }
                    // mispredict repair: squash a random youngest suffix of
                    // the in-flight ops, youngest first, as every precise
                    // machine's recovery sequence does
                    _ => {
                        let mut max_k = 0;
                        for i in (0..processed).rev() {
                            if matches!(st[i], St::Retired | St::Squashed) {
                                break;
                            }
                            max_k += 1;
                        }
                        if max_k == 0 {
                            continue;
                        }
                        let k = 1 + (next() % max_k) as usize;
                        for i in ((processed - k)..processed).rev() {
                            lr.squash(i as OpId);
                            st[i] = St::Squashed;
                        }
                    }
                }
            }
            assert_eq!(lr.free_count(), lr.entries.len(), "round {round}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown provider")]
    fn provider_ready_for_nonprovider_panics() {
        let mut lr = LoadRegUnit::new(1);
        lr.process(1, MemOpKind::Store, 4);
        lr.process(2, MemOpKind::Load, 4);
        lr.provider_ready(2, 0); // the waiting load is not a provider
    }

    #[test]
    #[should_panic(expected = "processed twice")]
    fn double_process_is_rejected_in_release_builds_too() {
        let mut lr = LoadRegUnit::new(2);
        lr.process(1, MemOpKind::Load, 3);
        lr.process(1, MemOpKind::Load, 3);
    }

    #[test]
    #[should_panic(expected = "announced twice")]
    fn double_announce_is_rejected_in_release_builds_too() {
        let mut lr = LoadRegUnit::new(2);
        lr.process(1, MemOpKind::Store, 3);
        lr.provider_ready(1, 7);
        lr.provider_ready(1, 7);
    }

    #[test]
    #[should_panic(expected = "squashed too")]
    fn out_of_order_squash_is_rejected_in_release_builds_too() {
        let mut lr = LoadRegUnit::new(2);
        lr.process(1, MemOpKind::Store, 4);
        lr.process(2, MemOpKind::Load, 4); // waits on 1
        lr.squash(1); // oldest-first squash strands the waiting load
    }
}
