//! Run statistics shared by every issue-mechanism simulator.

use std::fmt;

use ruu_exec::{ArchState, Memory};

/// Why the decode/issue stage could not issue an instruction this cycle.
///
/// The categories follow the paper's discussion: operand waits (data
/// dependencies, §2.2/§3), structural waits (window full, functional unit
/// or result-bus conflicts), the per-register instance limit of the NI/LI
/// counters (§5.1), load-register exhaustion (§3.2.1.2), branch-condition
/// waits and the dead cycles that follow every branch (§2.2, §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallReason {
    /// A source operand was not available (in-order mechanisms only).
    OperandsNotReady,
    /// The destination register was busy (in-order mechanisms only).
    DestinationBusy,
    /// The target functional unit could not accept the instruction.
    FuBusy,
    /// No result-bus slot at the completion cycle.
    BusConflict,
    /// The window (reservation stations / tag unit / RSTU / RUU) was full.
    WindowFull,
    /// No free load register for a memory operation.
    LoadRegFull,
    /// The NI counter for the destination register was saturated.
    RegInstanceLimit,
    /// A branch was waiting in decode/issue for its condition value.
    BranchWait,
    /// Dead cycle after a branch (instruction fetch redirect).
    DeadCycle,
    /// Fetch stalled while the pipeline repaired a branch misprediction
    /// (squash + redirect, §7 speculative machines only).
    MispredictRepair,
    /// The data cache could not start the access (all outstanding-miss
    /// registers busy). Never charged under `DCacheConfig::Perfect`.
    MemStall,
    /// Nothing left to issue (program drained, pipeline emptying).
    Drained,
}

impl StallReason {
    /// All reasons, for iteration in reports.
    pub const ALL: [StallReason; 12] = [
        StallReason::OperandsNotReady,
        StallReason::DestinationBusy,
        StallReason::FuBusy,
        StallReason::BusConflict,
        StallReason::WindowFull,
        StallReason::LoadRegFull,
        StallReason::RegInstanceLimit,
        StallReason::BranchWait,
        StallReason::DeadCycle,
        StallReason::MispredictRepair,
        StallReason::MemStall,
        StallReason::Drained,
    ];

    pub(crate) fn idx(self) -> usize {
        match self {
            StallReason::OperandsNotReady => 0,
            StallReason::DestinationBusy => 1,
            StallReason::FuBusy => 2,
            StallReason::BusConflict => 3,
            StallReason::WindowFull => 4,
            StallReason::LoadRegFull => 5,
            StallReason::RegInstanceLimit => 6,
            StallReason::BranchWait => 7,
            StallReason::DeadCycle => 8,
            StallReason::MispredictRepair => 9,
            StallReason::MemStall => 10,
            StallReason::Drained => 11,
        }
    }
}

impl fmt::Display for StallReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StallReason::OperandsNotReady => "operands-not-ready",
            StallReason::DestinationBusy => "destination-busy",
            StallReason::FuBusy => "fu-busy",
            StallReason::BusConflict => "bus-conflict",
            StallReason::WindowFull => "window-full",
            StallReason::LoadRegFull => "load-reg-full",
            StallReason::RegInstanceLimit => "reg-instance-limit",
            StallReason::BranchWait => "branch-wait",
            StallReason::DeadCycle => "dead-cycle",
            StallReason::MispredictRepair => "mispredict-repair",
            StallReason::MemStall => "mem-stall",
            StallReason::Drained => "drained",
        };
        f.write_str(s)
    }
}

/// Counters accumulated during a simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    stall_cycles: [u64; StallReason::ALL.len()],
    /// Cycles in which an instruction issued from decode.
    pub issue_cycles: u64,
    /// Dynamic branches issued.
    pub branches: u64,
    /// Dynamic taken branches.
    pub taken_branches: u64,
    /// Sum over cycles of window occupancy (for mean occupancy).
    pub occupancy_sum: u64,
    /// Peak window occupancy observed.
    pub occupancy_peak: u32,
    /// Loads satisfied by forwarding from the load registers rather than
    /// memory.
    pub forwarded_loads: u64,
    /// Conditional branches whose direction was actually predicted
    /// (speculative machines only; zero elsewhere).
    pub predicted_branches: u64,
    /// Predicted branches that resolved against the prediction and forced
    /// a squash (speculative machines only; zero elsewhere).
    pub mispredicted_branches: u64,
    /// Data-cache accesses (loads that consulted a finite `DCache`; zero
    /// under `DCacheConfig::Perfect`).
    pub dcache_accesses: u64,
    /// Data-cache hits (including merges into an outstanding fill).
    pub dcache_hits: u64,
    /// Data-cache misses that started a fresh line fill.
    pub dcache_misses: u64,
}

impl RunStats {
    /// Records a stalled decode/issue cycle.
    pub fn stall(&mut self, reason: StallReason) {
        self.stall_cycles[reason.idx()] += 1;
    }

    /// Stall cycles attributed to `reason`.
    #[must_use]
    pub fn stalls(&self, reason: StallReason) -> u64 {
        self.stall_cycles[reason.idx()]
    }

    /// Total stalled decode/issue cycles.
    #[must_use]
    pub fn total_stalls(&self) -> u64 {
        self.stall_cycles.iter().sum()
    }

    /// Records the window occupancy at the start of a cycle.
    pub fn observe_occupancy(&mut self, occ: u32) {
        self.occupancy_sum += u64::from(occ);
        self.occupancy_peak = self.occupancy_peak.max(occ);
    }

    /// Mean window occupancy over a run of `cycles` cycles, or `None`
    /// for an empty (zero-cycle) run.
    #[must_use]
    pub fn mean_occupancy(&self, cycles: u64) -> Option<f64> {
        if cycles == 0 {
            None
        } else {
            Some(self.occupancy_sum as f64 / cycles as f64)
        }
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "issue cycles     {:>10}", self.issue_cycles)?;
        for r in StallReason::ALL {
            let n = self.stalls(r);
            if n > 0 {
                writeln!(f, "stall {r:<22} {n:>10}")?;
            }
        }
        writeln!(
            f,
            "branches         {:>10} ({} taken)",
            self.branches, self.taken_branches
        )?;
        if self.predicted_branches > 0 {
            writeln!(
                f,
                "predicted        {:>10} ({} mispredicted)",
                self.predicted_branches, self.mispredicted_branches
            )?;
        }
        writeln!(f, "forwarded loads  {:>10}", self.forwarded_loads)?;
        if self.dcache_accesses > 0 {
            writeln!(
                f,
                "dcache           {:>10} accesses ({} hits, {} misses)",
                self.dcache_accesses, self.dcache_hits, self.dcache_misses
            )?;
        }
        let cycles = self.issue_cycles + self.total_stalls();
        match self.mean_occupancy(cycles) {
            Some(mean) => writeln!(
                f,
                "occupancy        {mean:>10.2} mean / {} peak",
                self.occupancy_peak
            )?,
            None => writeln!(f, "occupancy        {:>10} (empty run)", "-")?,
        }
        Ok(())
    }
}

/// The result of a completed simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Total clock cycles from first fetch to last commit.
    pub cycles: u64,
    /// Dynamic instructions executed (and, for precise machines,
    /// committed).
    pub instructions: u64,
    /// Final architectural state (registers + pc).
    pub state: ArchState,
    /// Final memory contents.
    pub memory: Memory,
    /// Detailed counters.
    pub stats: RunStats,
}

impl RunResult {
    /// Instructions per cycle — the paper's "instruction issue rate" — or
    /// `None` for an empty (zero-cycle) run.
    #[must_use]
    pub fn try_issue_rate(&self) -> Option<f64> {
        if self.cycles == 0 {
            None
        } else {
            Some(self.instructions as f64 / self.cycles as f64)
        }
    }

    /// Instructions per cycle. Returns the NaN-free sentinel `0.0` for a
    /// zero-cycle run; use [`RunResult::try_issue_rate`] to distinguish an
    /// empty run from a genuinely zero rate.
    #[must_use]
    pub fn issue_rate(&self) -> f64 {
        self.try_issue_rate().unwrap_or(0.0)
    }

    /// Speedup of this run relative to a baseline cycle count for the same
    /// instruction stream (the paper's "relative speedup" against the
    /// simple issue mechanism of Table 1), or `None` for an empty run.
    #[must_use]
    pub fn try_speedup_vs(&self, baseline_cycles: u64) -> Option<f64> {
        if self.cycles == 0 {
            None
        } else {
            Some(baseline_cycles as f64 / self.cycles as f64)
        }
    }

    /// Speedup relative to `baseline_cycles`. Returns the NaN-free
    /// sentinel `0.0` for a zero-cycle run; use
    /// [`RunResult::try_speedup_vs`] to distinguish that case.
    #[must_use]
    pub fn speedup_vs(&self, baseline_cycles: u64) -> f64 {
        self.try_speedup_vs(baseline_cycles).unwrap_or(0.0)
    }

    /// Mean window occupancy over the run, or `None` for an empty run.
    #[must_use]
    pub fn mean_occupancy(&self) -> Option<f64> {
        self.stats.mean_occupancy(self.cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_accounting() {
        let mut s = RunStats::default();
        s.stall(StallReason::FuBusy);
        s.stall(StallReason::FuBusy);
        s.stall(StallReason::DeadCycle);
        assert_eq!(s.stalls(StallReason::FuBusy), 2);
        assert_eq!(s.total_stalls(), 3);
        assert!(s.to_string().contains("fu-busy"));
    }

    #[test]
    fn occupancy_tracking() {
        let mut s = RunStats::default();
        s.observe_occupancy(2);
        s.observe_occupancy(6);
        assert_eq!(s.occupancy_sum, 8);
        assert_eq!(s.occupancy_peak, 6);
    }

    #[test]
    fn rates() {
        let r = RunResult {
            cycles: 200,
            instructions: 100,
            state: ArchState::new(),
            memory: Memory::new(8),
            stats: RunStats::default(),
        };
        assert!((r.issue_rate() - 0.5).abs() < 1e-12);
        assert!((r.speedup_vs(400) - 2.0).abs() < 1e-12);
        assert!((r.try_issue_rate().unwrap() - 0.5).abs() < 1e-12);
        assert!((r.try_speedup_vs(400).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycle_runs_have_no_rates() {
        let r = RunResult {
            cycles: 0,
            instructions: 0,
            state: ArchState::new(),
            memory: Memory::new(8),
            stats: RunStats::default(),
        };
        assert_eq!(r.try_issue_rate(), None);
        assert_eq!(r.try_speedup_vs(400), None);
        assert_eq!(r.mean_occupancy(), None);
        // The legacy helpers keep their documented NaN-free sentinel.
        assert_eq!(r.issue_rate(), 0.0);
        assert_eq!(r.speedup_vs(400), 0.0);
    }

    #[test]
    fn occupancy_in_display_and_mean() {
        let mut s = RunStats {
            issue_cycles: 2,
            ..RunStats::default()
        };
        s.stall(StallReason::Drained);
        s.observe_occupancy(2);
        s.observe_occupancy(4);
        s.observe_occupancy(6);
        assert_eq!(s.mean_occupancy(3), Some(4.0));
        assert_eq!(s.mean_occupancy(0), None);
        let shown = s.to_string();
        assert!(shown.contains("occupancy"));
        assert!(shown.contains("6 peak"));
    }
}
