//! # ruu-isa — a CRAY-1-like scalar instruction set architecture
//!
//! This crate defines the model architecture of Sohi's RUU paper (§2): a
//! scalar machine in the spirit of the CRAY-1 scalar unit, with four
//! register files (8 A, 8 S, 64 B, 64 T — 144 registers total), multiple
//! pipelined functional units with CRAY-1 unit times, a single result bus,
//! and branches that test `A0`/`S0` by convention.
//!
//! It provides:
//!
//! * [`Reg`] — typed register names over the four files;
//! * [`Opcode`] / [`FuClass`] — the instruction set and its mapping onto
//!   functional units;
//! * [`Inst`] — a decoded instruction with uniform operand accessors, which
//!   is what both the golden interpreter and the timing simulators consume;
//! * [`Program`] and the [`Asm`] assembler with labels and forward
//!   references;
//! * [`semantics`] — pure functions giving every opcode's meaning, shared
//!   by the interpreter and by the reservation stations of the timing
//!   simulators (execution-driven simulation).
//!
//! ## Example
//!
//! ```
//! use ruu_isa::{Asm, Reg};
//!
//! // for k = 10 .. 0 { S1 += k } , computed with A registers
//! let mut a = Asm::new("sum");
//! let top = a.new_label();
//! a.a_imm(Reg::a(0), 10);
//! a.s_imm(Reg::s(1), 0);
//! a.bind(top);
//! a.a_to_s(Reg::s(2), Reg::a(0));
//! a.s_add(Reg::s(1), Reg::s(1), Reg::s(2));
//! a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
//! a.br_an(top);
//! a.halt();
//! let program = a.assemble().expect("valid program");
//! assert_eq!(program.len(), 7);
//! ```

pub mod asm;
pub mod encoding;
pub mod inst;
pub mod op;
pub mod program;
pub mod reg;
pub mod semantics;
pub mod text;
pub mod value;

pub use asm::{Asm, AsmError, Label};
pub use inst::Inst;
pub use op::{FuClass, Opcode};
pub use program::Program;
pub use reg::{Reg, RegFile, NUM_REGS};
