//! Binary instruction encoding: 16-bit parcels, CRAY style.
//!
//! The paper's model architecture issues instructions "whether they are
//! composed of 1 parcel (16 bits) or 2 parcels (32 bits)" in a single
//! cycle (§2). This module gives the ISA that binary format:
//!
//! * register-only instructions occupy **one parcel**:
//!   `[opcode:7][f1:3][f2:3][f3:3]` (B/T register numbers use the
//!   combined 6-bit `f2:f3` field, like the CRAY `jk` designator);
//! * instructions with an immediate, displacement or branch target occupy
//!   **two parcels**: the 22-bit constant is split across the 6-bit
//!   `f2:f3` field and the entire second parcel (the CRAY `jkm` field).
//!
//! Branch targets are encoded as instruction indices (the unit the rest
//! of this crate uses for program counters), not parcel addresses.
//!
//! Every instruction the [`crate::Asm`] constructors can produce encodes
//! and decodes losslessly as long as its constant fits in 22 signed bits;
//! [`EncodeError::ImmOutOfRange`] reports the ones that do not.

use std::fmt;

use crate::inst::Inst;
use crate::op::Opcode;
use crate::program::Program;
use crate::reg::{Reg, RegFile};

/// Maximum constant magnitude: signed 22-bit (`jkm`) field.
pub const IMM_BITS: u32 = 22;
const IMM_MAX: i64 = (1 << (IMM_BITS - 1)) - 1;
const IMM_MIN: i64 = -(1 << (IMM_BITS - 1));

/// Errors from [`encode_inst`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// The immediate/displacement/target does not fit in 22 signed bits.
    ImmOutOfRange {
        /// The offending value.
        value: i64,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOutOfRange { value } => {
                write!(f, "constant {value} does not fit in {IMM_BITS} signed bits")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Errors from [`decode_inst`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode field names no instruction.
    BadOpcode {
        /// The raw 7-bit opcode field.
        raw: u16,
    },
    /// A second parcel was needed but the input ended.
    Truncated,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode { raw } => write!(f, "unknown opcode field {raw:#x}"),
            DecodeError::Truncated => write!(f, "instruction truncated: second parcel missing"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// All opcodes in their binary numbering (index = opcode field value).
const OPCODES: [Opcode; 41] = [
    Opcode::AAdd,
    Opcode::ASub,
    Opcode::AAddImm,
    Opcode::ASubImm,
    Opcode::AMul,
    Opcode::AImm,
    Opcode::SAdd,
    Opcode::SSub,
    Opcode::SImm,
    Opcode::SAnd,
    Opcode::SOr,
    Opcode::SXor,
    Opcode::SShl,
    Opcode::SShr,
    Opcode::SPop,
    Opcode::SLz,
    Opcode::FAdd,
    Opcode::FSub,
    Opcode::FMul,
    Opcode::FRecip,
    Opcode::AtoB,
    Opcode::BtoA,
    Opcode::StoT,
    Opcode::TtoS,
    Opcode::AtoS,
    Opcode::StoA,
    Opcode::LoadA,
    Opcode::LoadS,
    Opcode::StoreA,
    Opcode::StoreS,
    Opcode::Jump,
    Opcode::BrAZ,
    Opcode::BrAN,
    Opcode::BrAP,
    Opcode::BrAM,
    Opcode::BrSZ,
    Opcode::BrSN,
    Opcode::BrSP,
    Opcode::BrSM,
    Opcode::Nop,
    Opcode::Halt,
];

fn opcode_number(op: Opcode) -> u16 {
    OPCODES
        .iter()
        .position(|&o| o == op)
        .expect("every opcode has a binary number") as u16
}

/// Number of 16-bit parcels `op` occupies (paper §2: 1 or 2).
#[must_use]
pub fn parcel_count(op: Opcode) -> usize {
    use Opcode::*;
    match op {
        AAddImm | ASubImm | AImm | SImm | SShl | SShr | LoadA | LoadS | StoreA | StoreS | Jump
        | BrAZ | BrAN | BrAP | BrAM | BrSZ | BrSN | BrSP | BrSM => 2,
        _ => 1,
    }
}

fn pack(op: Opcode, f1: u16, f2: u16, f3: u16) -> u16 {
    debug_assert!(f1 < 8 && f2 < 8 && f3 < 8);
    (opcode_number(op) << 9) | (f1 << 6) | (f2 << 3) | f3
}

fn pack_jk(op: Opcode, f1: u16, jk: u16) -> u16 {
    debug_assert!(jk < 64);
    (opcode_number(op) << 9) | (f1 << 6) | jk
}

fn reg3(r: Option<Reg>) -> u16 {
    r.map_or(0, |r| u16::from(r.num() & 7))
}

fn check_imm(v: i64) -> Result<u32, EncodeError> {
    if (IMM_MIN..=IMM_MAX).contains(&v) {
        Ok((v as u32) & ((1 << IMM_BITS) - 1))
    } else {
        Err(EncodeError::ImmOutOfRange { value: v })
    }
}

fn sign_extend_22(raw: u32) -> i64 {
    ((raw as i64) << (64 - i64::from(IMM_BITS))) >> (64 - i64::from(IMM_BITS))
}

fn high6(imm: u32) -> u16 {
    ((imm >> 16) & 0x3f) as u16
}

fn low16(imm: u32) -> u16 {
    (imm & 0xffff) as u16
}

/// Encodes one instruction (full implementation).
///
/// # Errors
/// [`EncodeError::ImmOutOfRange`] if a constant exceeds 22 signed bits.
pub fn encode_inst(inst: &Inst) -> Result<Vec<u16>, EncodeError> {
    use Opcode::*;
    let op = inst.opcode;
    Ok(match op {
        AAdd | ASub | AMul | SAdd | SSub | SAnd | SOr | SXor | FAdd | FSub | FMul => {
            vec![pack(op, reg3(inst.dst), reg3(inst.src1), reg3(inst.src2))]
        }
        FRecip | AtoS | StoA | SPop | SLz => {
            vec![pack(op, reg3(inst.dst), reg3(inst.src1), 0)]
        }
        AtoB | StoT => {
            let jk = u16::from(inst.dst.expect("transfer writes a register").num());
            vec![pack_jk(op, reg3(inst.src1), jk)]
        }
        BtoA | TtoS => {
            let jk = u16::from(inst.src1.expect("transfer reads a register").num());
            vec![pack_jk(op, reg3(inst.dst), jk)]
        }
        // Two-parcel forms. Pure immediates get the full 22-bit jkm field
        // ([op][i][imm hi 6] + [imm lo 16]); reg+imm forms need both a
        // destination and a source designator in parcel one, leaving a
        // 16-bit immediate ([op][dst][src][0] + [imm]).
        AImm | SImm => {
            let imm = check_imm(inst.imm)?;
            vec![pack_jk(op, reg3(inst.dst), high6(imm)), low16(imm)]
        }
        AAddImm | ASubImm | SShl | SShr | LoadA | LoadS => {
            if !(-(1 << 15)..(1 << 15)).contains(&inst.imm) {
                return Err(EncodeError::ImmOutOfRange { value: inst.imm });
            }
            vec![
                pack(op, reg3(inst.dst), reg3(inst.src1), 0),
                low16((inst.imm as u32) & 0xffff),
            ]
        }
        StoreA | StoreS => {
            if !(-(1 << 15)..(1 << 15)).contains(&inst.imm) {
                return Err(EncodeError::ImmOutOfRange { value: inst.imm });
            }
            // f1 = base (src1), f2 = data (src2)
            vec![
                pack(op, reg3(inst.src1), reg3(inst.src2), 0),
                low16((inst.imm as u32) & 0xffff),
            ]
        }
        Jump | BrAZ | BrAN | BrAP | BrAM | BrSZ | BrSN | BrSP | BrSM => {
            let t = i64::from(inst.target.expect("branch has a target"));
            let imm = check_imm(t)?;
            vec![pack_jk(op, 0, high6(imm)), low16(imm)]
        }
        Nop | Halt => vec![pack(op, 0, 0, 0)],
    })
}

/// Decodes one instruction from `parcels`, returning it and the number of
/// parcels consumed.
///
/// # Errors
/// [`DecodeError::BadOpcode`] / [`DecodeError::Truncated`].
pub fn decode_inst(parcels: &[u16]) -> Result<(Inst, usize), DecodeError> {
    use Opcode::*;
    let p0 = *parcels.first().ok_or(DecodeError::Truncated)?;
    let raw_op = p0 >> 9;
    let op = *OPCODES
        .get(raw_op as usize)
        .ok_or(DecodeError::BadOpcode { raw: raw_op })?;
    let f1 = (p0 >> 6) & 7;
    let f2 = (p0 >> 3) & 7;
    let f3 = p0 & 7;
    let jk = p0 & 0x3f;

    let need = parcel_count(op);
    if parcels.len() < need {
        return Err(DecodeError::Truncated);
    }
    let second = if need == 2 { parcels[1] } else { 0 };
    let imm16 = second as i16 as i64;
    let imm22 = sign_extend_22(((u32::from(jk)) << 16) | u32::from(second));

    let a = |n: u16| Reg::a(n as u8);
    let s = |n: u16| Reg::s(n as u8);

    let inst = match op {
        AAdd | ASub | AMul => Inst::new(op, Some(a(f1)), Some(a(f2)), Some(a(f3)), 0, None),
        SAdd | SSub | SAnd | SOr | SXor | FAdd | FSub | FMul => {
            Inst::new(op, Some(s(f1)), Some(s(f2)), Some(s(f3)), 0, None)
        }
        FRecip => Inst::new(op, Some(s(f1)), Some(s(f2)), None, 0, None),
        AtoS => Inst::new(op, Some(s(f1)), Some(a(f2)), None, 0, None),
        StoA => Inst::new(op, Some(a(f1)), Some(s(f2)), None, 0, None),
        SPop | SLz => Inst::new(op, Some(a(f1)), Some(s(f2)), None, 0, None),
        AtoB => Inst::new(
            op,
            Some(Reg::new(RegFile::B, jk as u8)),
            Some(a(f1)),
            None,
            0,
            None,
        ),
        StoT => Inst::new(
            op,
            Some(Reg::new(RegFile::T, jk as u8)),
            Some(s(f1)),
            None,
            0,
            None,
        ),
        BtoA => Inst::new(
            op,
            Some(a(f1)),
            Some(Reg::new(RegFile::B, jk as u8)),
            None,
            0,
            None,
        ),
        TtoS => Inst::new(
            op,
            Some(s(f1)),
            Some(Reg::new(RegFile::T, jk as u8)),
            None,
            0,
            None,
        ),
        AAddImm | ASubImm => Inst::new(op, Some(a(f1)), Some(a(f2)), None, imm16, None),
        SShl | SShr => Inst::new(op, Some(s(f1)), Some(s(f2)), None, imm16, None),
        AImm => Inst::new(op, Some(a(f1)), None, None, imm22, None),
        SImm => Inst::new(op, Some(s(f1)), None, None, imm22, None),
        LoadA => Inst::new(op, Some(a(f1)), Some(a(f2)), None, imm16, None),
        LoadS => Inst::new(op, Some(s(f1)), Some(a(f2)), None, imm16, None),
        StoreA => Inst::new(op, None, Some(a(f1)), Some(a(f2)), imm16, None),
        StoreS => Inst::new(op, None, Some(a(f1)), Some(s(f2)), imm16, None),
        Jump => Inst::new(op, None, None, None, 0, Some(imm22 as u32)),
        BrAZ | BrAN | BrAP | BrAM => {
            Inst::new(op, None, Some(Reg::a(0)), None, 0, Some(imm22 as u32))
        }
        BrSZ | BrSN | BrSP | BrSM => {
            Inst::new(op, None, Some(Reg::s(0)), None, 0, Some(imm22 as u32))
        }
        Nop | Halt => Inst::new(op, None, None, None, 0, None),
    };
    Ok((inst, need))
}

/// Encodes a whole program into a parcel stream.
///
/// # Errors
/// Propagates [`EncodeError`] from the first offending instruction.
pub fn encode_program(program: &Program) -> Result<Vec<u16>, EncodeError> {
    let mut out = Vec::with_capacity(program.len() * 2);
    for inst in program {
        out.extend(encode_inst(inst)?);
    }
    Ok(out)
}

/// Decodes a parcel stream produced by [`encode_program`].
///
/// # Errors
/// Propagates [`DecodeError`].
pub fn decode_program(name: &str, mut parcels: &[u16]) -> Result<Program, DecodeError> {
    let mut insts = Vec::new();
    while !parcels.is_empty() {
        let (inst, used) = decode_inst(parcels)?;
        insts.push(inst);
        parcels = &parcels[used..];
    }
    Ok(Program::from_parts(name, insts))
}

/// Total parcels (16-bit units) a program occupies — its instruction-
/// buffer footprint.
#[must_use]
pub fn program_parcels(program: &Program) -> usize {
    program.iter().map(|i| parcel_count(i.opcode)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;

    fn sample() -> Program {
        let mut a = Asm::new("t");
        let top = a.new_label();
        a.a_imm(Reg::a(1), 100);
        a.s_imm(Reg::s(1), -5);
        a.a_imm(Reg::a(0), 3);
        a.bind(top);
        a.ld_s(Reg::s(2), Reg::a(1), -8);
        a.f_mul(Reg::s(3), Reg::s(1), Reg::s(2));
        a.st_s(Reg::s(3), Reg::a(1), 0x7f);
        a.a_to_b(Reg::b(42), Reg::a(1));
        a.b_to_a(Reg::a(2), Reg::b(42));
        a.s_to_t(Reg::t(63), Reg::s(3));
        a.t_to_s(Reg::s(4), Reg::t(63));
        a.s_shl(Reg::s(4), Reg::s(4), 7);
        a.s_pop(Reg::a(3), Reg::s(4));
        a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
        a.br_an(top);
        a.jump(top);
        a.nop();
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn roundtrip_sample_program() {
        let p = sample();
        let parcels = encode_program(&p).unwrap();
        let q = decode_program("t", &parcels).unwrap();
        assert_eq!(p.len(), q.len());
        for (x, y) in p.iter().zip(q.iter()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn parcel_counts_match_the_paper_model() {
        // register-register: 1 parcel; immediates & branches: 2.
        assert_eq!(parcel_count(Opcode::FAdd), 1);
        assert_eq!(parcel_count(Opcode::AtoB), 1);
        assert_eq!(parcel_count(Opcode::LoadS), 2);
        assert_eq!(parcel_count(Opcode::BrAN), 2);
        assert_eq!(parcel_count(Opcode::Halt), 1);
    }

    #[test]
    fn program_footprint() {
        let p = sample();
        let expected: usize = p.iter().map(|i| parcel_count(i.opcode)).sum();
        assert_eq!(program_parcels(&p), expected);
        assert_eq!(encode_program(&p).unwrap().len(), expected);
    }

    #[test]
    fn immediate_range_enforced() {
        let too_big = Inst::new(Opcode::SImm, Some(Reg::s(1)), None, None, 1 << 30, None);
        assert!(matches!(
            encode_inst(&too_big),
            Err(EncodeError::ImmOutOfRange { .. })
        ));
        let fits = Inst::new(
            Opcode::SImm,
            Some(Reg::s(1)),
            None,
            None,
            (1 << 21) - 1,
            None,
        );
        let parcels = encode_inst(&fits).unwrap();
        let (back, _) = decode_inst(&parcels).unwrap();
        assert_eq!(back.imm, (1 << 21) - 1);
    }

    #[test]
    fn disp_range_enforced_for_loads() {
        let too_big = Inst::new(
            Opcode::LoadS,
            Some(Reg::s(1)),
            Some(Reg::a(1)),
            None,
            1 << 20,
            None,
        );
        assert!(encode_inst(&too_big).is_err());
    }

    #[test]
    fn negative_immediates_roundtrip() {
        for v in [-1i64, -32768, 32767, -(1 << 21)] {
            let i = Inst::new(Opcode::AImm, Some(Reg::a(3)), None, None, v, None);
            let parcels = encode_inst(&i).unwrap();
            let (back, used) = decode_inst(&parcels).unwrap();
            assert_eq!(used, 2);
            assert_eq!(back.imm, v, "value {v}");
        }
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let i = Inst::new(Opcode::AImm, Some(Reg::a(3)), None, None, 7, None);
        let parcels = encode_inst(&i).unwrap();
        assert_eq!(
            decode_inst(&parcels[..1]).unwrap_err(),
            DecodeError::Truncated
        );
        assert_eq!(decode_inst(&[]).unwrap_err(), DecodeError::Truncated);
    }

    #[test]
    fn bad_opcode_is_an_error() {
        let raw = 60u16 << 9; // beyond the table
        assert!(matches!(
            decode_inst(&[raw]),
            Err(DecodeError::BadOpcode { .. })
        ));
    }

    #[test]
    fn all_livermore_kernels_encode() {
        // (imported here to keep dependency direction; the workloads
        // crate depends on isa, so we re-assemble a few representative
        // shapes instead of importing it. The full-suite check lives in
        // the workloads crate's integration tests.)
        let p = sample();
        assert!(encode_program(&p).is_ok());
    }
}
