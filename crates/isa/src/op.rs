//! Opcodes and their mapping onto functional-unit classes.
//!
//! The opcode set is the subset of the CRAY-1 scalar unit needed to compile
//! the Lawrence Livermore loops, plus register transfers between all four
//! files. Default latencies are the CRAY-1 functional unit times in clock
//! periods (CRAY-1 Hardware Reference Manual; paper §2).

use std::fmt;

/// Functional-unit classes of the model architecture (paper Figure 1).
///
/// Every non-branch opcode executes on exactly one class. All units are
/// fully pipelined: a unit can accept one new operation per cycle, and an
/// operation's result appears on the result bus `latency` cycles after
/// dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FuClass {
    /// 24-bit address integer add/subtract (CRAY-1: 2 clocks).
    AddrAdd,
    /// Address integer multiply (6 clocks).
    AddrMul,
    /// 64-bit scalar integer add/subtract (3 clocks).
    ScalarAdd,
    /// Scalar logical: and/or/xor/merge (1 clock).
    ScalarLogical,
    /// Scalar shift (2 clocks for single-register shifts).
    ScalarShift,
    /// Population count / leading-zero count (3 clocks).
    PopLz,
    /// Floating-point add/subtract (6 clocks).
    FloatAdd,
    /// Floating-point multiply (7 clocks).
    FloatMul,
    /// Floating-point reciprocal approximation (14 clocks).
    Recip,
    /// Memory port: scalar loads complete in 11 clocks; stores produce no
    /// register result.
    Memory,
    /// Inter-file register transfers and immediate loads (1 clock).
    Transfer,
}

impl FuClass {
    /// All functional-unit classes, in a fixed order (used to index
    /// per-unit tables and distributed reservation-station pools).
    pub const ALL: [FuClass; 11] = [
        FuClass::AddrAdd,
        FuClass::AddrMul,
        FuClass::ScalarAdd,
        FuClass::ScalarLogical,
        FuClass::ScalarShift,
        FuClass::PopLz,
        FuClass::FloatAdd,
        FuClass::FloatMul,
        FuClass::Recip,
        FuClass::Memory,
        FuClass::Transfer,
    ];

    /// Stable index of this class within [`FuClass::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            FuClass::AddrAdd => 0,
            FuClass::AddrMul => 1,
            FuClass::ScalarAdd => 2,
            FuClass::ScalarLogical => 3,
            FuClass::ScalarShift => 4,
            FuClass::PopLz => 5,
            FuClass::FloatAdd => 6,
            FuClass::FloatMul => 7,
            FuClass::Recip => 8,
            FuClass::Memory => 9,
            FuClass::Transfer => 10,
        }
    }

    /// CRAY-1 unit time in clock periods (paper §2; DESIGN.md §3).
    ///
    /// The timing simulators take latencies from a
    /// `MachineConfig`, which defaults to these values.
    #[must_use]
    pub fn default_latency(self) -> u64 {
        match self {
            FuClass::AddrAdd => 2,
            FuClass::AddrMul => 6,
            FuClass::ScalarAdd => 3,
            FuClass::ScalarLogical => 1,
            FuClass::ScalarShift => 2,
            FuClass::PopLz => 3,
            FuClass::FloatAdd => 6,
            FuClass::FloatMul => 7,
            FuClass::Recip => 14,
            FuClass::Memory => 11,
            FuClass::Transfer => 1,
        }
    }
}

impl fmt::Display for FuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuClass::AddrAdd => "addr-add",
            FuClass::AddrMul => "addr-mul",
            FuClass::ScalarAdd => "scalar-add",
            FuClass::ScalarLogical => "scalar-logical",
            FuClass::ScalarShift => "scalar-shift",
            FuClass::PopLz => "pop-lz",
            FuClass::FloatAdd => "float-add",
            FuClass::FloatMul => "float-mul",
            FuClass::Recip => "recip",
            FuClass::Memory => "memory",
            FuClass::Transfer => "transfer",
        };
        f.write_str(s)
    }
}

/// The instruction opcodes of the model architecture.
///
/// Operand conventions (see [`crate::Inst`]):
/// * three-register ops: `dst = src1 op src2`;
/// * reg-immediate ops: `dst = src1 op imm`;
/// * loads: `dst = mem[src1 + imm]`;
/// * stores: `mem[src1 + imm] = src2`;
/// * conditional branches implicitly read `A0` or `S0`, which the
///   constructors materialise as `src1` so the dependence is explicit;
/// * `Halt` terminates the program (a convenience for simulation; the
///   CRAY-1 would use an exchange sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// `Ai = Aj + Ak`
    AAdd,
    /// `Ai = Aj - Ak`
    ASub,
    /// `Ai = Aj + imm`
    AAddImm,
    /// `Ai = Aj - imm`
    ASubImm,
    /// `Ai = Aj * Ak` (address multiply)
    AMul,
    /// `Ai = imm` (immediate load)
    AImm,
    /// `Si = Sj + Sk` (integer)
    SAdd,
    /// `Si = Sj - Sk` (integer)
    SSub,
    /// `Si = imm`
    SImm,
    /// `Si = Sj & Sk`
    SAnd,
    /// `Si = Sj | Sk`
    SOr,
    /// `Si = Sj ^ Sk`
    SXor,
    /// `Si = Sj << imm`
    SShl,
    /// `Si = Sj >> imm` (logical)
    SShr,
    /// `Ai = popcount(Sj)`
    SPop,
    /// `Ai = leading_zeros(Sj)`
    SLz,
    /// `Si = Sj +f Sk` (floating add)
    FAdd,
    /// `Si = Sj -f Sk` (floating subtract)
    FSub,
    /// `Si = Sj *f Sk` (floating multiply)
    FMul,
    /// `Si = reciprocal_approximation(Sj)`
    FRecip,
    /// `Bjk = Ai`
    AtoB,
    /// `Ai = Bjk`
    BtoA,
    /// `Tjk = Si`
    StoT,
    /// `Si = Tjk`
    TtoS,
    /// `Si = Ai` (address-to-scalar transfer)
    AtoS,
    /// `Ai = Sj` (scalar-to-address transfer)
    StoA,
    /// `Ai = mem[Ah + imm]`
    LoadA,
    /// `Si = mem[Ah + imm]`
    LoadS,
    /// `mem[Ah + imm] = Ai`
    StoreA,
    /// `mem[Ah + imm] = Si`
    StoreS,
    /// Unconditional jump to `target`.
    Jump,
    /// Branch to `target` if `A0 == 0`.
    BrAZ,
    /// Branch to `target` if `A0 != 0`.
    BrAN,
    /// Branch to `target` if `A0 >= 0` (signed).
    BrAP,
    /// Branch to `target` if `A0 < 0` (signed).
    BrAM,
    /// Branch to `target` if `S0 == 0`.
    BrSZ,
    /// Branch to `target` if `S0 != 0`.
    BrSN,
    /// Branch to `target` if `S0 >= 0` (signed).
    BrSP,
    /// Branch to `target` if `S0 < 0` (signed).
    BrSM,
    /// No operation (issues, occupies a slot, writes nothing).
    Nop,
    /// Terminate the program.
    Halt,
}

impl Opcode {
    /// The functional unit class that executes this opcode.
    ///
    /// Branches, `Nop` and `Halt` are resolved in the decode/issue stage
    /// and never visit a functional unit; they return `None`.
    #[must_use]
    pub fn fu_class(self) -> Option<FuClass> {
        use Opcode::*;
        Some(match self {
            AAdd | ASub | AAddImm | ASubImm => FuClass::AddrAdd,
            AMul => FuClass::AddrMul,
            SAdd | SSub => FuClass::ScalarAdd,
            SAnd | SOr | SXor => FuClass::ScalarLogical,
            SShl | SShr => FuClass::ScalarShift,
            SPop | SLz => FuClass::PopLz,
            FAdd | FSub => FuClass::FloatAdd,
            FMul => FuClass::FloatMul,
            FRecip => FuClass::Recip,
            LoadA | LoadS | StoreA | StoreS => FuClass::Memory,
            AImm | SImm | AtoB | BtoA | StoT | TtoS | AtoS | StoA => FuClass::Transfer,
            Jump | BrAZ | BrAN | BrAP | BrAM | BrSZ | BrSN | BrSP | BrSM | Nop | Halt => {
                return None
            }
        })
    }

    /// `true` for any (conditional or unconditional) branch.
    #[must_use]
    pub fn is_branch(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            Jump | BrAZ | BrAN | BrAP | BrAM | BrSZ | BrSN | BrSP | BrSM
        )
    }

    /// `true` for conditional branches (those that read `A0`/`S0`).
    #[must_use]
    pub fn is_cond_branch(self) -> bool {
        use Opcode::*;
        matches!(self, BrAZ | BrAN | BrAP | BrAM | BrSZ | BrSN | BrSP | BrSM)
    }

    /// `true` for memory loads.
    #[must_use]
    pub fn is_load(self) -> bool {
        matches!(self, Opcode::LoadA | Opcode::LoadS)
    }

    /// `true` for memory stores.
    #[must_use]
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::StoreA | Opcode::StoreS)
    }

    /// `true` for any memory operation.
    #[must_use]
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Assembler mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            AAdd => "a.add",
            ASub => "a.sub",
            AAddImm => "a.addi",
            ASubImm => "a.subi",
            AMul => "a.mul",
            AImm => "a.imm",
            SAdd => "s.add",
            SSub => "s.sub",
            SImm => "s.imm",
            SAnd => "s.and",
            SOr => "s.or",
            SXor => "s.xor",
            SShl => "s.shl",
            SShr => "s.shr",
            SPop => "s.pop",
            SLz => "s.lz",
            FAdd => "f.add",
            FSub => "f.sub",
            FMul => "f.mul",
            FRecip => "f.recip",
            AtoB => "mov.ab",
            BtoA => "mov.ba",
            StoT => "mov.st",
            TtoS => "mov.ts",
            AtoS => "mov.as",
            StoA => "mov.sa",
            LoadA => "ld.a",
            LoadS => "ld.s",
            StoreA => "st.a",
            StoreS => "st.s",
            Jump => "j",
            BrAZ => "br.az",
            BrAN => "br.an",
            BrAP => "br.ap",
            BrAM => "br.am",
            BrSZ => "br.sz",
            BrSN => "br.sn",
            BrSP => "br.sp",
            BrSM => "br.sm",
            Nop => "nop",
            Halt => "halt",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fu_index_matches_all_order() {
        for (i, fu) in FuClass::ALL.iter().enumerate() {
            assert_eq!(fu.index(), i);
        }
    }

    #[test]
    fn branches_have_no_fu() {
        assert!(Opcode::BrAZ.fu_class().is_none());
        assert!(Opcode::Jump.fu_class().is_none());
        assert!(Opcode::Halt.fu_class().is_none());
        assert!(Opcode::Nop.fu_class().is_none());
    }

    #[test]
    fn cray_latencies() {
        assert_eq!(FuClass::AddrAdd.default_latency(), 2);
        assert_eq!(FuClass::FloatMul.default_latency(), 7);
        assert_eq!(FuClass::Recip.default_latency(), 14);
        assert_eq!(FuClass::Memory.default_latency(), 11);
    }

    #[test]
    fn memory_classification() {
        assert!(Opcode::LoadS.is_load() && Opcode::LoadS.is_mem());
        assert!(Opcode::StoreA.is_store() && Opcode::StoreA.is_mem());
        assert!(!Opcode::FAdd.is_mem());
    }

    #[test]
    fn branch_classification() {
        assert!(Opcode::Jump.is_branch() && !Opcode::Jump.is_cond_branch());
        assert!(Opcode::BrSN.is_branch() && Opcode::BrSN.is_cond_branch());
        assert!(!Opcode::Nop.is_branch());
    }
}
