//! Register value helpers.
//!
//! All architectural registers hold 64-bit words. Floating-point operands
//! are IEEE-754 doubles stored by bit pattern (the real CRAY-1 used its own
//! 64-bit float format; IEEE doubles preserve the latency/dependence
//! behaviour the paper measures, which is all the experiments need).

/// Reinterprets a register word as a floating-point value.
#[must_use]
pub fn as_f64(bits: u64) -> f64 {
    f64::from_bits(bits)
}

/// Reinterprets a floating-point value as a register word.
#[must_use]
pub fn from_f64(v: f64) -> u64 {
    v.to_bits()
}

/// Interprets a register word as a signed integer (for branch sign tests).
#[must_use]
pub fn as_i64(bits: u64) -> i64 {
    bits as i64
}

/// Encodes a signed integer as a register word.
#[must_use]
pub fn from_i64(v: i64) -> u64 {
    v as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        for v in [0.0, 1.5, -3.25, f64::MAX, f64::MIN_POSITIVE] {
            assert_eq!(as_f64(from_f64(v)), v);
        }
    }

    #[test]
    fn i64_roundtrip() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN] {
            assert_eq!(as_i64(from_i64(v)), v);
        }
    }
}
