//! Register names for the four CRAY-1-style register files.
//!
//! The model architecture has 8 A (address), 8 S (scalar), 64 B (address
//! backup) and 64 T (scalar backup) registers — 144 in total (paper §2).
//! The size of this register space is the whole motivation for the paper's
//! Tag Unit: associating tag-matching hardware with *every* register (as in
//! classic Tomasulo) would need 144 tag matchers (§3.1).

use std::fmt;

/// Number of A (address) registers.
pub const NUM_A: u8 = 8;
/// Number of S (scalar) registers.
pub const NUM_S: u8 = 8;
/// Number of B (address backup) registers.
pub const NUM_B: u8 = 64;
/// Number of T (scalar backup) registers.
pub const NUM_T: u8 = 64;
/// Total number of architectural registers (8 + 8 + 64 + 64).
pub const NUM_REGS: usize = (NUM_A + NUM_S) as usize + (NUM_B + NUM_T) as usize;

/// Which of the four register files a register belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegFile {
    /// Address registers `A0..A7`. Branch conditions test `A0`.
    A,
    /// Scalar registers `S0..S7`. Branch conditions test `S0`.
    S,
    /// Address backup registers `B0..B63`.
    B,
    /// Scalar backup registers `T0..T63`.
    T,
}

impl RegFile {
    /// Number of registers in this file.
    #[must_use]
    pub fn len(self) -> u8 {
        match self {
            RegFile::A => NUM_A,
            RegFile::S => NUM_S,
            RegFile::B => NUM_B,
            RegFile::T => NUM_T,
        }
    }

    /// Register files are never empty; provided for clippy-completeness.
    #[must_use]
    pub fn is_empty(self) -> bool {
        false
    }
}

impl fmt::Display for RegFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            RegFile::A => 'A',
            RegFile::S => 'S',
            RegFile::B => 'B',
            RegFile::T => 'T',
        };
        write!(f, "{c}")
    }
}

/// A typed architectural register name, e.g. `A3`, `S0`, `B17`, `T63`.
///
/// `Reg` values are always valid: the constructors panic on out-of-range
/// indices, so every `Reg` held by an [`crate::Inst`] names a real register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg {
    file: RegFile,
    num: u8,
}

impl Reg {
    /// Creates a register in `file` with index `num`.
    ///
    /// # Panics
    /// Panics if `num` is out of range for the file.
    #[must_use]
    pub fn new(file: RegFile, num: u8) -> Self {
        assert!(
            num < file.len(),
            "register index {num} out of range for file {file}"
        );
        Reg { file, num }
    }

    /// Address register `A{num}` (0..8).
    ///
    /// # Panics
    /// Panics if `num >= 8`.
    #[must_use]
    pub fn a(num: u8) -> Self {
        Reg::new(RegFile::A, num)
    }

    /// Scalar register `S{num}` (0..8).
    ///
    /// # Panics
    /// Panics if `num >= 8`.
    #[must_use]
    pub fn s(num: u8) -> Self {
        Reg::new(RegFile::S, num)
    }

    /// Address backup register `B{num}` (0..64).
    ///
    /// # Panics
    /// Panics if `num >= 64`.
    #[must_use]
    pub fn b(num: u8) -> Self {
        Reg::new(RegFile::B, num)
    }

    /// Scalar backup register `T{num}` (0..64).
    ///
    /// # Panics
    /// Panics if `num >= 64`.
    #[must_use]
    pub fn t(num: u8) -> Self {
        Reg::new(RegFile::T, num)
    }

    /// The register file this register belongs to.
    #[must_use]
    pub fn file(self) -> RegFile {
        self.file
    }

    /// The index within its file (e.g. `3` for `A3`).
    #[must_use]
    pub fn num(self) -> u8 {
        self.num
    }

    /// Flat index in `0..NUM_REGS`, laid out as `A0..A7, S0..S7, B0..B63,
    /// T0..T63`. Used to index per-register tables (busy bits, NI/LI
    /// counters, the architectural register file).
    #[must_use]
    pub fn index(self) -> usize {
        let base = match self.file {
            RegFile::A => 0,
            RegFile::S => NUM_A as usize,
            RegFile::B => (NUM_A + NUM_S) as usize,
            RegFile::T => (NUM_A + NUM_S + NUM_B) as usize,
        };
        base + self.num as usize
    }

    /// Inverse of [`Reg::index`].
    ///
    /// # Panics
    /// Panics if `index >= NUM_REGS`.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        assert!(index < NUM_REGS, "flat register index {index} out of range");
        let a = NUM_A as usize;
        let s = a + NUM_S as usize;
        let b = s + NUM_B as usize;
        if index < a {
            Reg::a(index as u8)
        } else if index < s {
            Reg::s((index - a) as u8)
        } else if index < b {
            Reg::b((index - s) as u8)
        } else {
            Reg::t((index - b) as u8)
        }
    }

    /// Iterator over every architectural register, in flat-index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_REGS).map(Reg::from_index)
    }

    /// `true` for registers in the A file.
    #[must_use]
    pub fn is_a(self) -> bool {
        self.file == RegFile::A
    }

    /// `true` for registers in the S file.
    #[must_use]
    pub fn is_s(self) -> bool {
        self.file == RegFile::S
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.file, self.num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_index_roundtrip() {
        for i in 0..NUM_REGS {
            assert_eq!(Reg::from_index(i).index(), i);
        }
    }

    #[test]
    fn flat_layout_matches_files() {
        assert_eq!(Reg::a(0).index(), 0);
        assert_eq!(Reg::a(7).index(), 7);
        assert_eq!(Reg::s(0).index(), 8);
        assert_eq!(Reg::s(7).index(), 15);
        assert_eq!(Reg::b(0).index(), 16);
        assert_eq!(Reg::b(63).index(), 79);
        assert_eq!(Reg::t(0).index(), 80);
        assert_eq!(Reg::t(63).index(), 143);
    }

    #[test]
    fn total_register_count_is_144() {
        assert_eq!(NUM_REGS, 144);
        assert_eq!(Reg::all().count(), 144);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn a_file_range_checked() {
        let _ = Reg::a(8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn b_file_range_checked() {
        let _ = Reg::b(64);
    }

    #[test]
    fn display() {
        assert_eq!(Reg::a(0).to_string(), "A0");
        assert_eq!(Reg::s(7).to_string(), "S7");
        assert_eq!(Reg::b(12).to_string(), "B12");
        assert_eq!(Reg::t(63).to_string(), "T63");
    }

    #[test]
    fn ordering_follows_flat_index() {
        let mut all: Vec<Reg> = Reg::all().collect();
        all.sort();
        for (i, r) in all.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }
}
