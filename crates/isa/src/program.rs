//! Programs: named, immutable instruction sequences.

use std::fmt;
use std::ops::Index;

use crate::inst::Inst;

/// An assembled program: a named, immutable sequence of instructions.
///
/// Program counters are indices into the sequence (`u32`); the fetch units
/// of all simulators and the golden interpreter walk the same sequence.
/// Construct programs with [`crate::Asm`], which resolves labels and
/// validates branch targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    insts: Vec<Inst>,
}

impl Program {
    /// Creates a program from raw parts.
    ///
    /// Prefer [`crate::Asm::assemble`], which validates that every branch
    /// target is in range. This constructor asserts the same invariant.
    ///
    /// # Panics
    /// Panics if any branch target is out of range.
    #[must_use]
    pub fn from_parts(name: impl Into<String>, insts: Vec<Inst>) -> Self {
        let name = name.into();
        for (pc, inst) in insts.iter().enumerate() {
            if let Some(t) = inst.target {
                assert!(
                    (t as usize) < insts.len(),
                    "{name}: branch at pc {pc} targets {t}, past end {}",
                    insts.len()
                );
            }
        }
        Program { name, insts }
    }

    /// The program's name (e.g. `"LLL3"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` if the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instruction at `pc`, or `None` past the end.
    #[must_use]
    pub fn get(&self, pc: u32) -> Option<&Inst> {
        self.insts.get(pc as usize)
    }

    /// Iterator over the static instructions in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Inst> {
        self.insts.iter()
    }

    /// A full disassembly listing, one instruction per line.
    #[must_use]
    pub fn listing(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "; program {} ({} insts)", self.name, self.len());
        for (pc, inst) in self.insts.iter().enumerate() {
            let _ = writeln!(out, "{pc:5}:  {inst}");
        }
        out
    }
}

impl Index<u32> for Program {
    type Output = Inst;

    fn index(&self, pc: u32) -> &Inst {
        &self.insts[pc as usize]
    }
}

impl<'a> IntoIterator for &'a Program {
    type Item = &'a Inst;
    type IntoIter = std::slice::Iter<'a, Inst>;

    fn into_iter(self) -> Self::IntoIter {
        self.insts.iter()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.listing())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Opcode;
    use crate::reg::Reg;

    fn nop() -> Inst {
        Inst::new(Opcode::Nop, None, None, None, 0, None)
    }

    #[test]
    fn indexing_and_iteration() {
        let p = Program::from_parts("t", vec![nop(), nop()]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p[0].opcode, Opcode::Nop);
        assert_eq!(p.iter().count(), 2);
        assert!(p.get(2).is_none());
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn rejects_out_of_range_target() {
        let br = Inst::new(Opcode::Jump, None, None, None, 0, Some(9));
        let _ = Program::from_parts("bad", vec![br]);
    }

    #[test]
    fn listing_contains_every_pc() {
        let add = Inst::new(
            Opcode::AAdd,
            Some(Reg::a(1)),
            Some(Reg::a(2)),
            Some(Reg::a(3)),
            0,
            None,
        );
        let p = Program::from_parts("t", vec![add, nop()]);
        let l = p.listing();
        assert!(l.contains("0:"));
        assert!(l.contains("1:"));
        assert!(l.contains("a.add"));
    }
}
