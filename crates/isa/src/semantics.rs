//! Pure functional semantics of every opcode.
//!
//! These functions are the single source of truth for what instructions
//! *mean*. The golden interpreter (`ruu-exec`) and every timing simulator
//! (`ruu-issue`) call into them, so a simulator can only diverge from the
//! architectural result by mis-ordering or mis-routing operands — exactly
//! the class of bug the golden-equivalence tests are designed to catch.

use crate::op::Opcode;
use crate::value;

/// Computes the result value of a non-memory, non-branch instruction.
///
/// `s1`/`s2` are the values of `src1`/`src2` (0 if absent), `imm` the
/// immediate field. Memory operations are excluded because their result
/// depends on memory state; see [`effective_address`].
///
/// # Panics
/// Panics if called with a branch, memory, `Nop` or `Halt` opcode — those
/// have no ALU result.
#[must_use]
pub fn alu_result(op: Opcode, s1: u64, s2: u64, imm: i64) -> u64 {
    use Opcode::*;
    match op {
        AAdd | SAdd => s1.wrapping_add(s2),
        ASub | SSub => s1.wrapping_sub(s2),
        AAddImm => s1.wrapping_add(imm as u64),
        ASubImm => s1.wrapping_sub(imm as u64),
        AMul => s1.wrapping_mul(s2),
        AImm | SImm => imm as u64,
        SAnd => s1 & s2,
        SOr => s1 | s2,
        SXor => s1 ^ s2,
        SShl => s1.wrapping_shl((imm as u32) & 63),
        SShr => s1.wrapping_shr((imm as u32) & 63),
        SPop => u64::from(s1.count_ones()),
        SLz => u64::from(s1.leading_zeros()),
        FAdd => value::from_f64(value::as_f64(s1) + value::as_f64(s2)),
        FSub => value::from_f64(value::as_f64(s1) - value::as_f64(s2)),
        FMul => value::from_f64(value::as_f64(s1) * value::as_f64(s2)),
        FRecip => value::from_f64(recip_approx(value::as_f64(s1))),
        AtoB | BtoA | StoT | TtoS | AtoS | StoA => s1,
        LoadA | LoadS | StoreA | StoreS | Jump | BrAZ | BrAN | BrAP | BrAM | BrSZ | BrSN | BrSP
        | BrSM | Nop | Halt => {
            panic!("opcode {op} has no ALU result")
        }
    }
}

/// The CRAY-1 reciprocal-approximation semantics.
///
/// The real unit produced a 30-bit-accurate approximation that software
/// refined with one Newton iteration. We model the full-precision
/// reciprocal: the experiments measure latency and dependences, not
/// numerics, and the workload kernels follow the approximation with the
/// CRAY-convention refinement multiplies anyway.
#[must_use]
pub fn recip_approx(x: f64) -> f64 {
    1.0 / x
}

/// Effective address of a memory operation: `base + displacement`, in
/// 64-bit words (the machine is word-addressed, paper §2).
#[must_use]
pub fn effective_address(base: u64, imm: i64) -> u64 {
    base.wrapping_add(imm as u64)
}

/// Whether a branch with opcode `op` is taken, given the value of its
/// condition register (`A0`/`S0`; ignored for `Jump`).
///
/// # Panics
/// Panics if `op` is not a branch.
#[must_use]
pub fn branch_taken(op: Opcode, cond: u64) -> bool {
    use Opcode::*;
    match op {
        Jump => true,
        BrAZ | BrSZ => cond == 0,
        BrAN | BrSN => cond != 0,
        BrAP | BrSP => value::as_i64(cond) >= 0,
        BrAM | BrSM => value::as_i64(cond) < 0,
        _ => panic!("opcode {op} is not a branch"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_ops() {
        assert_eq!(alu_result(Opcode::AAdd, 2, 3, 0), 5);
        assert_eq!(alu_result(Opcode::ASub, 2, 3, 0), u64::MAX); // wraps
        assert_eq!(alu_result(Opcode::AMul, 7, 6, 0), 42);
        assert_eq!(alu_result(Opcode::AAddImm, 10, 0, -4), 6);
        assert_eq!(alu_result(Opcode::AImm, 0, 0, 99), 99);
    }

    #[test]
    fn logical_and_shift() {
        assert_eq!(alu_result(Opcode::SAnd, 0b1100, 0b1010, 0), 0b1000);
        assert_eq!(alu_result(Opcode::SOr, 0b1100, 0b1010, 0), 0b1110);
        assert_eq!(alu_result(Opcode::SXor, 0b1100, 0b1010, 0), 0b0110);
        assert_eq!(alu_result(Opcode::SShl, 1, 0, 4), 16);
        assert_eq!(alu_result(Opcode::SShr, 16, 0, 4), 1);
    }

    #[test]
    fn pop_and_lz() {
        assert_eq!(alu_result(Opcode::SPop, 0b1011, 0, 0), 3);
        assert_eq!(alu_result(Opcode::SLz, 1, 0, 0), 63);
    }

    #[test]
    fn float_ops() {
        let a = value::from_f64(1.5);
        let b = value::from_f64(2.0);
        assert_eq!(value::as_f64(alu_result(Opcode::FAdd, a, b, 0)), 3.5);
        assert_eq!(value::as_f64(alu_result(Opcode::FMul, a, b, 0)), 3.0);
        assert_eq!(value::as_f64(alu_result(Opcode::FRecip, b, 0, 0)), 0.5);
    }

    #[test]
    fn transfers_pass_through() {
        assert_eq!(alu_result(Opcode::AtoS, 77, 0, 0), 77);
        assert_eq!(alu_result(Opcode::BtoA, 1234, 0, 0), 1234);
    }

    #[test]
    fn branch_conditions() {
        assert!(branch_taken(Opcode::Jump, 0));
        assert!(branch_taken(Opcode::BrAZ, 0));
        assert!(!branch_taken(Opcode::BrAZ, 1));
        assert!(branch_taken(Opcode::BrAN, 5));
        assert!(branch_taken(Opcode::BrAM, value::from_i64(-1)));
        assert!(!branch_taken(Opcode::BrAM, 0));
        assert!(branch_taken(Opcode::BrSP, 0));
        assert!(!branch_taken(Opcode::BrSP, value::from_i64(-7)));
    }

    #[test]
    fn effective_address_wraps() {
        assert_eq!(effective_address(100, 28), 128);
        assert_eq!(effective_address(10, -4), 6);
    }

    #[test]
    #[should_panic(expected = "no ALU result")]
    fn loads_have_no_alu_result() {
        let _ = alu_result(Opcode::LoadS, 0, 0, 0);
    }
}
