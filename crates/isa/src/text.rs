//! Textual assembly: a parser and emitter for the mnemonic syntax used
//! throughout the documentation.
//!
//! ```text
//! ; dot product                (comments run to end of line)
//! .name dot                    (optional program name)
//!     s.imm  S1, 0
//!     a.imm  A1, 0
//!     a.imm  A0, 64
//! top:
//!     a.subi A0, A0, 1
//!     ld.s   S2, A1, 0x100     ; dst, base, displacement
//!     ld.s   S3, A1, 0x200
//!     f.mul  S2, S2, S3
//!     f.add  S1, S1, S2
//!     a.addi A1, A1, 1
//!     br.an  top
//!     halt
//! ```
//!
//! Operand order follows the [`crate::Asm`] constructors (stores are
//! `st.s data, base, disp`); conditional branches name only their target
//! (the condition register is `A0`/`S0` by the machine's convention).
//! [`emit`] produces this syntax from any [`Program`], and
//! `parse(emit(p))` reproduces `p` exactly.

use std::collections::HashMap;
use std::fmt;

use crate::asm::{Asm, Label};
use crate::inst::Inst;
use crate::op::Opcode;
use crate::program::Program;
use crate::reg::{Reg, RegFile};

/// A parse failure, with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    let (file, num) = tok.split_at(1);
    let file = match file {
        "A" | "a" => RegFile::A,
        "S" | "s" => RegFile::S,
        "B" | "b" => RegFile::B,
        "T" | "t" => RegFile::T,
        _ => return Err(err(line, format!("bad register {tok}"))),
    };
    let n: u8 = num
        .parse()
        .map_err(|_| err(line, format!("bad register number in {tok}")))?;
    if n >= file.len() {
        return Err(err(line, format!("register {tok} out of range")));
    }
    Ok(Reg::new(file, n))
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, ParseError> {
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse()
    }
    .map_err(|_| err(line, format!("bad immediate {tok}")))?;
    Ok(if neg { -v } else { v })
}

/// Parses a program in the textual syntax.
///
/// # Errors
/// Returns the first [`ParseError`] encountered (unknown mnemonic, bad
/// operand, undefined label, ...).
pub fn parse(source: &str) -> Result<Program, ParseError> {
    let mut asm = Asm::new("asm");
    let mut name: Option<String> = None;
    let mut labels: HashMap<String, Label> = HashMap::new();
    let mut bound: Vec<String> = Vec::new();

    // The assembler wants a fresh label id per name; create lazily.
    fn label_for(asm: &mut Asm, labels: &mut HashMap<String, Label>, name: &str) -> Label {
        if let Some(&l) = labels.get(name) {
            l
        } else {
            let l = asm.new_label();
            labels.insert(name.to_string(), l);
            l
        }
    }

    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        let text = raw.split(';').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        if let Some(rest) = text.strip_prefix(".name") {
            name = Some(rest.trim().to_string());
            continue;
        }
        if let Some(label) = text.strip_suffix(':') {
            let label = label.trim();
            if bound.iter().any(|b| b == label) {
                return Err(err(line, format!("label {label} defined twice")));
            }
            bound.push(label.to_string());
            let l = label_for(&mut asm, &mut labels, label);
            asm.bind(l);
            continue;
        }

        let mut parts = text.splitn(2, char::is_whitespace);
        let mnemonic = parts.next().expect("nonempty line has a first token");
        let rest = parts.next().unwrap_or("").trim();
        let ops: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };

        let want = |n: usize| -> Result<(), ParseError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(err(
                    line,
                    format!("{mnemonic} expects {n} operand(s), got {}", ops.len()),
                ))
            }
        };
        let reg_of = |i: usize, file: RegFile| -> Result<Reg, ParseError> {
            let r = parse_reg(ops[i], line)?;
            if r.file() == file {
                Ok(r)
            } else {
                Err(err(
                    line,
                    format!(
                        "operand {} of {mnemonic} must be an {file} register, got {r}",
                        i + 1
                    ),
                ))
            }
        };
        let areg = |i: usize| reg_of(i, RegFile::A);
        let sreg = |i: usize| reg_of(i, RegFile::S);
        let breg = |i: usize| reg_of(i, RegFile::B);
        let treg = |i: usize| reg_of(i, RegFile::T);
        let imm = |i: usize| parse_imm(ops[i], line);

        match mnemonic {
            "a.add" => {
                want(3)?;
                asm.a_add(areg(0)?, areg(1)?, areg(2)?);
            }
            "a.sub" => {
                want(3)?;
                asm.a_sub(areg(0)?, areg(1)?, areg(2)?);
            }
            "a.addi" => {
                want(3)?;
                asm.a_add_imm(areg(0)?, areg(1)?, imm(2)?);
            }
            "a.subi" => {
                want(3)?;
                asm.a_sub_imm(areg(0)?, areg(1)?, imm(2)?);
            }
            "a.mul" => {
                want(3)?;
                asm.a_mul(areg(0)?, areg(1)?, areg(2)?);
            }
            "a.imm" => {
                want(2)?;
                asm.a_imm(areg(0)?, imm(1)?);
            }
            "s.add" => {
                want(3)?;
                asm.s_add(sreg(0)?, sreg(1)?, sreg(2)?);
            }
            "s.sub" => {
                want(3)?;
                asm.s_sub(sreg(0)?, sreg(1)?, sreg(2)?);
            }
            "s.imm" => {
                want(2)?;
                asm.s_imm(sreg(0)?, imm(1)?);
            }
            "s.and" => {
                want(3)?;
                asm.s_and(sreg(0)?, sreg(1)?, sreg(2)?);
            }
            "s.or" => {
                want(3)?;
                asm.s_or(sreg(0)?, sreg(1)?, sreg(2)?);
            }
            "s.xor" => {
                want(3)?;
                asm.s_xor(sreg(0)?, sreg(1)?, sreg(2)?);
            }
            "s.shl" => {
                want(3)?;
                asm.s_shl(sreg(0)?, sreg(1)?, imm(2)?);
            }
            "s.shr" => {
                want(3)?;
                asm.s_shr(sreg(0)?, sreg(1)?, imm(2)?);
            }
            "s.pop" => {
                want(2)?;
                asm.s_pop(areg(0)?, sreg(1)?);
            }
            "s.lz" => {
                want(2)?;
                asm.s_lz(areg(0)?, sreg(1)?);
            }
            "f.add" => {
                want(3)?;
                asm.f_add(sreg(0)?, sreg(1)?, sreg(2)?);
            }
            "f.sub" => {
                want(3)?;
                asm.f_sub(sreg(0)?, sreg(1)?, sreg(2)?);
            }
            "f.mul" => {
                want(3)?;
                asm.f_mul(sreg(0)?, sreg(1)?, sreg(2)?);
            }
            "f.recip" => {
                want(2)?;
                asm.f_recip(sreg(0)?, sreg(1)?);
            }
            "mov.ab" => {
                want(2)?;
                asm.a_to_b(breg(0)?, areg(1)?);
            }
            "mov.ba" => {
                want(2)?;
                asm.b_to_a(areg(0)?, breg(1)?);
            }
            "mov.st" => {
                want(2)?;
                asm.s_to_t(treg(0)?, sreg(1)?);
            }
            "mov.ts" => {
                want(2)?;
                asm.t_to_s(sreg(0)?, treg(1)?);
            }
            "mov.as" => {
                want(2)?;
                asm.a_to_s(sreg(0)?, areg(1)?);
            }
            "mov.sa" => {
                want(2)?;
                asm.s_to_a(areg(0)?, sreg(1)?);
            }
            "ld.a" => {
                want(3)?;
                asm.ld_a(areg(0)?, areg(1)?, imm(2)?);
            }
            "ld.s" => {
                want(3)?;
                asm.ld_s(sreg(0)?, areg(1)?, imm(2)?);
            }
            "st.a" => {
                want(3)?;
                asm.st_a(areg(0)?, areg(1)?, imm(2)?);
            }
            "st.s" => {
                want(3)?;
                asm.st_s(sreg(0)?, areg(1)?, imm(2)?);
            }
            "j" | "br.az" | "br.an" | "br.ap" | "br.am" | "br.sz" | "br.sn" | "br.sp" | "br.sm" => {
                want(1)?;
                let l = label_for(&mut asm, &mut labels, ops[0]);
                match mnemonic {
                    "j" => asm.jump(l),
                    "br.az" => asm.br_az(l),
                    "br.an" => asm.br_an(l),
                    "br.ap" => asm.br_ap(l),
                    "br.am" => asm.br_am(l),
                    "br.sz" => asm.br_sz(l),
                    "br.sn" => asm.br_sn(l),
                    "br.sp" => asm.br_sp(l),
                    "br.sm" => asm.br_sm(l),
                    _ => unreachable!(),
                };
            }
            "nop" => {
                want(0)?;
                asm.nop();
            }
            "halt" => {
                want(0)?;
                asm.halt();
            }
            other => return Err(err(line, format!("unknown mnemonic {other}"))),
        }
    }

    // Check every referenced label was bound before assembling, to report
    // the name rather than an internal id.
    for (label_name, _) in labels.iter() {
        if !bound.iter().any(|b| b == label_name) {
            return Err(err(0, format!("label {label_name} is never defined")));
        }
    }
    let program = asm
        .assemble()
        .map_err(|e| err(0, format!("assembly failed: {e}")))?;
    Ok(match name {
        Some(n) => Program::from_parts(n, program.iter().copied().collect()),
        None => program,
    })
}

/// Emits a program in the textual syntax; `parse(&emit(p))` reproduces
/// `p` exactly (the name is carried in a `.name` directive).
#[must_use]
pub fn emit(program: &Program) -> String {
    use std::fmt::Write as _;
    let mut targets: Vec<u32> = program.iter().filter_map(|i| i.target).collect();
    targets.sort_unstable();
    targets.dedup();
    let label = |pc: u32| format!("L{pc}");

    let mut out = String::new();
    let _ = writeln!(out, ".name {}", program.name());
    for (pc, inst) in program.iter().enumerate() {
        if targets.binary_search(&(pc as u32)).is_ok() {
            let _ = writeln!(out, "{}:", label(pc as u32));
        }
        let _ = writeln!(out, "    {}", inst_text(inst, &label));
    }
    out
}

fn inst_text(inst: &Inst, label: &dyn Fn(u32) -> String) -> String {
    use Opcode::*;
    let m = inst.opcode.mnemonic();
    let d = |r: Option<Reg>| r.expect("operand present").to_string();
    match inst.opcode {
        AAdd | ASub | AMul | SAdd | SSub | SAnd | SOr | SXor | FAdd | FSub | FMul => {
            format!("{m} {}, {}, {}", d(inst.dst), d(inst.src1), d(inst.src2))
        }
        AAddImm | ASubImm | SShl | SShr => {
            format!("{m} {}, {}, {}", d(inst.dst), d(inst.src1), inst.imm)
        }
        AImm | SImm => format!("{m} {}, {}", d(inst.dst), inst.imm),
        SPop | SLz | FRecip | AtoB | BtoA | StoT | TtoS | AtoS | StoA => {
            format!("{m} {}, {}", d(inst.dst), d(inst.src1))
        }
        LoadA | LoadS => format!("{m} {}, {}, {}", d(inst.dst), d(inst.src1), inst.imm),
        StoreA | StoreS => format!("{m} {}, {}, {}", d(inst.src2), d(inst.src1), inst.imm),
        Jump | BrAZ | BrAN | BrAP | BrAM | BrSZ | BrSN | BrSP | BrSM => {
            format!("{m} {}", label(inst.target.expect("branch has a target")))
        }
        Nop | Halt => m.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    const DOT: &str = r"
; dot product over 8 elements
.name dot8
    s.imm  S1, 0
    a.imm  A1, 0
    a.imm  A0, 8
top:
    a.subi A0, A0, 1
    ld.s   S2, A1, 0x100
    ld.s   S3, A1, 0x200
    f.mul  S2, S2, S3
    f.add  S1, S1, S2
    a.addi A1, A1, 1
    br.an  top
    halt
";

    #[test]
    fn parses_a_program() {
        let p = parse(DOT).unwrap();
        assert_eq!(p.name(), "dot8");
        assert_eq!(p.len(), 11);
        assert_eq!(p[3].opcode, Opcode::ASubImm);
        assert_eq!(p[9].target, Some(3));
    }

    #[test]
    fn parse_executes_correctly() {
        let p = parse(DOT).unwrap();
        let mut mem = ruu_memless_stub();
        for k in 0..8 {
            mem.write_f64(0x100 + k, 2.0);
            mem.write_f64(0x200 + k, 3.0);
        }
        let t = crate_trace(&p, mem);
        assert_eq!(f64::from_bits(t), 48.0);
    }

    // Minimal local helpers to avoid a circular dev-dependency on
    // ruu-exec: a tiny interpreter specialised for the test program.
    struct MiniMem {
        words: Vec<u64>,
    }
    impl MiniMem {
        fn write_f64(&mut self, a: u64, v: f64) {
            self.words[a as usize] = v.to_bits();
        }
    }
    fn ruu_memless_stub() -> MiniMem {
        MiniMem {
            words: vec![0; 1 << 12],
        }
    }
    fn crate_trace(p: &Program, mem: MiniMem) -> u64 {
        use crate::semantics;
        let mut regs = [0u64; crate::reg::NUM_REGS];
        let mut pc = 0u32;
        let mut steps = 0;
        loop {
            steps += 1;
            assert!(steps < 10_000, "runaway test program");
            let i = &p[pc];
            if i.is_halt() {
                break;
            }
            let s1 = i.src1.map_or(0, |r| regs[r.index()]);
            let s2 = i.src2.map_or(0, |r| regs[r.index()]);
            if i.is_branch() {
                if semantics::branch_taken(i.opcode, s1) {
                    pc = i.target.unwrap();
                } else {
                    pc += 1;
                }
                continue;
            }
            if i.is_load() {
                let ea = semantics::effective_address(s1, i.imm);
                regs[i.dst.unwrap().index()] = mem.words[ea as usize];
            } else if let Some(d) = i.dst {
                regs[d.index()] = semantics::alu_result(i.opcode, s1, s2, i.imm);
            }
            pc += 1;
        }
        regs[Reg::s(1).index()]
    }

    #[test]
    fn emit_parse_roundtrip() {
        let p = parse(DOT).unwrap();
        let text = emit(&p);
        let q = parse(&text).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn roundtrip_covers_every_operand_shape() {
        let mut a = Asm::new("shapes");
        let top = a.new_label();
        a.bind(top);
        a.a_add(Reg::a(1), Reg::a(2), Reg::a(3));
        a.a_sub_imm(Reg::a(1), Reg::a(1), -4);
        a.a_imm(Reg::a(4), 0x1000);
        a.s_imm(Reg::s(5), -9);
        a.s_shl(Reg::s(5), Reg::s(5), 3);
        a.s_pop(Reg::a(5), Reg::s(5));
        a.f_recip(Reg::s(6), Reg::s(5));
        a.a_to_b(Reg::b(63), Reg::a(1));
        a.t_to_s(Reg::s(7), Reg::t(17));
        a.ld_a(Reg::a(6), Reg::a(4), 12);
        a.st_a(Reg::a(6), Reg::a(4), -12);
        a.st_s(Reg::s(7), Reg::a(4), 99);
        a.br_sm(top);
        a.jump(top);
        a.nop();
        a.halt();
        let p = a.assemble().unwrap();
        let q = parse(&emit(&p)).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("  a.add A1, A2\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("expects 3"));

        let e = parse("\n\n  frobnicate A1\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("unknown mnemonic"));

        let e = parse("  a.add A1, A2, S3\n").unwrap_err();
        assert!(e.message.contains("must be an A register"), "{e}");
    }

    #[test]
    fn undefined_label_is_reported_by_name() {
        let e = parse("  j nowhere\n").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn double_label_rejected() {
        let e = parse("x:\nx:\n  halt\n").unwrap_err();
        assert!(e.message.contains("defined twice"));
    }
}
