//! Decoded instructions with uniform operand accessors.

use std::fmt;

use crate::op::{FuClass, Opcode};
use crate::reg::Reg;

/// A decoded instruction.
///
/// `Inst` is deliberately a flat record rather than a sum type with
/// per-opcode payloads: the timing simulators need uniform access to
/// "destination register", "source registers", "functional unit" and
/// "branch target" regardless of opcode, and the golden semantics are a
/// single pure function over `(opcode, source values, immediate)` (see
/// [`crate::semantics`]).
///
/// Invariants (upheld by the [`crate::Asm`] constructors):
/// * `dst`/`src1`/`src2` register files match the opcode's conventions
///   (e.g. `AAdd` has all-A operands);
/// * conditional branches carry their implicit condition register
///   (`A0`/`S0`) in `src1`, so dependences on the condition are visible to
///   issue logic without special cases;
/// * loads use `src1` as the address base and stores use `src1` as the
///   address base and `src2` as the data source;
/// * `target` is `Some` exactly for branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// Opcode.
    pub opcode: Opcode,
    /// Destination register, if the instruction writes one.
    pub dst: Option<Reg>,
    /// First source register (address base for memory ops; condition
    /// register for conditional branches).
    pub src1: Option<Reg>,
    /// Second source register (data source for stores).
    pub src2: Option<Reg>,
    /// Immediate operand (displacement for memory ops, shift count,
    /// immediate value); `0` when unused.
    pub imm: i64,
    /// Branch target (program counter), `Some` exactly for branches.
    pub target: Option<u32>,
}

impl Inst {
    /// Creates an instruction record.
    ///
    /// Most callers should use the typed [`crate::Asm`] methods instead,
    /// which validate operand conventions.
    #[must_use]
    pub fn new(
        opcode: Opcode,
        dst: Option<Reg>,
        src1: Option<Reg>,
        src2: Option<Reg>,
        imm: i64,
        target: Option<u32>,
    ) -> Self {
        Inst {
            opcode,
            dst,
            src1,
            src2,
            imm,
            target,
        }
    }

    /// The functional unit class this instruction executes on, or `None`
    /// for branches/`Nop`/`Halt` which resolve in the issue stage.
    #[must_use]
    pub fn fu_class(&self) -> Option<FuClass> {
        self.opcode.fu_class()
    }

    /// Iterator over the source registers (0, 1 or 2 of them).
    pub fn sources(&self) -> impl Iterator<Item = Reg> {
        self.src1.into_iter().chain(self.src2)
    }

    /// `true` if `r` is read by this instruction.
    #[must_use]
    pub fn reads(&self, r: Reg) -> bool {
        self.src1 == Some(r) || self.src2 == Some(r)
    }

    /// `true` if `r` is written by this instruction.
    #[must_use]
    pub fn writes(&self, r: Reg) -> bool {
        self.dst == Some(r)
    }

    /// `true` for any (conditional or unconditional) branch.
    #[must_use]
    pub fn is_branch(&self) -> bool {
        self.opcode.is_branch()
    }

    /// `true` for memory loads.
    #[must_use]
    pub fn is_load(&self) -> bool {
        self.opcode.is_load()
    }

    /// `true` for memory stores.
    #[must_use]
    pub fn is_store(&self) -> bool {
        self.opcode.is_store()
    }

    /// `true` for any memory operation.
    #[must_use]
    pub fn is_mem(&self) -> bool {
        self.opcode.is_mem()
    }

    /// `true` if this is the `Halt` pseudo-instruction.
    #[must_use]
    pub fn is_halt(&self) -> bool {
        self.opcode == Opcode::Halt
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.opcode)?;
        if let Some(d) = self.dst {
            write!(f, " {d}")?;
            if self.src1.is_some() || self.src2.is_some() || self.uses_imm() {
                write!(f, ",")?;
            }
        }
        let mut first = self.dst.is_none();
        for s in self.sources() {
            if first {
                write!(f, " {s}")?;
                first = false;
            } else {
                write!(f, " {s},")?;
            }
        }
        // Trailing comma cleanup is cosmetic; keep the format simple and
        // unambiguous instead: print imm/target with explicit markers.
        if self.uses_imm() {
            write!(f, " #{}", self.imm)?;
        }
        if let Some(t) = self.target {
            write!(f, " ->{t}")?;
        }
        Ok(())
    }
}

impl Inst {
    /// `true` if the immediate field is meaningful for this opcode.
    #[must_use]
    pub fn uses_imm(&self) -> bool {
        use Opcode::*;
        matches!(
            self.opcode,
            AAddImm | ASubImm | AImm | SImm | SShl | SShr | LoadA | LoadS | StoreA | StoreS
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add() -> Inst {
        Inst::new(
            Opcode::AAdd,
            Some(Reg::a(1)),
            Some(Reg::a(2)),
            Some(Reg::a(3)),
            0,
            None,
        )
    }

    #[test]
    fn sources_iterates_both() {
        let i = add();
        let srcs: Vec<Reg> = i.sources().collect();
        assert_eq!(srcs, vec![Reg::a(2), Reg::a(3)]);
    }

    #[test]
    fn reads_writes() {
        let i = add();
        assert!(i.reads(Reg::a(2)));
        assert!(i.reads(Reg::a(3)));
        assert!(!i.reads(Reg::a(1)));
        assert!(i.writes(Reg::a(1)));
        assert!(!i.writes(Reg::a(2)));
    }

    #[test]
    fn display_is_nonempty_and_contains_mnemonic() {
        let i = add();
        let s = i.to_string();
        assert!(s.contains("a.add"));
        assert!(s.contains("A1"));
    }

    #[test]
    fn load_classification() {
        let ld = Inst::new(
            Opcode::LoadS,
            Some(Reg::s(1)),
            Some(Reg::a(2)),
            None,
            40,
            None,
        );
        assert!(ld.is_load() && ld.is_mem() && !ld.is_store());
        assert!(ld.uses_imm());
        assert_eq!(ld.fu_class(), Some(FuClass::Memory));
    }
}
