//! A small typed assembler with labels and forward references.
//!
//! [`Asm`] exposes one method per opcode; each method validates the operand
//! register files (e.g. `a_add` insists on A registers) so that every
//! assembled [`Program`] satisfies the [`Inst`] invariants. Labels are
//! created with [`Asm::new_label`] (auto-named `L0`, `L1`, …) or
//! [`Asm::named_label`], placed with [`Asm::bind`], and resolved at
//! [`Asm::assemble`] time. All diagnostics — undefined labels, duplicate
//! bindings, constants that overflow their encoding field — are reported
//! from `assemble` as typed [`AsmError`]s carrying the label name and the
//! offending instruction index.

use std::fmt;

use crate::encoding;
use crate::inst::Inst;
use crate::op::Opcode;
use crate::program::Program;
use crate::reg::{Reg, RegFile};

/// A branch-target label, created by [`Asm::new_label`] or
/// [`Asm::named_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Errors reported by [`Asm::assemble`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label used as a branch target was never bound with [`Asm::bind`].
    UnboundLabel {
        /// The offending label's name (`L7` if auto-named).
        label: String,
        /// Instruction index of the branch that references it.
        pc: usize,
    },
    /// A label was bound at two different program counters.
    ReboundLabel {
        /// The offending label's name (`L7` if auto-named).
        label: String,
        /// Program counter of the first binding.
        first: u32,
        /// Program counter of the offending second binding.
        second: u32,
    },
    /// An immediate, displacement or branch target does not fit in its
    /// binary encoding field (see [`crate::encoding`]).
    ImmOutOfRange {
        /// Instruction index of the offending instruction.
        pc: usize,
        /// The constant that overflowed.
        value: i64,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel { label, pc } => {
                write!(f, "branch to undefined label '{label}' at inst {pc}")
            }
            AsmError::ReboundLabel {
                label,
                first,
                second,
            } => write!(
                f,
                "label '{label}' bound twice: at pc {first} and again at pc {second}"
            ),
            AsmError::ImmOutOfRange { pc, value } => write!(
                f,
                "constant {value} at inst {pc} does not fit its encoding field"
            ),
        }
    }
}

impl std::error::Error for AsmError {}

/// Typed program assembler.
///
/// # Example
///
/// ```
/// use ruu_isa::{Asm, Reg};
///
/// let mut a = Asm::new("copy8");
/// let top = a.new_label();
/// a.a_imm(Reg::a(1), 0);   // src index
/// a.a_imm(Reg::a(0), 8);   // trip count
/// a.bind(top);
/// a.ld_s(Reg::s(1), Reg::a(1), 100);
/// a.st_s(Reg::s(1), Reg::a(1), 200);
/// a.a_add_imm(Reg::a(1), Reg::a(1), 1);
/// a.a_sub_imm(Reg::a(0), Reg::a(0), 1);
/// a.br_an(top);
/// a.halt();
/// let p = a.assemble().unwrap();
/// assert_eq!(p.name(), "copy8");
/// ```
#[derive(Debug)]
pub struct Asm {
    name: String,
    insts: Vec<Inst>,
    /// label id -> bound pc
    bound: Vec<Option<u32>>,
    /// label id -> display name
    label_names: Vec<String>,
    /// (pc of branch, label id) fixups
    fixups: Vec<(usize, usize)>,
    /// Duplicate `bind` calls, reported as [`AsmError::ReboundLabel`]
    /// at assemble time: (label id, pc of the rejected second binding).
    rebinds: Vec<(usize, u32)>,
}

impl Asm {
    /// Creates an empty assembler for a program called `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Asm {
            name: name.into(),
            insts: Vec::new(),
            bound: Vec::new(),
            label_names: Vec::new(),
            fixups: Vec::new(),
            rebinds: Vec::new(),
        }
    }

    /// Current program counter (index of the next instruction).
    #[must_use]
    pub fn here(&self) -> u32 {
        self.insts.len() as u32
    }

    /// Creates a fresh, unbound label auto-named `L0`, `L1`, ….
    pub fn new_label(&mut self) -> Label {
        let name = format!("L{}", self.bound.len());
        self.named_label(name)
    }

    /// Creates a fresh, unbound label with a display name that appears in
    /// assemble-time diagnostics (e.g. `branch to undefined label 'loop2'
    /// at inst 17`).
    pub fn named_label(&mut self, name: impl Into<String>) -> Label {
        self.bound.push(None);
        self.label_names.push(name.into());
        Label(self.bound.len() - 1)
    }

    /// Binds `label` to the current program counter. Binding the same
    /// label twice is reported as [`AsmError::ReboundLabel`] by
    /// [`Asm::assemble`] (the first binding wins until then).
    pub fn bind(&mut self, label: Label) {
        if self.bound[label.0].is_some() {
            self.rebinds.push((label.0, self.here()));
        } else {
            self.bound[label.0] = Some(self.here());
        }
    }

    fn push(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    fn push_branch(&mut self, opcode: Opcode, cond: Option<Reg>, label: Label) -> &mut Self {
        self.fixups.push((self.insts.len(), label.0));
        // Target 0 is a placeholder patched in `assemble`.
        self.push(Inst::new(opcode, None, cond, None, 0, Some(0)))
    }

    fn check(file: RegFile, r: Reg, what: &str) {
        assert!(
            r.file() == file,
            "{what} operand must be an {file} register, got {r}"
        );
    }

    // ----- address (A) operations ------------------------------------

    /// `Ai = Aj + Ak`
    pub fn a_add(&mut self, d: Reg, j: Reg, k: Reg) -> &mut Self {
        Self::check(RegFile::A, d, "dst");
        Self::check(RegFile::A, j, "src1");
        Self::check(RegFile::A, k, "src2");
        self.push(Inst::new(Opcode::AAdd, Some(d), Some(j), Some(k), 0, None))
    }

    /// `Ai = Aj - Ak`
    pub fn a_sub(&mut self, d: Reg, j: Reg, k: Reg) -> &mut Self {
        Self::check(RegFile::A, d, "dst");
        Self::check(RegFile::A, j, "src1");
        Self::check(RegFile::A, k, "src2");
        self.push(Inst::new(Opcode::ASub, Some(d), Some(j), Some(k), 0, None))
    }

    /// `Ai = Aj + imm`
    pub fn a_add_imm(&mut self, d: Reg, j: Reg, imm: i64) -> &mut Self {
        Self::check(RegFile::A, d, "dst");
        Self::check(RegFile::A, j, "src1");
        self.push(Inst::new(
            Opcode::AAddImm,
            Some(d),
            Some(j),
            None,
            imm,
            None,
        ))
    }

    /// `Ai = Aj - imm`
    pub fn a_sub_imm(&mut self, d: Reg, j: Reg, imm: i64) -> &mut Self {
        Self::check(RegFile::A, d, "dst");
        Self::check(RegFile::A, j, "src1");
        self.push(Inst::new(
            Opcode::ASubImm,
            Some(d),
            Some(j),
            None,
            imm,
            None,
        ))
    }

    /// `Ai = Aj * Ak` (address multiply)
    pub fn a_mul(&mut self, d: Reg, j: Reg, k: Reg) -> &mut Self {
        Self::check(RegFile::A, d, "dst");
        Self::check(RegFile::A, j, "src1");
        Self::check(RegFile::A, k, "src2");
        self.push(Inst::new(Opcode::AMul, Some(d), Some(j), Some(k), 0, None))
    }

    /// `Ai = imm`
    pub fn a_imm(&mut self, d: Reg, imm: i64) -> &mut Self {
        Self::check(RegFile::A, d, "dst");
        self.push(Inst::new(Opcode::AImm, Some(d), None, None, imm, None))
    }

    // ----- scalar (S) integer/logical operations ---------------------

    /// `Si = Sj + Sk` (integer)
    pub fn s_add(&mut self, d: Reg, j: Reg, k: Reg) -> &mut Self {
        Self::check(RegFile::S, d, "dst");
        Self::check(RegFile::S, j, "src1");
        Self::check(RegFile::S, k, "src2");
        self.push(Inst::new(Opcode::SAdd, Some(d), Some(j), Some(k), 0, None))
    }

    /// `Si = Sj - Sk` (integer)
    pub fn s_sub(&mut self, d: Reg, j: Reg, k: Reg) -> &mut Self {
        Self::check(RegFile::S, d, "dst");
        Self::check(RegFile::S, j, "src1");
        Self::check(RegFile::S, k, "src2");
        self.push(Inst::new(Opcode::SSub, Some(d), Some(j), Some(k), 0, None))
    }

    /// `Si = imm`
    pub fn s_imm(&mut self, d: Reg, imm: i64) -> &mut Self {
        Self::check(RegFile::S, d, "dst");
        self.push(Inst::new(Opcode::SImm, Some(d), None, None, imm, None))
    }

    /// `Si = Sj & Sk`
    pub fn s_and(&mut self, d: Reg, j: Reg, k: Reg) -> &mut Self {
        Self::check(RegFile::S, d, "dst");
        Self::check(RegFile::S, j, "src1");
        Self::check(RegFile::S, k, "src2");
        self.push(Inst::new(Opcode::SAnd, Some(d), Some(j), Some(k), 0, None))
    }

    /// `Si = Sj | Sk`
    pub fn s_or(&mut self, d: Reg, j: Reg, k: Reg) -> &mut Self {
        Self::check(RegFile::S, d, "dst");
        Self::check(RegFile::S, j, "src1");
        Self::check(RegFile::S, k, "src2");
        self.push(Inst::new(Opcode::SOr, Some(d), Some(j), Some(k), 0, None))
    }

    /// `Si = Sj ^ Sk`
    pub fn s_xor(&mut self, d: Reg, j: Reg, k: Reg) -> &mut Self {
        Self::check(RegFile::S, d, "dst");
        Self::check(RegFile::S, j, "src1");
        Self::check(RegFile::S, k, "src2");
        self.push(Inst::new(Opcode::SXor, Some(d), Some(j), Some(k), 0, None))
    }

    /// `Si = Sj << imm`
    pub fn s_shl(&mut self, d: Reg, j: Reg, imm: i64) -> &mut Self {
        Self::check(RegFile::S, d, "dst");
        Self::check(RegFile::S, j, "src1");
        self.push(Inst::new(Opcode::SShl, Some(d), Some(j), None, imm, None))
    }

    /// `Si = Sj >> imm` (logical)
    pub fn s_shr(&mut self, d: Reg, j: Reg, imm: i64) -> &mut Self {
        Self::check(RegFile::S, d, "dst");
        Self::check(RegFile::S, j, "src1");
        self.push(Inst::new(Opcode::SShr, Some(d), Some(j), None, imm, None))
    }

    /// `Ai = popcount(Sj)`
    pub fn s_pop(&mut self, d: Reg, j: Reg) -> &mut Self {
        Self::check(RegFile::A, d, "dst");
        Self::check(RegFile::S, j, "src1");
        self.push(Inst::new(Opcode::SPop, Some(d), Some(j), None, 0, None))
    }

    /// `Ai = leading_zeros(Sj)`
    pub fn s_lz(&mut self, d: Reg, j: Reg) -> &mut Self {
        Self::check(RegFile::A, d, "dst");
        Self::check(RegFile::S, j, "src1");
        self.push(Inst::new(Opcode::SLz, Some(d), Some(j), None, 0, None))
    }

    // ----- floating point ---------------------------------------------

    /// `Si = Sj +f Sk`
    pub fn f_add(&mut self, d: Reg, j: Reg, k: Reg) -> &mut Self {
        Self::check(RegFile::S, d, "dst");
        Self::check(RegFile::S, j, "src1");
        Self::check(RegFile::S, k, "src2");
        self.push(Inst::new(Opcode::FAdd, Some(d), Some(j), Some(k), 0, None))
    }

    /// `Si = Sj -f Sk`
    pub fn f_sub(&mut self, d: Reg, j: Reg, k: Reg) -> &mut Self {
        Self::check(RegFile::S, d, "dst");
        Self::check(RegFile::S, j, "src1");
        Self::check(RegFile::S, k, "src2");
        self.push(Inst::new(Opcode::FSub, Some(d), Some(j), Some(k), 0, None))
    }

    /// `Si = Sj *f Sk`
    pub fn f_mul(&mut self, d: Reg, j: Reg, k: Reg) -> &mut Self {
        Self::check(RegFile::S, d, "dst");
        Self::check(RegFile::S, j, "src1");
        Self::check(RegFile::S, k, "src2");
        self.push(Inst::new(Opcode::FMul, Some(d), Some(j), Some(k), 0, None))
    }

    /// `Si = 1/Sj` (reciprocal approximation)
    pub fn f_recip(&mut self, d: Reg, j: Reg) -> &mut Self {
        Self::check(RegFile::S, d, "dst");
        Self::check(RegFile::S, j, "src1");
        self.push(Inst::new(Opcode::FRecip, Some(d), Some(j), None, 0, None))
    }

    // ----- register transfers -----------------------------------------

    /// `Bjk = Ai`
    pub fn a_to_b(&mut self, d: Reg, src: Reg) -> &mut Self {
        Self::check(RegFile::B, d, "dst");
        Self::check(RegFile::A, src, "src1");
        self.push(Inst::new(Opcode::AtoB, Some(d), Some(src), None, 0, None))
    }

    /// `Ai = Bjk`
    pub fn b_to_a(&mut self, d: Reg, src: Reg) -> &mut Self {
        Self::check(RegFile::A, d, "dst");
        Self::check(RegFile::B, src, "src1");
        self.push(Inst::new(Opcode::BtoA, Some(d), Some(src), None, 0, None))
    }

    /// `Tjk = Si`
    pub fn s_to_t(&mut self, d: Reg, src: Reg) -> &mut Self {
        Self::check(RegFile::T, d, "dst");
        Self::check(RegFile::S, src, "src1");
        self.push(Inst::new(Opcode::StoT, Some(d), Some(src), None, 0, None))
    }

    /// `Si = Tjk`
    pub fn t_to_s(&mut self, d: Reg, src: Reg) -> &mut Self {
        Self::check(RegFile::S, d, "dst");
        Self::check(RegFile::T, src, "src1");
        self.push(Inst::new(Opcode::TtoS, Some(d), Some(src), None, 0, None))
    }

    /// `Si = Ai`
    pub fn a_to_s(&mut self, d: Reg, src: Reg) -> &mut Self {
        Self::check(RegFile::S, d, "dst");
        Self::check(RegFile::A, src, "src1");
        self.push(Inst::new(Opcode::AtoS, Some(d), Some(src), None, 0, None))
    }

    /// `Ai = Sj`
    pub fn s_to_a(&mut self, d: Reg, src: Reg) -> &mut Self {
        Self::check(RegFile::A, d, "dst");
        Self::check(RegFile::S, src, "src1");
        self.push(Inst::new(Opcode::StoA, Some(d), Some(src), None, 0, None))
    }

    // ----- memory -------------------------------------------------------

    /// `Ai = mem[Ah + disp]`
    pub fn ld_a(&mut self, d: Reg, base: Reg, disp: i64) -> &mut Self {
        Self::check(RegFile::A, d, "dst");
        Self::check(RegFile::A, base, "base");
        self.push(Inst::new(
            Opcode::LoadA,
            Some(d),
            Some(base),
            None,
            disp,
            None,
        ))
    }

    /// `Si = mem[Ah + disp]`
    pub fn ld_s(&mut self, d: Reg, base: Reg, disp: i64) -> &mut Self {
        Self::check(RegFile::S, d, "dst");
        Self::check(RegFile::A, base, "base");
        self.push(Inst::new(
            Opcode::LoadS,
            Some(d),
            Some(base),
            None,
            disp,
            None,
        ))
    }

    /// `mem[Ah + disp] = Ai`
    pub fn st_a(&mut self, src: Reg, base: Reg, disp: i64) -> &mut Self {
        Self::check(RegFile::A, src, "data");
        Self::check(RegFile::A, base, "base");
        self.push(Inst::new(
            Opcode::StoreA,
            None,
            Some(base),
            Some(src),
            disp,
            None,
        ))
    }

    /// `mem[Ah + disp] = Si`
    pub fn st_s(&mut self, src: Reg, base: Reg, disp: i64) -> &mut Self {
        Self::check(RegFile::S, src, "data");
        Self::check(RegFile::A, base, "base");
        self.push(Inst::new(
            Opcode::StoreS,
            None,
            Some(base),
            Some(src),
            disp,
            None,
        ))
    }

    // ----- control flow ---------------------------------------------------

    /// Unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) -> &mut Self {
        self.push_branch(Opcode::Jump, None, label)
    }

    /// Branch to `label` if `A0 == 0`.
    pub fn br_az(&mut self, label: Label) -> &mut Self {
        self.push_branch(Opcode::BrAZ, Some(Reg::a(0)), label)
    }

    /// Branch to `label` if `A0 != 0`.
    pub fn br_an(&mut self, label: Label) -> &mut Self {
        self.push_branch(Opcode::BrAN, Some(Reg::a(0)), label)
    }

    /// Branch to `label` if `A0 >= 0` (signed).
    pub fn br_ap(&mut self, label: Label) -> &mut Self {
        self.push_branch(Opcode::BrAP, Some(Reg::a(0)), label)
    }

    /// Branch to `label` if `A0 < 0` (signed).
    pub fn br_am(&mut self, label: Label) -> &mut Self {
        self.push_branch(Opcode::BrAM, Some(Reg::a(0)), label)
    }

    /// Branch to `label` if `S0 == 0`.
    pub fn br_sz(&mut self, label: Label) -> &mut Self {
        self.push_branch(Opcode::BrSZ, Some(Reg::s(0)), label)
    }

    /// Branch to `label` if `S0 != 0`.
    pub fn br_sn(&mut self, label: Label) -> &mut Self {
        self.push_branch(Opcode::BrSN, Some(Reg::s(0)), label)
    }

    /// Branch to `label` if `S0 >= 0` (signed).
    pub fn br_sp(&mut self, label: Label) -> &mut Self {
        self.push_branch(Opcode::BrSP, Some(Reg::s(0)), label)
    }

    /// Branch to `label` if `S0 < 0` (signed).
    pub fn br_sm(&mut self, label: Label) -> &mut Self {
        self.push_branch(Opcode::BrSM, Some(Reg::s(0)), label)
    }

    /// No operation.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Inst::new(Opcode::Nop, None, None, None, 0, None))
    }

    /// Terminate the program.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Inst::new(Opcode::Halt, None, None, None, 0, None))
    }

    /// Resolves labels, validates every constant against its binary
    /// encoding field, and produces the [`Program`].
    ///
    /// # Errors
    /// * [`AsmError::ReboundLabel`] if a label was [`Asm::bind`]-ed at
    ///   two different program counters;
    /// * [`AsmError::UnboundLabel`] if a branch references a label that
    ///   was never bound — the message names the label and the branch's
    ///   instruction index;
    /// * [`AsmError::ImmOutOfRange`] if an immediate, displacement or
    ///   branch target overflows its [`crate::encoding`] field.
    pub fn assemble(mut self) -> Result<Program, AsmError> {
        if let Some(&(label, second)) = self.rebinds.first() {
            return Err(AsmError::ReboundLabel {
                label: self.label_names[label].clone(),
                first: self.bound[label].expect("rebound labels have a first binding"),
                second,
            });
        }
        for &(pc, label) in &self.fixups {
            match self.bound[label] {
                Some(target) => self.insts[pc].target = Some(target),
                None => {
                    return Err(AsmError::UnboundLabel {
                        label: self.label_names[label].clone(),
                        pc,
                    })
                }
            }
        }
        // Reuse the binary encoder as the authority on field widths, so
        // an oversized displacement fails here (with its instruction
        // index) instead of surfacing later as an encode error.
        for (pc, inst) in self.insts.iter().enumerate() {
            if let Err(encoding::EncodeError::ImmOutOfRange { value }) = encoding::encode_inst(inst)
            {
                return Err(AsmError::ImmOutOfRange { pc, value });
            }
        }
        Ok(Program::from_parts(self.name, self.insts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Asm::new("t");
        let fwd = a.new_label();
        let back = a.new_label();
        a.bind(back);
        a.a_imm(Reg::a(0), 1);
        a.br_az(fwd); // forward reference
        a.br_an(back); // backward reference
        a.bind(fwd);
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p[1].target, Some(3));
        assert_eq!(p[2].target, Some(0));
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut a = Asm::new("t");
        let l = a.new_label();
        a.jump(l);
        let err = a.assemble().unwrap_err();
        assert!(matches!(err, AsmError::UnboundLabel { pc: 0, .. }));
        assert_eq!(err.to_string(), "branch to undefined label 'L0' at inst 0");
    }

    #[test]
    fn undefined_label_diagnostic_carries_name_and_pc() {
        let mut a = Asm::new("t");
        let loop2 = a.named_label("loop2");
        for _ in 0..17 {
            a.nop();
        }
        a.br_an(loop2); // inst 17, label never bound
        a.halt();
        let err = a.assemble().unwrap_err();
        assert_eq!(
            err,
            AsmError::UnboundLabel {
                label: "loop2".into(),
                pc: 17
            }
        );
        assert_eq!(
            err.to_string(),
            "branch to undefined label 'loop2' at inst 17"
        );
    }

    #[test]
    fn double_bind_is_an_assemble_error() {
        let mut a = Asm::new("t");
        let l = a.named_label("top");
        a.bind(l);
        a.nop();
        a.bind(l);
        a.jump(l);
        let err = a.assemble().unwrap_err();
        assert_eq!(
            err,
            AsmError::ReboundLabel {
                label: "top".into(),
                first: 0,
                second: 1
            }
        );
        assert!(err.to_string().contains("'top' bound twice"));
    }

    #[test]
    fn out_of_range_displacement_is_an_assemble_error() {
        // Load/store displacements are 16-bit fields; 1 << 20 overflows.
        let mut a = Asm::new("t");
        a.a_imm(Reg::a(1), 0);
        a.ld_s(Reg::s(1), Reg::a(1), 1 << 20);
        a.halt();
        let err = a.assemble().unwrap_err();
        assert_eq!(
            err,
            AsmError::ImmOutOfRange {
                pc: 1,
                value: 1 << 20
            }
        );
        assert!(err.to_string().contains("at inst 1"));
    }

    #[test]
    fn out_of_range_immediate_is_an_assemble_error() {
        // AImm immediates are 22-bit signed; 1 << 30 overflows.
        let mut a = Asm::new("t");
        a.a_imm(Reg::a(1), 1 << 30);
        a.halt();
        let err = a.assemble().unwrap_err();
        assert!(matches!(err, AsmError::ImmOutOfRange { pc: 0, .. }));
    }

    #[test]
    fn conditional_branches_carry_condition_register() {
        let mut a = Asm::new("t");
        let l = a.new_label();
        a.bind(l);
        a.br_an(l);
        a.br_sm(l);
        let p = a.assemble().unwrap();
        assert_eq!(p[0].src1, Some(Reg::a(0)));
        assert_eq!(p[1].src1, Some(Reg::s(0)));
    }

    #[test]
    fn jump_has_no_condition_source() {
        let mut a = Asm::new("t");
        let l = a.new_label();
        a.bind(l);
        a.jump(l);
        let p = a.assemble().unwrap();
        assert_eq!(p[0].src1, None);
        assert_eq!(p[0].sources().count(), 0);
    }

    #[test]
    #[should_panic(expected = "must be an A register")]
    fn operand_file_checked() {
        let mut a = Asm::new("t");
        a.a_add(Reg::a(1), Reg::s(1), Reg::a(2));
    }

    #[test]
    fn store_operand_layout() {
        let mut a = Asm::new("t");
        a.st_s(Reg::s(3), Reg::a(2), 100);
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p[0].src1, Some(Reg::a(2))); // base
        assert_eq!(p[0].src2, Some(Reg::s(3))); // data
        assert_eq!(p[0].dst, None);
        assert_eq!(p[0].imm, 100);
    }

    #[test]
    fn here_tracks_pc() {
        let mut a = Asm::new("t");
        assert_eq!(a.here(), 0);
        a.nop();
        a.nop();
        assert_eq!(a.here(), 2);
    }
}
