//! Offline, dependency-free stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API used by this workspace's
//! bench targets: [`Criterion`], [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`], [`black_box`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is a plain wall-clock loop (a few warm-up iterations,
//! then up to [`MAX_ITERS`] timed iterations or [`TARGET_NANOS`] of
//! runtime, whichever comes first), reporting the mean time per
//! iteration. No statistics, plots, or baselines — just enough to see
//! relative throughput when the real criterion cannot be downloaded.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Timed iterations stop once this much time has been spent.
pub const TARGET_NANOS: u64 = 1_000_000_000;

/// Hard cap on timed iterations per benchmark.
pub const MAX_ITERS: u32 = 200;

/// Drives one benchmark's measurement loop.
#[derive(Debug)]
pub struct Bencher {
    iters: u32,
    total: Duration,
}

impl Bencher {
    /// Times `f` repeatedly, recording the mean wall-clock cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..3 {
            black_box(f());
        }
        let start = Instant::now();
        while self.iters < MAX_ITERS && start.elapsed().as_nanos() < u128::from(TARGET_NANOS) {
            let t0 = Instant::now();
            black_box(f());
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<40} (no iterations)");
        } else {
            let mean = self.total / self.iters;
            println!("{name:<40} time: {mean:>12.3?}  ({} iters)", self.iters);
        }
    }
}

/// Shim benchmark driver: runs each registered function immediately and
/// prints its mean time.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 0,
            total: Duration::ZERO,
        };
        f(&mut b);
        b.report(name);
        self
    }

    /// Starts a named group; the shim just prefixes member names.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.c.bench_function(&full, f);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 3, "warm-up plus at least one timed iteration");
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.bench_function("member", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
