//! Offline, dependency-free stand-in for the `proptest` crate.
//!
//! The workspace builds in environments without crates.io access, so the
//! real `proptest` cannot be downloaded. This shim implements the exact
//! subset of its API that the test suite uses:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(...)]` header) over `arg in strategy` bindings;
//! * integer [`Range`](core::ops::Range) strategies (`0u64..10_000`);
//! * [`bool::ANY`];
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`];
//! * [`ProptestConfig::with_cases`].
//!
//! Semantics differ from real proptest in one deliberate way: there is
//! **no shrinking**. A failing case panics with the sampled values baked
//! into the assertion message, which is enough to reproduce (generation
//! is fully deterministic: the RNG is seeded from the test's module path
//! and name, so a given test sees the same inputs on every run).

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Marker returned by [`prop_assume!`] on rejection; the harness retries
/// with fresh inputs.
#[derive(Debug, Clone, Copy)]
pub struct Rejected;

/// Deterministic splitmix64 generator seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from `name` with FNV-1a (stable across platforms and
    /// toolchains, unlike `DefaultHasher`).
    #[must_use]
    pub fn new(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit sample (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A source of random values of one type — the shim's analogue of
/// proptest's `Strategy`, minus shrinking.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let (lo, hi) = (self.start as i128, self.end as i128);
                let offset = (u128::from(rng.next_u64()) % (hi - lo) as u128) as i128;
                (lo + offset) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let offset = (u128::from(rng.next_u64()) % (hi - lo + 1) as u128) as i128;
                (lo + offset) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    /// Uniform `true`/`false`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The any-boolean strategy.
    pub const ANY: Any = Any;

    impl crate::Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut crate::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` that runs the body over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::TestRng::new(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(16).max(16);
            while accepted < config.cases {
                assert!(
                    attempts < max_attempts,
                    "too many inputs rejected by prop_assume! ({attempts} attempts)"
                );
                attempts += 1;
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                let outcome: ::core::result::Result<(), $crate::Rejected> = (|| {
                    { $body }
                    ::core::result::Result::Ok(())
                })();
                if outcome.is_ok() {
                    accepted += 1;
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` under a proptest-compatible name (no shrinking, so a plain
/// panic is the failure path).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Rejects the current case (the harness resamples and retries).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::Rejected);
        }
    };
}

/// The glob-import surface test files pull in.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::new("x");
        let mut b = crate::TestRng::new("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::new("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new("bounds");
        for _ in 0..1000 {
            let v = crate::Strategy::sample(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = crate::Strategy::sample(&(1u32..=4), &mut rng);
            assert!((1..=4).contains(&w));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_and_runs(a in 0u64..10, b in 1usize..5, flip in crate::bool::ANY) {
            prop_assert!(a < 10);
            prop_assert_eq!(b.clamp(1, 4), b);
            prop_assume!(a != 9 || flip);
            prop_assert_ne!(b, 0);
        }
    }
}
